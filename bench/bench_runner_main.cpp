// Shared main for every bench_* binary: runs Google Benchmark as usual, then
// writes the machine-readable BENCH_<name>.json report from the instance
// outcomes the benchmarks recorded (see bench_report.hpp).  The report is
// written even when instances failed — partial results are the point.
//
// Observability flags (consumed here, invisible to Google Benchmark):
//   --trace=<out.json>    enable span tracing, export a Chrome trace-event
//                         file loadable in Perfetto / chrome://tracing
//   --metrics=<out.json>  write the session's metrics snapshot as JSON

#include "core/report.hpp"
#include "obs/session.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

int main(int argc, char** argv) {
    const auto start = std::chrono::steady_clock::now();
    std::string name = argv[0];
    const auto slash = name.find_last_of('/');
    if (slash != std::string::npos) {
        name.erase(0, slash + 1);
    }

    std::string trace_path;
    std::string metrics_path;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(8);
        } else if (arg.rfind("--metrics=", 0) == 0) {
            metrics_path = arg.substr(10);
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;

    lph::obs::Session::Options obs_options;
    obs_options.tracing = !trace_path.empty();
    lph::obs::Session session(obs_options);
    session.activate();

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const double total_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    const std::string path = lph::report::write_report(name, total_ms);
    if (path.empty()) {
        std::fprintf(stderr, "warning: could not write BENCH_%s.json\n",
                     name.c_str());
    } else {
        std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    if (!metrics_path.empty()) {
        if (session.write_metrics_json(metrics_path)) {
            std::fprintf(stderr, "wrote %s\n", metrics_path.c_str());
        } else {
            std::fprintf(stderr, "warning: could not write %s\n",
                         metrics_path.c_str());
        }
    }
    if (!trace_path.empty()) {
        if (session.export_chrome_trace(trace_path)) {
            std::fprintf(stderr, "wrote %s\n", trace_path.c_str());
        } else {
            std::fprintf(stderr, "warning: could not write %s\n",
                         trace_path.c_str());
        }
    }
    return 0;
}
