// Experiment E7 (Proposition 21): the symmetry-breaking separation LP < NLP.
// For growing odd cycles, the candidate LP decider's transcripts on C_n and
// on the doubled C_2n (with replicated identifiers) are compared; they are
// always identical although exactly one of the two graphs is 2-colorable.

#include "graph/generators.hpp"
#include "hierarchy/separations.hpp"
#include "machines/verifiers.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

void BM_GluedCycleTranscripts(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LocalBipartiteDecider decider(1);
    SymmetryExperiment result;
    for (auto _ : state) {
        result = run_prop21_experiment(decider, n);
        sink(result.transcripts_match);
    }
    state.counters["transcripts_match"] = result.transcripts_match ? 1.0 : 0.0;
    state.counters["odd_is_bipartite"] = result.g_bipartite ? 1.0 : 0.0;
    state.counters["doubled_is_bipartite"] = result.g2_bipartite ? 1.0 : 0.0;
    state.counters["same_acceptance"] =
        result.g_accepted == result.g2_accepted ? 1.0 : 0.0;
    report::note("BM_GluedCycleTranscripts", "blind_n=" + std::to_string(n),
                 result.transcripts_match &&
                     result.g_accepted == result.g2_accepted &&
                     result.g_bipartite != result.g2_bipartite);
}
BENCHMARK(BM_GluedCycleTranscripts)->Arg(9)->Arg(33)->Arg(129)->Arg(513);

void BM_RadiusSweep(benchmark::State& state) {
    // The separation survives any constant radius (cycle length permitting).
    const int radius = static_cast<int>(state.range(0));
    const std::size_t n = 4 * static_cast<std::size_t>(radius) + 9 +
                          (4 * static_cast<std::size_t>(radius) + 9 + 1) % 2;
    const LocalBipartiteDecider decider(radius);
    SymmetryExperiment result;
    for (auto _ : state) {
        result = run_prop21_experiment(decider, n % 2 == 1 ? n : n + 1);
        sink(result.transcripts_match);
    }
    state.counters["radius"] = static_cast<double>(radius);
    state.counters["transcripts_match"] = result.transcripts_match ? 1.0 : 0.0;
    report::note("BM_RadiusSweep", "blind_r=" + std::to_string(radius),
                 result.transcripts_match);
}
BENCHMARK(BM_RadiusSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_EngineSpeedup_OddCycleCertificates(benchmark::State& state) {
    // The NLP side of Prop 21's separation: the certificate game for
    // 2-COLORABLE on the odd cycle (the language the blind LP decider cannot
    // handle).  Parallel+memoized engine vs the sequential reference on the
    // full exhaustive no-instance.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const FixedOptionsDomain colors({"0", "1"});
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&colors};
    spec.starts_existential = true;
    for (auto _ : state) {
        sink(play_game(spec, g, id).accepted);
    }
    record_engine_speedup("BM_EngineSpeedup_OddCycleCertificates",
                          "odd_cycle_n=" + std::to_string(n), spec, g, id);
}
BENCHMARK(BM_EngineSpeedup_OddCycleCertificates)
    ->Arg(15)
    ->Unit(benchmark::kMillisecond);

void BM_CompiledSpeedup_OddCycleCertificates(benchmark::State& state) {
    // The same exhaustive no-instance, interpreted vs compiled backends at
    // equal thread count — the compiled tables turn each leaf probe into one
    // bit of a packed 64-wide scan.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const FixedOptionsDomain colors({"0", "1"});
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&colors};
    spec.starts_existential = true;
    GameOptions compiled;
    compiled.backend = GameBackend::Compiled;
    for (auto _ : state) {
        sink(play_game(spec, g, id, compiled).accepted);
    }
    record_compiled_speedup("BM_CompiledSpeedup_OddCycleCertificates",
                            "odd_cycle_n=" + std::to_string(n), spec, g, id);
}
BENCHMARK(BM_CompiledSpeedup_OddCycleCertificates)
    ->Arg(15)
    ->Unit(benchmark::kMillisecond);

void BM_CompiledSpeedup_PeriodicIdOrbits(benchmark::State& state) {
    // Orbit pruning's best case: identifiers repeat with period 7 around an
    // even cycle, so the 14 nodes fall into 7 view-isomorphism classes and
    // every other node's table is shared (compile cost halves while the
    // verdict and tree size stay bit-identical).  Period 7 is the smallest
    // that keeps ids locally unique for the coloring verifier's id radius.
    const LabeledGraph g = cycle_graph(14, "1");
    const auto id = make_cyclic_ids(g, 7);
    const ColoringVerifier verifier(2);
    const FixedOptionsDomain colors({"0", "1"});
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&colors};
    spec.starts_existential = true;
    GameOptions compiled;
    compiled.backend = GameBackend::Compiled;
    for (auto _ : state) {
        sink(play_game(spec, g, id, compiled).accepted);
    }
    record_compiled_speedup("BM_CompiledSpeedup_PeriodicIdOrbits",
                            "even_cycle_n=14_period=7", spec, g, id);
}
BENCHMARK(BM_CompiledSpeedup_PeriodicIdOrbits)->Unit(benchmark::kMillisecond);

} // namespace
