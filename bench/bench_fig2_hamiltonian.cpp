// Experiment E2 (Proposition 16, Figure 2/8): the distributed reduction
// ALL-SELECTED -> HAMILTONIAN.  Regenerates the figure's construction on
// growing instances and records: reduction cost (distributed metered steps),
// output blow-up (~2 nodes per input edge + pendants), and the equivalence
// "all selected <=> G' Hamiltonian" verified by backtracking search on the
// small sizes.

#include "graph/generators.hpp"
#include "graphalg/hamiltonian.hpp"
#include "reductions/classic_reductions.hpp"
#include "reductions/verify.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

LabeledGraph instance(std::size_t n, bool all_selected, unsigned seed) {
    Rng rng(seed);
    LabeledGraph g = random_connected_graph(n, n / 2, rng, "1");
    if (!all_selected) {
        g.set_label(rng.index(n), "0");
    }
    return g;
}

void BM_ReduceToHamiltonian(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = instance(n, true, 1);
    const auto id = make_global_ids(g);
    const AllSelectedToHamiltonian reduction;
    std::size_t out_nodes = 0;
    std::uint64_t steps = 0;
    for (auto _ : state) {
        const ReducedGraph reduced = apply_reduction(reduction, g, id);
        out_nodes = reduced.graph.num_nodes();
        benchmark::DoNotOptimize(reduced.graph.num_edges());
    }
    {
        const auto run = report::guarded("BM_ReduceToHamiltonian",
                                         "n=" + std::to_string(n),
                                         [&] { return run_local(reduction, g, id); });
        steps = run ? run->total_steps : 0;
    }
    state.counters["in_nodes"] = static_cast<double>(n);
    state.counters["out_nodes"] = static_cast<double>(out_nodes);
    state.counters["reduction_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_ReduceToHamiltonian)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/// The full figure check: equivalence on both yes- and no-instances
/// (Hamiltonian search limits this to small graphs).
void BM_EquivalenceSweep(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::size_t checked = 0;
    std::size_t correct = 0;
    for (auto _ : state) {
        checked = 0;
        correct = 0;
        for (unsigned seed = 0; seed < 6; ++seed) {
            for (bool all : {true, false}) {
                const LabeledGraph g = instance(n, all, seed + 10);
                const auto result = check_reduction(
                    AllSelectedToHamiltonian{}, g, make_global_ids(g),
                    [](const LabeledGraph& h) {
                        for (NodeId u = 0; u < h.num_nodes(); ++u) {
                            if (h.label(u) != "1") return false;
                        }
                        return true;
                    },
                    [](const LabeledGraph& h) { return is_hamiltonian(h); });
                ++checked;
                correct += result.equivalence_holds && result.cluster_map_ok;
            }
        }
        sink(correct);
    }
    state.counters["instances"] = static_cast<double>(checked);
    state.counters["equivalences_hold"] = static_cast<double>(correct);
    report::note("BM_EquivalenceSweep", "equivalences_n=" + std::to_string(n),
                 correct == checked,
                 std::to_string(correct) + "/" + std::to_string(checked));
}
BENCHMARK(BM_EquivalenceSweep)->Arg(4)->Arg(6);

/// Euler-tour witness: on all-selected instances, the reduced graph's
/// Hamiltonian cycle exists and is found quickly (the spanning-tree tour).
void BM_WitnessSearchOnYesInstances(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = instance(n, true, 3);
    const ReducedGraph reduced =
        apply_reduction(AllSelectedToHamiltonian{}, g, make_global_ids(g));
    bool found = false;
    for (auto _ : state) {
        found = is_hamiltonian(reduced.graph);
        sink(found);
    }
    state.counters["hamiltonian"] = found ? 1.0 : 0.0;
    state.counters["out_nodes"] = static_cast<double>(reduced.graph.num_nodes());
    report::note("BM_WitnessSearchOnYesInstances",
                 "witness_n=" + std::to_string(n), found);
}
BENCHMARK(BM_WitnessSearchOnYesInstances)->Arg(4)->Arg(6)->Arg(8);

} // namespace
