// Experiment E9 (Section 9.2, Theorems 27/29): pictures and tiling systems.
// Regenerates the machinery of the infiniteness proof: tiling-system
// recognition of the square language and of the level-1 Matz language
// (width = 2^height), and the picture <-> graph encoding of Section 9.2.2.

#include "core/rng.hpp"
#include "pictures/matz.hpp"
#include "pictures/picture.hpp"
#include "pictures/tiling.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

void BM_SquareRecognition(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const TilingSystem system = square_tiling_system();
    const Picture yes = blank_picture(n, n);
    const Picture no = blank_picture(n, n + 1);
    bool both_right = false;
    for (auto _ : state) {
        both_right = system.recognizes(yes) && !system.recognizes(no);
        sink(both_right);
    }
    state.counters["n"] = static_cast<double>(n);
    state.counters["correct"] = both_right ? 1.0 : 0.0;
    report::note("BM_SquareRecognition", "square_n=" + std::to_string(n),
                 both_right);
}
BENCHMARK(BM_SquareRecognition)->Arg(3)->Arg(6)->Arg(10)->Arg(14);

void BM_CounterRecognition(benchmark::State& state) {
    const std::size_t m = static_cast<std::size_t>(state.range(0));
    const TilingSystem system = binary_counter_tiling_system();
    const Picture yes = blank_picture(m, static_cast<std::size_t>(iterated_exp(1, m)));
    bool accepted = false;
    for (auto _ : state) {
        accepted = system.recognizes(yes);
        sink(accepted);
    }
    state.counters["height"] = static_cast<double>(m);
    state.counters["width"] = static_cast<double>(iterated_exp(1, m));
    state.counters["accepted"] = accepted ? 1.0 : 0.0;
    report::note("BM_CounterRecognition", "counter_h=" + std::to_string(m),
                 accepted);
}
BENCHMARK(BM_CounterRecognition)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_CounterRejectsNearMisses(benchmark::State& state) {
    const std::size_t m = static_cast<std::size_t>(state.range(0));
    const TilingSystem system = binary_counter_tiling_system();
    const std::size_t w = static_cast<std::size_t>(iterated_exp(1, m));
    std::size_t rejected = 0;
    for (auto _ : state) {
        rejected = 0;
        rejected += !system.recognizes(blank_picture(m, w - 1));
        rejected += !system.recognizes(blank_picture(m, w + 1));
        rejected += !system.recognizes(blank_picture(m, 2 * w));
        sink(rejected);
    }
    state.counters["rejected_of_3"] = static_cast<double>(rejected);
    report::note("BM_CounterRejectsNearMisses",
                 "near_misses_h=" + std::to_string(m), rejected == 3,
                 std::to_string(rejected) + "/3");
}
BENCHMARK(BM_CounterRejectsNearMisses)->Arg(2)->Arg(3)->Arg(4);

void BM_PictureGraphRoundTrip(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Picture p(n, n, 1);
    Rng rng(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            p.set(i, j, rng.chance(0.5) ? "1" : "0");
        }
    }
    bool ok = false;
    for (auto _ : state) {
        const LabeledGraph g = picture_to_graph(p);
        const auto back = graph_to_picture(g, 1);
        ok = back.has_value() && *back == p;
        sink(ok);
    }
    state.counters["pixels"] = static_cast<double>(n * n);
    state.counters["roundtrip_ok"] = ok ? 1.0 : 0.0;
    report::note("BM_PictureGraphRoundTrip", "roundtrip_n=" + std::to_string(n),
                 ok);
}
BENCHMARK(BM_PictureGraphRoundTrip)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_MatzScale(benchmark::State& state) {
    // The iterated-exponential widths that drive the hierarchy's
    // infiniteness: level l is 2^(level l-1).
    const int level = static_cast<int>(state.range(0));
    std::uint64_t width = 0;
    for (auto _ : state) {
        width = iterated_exp(level, 3);
        sink(width);
    }
    state.counters["level"] = static_cast<double>(level);
    state.counters["width_of_height3"] = static_cast<double>(width);
}
BENCHMARK(BM_MatzScale)->Arg(1)->Arg(2)->Arg(3);

} // namespace
