// Load generator for the serving layer (src/service): replays an open-loop
// mixed workload of wire requests against an in-process ServiceCore and
// compares batched serving (same-graph micro-batching + cross-request memo +
// per-machine shared view cache) against the one-engine-call-per-request
// baseline (all three off, same worker pool).
//
// The headline BENCH row reports p50/p95/p99 end-to-end latency, throughput,
// rejection rate, and the memo / view-cache hit rates, absorbed from the
// same ServiceStats/ResultMemoStats/ViewCacheStats lists `lphd --metrics=`
// exports — one schema across the daemon and the bench.

#include "graph/serialize.hpp"
#include "obs/log_histogram.hpp"
#include "obs/metrics.hpp"
#include "service/core.hpp"
#include "service/retry.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <vector>

namespace {

using namespace lph;
using namespace lph::service;

std::uint64_t mix(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::string cycle_graph(int n) {
    std::ostringstream g;
    g << "graph " << n << "\\n";
    for (int u = 0; u < n; ++u) {
        g << "edge " << u << " " << (u + 1) % n << "\\n";
    }
    return g.str();
}

std::string path_graph(int n) {
    std::ostringstream g;
    g << "graph " << n << "\\n";
    for (int u = 0; u + 1 < n; ++u) {
        g << "edge " << u << " " << u + 1 << "\\n";
    }
    return g.str();
}

/// A shared-graph workload: many requests over a small graph pool, built by
/// parsing real wire lines so the bench exercises the same path as lphd.
std::vector<Request> make_workload(std::size_t count, std::uint64_t seed) {
    std::vector<std::string> graphs;
    for (int n = 5; n <= 7; ++n) {
        graphs.push_back(cycle_graph(n));
        graphs.push_back(path_graph(n));
    }
    const std::vector<std::string> machines = {"allsel", "eulerian",
                                               "coloring2", "coloring3"};
    const std::vector<std::string> problems = {"eulerian", "coloring",
                                               "hamiltonian"};

    const WireLimits limits;
    std::vector<Request> requests;
    requests.reserve(count);
    std::uint64_t state = seed;
    for (std::size_t i = 0; i < count; ++i) {
        const std::string& graph = graphs[mix(state) % graphs.size()];
        std::ostringstream line;
        switch (mix(state) % 8) {
        case 0:
        case 1:
            line << "{\"type\":\"decide\",\"id\":" << i << ",\"problem\":\""
                 << problems[mix(state) % problems.size()]
                 << "\",\"k\":3,\"graph\":\"" << graph << "\"}";
            break;
        case 2:
            line << "{\"type\":\"logic\",\"id\":" << i
                 << ",\"formula\":\"two_colorable\",\"graph\":\"" << graph
                 << "\"}";
            break;
        default: {
            const std::string& machine = machines[mix(state) % machines.size()];
            const bool decider = machine == "allsel" || machine == "eulerian";
            line << "{\"type\":\"game\",\"id\":" << i << ",\"machine\":\""
                 << machine << "\",\"layers\":" << (decider ? 0 : 1)
                 << ",\"graph\":\"" << graph << "\"}";
            break;
        }
        }
        requests.push_back(parse_request(line.str(), i + 1, limits));
    }
    return requests;
}

struct LoadResult {
    double wall_ms = 0;
    std::vector<double> latency_ms; ///< submit-to-resolution, per request
    /// Server-side stage breakdown harvested from each response's timing
    /// envelope — the same bucketing lphd exports, so the BENCH row's server
    /// percentiles are comparable with lph_top's cluster view.
    obs::LogHistogram queue_us, batch_us, exec_us, write_us, stage_us;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t rejected = 0;
    ServiceStats stats;
    ResultMemoStats memo;
    ViewCacheStats cache;
    SnapshotStats snapshot;

    double qps() const {
        return wall_ms > 0
                   ? 1000.0 * static_cast<double>(latency_ms.size()) / wall_ms
                   : 0.0;
    }
    double rejection_rate() const {
        const auto total = static_cast<double>(latency_ms.size());
        return total > 0 ? static_cast<double>(rejected) / total : 0.0;
    }
};

double percentile(std::vector<double> values, double q) {
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const double rank = q * static_cast<double>(values.size() - 1);
    return values[static_cast<std::size_t>(rank + 0.5)];
}

/// Open-loop replay: submits the whole workload as fast as the queue admits,
/// then harvests completions by polling (latency = submit to resolution).
LoadResult run_load(const std::vector<Request>& workload,
                    const ServiceOptions& options) {
    using clock = std::chrono::steady_clock;
    LoadResult result;
    ServiceCore core(options);

    const auto start = clock::now();
    std::vector<std::future<Response>> futures;
    std::vector<clock::time_point> submitted;
    futures.reserve(workload.size());
    submitted.reserve(workload.size());
    for (const Request& request : workload) {
        submitted.push_back(clock::now());
        futures.push_back(core.submit(request));
    }

    result.latency_ms.assign(workload.size(), 0.0);
    std::vector<bool> done(workload.size(), false);
    std::size_t remaining = workload.size();
    while (remaining > 0) {
        for (std::size_t i = 0; i < futures.size(); ++i) {
            if (done[i] || futures[i].wait_for(std::chrono::seconds(0)) !=
                               std::future_status::ready) {
                continue;
            }
            const Response response = futures[i].get();
            result.latency_ms[i] = std::chrono::duration<double, std::milli>(
                                       clock::now() - submitted[i])
                                       .count();
            if (response.timing.present) {
                result.queue_us.record(
                    static_cast<double>(response.timing.queue_us));
                result.batch_us.record(
                    static_cast<double>(response.timing.batch_us));
                result.exec_us.record(
                    static_cast<double>(response.timing.exec_us));
                result.write_us.record(
                    static_cast<double>(response.timing.write_us));
                result.stage_us.record(
                    static_cast<double>(response.timing.stage_sum_us()));
            }
            if (response.status == "ok") {
                ++result.ok;
            } else if (response.status == "rejected") {
                ++result.rejected;
            } else {
                ++result.errors;
            }
            done[i] = true;
            --remaining;
        }
        if (remaining > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    }
    result.wall_ms =
        std::chrono::duration<double, std::milli>(clock::now() - start).count();

    // stop() before collecting so the counters include the shutdown snapshot
    // save (counters are monotone; nothing is reset by stop).
    core.stop();
    result.stats = core.stats();
    result.memo = core.memo_stats();
    result.cache = core.view_cache_stats();
    result.snapshot = core.snapshot_stats();
    return result;
}

ServiceOptions batched_options() {
    ServiceOptions options;
    options.threads = 4;
    options.queue_capacity = 4096;
    return options;
}

ServiceOptions baseline_options() {
    ServiceOptions options = batched_options();
    options.memoize_results = false;
    options.batch_by_graph = false;
    options.share_view_cache = false;
    return options;
}

void record_row(const std::string& instance, const LoadResult& result,
                double baseline_wall_ms, const RetryStats* retry = nullptr,
                const obs::MetricList* extra = nullptr) {
    report::Instance row;
    row.bench = "BM_ServiceLoadgen";
    row.instance = instance;
    row.outcome = "ok";
    row.wall_ms = result.wall_ms;
    obs::MetricsRegistry registry;
    registry.absorb("service.", result.stats.to_metrics());
    registry.absorb("service.", result.memo.to_metrics());
    registry.absorb("service.", result.cache.to_metrics());
    registry.absorb("service.", result.snapshot.to_metrics());
    if (retry != nullptr) {
        registry.absorb("client.", retry->to_metrics());
    }
    registry.set("requests", static_cast<double>(result.latency_ms.size()));
    registry.set("qps", result.qps());
    registry.set("p50_ms", percentile(result.latency_ms, 0.50));
    registry.set("p95_ms", percentile(result.latency_ms, 0.95));
    registry.set("p99_ms", percentile(result.latency_ms, 0.99));
    if (result.stage_us.count() > 0) {
        registry.set("server_p50_us", result.stage_us.percentile(0.50));
        registry.set("server_p99_us", result.stage_us.percentile(0.99));
        registry.set("server_queue_p99_us", result.queue_us.percentile(0.99));
        registry.set("server_batch_p99_us", result.batch_us.percentile(0.99));
        registry.set("server_exec_p99_us", result.exec_us.percentile(0.99));
        registry.set("server_write_p99_us", result.write_us.percentile(0.99));
    }
    registry.set("rejection_rate", result.rejection_rate());
    registry.set("memo_hit_rate", result.memo.hit_rate());
    registry.set("view_cache_hit_rate", result.cache.hit_rate());
    if (baseline_wall_ms > 0 && result.wall_ms > 0) {
        registry.set("speedup_vs_unbatched", baseline_wall_ms / result.wall_ms);
    }
    if (extra != nullptr) {
        registry.absorb("", *extra);
    }
    row.metrics = registry.snapshot();
    report::Recorder::global().record(std::move(row));
}

void BM_ServeBatched(benchmark::State& state) {
    const auto workload =
        make_workload(static_cast<std::size_t>(state.range(0)), 11);
    std::uint64_t served = 0;
    for (auto _ : state) {
        const LoadResult result = run_load(workload, batched_options());
        served = result.ok;
        sink(served);
    }
    state.counters["requests"] = static_cast<double>(workload.size());
    state.counters["ok"] = static_cast<double>(served);
}
BENCHMARK(BM_ServeBatched)->Arg(128)->Arg(384)->Unit(benchmark::kMillisecond);

void BM_ServeUnbatchedBaseline(benchmark::State& state) {
    const auto workload =
        make_workload(static_cast<std::size_t>(state.range(0)), 11);
    std::uint64_t served = 0;
    for (auto _ : state) {
        const LoadResult result = run_load(workload, baseline_options());
        served = result.ok;
        sink(served);
    }
    state.counters["requests"] = static_cast<double>(workload.size());
    state.counters["ok"] = static_cast<double>(served);
}
BENCHMARK(BM_ServeUnbatchedBaseline)
    ->Arg(128)
    ->Arg(384)
    ->Unit(benchmark::kMillisecond);

/// The acceptance comparison: one measured pass per configuration on the
/// same shared-graph workload, recorded as BENCH rows (batched row carries
/// speedup_vs_unbatched).
void BM_ServingComparison(benchmark::State& state) {
    const auto workload = make_workload(384, 11);
    for (auto _ : state) {
        const LoadResult baseline = run_load(workload, baseline_options());
        const LoadResult batched = run_load(workload, batched_options());
        record_row("unbatched_384", baseline, 0);
        record_row("batched_384", batched, baseline.wall_ms);
        report::note("BM_ServiceLoadgen", "batched_beats_unbatched",
                     batched.wall_ms < baseline.wall_ms,
                     "batched " + std::to_string(batched.wall_ms) +
                         " ms vs unbatched " +
                         std::to_string(baseline.wall_ms) + " ms");
        state.counters["speedup"] =
            batched.wall_ms > 0 ? baseline.wall_ms / batched.wall_ms : 0.0;
        sink(batched.ok + baseline.ok);
    }
}
BENCHMARK(BM_ServingComparison)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// Warm-start comparison (DESIGN.md "Resilience"): the same workload served
/// cold (empty caches, snapshot written on stop) and then warm (caches
/// restored from that snapshot at construction).  The warm row's memo hit
/// rate must be at least the cold row's — the point of snapshotting is that
/// a restarted worker does not pay the cold-cache tax again.
void BM_SnapshotWarmStart(benchmark::State& state) {
    const auto workload = make_workload(384, 11);
    const std::string snap =
        (std::filesystem::temp_directory_path() / "lph_loadgen_warm.snap")
            .string();
    for (auto _ : state) {
        std::filesystem::remove(snap);
        ServiceOptions options = batched_options();
        options.snapshot_path = snap;
        const LoadResult cold = run_load(workload, options);
        const LoadResult warm = run_load(workload, options);
        record_row("cold_start_384", cold, 0);
        record_row("warm_start_384", warm, cold.wall_ms);
        report::note("BM_ServiceLoadgen", "warm_memo_hit_rate_ge_cold",
                     warm.memo.hit_rate() >= cold.memo.hit_rate(),
                     "warm " + std::to_string(warm.memo.hit_rate()) +
                         " vs cold " + std::to_string(cold.memo.hit_rate()));
        state.counters["warm_memo_hit_rate"] = warm.memo.hit_rate();
        state.counters["cold_memo_hit_rate"] = cold.memo.hit_rate();
        sink(cold.ok + warm.ok);
    }
    std::filesystem::remove(snap);
}
BENCHMARK(BM_SnapshotWarmStart)->Iterations(1)->Unit(benchmark::kMillisecond);

/// Retry-overhead row: the base workload plus 25% idempotent replays (what a
/// retrying client redelivers after timeouts).  Replays share memo keys with
/// their originals, so the marginal cost of redelivery should be far below
/// linear — the property that makes client-side retry safe to default on.
void BM_RetryReplayOverhead(benchmark::State& state) {
    const auto workload = make_workload(384, 11);
    std::vector<Request> with_replays = workload;
    std::uint64_t replay_state = 77;
    for (int k = 0; k < 96; ++k) {
        with_replays.push_back(
            workload[mix(replay_state) % workload.size()]);
    }
    for (auto _ : state) {
        const LoadResult base = run_load(workload, batched_options());
        const LoadResult replayed = run_load(with_replays, batched_options());
        // The client-side retry ledger this scenario models: 96 of the 480
        // deliveries are redelivered duplicates, none are abandoned.
        RetryStats retry;
        retry.sent = workload.size();
        retry.retries = with_replays.size() - workload.size();
        retry.redelivered = with_replays.size() - workload.size();
        retry.abandoned =
            replayed.rejected + replayed.errors; // 0 on a healthy run
        record_row("retry_replay_480", replayed, base.wall_ms, &retry);
        report::note("BM_ServiceLoadgen", "replay_absorbed_by_memo",
                     replayed.stats.memo_served > base.stats.memo_served,
                     "memo served " +
                         std::to_string(replayed.stats.memo_served) +
                         " with replays vs " +
                         std::to_string(base.stats.memo_served) + " without");
        state.counters["replay_wall_ratio"] =
            base.wall_ms > 0 ? replayed.wall_ms / base.wall_ms : 0.0;
        sink(base.ok + replayed.ok);
    }
}
BENCHMARK(BM_RetryReplayOverhead)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// Patch storm (DESIGN.md "Incremental serving"): a 192-node cycle registered
/// once, then a chain of single-chord-toggle graph_patch requests each
/// carrying an eulerian decider query.  Every patch dirties only the
/// radius-(r+p) balls around the toggled chord (a few percent of the graph),
/// so the incremental path — retained per-node verdicts plus induced-ball
/// reruns — must beat the same chain served as full recomputes by >= 5x
/// while producing bit-identical verdicts.  The row's service.patch.* gauges
/// (applied/incremental/full/dirty_fraction) come from the same
/// ServiceStats::to_metrics schema lphd exports.
void BM_PatchStorm(benchmark::State& state) {
    constexpr int kNodes = 384;
    constexpr int kPatches = 120;
    WireLimits limits;
    limits.max_graph_nodes = 512; // the default 256 is sized for lphd lines

    Request reg = parse_request(
        "{\"type\":\"graph_register\",\"graph\":\"" + cycle_graph(kNodes) +
            "\"}",
        1, limits);

    // Pre-build the whole chain: every digest the patches reference is
    // mirrored locally (fnv1a64 over graph_to_text, the wire's own scheme),
    // and each step's full-recompute twin carries the post-patch graph
    // inline.
    LabeledGraph mirror = reg.graph;
    std::uint64_t digest = fnv1a64(reg.canonical_graph);
    std::vector<Request> patches;
    std::vector<Request> full_twins;
    patches.reserve(kPatches);
    full_twins.reserve(kPatches);
    for (int k = 0; k < kPatches; ++k) {
        const auto u = static_cast<NodeId>((k * 7) % kNodes);
        const auto v = static_cast<NodeId>((u + 2) % kNodes);
        const bool present = mirror.has_edge(u, v);
        std::ostringstream line;
        line << "{\"type\":\"graph_patch\",\"id\":" << k << ",\"digest\":\""
             << digest << "\",\"ops\":[{\"op\":\""
             << (present ? "remove_edge" : "add_edge") << "\",\"u\":"
             << std::min(u, v) << ",\"v\":" << std::max(u, v)
             << "}],\"machine\":\"eulerian\",\"layers\":0,\"sigma\":true,"
             << "\"ids\":\"global\"}";
        patches.push_back(parse_request(line.str(), k + 2, limits));
        if (present) {
            mirror.remove_edge(u, v);
        } else {
            mirror.add_edge(u, v);
        }
        const std::string canonical = graph_to_text(mirror);
        digest = fnv1a64(canonical);
        std::ostringstream twin;
        twin << "{\"type\":\"game\",\"id\":" << k
             << ",\"machine\":\"eulerian\",\"layers\":0,\"sigma\":true,"
             << "\"ids\":\"global\",\"graph\":\"";
        for (const char c : canonical) {
            if (c == '\n') {
                twin << "\\n";
            } else {
                twin << c;
            }
        }
        twin << "\"}";
        full_twins.push_back(parse_request(twin.str(), k + 2, limits));
    }

    ServiceOptions incremental_options;
    incremental_options.manual_drain = true; // call() pumps inline: FIFO chain
    incremental_options.wire = limits;
    ServiceOptions full_options = incremental_options;
    full_options.memoize_results = false;
    full_options.share_view_cache = false;

    using clock = std::chrono::steady_clock;
    double wall_inc = 0;
    double wall_full = 0;
    int mismatches = 0;
    ServiceStats stats;
    for (auto _ : state) {
        ServiceCore core(incremental_options);
        ServiceCore baseline(full_options);
        if (core.call(reg).status != "ok") {
            state.SkipWithError("graph_register failed");
            return;
        }
        LoadResult inc;
        inc.latency_ms.reserve(patches.size());
        const auto t0 = clock::now();
        std::vector<Response> served;
        served.reserve(patches.size());
        for (const Request& patch : patches) {
            const auto s = clock::now();
            served.push_back(core.call(patch));
            inc.latency_ms.push_back(
                std::chrono::duration<double, std::milli>(clock::now() - s)
                    .count());
        }
        wall_inc =
            std::chrono::duration<double, std::milli>(clock::now() - t0)
                .count();

        const auto t1 = clock::now();
        std::vector<Response> golden;
        golden.reserve(full_twins.size());
        for (const Request& twin : full_twins) {
            golden.push_back(baseline.serve_unbatched(twin));
        }
        wall_full =
            std::chrono::duration<double, std::milli>(clock::now() - t1)
                .count();

        mismatches = 0;
        for (std::size_t i = 0; i < served.size(); ++i) {
            const auto a = parse_verdict(served[i].to_json());
            const auto b = parse_verdict(golden[i].to_json());
            const bool agree = a.has_value() && b.has_value() &&
                               a->status == "ok" && b->status == "ok" &&
                               a->has_verdict && b->has_verdict &&
                               a->verdict == b->verdict;
            if (!agree) {
                ++mismatches;
            }
            if (served[i].status == "ok") {
                ++inc.ok;
            } else {
                ++inc.errors;
            }
        }

        core.stop();
        inc.wall_ms = wall_inc;
        inc.stats = core.stats();
        inc.memo = core.memo_stats();
        inc.cache = core.view_cache_stats();
        inc.snapshot = core.snapshot_stats();
        stats = inc.stats;
        record_row("patch_storm_384", inc, wall_full);
        report::note("BM_ServiceLoadgen", "patch_incremental_speedup_ge_5x",
                     wall_inc > 0 && wall_full / wall_inc >= 5.0,
                     "incremental " + std::to_string(wall_inc) +
                         " ms vs full recompute " + std::to_string(wall_full) +
                         " ms");
        report::note("BM_ServiceLoadgen", "patch_dirty_fraction_le_10pct",
                     inc.stats.patch_dirty_fraction() <= 0.10,
                     "dirty fraction " +
                         std::to_string(inc.stats.patch_dirty_fraction()));
        report::note("BM_ServiceLoadgen", "patch_verdicts_match_full",
                     mismatches == 0,
                     std::to_string(mismatches) + " of " +
                         std::to_string(served.size()) +
                         " verdicts diverged from full recompute");
        sink(inc.ok);
    }
    state.counters["speedup"] =
        wall_inc > 0 ? wall_full / wall_inc : 0.0;
    state.counters["dirty_fraction"] = stats.patch_dirty_fraction();
    state.counters["verdict_mismatches"] = static_cast<double>(mismatches);
}
BENCHMARK(BM_PatchStorm)->Iterations(1)->Unit(benchmark::kMillisecond);

/// Mixed interactive + big-job storm (DESIGN.md "Language frontend &
/// admission control"): a stream of cheap requests (layers-0 games, eulerian
/// decides, FO evals) with a user-written 7-quantifier eval formula injected
/// every 48th slot.  Each big job enumerates ~7^7 assignments (~hundreds of
/// ms); cost-model admission routes them to a dedicated big-job worker, so
/// the acceptance criterion is that the *interactive* p99 with admission on
/// is at most half the admission-off p99 on the same 3-worker budget.
struct MixedWorkload {
    std::vector<Request> requests;
    std::vector<bool> interactive; ///< per-index: not one of the big jobs
};

MixedWorkload make_admission_mixed(std::size_t count, std::uint64_t seed) {
    std::vector<std::string> graphs;
    for (int n = 5; n <= 7; ++n) {
        graphs.push_back(cycle_graph(n));
        graphs.push_back(path_graph(n));
    }
    // Distinct bodies so the big jobs never share a memo slot; each is a
    // full-enumeration forall chain (no short-circuit) over a 7-node graph.
    const std::vector<std::string> big_bodies = {
        "(a = a | O1(b))", "(b = b | O1(a))", "(c = c | O1(a))",
        "(d = d | O1(a))", "(e = e | O1(a))", "(f = f | O1(a))"};
    const std::string big_graph = cycle_graph(7);

    const WireLimits limits;
    MixedWorkload workload;
    std::uint64_t state = seed;
    std::size_t big = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::string& graph = graphs[mix(state) % graphs.size()];
        std::ostringstream line;
        bool is_big = false;
        if (i % 48 == 47) {
            is_big = true;
            line << "{\"type\":\"eval\",\"id\":" << i
                 << ",\"formula\":\"forall a. forall b. forall c. forall d. "
                 << "forall e. forall f. forall g. "
                 << big_bodies[big++ % big_bodies.size()]
                 << "\",\"graph\":\"" << big_graph << "\"}";
        } else {
            switch (mix(state) % 4) {
            case 0:
                line << "{\"type\":\"decide\",\"id\":" << i
                     << ",\"problem\":\"eulerian\",\"graph\":\"" << graph
                     << "\"}";
                break;
            case 1:
                line << "{\"type\":\"eval\",\"id\":" << i
                     << ",\"formula\":\"exists x. O1(x)\",\"graph\":\"" << graph
                     << "\"}";
                break;
            default:
                line << "{\"type\":\"game\",\"id\":" << i << ",\"machine\":\""
                     << (mix(state) % 2 ? "allsel" : "eulerian")
                     << "\",\"layers\":0,\"graph\":\"" << graph << "\"}";
                break;
            }
        }
        workload.requests.push_back(parse_request(line.str(), i + 1, limits));
        workload.interactive.push_back(!is_big);
    }
    return workload;
}

double interactive_percentile(const MixedWorkload& workload,
                              const LoadResult& result, double q) {
    std::vector<double> latencies;
    for (std::size_t i = 0; i < result.latency_ms.size(); ++i) {
        if (workload.interactive[i]) {
            latencies.push_back(result.latency_ms[i]);
        }
    }
    return percentile(std::move(latencies), q);
}

void BM_AdmissionMixed(benchmark::State& state) {
    const MixedWorkload workload = make_admission_mixed(288, 31);

    // Same 3-worker budget on both sides: admission-off serves everything
    // from one pool, admission-on splits it 2 interactive + 1 big-job.
    ServiceOptions off = batched_options();
    off.threads = 3;
    ServiceOptions on = batched_options();
    on.threads = 2;
    on.admission.enabled = true;
    on.admission.defer_cost_us = 1e5;
    on.admission.max_cost_us = 1e18; // route, never reject: all must complete
    on.admission.big_job_threads = 1;

    double p99_off = 0;
    double p99_on = 0;
    for (auto _ : state) {
        const LoadResult result_off = run_load(workload.requests, off);
        const LoadResult result_on = run_load(workload.requests, on);
        p99_off = interactive_percentile(workload, result_off, 0.99);
        p99_on = interactive_percentile(workload, result_on, 0.99);

        const obs::MetricList extra_off = {
            {"interactive_p50_ms",
             interactive_percentile(workload, result_off, 0.50)},
            {"interactive_p99_ms", p99_off}};
        const obs::MetricList extra_on = {
            {"interactive_p50_ms",
             interactive_percentile(workload, result_on, 0.50)},
            {"interactive_p99_ms", p99_on}};
        record_row("admission_off_mixed_288", result_off, 0, nullptr,
                   &extra_off);
        record_row("admission_on_mixed_288", result_on, result_off.wall_ms,
                   nullptr, &extra_on);
        report::note("BM_ServiceLoadgen", "admission_everything_served",
                     result_off.errors == 0 && result_on.errors == 0 &&
                         result_off.rejected == 0 && result_on.rejected == 0,
                     "off ok=" + std::to_string(result_off.ok) + " on ok=" +
                         std::to_string(result_on.ok));
        report::note(
            "BM_ServiceLoadgen", "admission_interactive_p99_halved",
            p99_on <= 0.5 * p99_off,
            "interactive p99 " + std::to_string(p99_on) +
                " ms with admission vs " + std::to_string(p99_off) +
                " ms without under the same big-job storm");
        sink(result_off.ok + result_on.ok);
    }
    state.counters["interactive_p99_off_ms"] = p99_off;
    state.counters["interactive_p99_on_ms"] = p99_on;
    state.counters["p99_ratio"] = p99_off > 0 ? p99_on / p99_off : 0.0;
}
BENCHMARK(BM_AdmissionMixed)->Iterations(1)->Unit(benchmark::kMillisecond);

/// Overload behavior: an open-loop burst into a deliberately tiny queue must
/// produce structured rejections (admission control), never hangs.
void BM_ServeOverload(benchmark::State& state) {
    const auto workload = make_workload(256, 23);
    ServiceOptions options = batched_options();
    options.threads = 2;
    options.queue_capacity = 16;
    std::uint64_t rejected = 0;
    for (auto _ : state) {
        const LoadResult result = run_load(workload, options);
        rejected = result.rejected;
        sink(rejected);
    }
    state.counters["rejected"] = static_cast<double>(rejected);
    report::guarded("BM_ServeOverload", "queue_cap=16", [&] {
        const LoadResult result = run_load(workload, options);
        record_row("overload_q16", result, 0);
        return result.rejected;
    });
}
BENCHMARK(BM_ServeOverload)->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace
