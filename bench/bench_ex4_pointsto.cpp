// Experiment E12 companion (Example 4 at scale): the PointsTo game solved
// with Eve's constructive strategy versus the brute-force Exists-P game.
// The strategy scales linearly, the exhaustive game exponentially — the
// practical face of "alternation is expensive to search but cheap to play
// when you own the proof".

#include "graph/generators.hpp"
#include "graphalg/hamiltonian.hpp"
#include "hierarchy/hamiltonian_game.hpp"
#include "hierarchy/pointsto_game.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

const NodePredicate kUnselected = [](const LabeledGraph& h, NodeId u) {
    return h.label(u) != "1";
};

void BM_ConstructiveStrategy(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    LabeledGraph g = cycle_graph(n, "1");
    g.set_label(n / 2, "0");
    bool wins = false;
    for (auto _ : state) {
        wins = exists_unselected_by_game(g);
        sink(wins);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["eve_wins"] = wins ? 1.0 : 0.0;
    report::note("BM_ConstructiveStrategy", "eve_wins_n=" + std::to_string(n),
                 wins);
}
BENCHMARK(BM_ConstructiveStrategy)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ExhaustiveParentGame(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    LabeledGraph g = cycle_graph(n, "1");
    g.set_label(0, "0");
    std::uint64_t tried = 0;
    bool eve_wins = false;
    for (auto _ : state) {
        const auto result = play_points_to_game(g, kUnselected);
        tried = result.parent_assignments_tried;
        eve_wins = result.eve_wins;
        sink(result.eve_wins);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["parent_assignments"] = static_cast<double>(tried);
    report::note("BM_ExhaustiveParentGame", "eve_wins_n=" + std::to_string(n),
                 eve_wins);
}
BENCHMARK(BM_ExhaustiveParentGame)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_ExhaustiveNoInstance(benchmark::State& state) {
    // All-selected: Eve must exhaust her entire P space.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    std::uint64_t tried = 0;
    bool eve_wins = true;
    for (auto _ : state) {
        const auto result = play_points_to_game(g, kUnselected);
        tried = result.parent_assignments_tried;
        eve_wins = result.eve_wins;
        sink(result.eve_wins);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["parent_assignments"] = static_cast<double>(tried);
    report::note("BM_ExhaustiveNoInstance", "eve_loses_n=" + std::to_string(n),
                 !eve_wins);
}
BENCHMARK(BM_ExhaustiveNoInstance)->Arg(3)->Arg(4)->Arg(5);

void BM_NonColorableGame(benchmark::State& state) {
    // Example 5: Adam's 8^n proposals against Eve's constructive refutations.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = complete_graph(n, "");
    std::uint64_t proposals = 0;
    bool value = false;
    for (auto _ : state) {
        const auto result = non_three_colorable_by_game(g);
        proposals = result.adam_colorings_tried;
        value = result.non_colorable;
        sink(value);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["adam_proposals"] = static_cast<double>(proposals);
    state.counters["non_colorable"] = value ? 1.0 : 0.0;
    report::note("BM_NonColorableGame",
                 "non_colorable_n=" + std::to_string(n), value == (n > 3));
}
BENCHMARK(BM_NonColorableGame)->Arg(3)->Arg(4)->Arg(5);

void BM_HamiltonianSigma5Game(benchmark::State& state) {
    // Example 6: the Sigma_5 game over 2-factors, with every Adam move
    // replayed on Eve's winning cycle.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = complete_graph(n, "");
    bool wins = false;
    std::uint64_t factors = 0;
    for (auto _ : state) {
        const auto result = hamiltonian_game(g);
        wins = result.eve_wins;
        factors = result.two_factors_tried;
        sink(wins);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["eve_wins"] = wins ? 1.0 : 0.0;
    state.counters["two_factors"] = static_cast<double>(factors);
    state.counters["truth"] = is_hamiltonian(g) ? 1.0 : 0.0;
    report::note("BM_HamiltonianSigma5Game",
                 "oracle_agreement_n=" + std::to_string(n),
                 wins == is_hamiltonian(g));
}
BENCHMARK(BM_HamiltonianSigma5Game)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

void BM_NonHamiltonianPi4Game(benchmark::State& state) {
    // Example 7: Adam enumerates every edge subset; Eve's constructive
    // refutations hold exactly on non-Hamiltonian inputs.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = star_graph(n, "");
    bool wins = false;
    std::uint64_t tried = 0;
    for (auto _ : state) {
        const auto result = non_hamiltonian_game(g);
        wins = result.eve_wins;
        tried = result.adam_subgraphs_tried;
        sink(wins);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["eve_wins"] = wins ? 1.0 : 0.0;
    state.counters["adam_subgraphs"] = static_cast<double>(tried);
    report::note("BM_NonHamiltonianPi4Game", "eve_wins_n=" + std::to_string(n),
                 wins);
}
BENCHMARK(BM_NonHamiltonianPi4Game)->Arg(4)->Arg(8)->Arg(12);

} // namespace
