#pragma once

#include "core/report.hpp"
#include "core/thread_pool.hpp"
#include "dtm/errors.hpp"
#include "dtm/execution.hpp"
#include "hierarchy/game.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

namespace lph {

/// Keeps a computed scalar alive without handing the variable itself to the
/// optimizer barrier.  GCC miscompiles benchmark::DoNotOptimize(Tp&) for
/// small trivially-copyable lvalues: its "+m,r" multi-alternative constraint
/// can read one alternative and write back the other, clobbering the
/// variable (google/benchmark#1340).  Benches read these scalars after the
/// loop for counters and report rows, so the barrier must only ever touch a
/// dead copy.
template <typename T>
inline void sink(T value) {
    benchmark::DoNotOptimize(value);
}

namespace report {

/// Runs one bench instance under the structured failure channel: the
/// callable is timed, every escaping error is caught and classified, and the
/// outcome lands in the global recorder (one row per (bench, instance) key).
/// Returns the callable's value, or nullopt when it failed — so a bench
/// binary always runs to completion and reports partial results, even when
/// individual instances violate bounds.
template <typename Fn>
auto guarded(const std::string& bench, const std::string& instance, Fn&& fn)
    -> std::optional<std::decay_t<decltype(fn())>> {
    using Result = std::decay_t<decltype(fn())>;
    Instance row;
    row.bench = bench;
    row.instance = instance;
    std::optional<Result> value;
    const auto start = std::chrono::steady_clock::now();
    try {
        value.emplace(fn());
        row.outcome = "ok";
        if constexpr (std::is_same_v<Result, ExecutionResult>) {
            row.fault_count = value->faults.size();
            if (!value->ok()) {
                row.outcome = to_string(value->error);
            }
        }
    } catch (const run_error& e) {
        row.outcome = to_string(e.code());
        row.detail = e.what();
    } catch (const std::exception& e) {
        row.outcome = "error";
        row.detail = e.what();
    }
    row.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    Recorder::global().record(std::move(row));
    return value;
}

/// Records a pass/fail check outcome directly (for oracle-agreement style
/// instances where there is no run to guard).
inline void note(const std::string& bench, const std::string& instance, bool ok,
                 const std::string& detail = "") {
    Instance row;
    row.bench = bench;
    row.instance = instance;
    row.outcome = ok ? "ok" : "check_failed";
    row.detail = detail;
    Recorder::global().record(std::move(row));
}

} // namespace report

/// Solves one certificate game twice — sequential reference engine
/// (1 thread, no memoization) vs the parallel+memoized engine — checks the
/// verdicts and deterministic counters agree, and records an instance row
/// with the speedup and the engine's perf metrics.  The headline benches use
/// this for the fig3/thm11/prop21 speedup acceptance rows.
inline void record_engine_speedup(const std::string& bench,
                                  const std::string& instance,
                                  const GameSpec& spec, const LabeledGraph& g,
                                  const IdentifierAssignment& id,
                                  GameOptions options = {}) {
    const GameTables tables(spec, g, id);

    GameOptions sequential = options;
    sequential.threads = 1;
    sequential.memoize_views = false;

    GameOptions parallel = options;
    parallel.threads = std::max(4u, ThreadPool::default_participants());
    parallel.memoize_views = true;
    // Let the engine accumulate `game.*` counters into the session registry
    // that --metrics exports (the sequential reference run is a harness
    // artifact and stays out of the session totals).
    if (parallel.obs == nullptr) {
        parallel.obs = obs::Session::active();
    }

    report::Instance row;
    row.bench = bench;
    row.instance = instance;
    try {
        const GameResult seq = play_game(spec, tables, g, id, sequential);
        const GameResult par = play_game(spec, tables, g, id, parallel);
        const bool agree = seq.accepted == par.accepted &&
                           seq.machine_runs == par.machine_runs &&
                           seq.faulted_runs == par.faulted_runs &&
                           seq.witness == par.witness;
        row.outcome = agree ? "ok" : "engine_mismatch";
        row.wall_ms = par.stats.wall_ms;
        row.fault_count = par.faulted_runs;
        const double speedup = par.stats.wall_ms > 0
                                   ? seq.stats.wall_ms / par.stats.wall_ms
                                   : 0.0;
        // The row's metrics object is a registry snapshot rather than a
        // hand-copied field list: GameStats supplies the engine metrics under
        // the names the committed baselines use, and the harness-level gauges
        // (speedup, the two wall clocks, faults) layer on top.
        obs::MetricsRegistry registry;
        registry.absorb("", par.stats.to_metrics());
        registry.set("speedup", speedup);
        registry.set("seq_wall_ms", seq.stats.wall_ms);
        registry.set("par_wall_ms", par.stats.wall_ms);
        registry.set("faulted_runs", static_cast<double>(par.faulted_runs));
        row.metrics = registry.snapshot();
    } catch (const std::exception& e) {
        row.outcome = "error";
        row.detail = e.what();
    }
    report::Recorder::global().record(std::move(row));
}

/// Solves one certificate game twice at the same thread count — the
/// interpreted engine vs the compiled decision-table backend (packed 64-wide
/// evaluation plus orbit sharing) — checks the verdicts and deterministic
/// counters are bit-identical, and records an instance row with the
/// compiled-over-interpreted speedup.  A warm-up solve pays the one-off
/// per-batch compilation before timing, so the row measures steady-state
/// serving; the compile cost is reported as its own metric.
inline void record_compiled_speedup(const std::string& bench,
                                    const std::string& instance,
                                    const GameSpec& spec, const LabeledGraph& g,
                                    const IdentifierAssignment& id,
                                    GameOptions options = {}) {
    const GameTables tables(spec, g, id);

    GameOptions interpreted = options;
    interpreted.threads = std::max(4u, ThreadPool::default_participants());
    interpreted.memoize_views = true;
    interpreted.backend = GameBackend::Interpreted;

    GameOptions compiled = interpreted;
    compiled.memoize_views = false; // the tables replace the view cache
    compiled.backend = GameBackend::Compiled;
    if (compiled.obs == nullptr) {
        compiled.obs = obs::Session::active();
    }

    report::Instance row;
    row.bench = bench;
    row.instance = instance;
    try {
        // The warm-up solve compiles the tables onto `tables` (exactly what a
        // service batch pays once for its first same-digest request).
        const GameResult warm = play_game(spec, tables, g, id, compiled);
        const double compile_ms = warm.stats.compile_ms;
        const GameResult inter = play_game(spec, tables, g, id, interpreted);
        const GameResult comp = play_game(spec, tables, g, id, compiled);
        const bool agree = inter.accepted == comp.accepted &&
                           inter.machine_runs == comp.machine_runs &&
                           inter.faulted_runs == comp.faulted_runs &&
                           inter.witness == comp.witness;
        row.outcome = agree ? "ok" : "backend_mismatch";
        row.wall_ms = comp.stats.wall_ms;
        row.fault_count = comp.faulted_runs;
        const double speedup = comp.stats.wall_ms > 0
                                   ? inter.stats.wall_ms / comp.stats.wall_ms
                                   : 0.0;
        obs::MetricsRegistry registry;
        registry.absorb("", comp.stats.to_metrics());
        registry.set("speedup", speedup);
        registry.set("interpreted_wall_ms", inter.stats.wall_ms);
        registry.set("compiled_wall_ms", comp.stats.wall_ms);
        registry.set("compile_ms", compile_ms);
        row.metrics = registry.snapshot();
    } catch (const std::exception& e) {
        row.outcome = "error";
        row.detail = e.what();
    }
    report::Recorder::global().record(std::move(row));
}

} // namespace lph
