// Experiment E5 (Theorems 19 and 20, Figure 3/10): the full distributed
// Cook-Levin pipeline.  Each stage is timed separately, per-stage blow-up is
// recorded, and equisatisfiability is verified across the whole chain with
// the DPLL substrate.

#include "graph/generators.hpp"
#include "logic/examples.hpp"
#include "machines/verifiers.hpp"
#include "reductions/cook_levin.hpp"
#include "reductions/three_coloring.hpp"
#include "sat/coloring_sat.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

void BM_Stage1_SentenceToSatGraph(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(9);
    const LabeledGraph g = random_connected_graph(n, n / 3, rng, "");
    const auto id = make_global_ids(g);
    const CookLevinReduction reduction(paper_formulas::k_colorable(2));
    std::size_t formula_bits = 0;
    for (auto _ : state) {
        const ReducedGraph reduced = apply_reduction(reduction, g, id);
        formula_bits = 0;
        for (NodeId u = 0; u < reduced.graph.num_nodes(); ++u) {
            formula_bits += reduced.graph.label(u).size();
        }
        sink(formula_bits);
    }
    state.counters["in_nodes"] = static_cast<double>(n);
    state.counters["label_bits"] = static_cast<double>(formula_bits);
    report::guarded("BM_Stage1_SentenceToSatGraph", "n=" + std::to_string(n),
                    [&] { return apply_reduction(reduction, g, id).graph.num_nodes(); });
}
BENCHMARK(BM_Stage1_SentenceToSatGraph)->Arg(2)->Arg(4)->Arg(8);

void BM_Stage2_Tseytin(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(10);
    const LabeledGraph g = random_connected_graph(n, n / 3, rng, "");
    const auto id = make_global_ids(g);
    const ReducedGraph stage1 =
        apply_reduction(CookLevinReduction(paper_formulas::k_colorable(2)), g, id);
    const SatGraphTo3Sat reduction;
    const auto id1 = make_global_ids(stage1.graph);
    for (auto _ : state) {
        const ReducedGraph reduced = apply_reduction(reduction, stage1.graph, id1);
        benchmark::DoNotOptimize(reduced.graph.num_nodes());
    }
    report::guarded("BM_Stage2_Tseytin", "n=" + std::to_string(n), [&] {
        return apply_reduction(reduction, stage1.graph, id1).graph.num_nodes();
    });
}
BENCHMARK(BM_Stage2_Tseytin)->Arg(2)->Arg(4)->Arg(8);

void BM_Stage3_ColoringGadgets(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(11);
    const LabeledGraph g = random_connected_graph(n, 0, rng, "");
    const auto id = make_global_ids(g);
    const ReducedGraph stage1 =
        apply_reduction(CookLevinReduction(paper_formulas::k_colorable(2)), g, id);
    const ReducedGraph stage2 = apply_reduction(
        SatGraphTo3Sat{}, stage1.graph, make_global_ids(stage1.graph));
    const auto id2 = make_global_ids(stage2.graph);
    std::size_t gadget_nodes = 0;
    for (auto _ : state) {
        const ReducedGraph reduced =
            apply_reduction(ThreeSatTo3Colorable{}, stage2.graph, id2);
        gadget_nodes = reduced.graph.num_nodes();
        sink(gadget_nodes);
    }
    state.counters["gadget_nodes"] = static_cast<double>(gadget_nodes);
    report::guarded("BM_Stage3_ColoringGadgets", "n=" + std::to_string(n), [&] {
        return apply_reduction(ThreeSatTo3Colorable{}, stage2.graph, id2)
            .graph.num_nodes();
    });
}
BENCHMARK(BM_Stage3_ColoringGadgets)->Arg(2)->Arg(3);

void BM_FullPipelineFaithfulness(benchmark::State& state) {
    // End-to-end: the pipeline preserves the answer; DPLL solves both the
    // intermediate SAT-GRAPHs and the final coloring instance.
    std::size_t correct = 0;
    std::size_t checked = 0;
    for (auto _ : state) {
        correct = 0;
        checked = 0;
        for (const bool yes : {true, false}) {
            const LabeledGraph g =
                yes ? path_graph(2, "") : complete_graph(3, "");
            const auto id = make_global_ids(g);
            const ReducedGraph s1 = apply_reduction(
                CookLevinReduction(paper_formulas::k_colorable(2)), g, id);
            const ReducedGraph s2 = apply_reduction(SatGraphTo3Sat{}, s1.graph,
                                                    make_global_ids(s1.graph));
            const ReducedGraph s3 = apply_reduction(
                ThreeSatTo3Colorable{}, s2.graph, make_global_ids(s2.graph));
            const bool sat1 = is_sat_graph(BooleanGraph::decode(s1.graph));
            const BooleanGraph bg3 = BooleanGraph::decode(s2.graph);
            const auto vals = find_graph_valuation(bg3);
            bool col3 = false;
            if (vals.has_value()) {
                const auto coloring = construct_gadget_coloring(s3, bg3, *vals);
                col3 = coloring.has_value();
            }
            ++checked;
            correct += (sat1 == yes) && (vals.has_value() == yes) && (col3 == yes);
        }
        sink(correct);
    }
    state.counters["instances"] = static_cast<double>(checked);
    state.counters["faithful"] = static_cast<double>(correct);
    report::note("BM_FullPipelineFaithfulness", "faithful", correct == checked,
                 std::to_string(correct) + "/" + std::to_string(checked));
}
BENCHMARK(BM_FullPipelineFaithfulness);

void BM_EngineSpeedup_CookLevinSource(benchmark::State& state) {
    // The pipeline's source sentence is k_colorable(2); this times the game
    // engine deciding that property directly: the Sigma_1 coloring game on an
    // odd cycle (a no-instance, so the engine exhausts the full certificate
    // space).  Parallel+memoized engine vs the sequential reference.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const FixedOptionsDomain colors({"0", "1"});
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&colors};
    spec.starts_existential = true;
    for (auto _ : state) {
        sink(play_game(spec, g, id).accepted);
    }
    record_engine_speedup("BM_EngineSpeedup_CookLevinSource",
                          "odd_cycle_n=" + std::to_string(n), spec, g, id);
}
BENCHMARK(BM_EngineSpeedup_CookLevinSource)->Arg(15)->Unit(benchmark::kMillisecond);

void BM_CompiledSpeedup_CookLevinSource(benchmark::State& state) {
    // Same exhaustive no-instance as the engine-speedup row, but comparing
    // evaluation backends at equal thread count: interpreted leaves vs the
    // compiled decision tables' packed 64-wide scan.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const FixedOptionsDomain colors({"0", "1"});
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&colors};
    spec.starts_existential = true;
    GameOptions compiled;
    compiled.backend = GameBackend::Compiled;
    for (auto _ : state) {
        sink(play_game(spec, g, id, compiled).accepted);
    }
    record_compiled_speedup("BM_CompiledSpeedup_CookLevinSource",
                            "odd_cycle_n=" + std::to_string(n), spec, g, id);
}
BENCHMARK(BM_CompiledSpeedup_CookLevinSource)
    ->Arg(15)
    ->Unit(benchmark::kMillisecond);

} // namespace
