// Experiment E12 (Section 5.2, Examples 3-4): the cost of quantifier
// alternation.  The same engine evaluates a Sigma_1 sentence (3-COLORABLE),
// and the Sigma_3 PointsTo game of Example 4 (NOT-ALL-SELECTED); leaf counts
// and wall time grow steeply with the alternation depth — alternation is the
// resource the hierarchy grades.

#include "graph/generators.hpp"
#include "hierarchy/fagin.hpp"
#include "logic/examples.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

void BM_Sigma1_ThreeColorable(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "");
    FaginOptions options;
    options.run_machine_side = false;
    bool value = false;
    for (auto _ : state) {
        value = eval_sentence_on_graph(paper_formulas::three_colorable(), g,
                                       options);
        sink(value);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["value"] = value ? 1.0 : 0.0;
    report::note("BM_Sigma1_ThreeColorable", "value_n=" + std::to_string(n),
                 value);
}
BENCHMARK(BM_Sigma1_ThreeColorable)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_Sigma3_ExistsUnselected(benchmark::State& state) {
    // Example 4: EXISTS P FORALL X EXISTS Y — three alternating blocks with a
    // binary P; the search space explodes even on 2-3 nodes.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    LabeledGraph g = path_graph(n, "1");
    g.set_label(0, "0");
    FaginOptions options;
    options.locality_radius = 2;
    options.max_tuples_per_variable = 16;
    options.run_machine_side = false;
    bool value = false;
    for (auto _ : state) {
        value = eval_sentence_on_graph(paper_formulas::exists_unselected_node(), g,
                                       options);
        sink(value);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["value"] = value ? 1.0 : 0.0; // always a yes-instance
    report::note("BM_Sigma3_ExistsUnselected", "yes_n=" + std::to_string(n),
                 value);
}
BENCHMARK(BM_Sigma3_ExistsUnselected)->Arg(2)->Arg(3);

void BM_Sigma3_AllSelectedRefuted(benchmark::State& state) {
    // The complementary no-instance: Eve has no winning strategy, so the
    // whole EXISTS P space must be exhausted — the worst case of alternation.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = path_graph(n, "1");
    FaginOptions options;
    options.locality_radius = 2;
    options.max_tuples_per_variable = 16;
    options.run_machine_side = false;
    bool value = true;
    for (auto _ : state) {
        value = eval_sentence_on_graph(paper_formulas::exists_unselected_node(), g,
                                       options);
        sink(value);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["value"] = value ? 1.0 : 0.0; // must be 0
    report::note("BM_Sigma3_AllSelectedRefuted", "no_n=" + std::to_string(n),
                 !value);
}
BENCHMARK(BM_Sigma3_AllSelectedRefuted)->Arg(2);

void BM_AlternationDepthSweep(benchmark::State& state) {
    // Same property (2-COLORABLE on a 4-cycle) padded with vacuous universal
    // blocks: each extra alternation multiplies the game tree.
    const int extra_blocks = static_cast<int>(state.range(0));
    Formula sentence = paper_formulas::two_colorable();
    // Prepend FORALL D_i blocks (vacuous: D_i is never used by the matrix).
    for (int i = 0; i < extra_blocks; ++i) {
        sentence = fl::forall_so("D" + std::to_string(i), 1, sentence);
    }
    const LabeledGraph g = cycle_graph(4, "");
    FaginOptions options;
    options.run_machine_side = false;
    bool value = false;
    for (auto _ : state) {
        value = eval_sentence_on_graph(sentence, g, options);
        sink(value);
    }
    state.counters["extra_blocks"] = static_cast<double>(extra_blocks);
    state.counters["value"] = value ? 1.0 : 0.0;
    report::note("BM_AlternationDepthSweep",
                 "blocks=" + std::to_string(extra_blocks), value);
}
BENCHMARK(BM_AlternationDepthSweep)->Arg(0)->Arg(1)->Arg(2);

} // namespace
