// Experiment E6 (Theorems 11 and 12): empirical Fagin agreement.  On each
// instance the second-order quantifier game is played twice — once
// evaluating the LFO matrix directly and once running the generic
// FormulaArbiter machine on sliced relation certificates — and the two game
// values must coincide.  Counters record both values and the number of game
// leaves explored by each side.

#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "hierarchy/fagin.hpp"
#include "logic/examples.hpp"
#include "machines/verifiers.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

void BM_TwoColorableAgreement(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "");
    const auto id = make_global_ids(g);
    FaginOptions options;
    options.max_tuples_per_variable = 20;
    FaginReport report;
    for (auto _ : state) {
        report = check_fagin_agreement(paper_formulas::two_colorable(), g, id,
                                       options);
        sink(report.agree);
    }
    state.counters["agree"] = report.agree ? 1.0 : 0.0;
    state.counters["value"] = report.formula_value ? 1.0 : 0.0;
    state.counters["truth"] = is_bipartite(g) ? 1.0 : 0.0;
    state.counters["formula_leaves"] = static_cast<double>(report.formula_leaves);
    state.counters["machine_leaves"] = static_cast<double>(report.machine_leaves);
    lph::report::note("BM_TwoColorableAgreement", "agree_n=" + std::to_string(n),
                      report.agree && report.formula_value == is_bipartite(g));
}
BENCHMARK(BM_TwoColorableAgreement)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_ThreeColorableAgreement(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = complete_graph(n, "");
    const auto id = make_global_ids(g);
    FaginOptions options;
    FaginReport report;
    for (auto _ : state) {
        report = check_fagin_agreement(paper_formulas::three_colorable(), g, id,
                                       options);
        sink(report.agree);
    }
    state.counters["agree"] = report.agree ? 1.0 : 0.0;
    state.counters["value"] = report.formula_value ? 1.0 : 0.0;
    state.counters["truth"] = is_k_colorable(g, 3) ? 1.0 : 0.0;
    lph::report::note("BM_ThreeColorableAgreement",
                      "agree_n=" + std::to_string(n),
                      report.agree && report.formula_value == is_k_colorable(g, 3));
}
BENCHMARK(BM_ThreeColorableAgreement)->Arg(3)->Arg(4);

void BM_FormulaSideScaling(benchmark::State& state) {
    // The logic side alone scales further; the cost grows with the
    // 2^|universe| enumeration, which is the honest price of brute-force
    // model checking.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(n);
    const LabeledGraph g = random_connected_graph(n, n / 2, rng, "");
    FaginOptions options;
    options.max_tuples_per_variable = 22;
    bool value = false;
    for (auto _ : state) {
        value = eval_sentence_on_graph(paper_formulas::three_colorable(), g,
                                       options);
        sink(value);
    }
    state.counters["value"] = value ? 1.0 : 0.0;
    state.counters["truth"] = is_k_colorable(g, 3) ? 1.0 : 0.0;
    lph::report::note("BM_FormulaSideScaling", "truth_n=" + std::to_string(n),
                      value == is_k_colorable(g, 3));
}
BENCHMARK(BM_FormulaSideScaling)->Arg(4)->Arg(6)->Arg(8);

void BM_EngineSpeedup_TwoColorableGame(benchmark::State& state) {
    // The machine side of the two_colorable agreement, scaled past what the
    // agreement bench can afford: the Sigma_1 coloring game on an odd cycle,
    // parallel+memoized engine vs the sequential reference.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const FixedOptionsDomain colors({"0", "1"});
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&colors};
    spec.starts_existential = true;
    for (auto _ : state) {
        sink(play_game(spec, g, id).accepted);
    }
    record_engine_speedup("BM_EngineSpeedup_TwoColorableGame",
                          "odd_cycle_n=" + std::to_string(n), spec, g, id);
}
BENCHMARK(BM_EngineSpeedup_TwoColorableGame)->Arg(13)->Unit(benchmark::kMillisecond);

void BM_CompiledSpeedup_TwoColorableGame(benchmark::State& state) {
    // Backend-vs-backend at equal thread count on the same exhaustive
    // no-instance: interpreted leaf evaluation vs compiled decision tables
    // scanned 64 certificates per word.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const FixedOptionsDomain colors({"0", "1"});
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&colors};
    spec.starts_existential = true;
    GameOptions compiled;
    compiled.backend = GameBackend::Compiled;
    for (auto _ : state) {
        sink(play_game(spec, g, id, compiled).accepted);
    }
    record_compiled_speedup("BM_CompiledSpeedup_TwoColorableGame",
                            "odd_cycle_n=" + std::to_string(n), spec, g, id);
}
BENCHMARK(BM_CompiledSpeedup_TwoColorableGame)
    ->Arg(13)
    ->Unit(benchmark::kMillisecond);

} // namespace
