// Experiment E4 (Proposition 17, Figure 9): the distributed reduction
// NOT-ALL-SELECTED -> HAMILTONIAN with the two-deck construction.  Records
// the 2*(2d+3)-per-node blow-up and verifies the equivalence on small
// instances (the target check is a Hamiltonian-cycle search).

#include "graph/generators.hpp"
#include "graphalg/hamiltonian.hpp"
#include "reductions/classic_reductions.hpp"
#include "reductions/verify.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

LabeledGraph instance(std::size_t n, bool has_unselected, unsigned seed) {
    Rng rng(seed);
    LabeledGraph g = random_connected_graph(n, n / 3, rng, "1");
    if (has_unselected) {
        g.set_label(rng.index(n), "0");
    }
    return g;
}

void BM_ReduceTwoDecks(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = instance(n, true, 5);
    const auto id = make_global_ids(g);
    const NotAllSelectedToHamiltonian reduction;
    std::size_t out_nodes = 0;
    for (auto _ : state) {
        const ReducedGraph reduced = apply_reduction(reduction, g, id);
        out_nodes = reduced.graph.num_nodes();
        sink(out_nodes);
    }
    state.counters["in_nodes"] = static_cast<double>(n);
    state.counters["out_nodes"] = static_cast<double>(out_nodes);
    report::guarded("BM_ReduceTwoDecks", "n=" + std::to_string(n), [&] {
        return apply_reduction(reduction, g, id).graph.num_nodes();
    });
}
BENCHMARK(BM_ReduceTwoDecks)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_EquivalenceSweep(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::size_t correct = 0;
    std::size_t checked = 0;
    for (auto _ : state) {
        correct = 0;
        checked = 0;
        for (unsigned seed = 0; seed < 4; ++seed) {
            for (bool unselected : {true, false}) {
                const LabeledGraph g = instance(n, unselected, seed + 30);
                const auto result = check_reduction(
                    NotAllSelectedToHamiltonian{}, g, make_global_ids(g),
                    [](const LabeledGraph& h) {
                        for (NodeId u = 0; u < h.num_nodes(); ++u) {
                            if (h.label(u) != "1") return true;
                        }
                        return false;
                    },
                    [](const LabeledGraph& h) { return is_hamiltonian(h); });
                ++checked;
                correct += result.equivalence_holds && result.cluster_map_ok &&
                           result.output_connected;
            }
        }
        sink(correct);
    }
    state.counters["instances"] = static_cast<double>(checked);
    state.counters["equivalences_hold"] = static_cast<double>(correct);
    report::note("BM_EquivalenceSweep", "equivalences_n=" + std::to_string(n),
                 correct == checked,
                 std::to_string(correct) + "/" + std::to_string(checked));
}
BENCHMARK(BM_EquivalenceSweep)->Arg(2)->Arg(3);

void BM_DeckSwitchWitness(benchmark::State& state) {
    // On a yes-instance (one unselected node), the Hamiltonian cycle must use
    // both vertical edges of that node's cluster — find it.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    LabeledGraph g = path_graph(n, "1");
    g.set_label(0, "0");
    const ReducedGraph reduced =
        apply_reduction(NotAllSelectedToHamiltonian{}, g, make_global_ids(g));
    bool found = false;
    for (auto _ : state) {
        found = is_hamiltonian(reduced.graph);
        sink(found);
    }
    state.counters["hamiltonian"] = found ? 1.0 : 0.0;
    state.counters["out_nodes"] = static_cast<double>(reduced.graph.num_nodes());
    report::note("BM_DeckSwitchWitness", "witness_n=" + std::to_string(n),
                 found);
}
BENCHMARK(BM_DeckSwitchWitness)->Arg(2)->Arg(3)->Arg(4);

} // namespace
