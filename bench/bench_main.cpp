// Shared main for every bench_* binary: runs Google Benchmark as usual, then
// writes the machine-readable BENCH_<name>.json report from the instance
// outcomes the benchmarks recorded (see bench_report.hpp).  The report is
// written even when instances failed — partial results are the point.

#include "core/report.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

int main(int argc, char** argv) {
    const auto start = std::chrono::steady_clock::now();
    std::string name = argv[0];
    const auto slash = name.find_last_of('/');
    if (slash != std::string::npos) {
        name.erase(0, slash + 1);
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const double total_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    const std::string path = lph::report::write_report(name, total_ms);
    if (path.empty()) {
        std::fprintf(stderr, "warning: could not write BENCH_%s.json\n",
                     name.c_str());
    } else {
        std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    return 0;
}
