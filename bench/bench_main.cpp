// bench_main: dispatcher over the sibling bench_* binaries.
//
//   bench_main [--filter <substr>] [args forwarded to each bench...]
//
// Scans its own directory for executables named bench_*, keeps those whose
// name contains the --filter substring (all of them when no filter), and
// runs each in turn with the remaining arguments forwarded verbatim — so
//
//   build/bench/bench_main --filter fig3 --trace=fig3.json
//
// runs bench_fig3_cooklevin with --trace=fig3.json (the child owns the trace
// session and writes the file; with several matches, later children overwrite
// earlier output files, so pair --trace/--metrics with a narrowing filter).

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

std::string directory_of(const char* argv0) {
    std::string path = argv0;
    const auto slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

bool is_executable_file(const std::string& path) {
    struct stat st {};
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode) &&
           ::access(path.c_str(), X_OK) == 0;
}

int run_child(const std::string& path, const std::vector<char*>& forward) {
    std::vector<char*> child_argv;
    child_argv.push_back(const_cast<char*>(path.c_str()));
    child_argv.insert(child_argv.end(), forward.begin(), forward.end());
    child_argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        std::perror("bench_main: fork");
        return -1;
    }
    if (pid == 0) {
        ::execv(path.c_str(), child_argv.data());
        std::perror("bench_main: execv");
        _exit(127);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
        std::perror("bench_main: waitpid");
        return -1;
    }
    if (WIFEXITED(status)) {
        return WEXITSTATUS(status);
    }
    if (WIFSIGNALED(status)) {
        std::fprintf(stderr, "bench_main: %s killed by signal %d\n",
                     path.c_str(), WTERMSIG(status));
    }
    return -1;
}

} // namespace

int main(int argc, char** argv) {
    std::string filter;
    std::vector<char*> forward;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--filter" && i + 1 < argc) {
            filter = argv[++i];
        } else if (arg.rfind("--filter=", 0) == 0) {
            filter = arg.substr(9);
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr,
                         "usage: %s [--filter <substr>] [args forwarded to "
                         "each bench_* binary...]\n",
                         argv[0]);
            return 0;
        } else {
            forward.push_back(argv[i]);
        }
    }

    const std::string dir = directory_of(argv[0]);
    std::vector<std::string> benches;
    if (DIR* d = ::opendir(dir.c_str())) {
        while (const dirent* entry = ::readdir(d)) {
            const std::string name = entry->d_name;
            if (name.rfind("bench_", 0) != 0 || name == "bench_main") {
                continue;
            }
            if (!filter.empty() && name.find(filter) == std::string::npos) {
                continue;
            }
            if (is_executable_file(dir + "/" + name)) {
                benches.push_back(name);
            }
        }
        ::closedir(d);
    } else {
        std::fprintf(stderr, "bench_main: cannot open %s\n", dir.c_str());
        return 1;
    }
    std::sort(benches.begin(), benches.end());

    if (benches.empty()) {
        std::fprintf(stderr, "bench_main: no bench_* binary in %s matches '%s'\n",
                     dir.c_str(), filter.c_str());
        return 1;
    }

    std::vector<std::string> failed;
    for (const std::string& name : benches) {
        std::fprintf(stderr, "=== %s ===\n", name.c_str());
        const int code = run_child(dir + "/" + name, forward);
        if (code != 0) {
            std::fprintf(stderr, "bench_main: %s exited with %d\n", name.c_str(),
                         code);
            failed.push_back(name);
        }
    }
    if (failed.empty()) {
        std::fprintf(stderr, "bench_main: %zu run, 0 failed\n", benches.size());
        return 0;
    }
    std::string names;
    for (const std::string& name : failed) {
        names += (names.empty() ? "" : ", ") + name;
    }
    std::fprintf(stderr, "bench_main: %zu run, %zu failed: %s\n",
                 benches.size(), failed.size(), names.c_str());
    return 1;
}
