// Experiment E1 (Figure 1/11): the hierarchy diagram, witnessed.  Each
// benchmark runs the experiment that separates or relates two classes of the
// figure and reports the verdicts as counters:
//
//   LP < NLP                (Prop. 21: symmetry breaking on glued cycles)
//   coLP incomparable NLP   (Prop. 23: both failure horns on labeled cycles)
//   LP-complete EULERIAN    (Prop. 15: decision at scale)
//   NLP membership          (Thm. 11: certificate games solve 3-COLORABLE)
//   level-wise distinctness machinery (Sec. 9.2: the Matz scale on pictures)

#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "graphalg/eulerian.hpp"
#include "hierarchy/fagin.hpp"
#include "hierarchy/game.hpp"
#include "hierarchy/separations.hpp"
#include "logic/examples.hpp"
#include "machines/deciders.hpp"
#include "machines/verifiers.hpp"
#include "pictures/matz.hpp"
#include "pictures/tiling.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

void BM_Row_LP_vs_NLP(benchmark::State& state) {
    // 2-COLORABLE is in NLP (a certificate game decides it) but no LP
    // machine can decide it (transcript equality on glued cycles).
    const LocalBipartiteDecider lp_candidate(1);
    const ColoringVerifier nlp_verifier(2);
    SymmetryExperiment symmetry;
    bool nlp_even = false;
    bool nlp_odd = true;
    for (auto _ : state) {
        symmetry = run_prop21_experiment(lp_candidate, 9);
        class Domain : public CertificateDomain {
        public:
            explicit Domain(const ColoringVerifier& v) {
                for (int c = 0; c < v.k(); ++c) {
                    options_.push_back(v.encode_color(c));
                }
            }
            std::vector<BitString> options(const LabeledGraph&,
                                           const IdentifierAssignment&,
                                           NodeId) const override {
                return options_;
            }

        private:
            std::vector<BitString> options_;
        };
        const Domain domain(nlp_verifier);
        const LabeledGraph even = cycle_graph(6, "1");
        const LabeledGraph odd = cycle_graph(9, "1");
        nlp_even = find_accepting_certificate(nlp_verifier, domain, even,
                                              make_global_ids(even))
                       .has_value();
        nlp_odd = find_accepting_certificate(nlp_verifier, domain, odd,
                                             make_global_ids(odd))
                      .has_value();
        sink(nlp_even);
    }
    state.counters["lp_transcripts_blind"] = symmetry.transcripts_match ? 1.0 : 0.0;
    state.counters["nlp_decides_even"] = nlp_even ? 1.0 : 0.0;
    state.counters["nlp_rejects_odd"] = nlp_odd ? 0.0 : 1.0;
    report::note("BM_Row_LP_vs_NLP", "lp_transcripts_blind",
                 symmetry.transcripts_match);
    report::note("BM_Row_LP_vs_NLP", "nlp_separates_parity", nlp_even && !nlp_odd);
}
BENCHMARK(BM_Row_LP_vs_NLP);

void BM_Row_coLP_vs_NLP(benchmark::State& state) {
    // NOT-ALL-SELECTED is coLP-complete but outside NLP: the pointer-chain
    // verifier (complete) is fooled by the splice; the distance verifier
    // (sound) cannot certify long yes-instances.
    SpliceExperiment unsound;
    SpliceExperiment incomplete;
    for (auto _ : state) {
        unsound = run_prop23_splice(
            PointerChainVerifier{},
            [](const LabeledGraph& g, const IdentifierAssignment& id) {
                return pointer_certificates(g, id);
            },
            90, 9, 2);
        incomplete = run_prop23_splice(
            BoundedDistanceVerifier(2),
            [](const LabeledGraph& g, const IdentifierAssignment&) {
                return distance_certificates(g, 2);
            },
            24, 12, 1);
        sink(unsound.spliced_accepted);
    }
    state.counters["pointer_fooled"] = unsound.spliced_accepted ? 1.0 : 0.0;
    state.counters["distance_incomplete"] =
        incomplete.original_accepted ? 0.0 : 1.0;
    report::note("BM_Row_coLP_vs_NLP", "pointer_fooled", unsound.spliced_accepted);
    report::note("BM_Row_coLP_vs_NLP", "distance_incomplete",
                 !incomplete.original_accepted);
}
BENCHMARK(BM_Row_coLP_vs_NLP);

void BM_Row_LPComplete_Eulerian(benchmark::State& state) {
    // EULERIAN is LP-complete (Prop. 15): decidable by a radius-1 machine at
    // scale.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(n);
    const LabeledGraph g = random_connected_graph(n, n, rng, "1");
    const auto id = make_global_ids(g);
    const EulerianDecider decider;
    bool agree = false;
    for (auto _ : state) {
        agree = run_local(decider, g, id).accepted == is_eulerian(g);
        sink(agree);
    }
    state.counters["machine_matches_oracle"] = agree ? 1.0 : 0.0;
    const auto guarded_run = report::guarded(
        "BM_Row_LPComplete_Eulerian", "n=" + std::to_string(n),
        [&] { return run_local(decider, g, id); });
    report::note("BM_Row_LPComplete_Eulerian",
                 "oracle_agreement_n=" + std::to_string(n),
                 guarded_run.has_value() &&
                     guarded_run->accepted == is_eulerian(g));
}
BENCHMARK(BM_Row_LPComplete_Eulerian)->Arg(32)->Arg(128);

void BM_Row_NLPComplete_ThreeColorable(benchmark::State& state) {
    // 3-COLORABLE is NLP-complete (Thm. 20): the Sigma_1 game decides it and
    // the formula side agrees (Thm. 11).
    Rng rng(5);
    const LabeledGraph g = random_connected_graph(5, 3, rng, "");
    FaginOptions options;
    options.run_machine_side = false;
    bool agree = false;
    for (auto _ : state) {
        agree = eval_sentence_on_graph(paper_formulas::three_colorable(), g,
                                       options) == is_k_colorable(g, 3);
        sink(agree);
    }
    state.counters["formula_matches_oracle"] = agree ? 1.0 : 0.0;
    report::note("BM_Row_NLPComplete_ThreeColorable", "formula_matches_oracle",
                 agree);
}
BENCHMARK(BM_Row_NLPComplete_ThreeColorable);

void BM_Row_InfinitenessMachinery(benchmark::State& state) {
    // Section 9.2: the level-1 separating language realized by a tiling
    // system (existential monadic SO on pictures); higher levels scale as
    // iterated exponentials.
    const TilingSystem counter = binary_counter_tiling_system();
    bool level1_ok = false;
    for (auto _ : state) {
        level1_ok = counter.recognizes(blank_picture(3, 8)) &&
                    !counter.recognizes(blank_picture(3, 7)) &&
                    !counter.recognizes(blank_picture(3, 16));
        sink(level1_ok);
    }
    state.counters["level1_language_realized"] = level1_ok ? 1.0 : 0.0;
    state.counters["level2_width_h2"] = static_cast<double>(iterated_exp(2, 2));
    state.counters["level3_width_h1"] = static_cast<double>(iterated_exp(3, 1));
    report::note("BM_Row_InfinitenessMachinery", "level1_language_realized",
                 level1_ok);
}
BENCHMARK(BM_Row_InfinitenessMachinery);

} // namespace
