// Experiment E10 (Section 9.3): words and automata.  The
// Büchi–Elgot–Trakhtenbrot compiler turns MSO sentences into DFAs (timed per
// sentence), and the Myhill–Nerode class counts separate regular properties
// (bounded classes) from MAJORITY-style global properties (growing classes)
// — the mechanism behind the paper's "outside the hierarchy" results.

#include "automata/mso_words.hpp"
#include "logic/formula.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;
using namespace fl;

Formula first_position(const std::string& x) {
    return negate(exists("y_" + x, binary(1, "y_" + x, x)));
}

void BM_CompileSomeOne(benchmark::State& state) {
    const Formula sentence = exists("x", unary(1, "x"));
    std::size_t states = 0;
    for (auto _ : state) {
        const Dfa dfa = compile_mso_to_dfa(sentence);
        states = dfa.num_states();
        sink(states);
    }
    state.counters["dfa_states"] = static_cast<double>(states);
    report::note("BM_CompileSomeOne", "compiles", states > 0,
                 std::to_string(states) + " states");
}
BENCHMARK(BM_CompileSomeOne);

void BM_CompileConsecutiveOnes(benchmark::State& state) {
    const Formula sentence =
        exists("x", exists("y", conj(binary(1, "x", "y"),
                                     conj(unary(1, "x"), unary(1, "y")))));
    std::size_t states = 0;
    for (auto _ : state) {
        const Dfa dfa = compile_mso_to_dfa(sentence);
        states = dfa.num_states();
        sink(states);
    }
    state.counters["dfa_states"] = static_cast<double>(states);
    report::note("BM_CompileConsecutiveOnes", "compiles", states > 0,
                 std::to_string(states) + " states");
}
BENCHMARK(BM_CompileConsecutiveOnes);

void BM_CompileParityViaSets(benchmark::State& state) {
    // The even-parity sentence with one monadic set: the compiler's
    // projection + determinization pipeline at work.
    const Formula base = forall(
        "p", implies(first_position("p"), iff(apply("X", {"p"}), unary(1, "p"))));
    const Formula step = forall(
        "q", forall("r", implies(binary(1, "q", "r"),
                                 iff(apply("X", {"r"}),
                                     iff(apply("X", {"q"}),
                                         negate(unary(1, "r")))))));
    const Formula end = forall(
        "s", implies(negate(exists("t", binary(1, "s", "t"))),
                     negate(apply("X", {"s"}))));
    const Formula sentence = exists_so("X", 1, conj(base, conj(step, end)));
    std::size_t states = 0;
    for (auto _ : state) {
        const Dfa dfa = compile_mso_to_dfa(sentence);
        states = dfa.num_states();
        sink(states);
    }
    state.counters["dfa_states"] = static_cast<double>(states);
    report::note("BM_CompileParityViaSets", "compiles", states > 0,
                 std::to_string(states) + " states");
}
BENCHMARK(BM_CompileParityViaSets);

bool majority(const BitString& w) {
    std::size_t ones = 0;
    for (char c : w) {
        ones += c == '1';
    }
    return 2 * ones >= w.size();
}

bool parity_lang(const BitString& w) {
    std::size_t ones = 0;
    for (char c : w) {
        ones += c == '1';
    }
    return ones % 2 == 0;
}

void BM_NerodeParity(benchmark::State& state) {
    const std::size_t len = static_cast<std::size_t>(state.range(0));
    std::size_t classes = 0;
    for (auto _ : state) {
        classes = count_nerode_classes(parity_lang, len, len);
        sink(classes);
    }
    // Flat at 2 — regular.
    state.counters["classes"] = static_cast<double>(classes);
    report::note("BM_NerodeParity", "classes_len=" + std::to_string(len),
                 classes == 2, std::to_string(classes) + " classes");
}
BENCHMARK(BM_NerodeParity)->Arg(4)->Arg(6)->Arg(8);

void BM_NerodeMajority(benchmark::State& state) {
    const std::size_t len = static_cast<std::size_t>(state.range(0));
    std::size_t classes = 0;
    for (auto _ : state) {
        classes = count_nerode_classes(majority, len, len);
        sink(classes);
    }
    // Grows with the length — MAJORITY has no finite automaton, hence (by the
    // Section 9.3 argument) escapes bounded-certificate verification on
    // paths.
    state.counters["classes"] = static_cast<double>(classes);
    report::note("BM_NerodeMajority", "classes_len=" + std::to_string(len),
                 classes > 2, std::to_string(classes) + " classes");
}
BENCHMARK(BM_NerodeMajority)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

} // namespace
