// Experiment E3 (Proposition 15, Figure 7): the distributed reduction
// ALL-SELECTED -> EULERIAN, plus the LP-decider for EULERIAN itself.
// Eulerianness is cheap to decide (Euler's theorem), so the equivalence can
// be verified at much larger scale than the Hamiltonian analogue —
// exhibiting the LP-complete vs LP/coLP-hard contrast of Section 8.

#include "graph/generators.hpp"
#include "graphalg/eulerian.hpp"
#include "machines/deciders.hpp"
#include "reductions/classic_reductions.hpp"
#include "reductions/verify.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

LabeledGraph instance(std::size_t n, bool all_selected, unsigned seed) {
    Rng rng(seed);
    LabeledGraph g = random_connected_graph(n, n / 2, rng, "1");
    if (!all_selected) {
        g.set_label(rng.index(n), "0");
    }
    return g;
}

void BM_ReduceToEulerian(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = instance(n, true, 2);
    const auto id = make_global_ids(g);
    const AllSelectedToEulerian reduction;
    std::size_t out_nodes = 0;
    for (auto _ : state) {
        const ReducedGraph reduced = apply_reduction(reduction, g, id);
        out_nodes = reduced.graph.num_nodes();
        sink(out_nodes);
    }
    state.counters["in_nodes"] = static_cast<double>(n);
    state.counters["out_nodes"] = static_cast<double>(out_nodes);
    report::guarded("BM_ReduceToEulerian", "n=" + std::to_string(n), [&] {
        return apply_reduction(reduction, g, id).graph.num_nodes();
    });
}
BENCHMARK(BM_ReduceToEulerian)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_EquivalenceSweepLarge(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::size_t correct = 0;
    std::size_t checked = 0;
    for (auto _ : state) {
        correct = 0;
        checked = 0;
        for (unsigned seed = 0; seed < 8; ++seed) {
            for (bool all : {true, false}) {
                const LabeledGraph g = instance(n, all, seed);
                const auto result = check_reduction(
                    AllSelectedToEulerian{}, g, make_global_ids(g),
                    [](const LabeledGraph& h) {
                        for (NodeId u = 0; u < h.num_nodes(); ++u) {
                            if (h.label(u) != "1") return false;
                        }
                        return true;
                    },
                    [](const LabeledGraph& h) { return is_eulerian(h); });
                ++checked;
                correct += result.equivalence_holds && result.cluster_map_ok;
            }
        }
        sink(correct);
    }
    state.counters["instances"] = static_cast<double>(checked);
    state.counters["equivalences_hold"] = static_cast<double>(correct);
    report::note("BM_EquivalenceSweepLarge",
                 "equivalences_n=" + std::to_string(n), correct == checked,
                 std::to_string(correct) + "/" + std::to_string(checked));
}
BENCHMARK(BM_EquivalenceSweepLarge)->Arg(8)->Arg(32)->Arg(96);

void BM_EulerianDecider(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    const auto id = make_global_ids(g);
    const EulerianDecider decider;
    for (auto _ : state) {
        benchmark::DoNotOptimize(run_local(decider, g, id).accepted);
    }
    state.counters["nodes"] = static_cast<double>(n);
    report::guarded("BM_EulerianDecider", "n=" + std::to_string(n),
                    [&] { return run_local(decider, g, id); });
}
BENCHMARK(BM_EulerianDecider)->Arg(16)->Arg(64)->Arg(256);

void BM_HierholzerCrossCheck(benchmark::State& state) {
    // The centralized Hierholzer substrate agrees with Euler's theorem on
    // every instance — a continuous sanity check at benchmark scale.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::size_t agree = 0;
    for (auto _ : state) {
        agree = 0;
        for (unsigned seed = 0; seed < 10; ++seed) {
            Rng rng(seed + 77);
            const LabeledGraph g = random_connected_graph(n, n, rng);
            const auto cycle = find_eulerian_cycle(g);
            agree += cycle.has_value() == is_eulerian(g) &&
                     (!cycle.has_value() || verify_eulerian_cycle(g, *cycle));
        }
        sink(agree);
    }
    state.counters["agree_of_10"] = static_cast<double>(agree);
    report::note("BM_HierholzerCrossCheck", "agree_n=" + std::to_string(n),
                 agree == 10, std::to_string(agree) + "/10");
}
BENCHMARK(BM_HierholzerCrossCheck)->Arg(16)->Arg(64);

} // namespace
