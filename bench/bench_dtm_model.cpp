// Experiment E11 (Section 4, Figure 6): throughput of the two execution
// layers — the faithful tape-level distributed Turing machine and the
// metered local-algorithm layer — on the same ALL-SELECTED workload, plus
// the cost of neighborhood gathering as a function of the radius.
//
// Expected shape: both layers scale linearly in the number of nodes for this
// O(1)-round machine; gather cost grows with the radius as view sizes grow.

#include "dtm/local.hpp"
#include "dtm/turing.hpp"
#include "graph/generators.hpp"
#include "machines/deciders.hpp"
#include "machines/turing_examples.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

void BM_TuringAllSelected(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    const auto id = make_global_ids(g);
    const TuringMachine m = make_all_selected_turing();
    std::uint64_t steps = 0;
    for (auto _ : state) {
        const auto result = run_turing(m, g, id);
        steps = result.total_steps;
        benchmark::DoNotOptimize(result.accepted);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["tm_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_TuringAllSelected)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_LocalAllSelected(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    const auto id = make_global_ids(g);
    const AllSelectedDecider m;
    std::uint64_t steps = 0;
    for (auto _ : state) {
        const auto result = run_local(m, g, id);
        steps = result.total_steps;
        benchmark::DoNotOptimize(result.accepted);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["metered_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_LocalAllSelected)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_TuringLabelsAgree(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1011");
    const auto id = make_global_ids(g);
    const TuringMachine m = make_labels_agree_turing();
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const auto result = run_turing(m, g, id);
        bytes = result.total_message_bytes;
        benchmark::DoNotOptimize(result.accepted);
    }
    state.counters["message_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_TuringLabelsAgree)->Arg(8)->Arg(32)->Arg(128);

/// Gather cost vs radius (the r+2-round flooding of the view layer).
class NullGather : public NeighborhoodGatherMachine {
public:
    explicit NullGather(int radius) : NeighborhoodGatherMachine(radius) {}
    std::string decide(const NeighborhoodView&, StepMeter&) const override {
        return "1";
    }
};

void BM_GatherRadius(benchmark::State& state) {
    const int radius = static_cast<int>(state.range(0));
    const LabeledGraph g = cycle_graph(64, "1");
    const auto id = make_global_ids(g);
    const NullGather m(radius);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const auto result = run_local(m, g, id);
        bytes = result.total_message_bytes;
        benchmark::DoNotOptimize(result.rounds);
    }
    state.counters["radius"] = static_cast<double>(radius);
    state.counters["message_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_GatherRadius)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// The Lemma 10 content, measured: metered step time of one node per round is
/// bounded by a polynomial of its local input, independent of graph size.
void BM_StepTimeLocality(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    const auto id = make_global_ids(g);
    const EulerianDecider m;
    std::uint64_t max_round_steps = 0;
    for (auto _ : state) {
        const auto result = run_local(m, g, id);
        max_round_steps = 0;
        for (const auto& stats : result.node_stats) {
            max_round_steps = std::max(max_round_steps, stats.max_round_steps);
        }
        benchmark::DoNotOptimize(max_round_steps);
    }
    // This counter should be flat across graph sizes — the locality claim.
    state.counters["max_node_round_steps"] = static_cast<double>(max_round_steps);
}
BENCHMARK(BM_StepTimeLocality)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

} // namespace
