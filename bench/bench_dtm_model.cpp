// Experiment E11 (Section 4, Figure 6): throughput of the two execution
// layers — the faithful tape-level distributed Turing machine and the
// metered local-algorithm layer — on the same ALL-SELECTED workload, plus
// the cost of neighborhood gathering as a function of the radius.
//
// Expected shape: both layers scale linearly in the number of nodes for this
// O(1)-round machine; gather cost grows with the radius as view sizes grow.

#include "dtm/faults.hpp"
#include "dtm/local.hpp"
#include "dtm/turing.hpp"
#include "graph/generators.hpp"
#include "machines/deciders.hpp"
#include "machines/turing_examples.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

void BM_TuringAllSelected(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    const auto id = make_global_ids(g);
    const TuringMachine m = make_all_selected_turing();
    std::uint64_t steps = 0;
    for (auto _ : state) {
        const auto result = run_turing(m, g, id);
        steps = result.total_steps;
        sink(result.accepted);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["tm_steps"] = static_cast<double>(steps);
    report::guarded("BM_TuringAllSelected", "n=" + std::to_string(n),
                    [&] { return run_turing(m, g, id); });
}
BENCHMARK(BM_TuringAllSelected)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_LocalAllSelected(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    const auto id = make_global_ids(g);
    const AllSelectedDecider m;
    std::uint64_t steps = 0;
    for (auto _ : state) {
        const auto result = run_local(m, g, id);
        steps = result.total_steps;
        sink(result.accepted);
    }
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["metered_steps"] = static_cast<double>(steps);
    report::guarded("BM_LocalAllSelected", "n=" + std::to_string(n),
                    [&] { return run_local(m, g, id); });
}
BENCHMARK(BM_LocalAllSelected)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_TuringLabelsAgree(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1011");
    const auto id = make_global_ids(g);
    const TuringMachine m = make_labels_agree_turing();
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const auto result = run_turing(m, g, id);
        bytes = result.total_message_bytes;
        sink(result.accepted);
    }
    state.counters["message_bytes"] = static_cast<double>(bytes);
    report::guarded("BM_TuringLabelsAgree", "n=" + std::to_string(n),
                    [&] { return run_turing(m, g, id); });
}
BENCHMARK(BM_TuringLabelsAgree)->Arg(8)->Arg(32)->Arg(128);

/// Gather cost vs radius (the r+2-round flooding of the view layer).
class NullGather : public NeighborhoodGatherMachine {
public:
    explicit NullGather(int radius) : NeighborhoodGatherMachine(radius) {}
    std::string decide(const NeighborhoodView&, StepMeter&) const override {
        return "1";
    }
};

void BM_GatherRadius(benchmark::State& state) {
    const int radius = static_cast<int>(state.range(0));
    const LabeledGraph g = cycle_graph(64, "1");
    const auto id = make_global_ids(g);
    const NullGather m(radius);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const auto result = run_local(m, g, id);
        bytes = result.total_message_bytes;
        sink(result.rounds);
    }
    state.counters["radius"] = static_cast<double>(radius);
    state.counters["message_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_GatherRadius)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// The Lemma 10 content, measured: metered step time of one node per round is
/// bounded by a polynomial of its local input, independent of graph size.
void BM_StepTimeLocality(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const LabeledGraph g = cycle_graph(n, "1");
    const auto id = make_global_ids(g);
    const EulerianDecider m;
    std::uint64_t max_round_steps = 0;
    for (auto _ : state) {
        const auto result = run_local(m, g, id);
        max_round_steps = 0;
        for (const auto& stats : result.node_stats) {
            max_round_steps = std::max(max_round_steps, stats.max_round_steps);
        }
        sink(max_round_steps);
    }
    // This counter should be flat across graph sizes — the locality claim.
    state.counters["max_node_round_steps"] = static_cast<double>(max_round_steps);
    report::note("BM_StepTimeLocality",
                 "max_round_steps_n=" + std::to_string(n),
                 max_round_steps > 0,
                 std::to_string(max_round_steps) + " steps");
}
BENCHMARK(BM_StepTimeLocality)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

/// Degradation under adversarial faults: the same workloads complete and
/// report structured partial results when nodes crash, messages are mangled,
/// and resource caps bite.  Nothing here throws — every instance lands in
/// BENCH_bench_dtm_model.json with its error code.
void BM_FaultedRuns(benchmark::State& state) {
    const std::uint64_t seed = static_cast<std::uint64_t>(state.range(0));
    const LabeledGraph g = cycle_graph(64, "1");
    const auto id = make_global_ids(g);
    const AllSelectedDecider m;

    FaultPlan plan;
    plan.seed = seed;
    plan.crash_prob = 0.05;
    plan.drop_prob = 0.1;
    plan.corrupt_prob = 0.05;

    ExecutionOptions opts;
    opts.on_violation = FaultPolicy::Record;
    opts.faults = &plan;

    std::size_t faults_seen = 0;
    for (auto _ : state) {
        const auto result = run_local(m, g, id, opts);
        faults_seen = result.faults.size();
        sink(faults_seen);
    }
    state.counters["faults_recorded"] = static_cast<double>(faults_seen);

    report::guarded("BM_FaultedRuns", "crash_drop_seed=" + std::to_string(seed),
                    [&] { return run_local(m, g, id, opts); });

    // A run-level violation (total message byte cap) aborts with partial
    // results instead of throwing; the instance reports MessageOverflow.
    ExecutionOptions capped;
    capped.on_violation = FaultPolicy::Record;
    capped.max_total_message_bytes = 8;
    report::guarded("BM_FaultedRuns", "byte_cap_seed=" + std::to_string(seed),
                    [&] { return run_local(m, g, id, capped); });

    // The tape-level runner degrades the same way.
    const TuringMachine tm = make_all_selected_turing();
    report::guarded("BM_FaultedRuns",
                    "turing_crash_seed=" + std::to_string(seed),
                    [&] { return run_turing(tm, g, id, opts); });
}
BENCHMARK(BM_FaultedRuns)->Arg(1)->Arg(2)->Arg(3);

} // namespace
