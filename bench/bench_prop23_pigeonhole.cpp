// Experiment E8 (Proposition 23): the pigeonhole cut-and-splice.  For
// growing cycle lengths, Eve's accepted certificate assignment on the
// one-unselected cycle is transplanted onto an all-selected cycle that the
// bounded-certificate verifier still accepts — the unsoundness horn — while
// the exact-distance verifier exhibits the incompleteness horn.

#include "hierarchy/separations.hpp"

#include "bench_report.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace lph;

void BM_PointerSplice(benchmark::State& state) {
    const std::size_t length = static_cast<std::size_t>(state.range(0));
    const PointerChainVerifier verifier;
    SpliceExperiment result;
    for (auto _ : state) {
        result = run_prop23_splice(
            verifier,
            [](const LabeledGraph& g, const IdentifierAssignment& id) {
                return pointer_certificates(g, id);
            },
            length, /*id_period=*/9, /*window_radius=*/2);
        sink(result.spliced_accepted);
    }
    state.counters["yes_accepted"] = result.original_accepted ? 1.0 : 0.0;
    state.counters["pair_found"] = result.window_pair_found ? 1.0 : 0.0;
    state.counters["spliced_len"] = static_cast<double>(result.spliced_length);
    state.counters["spliced_all_selected"] =
        result.spliced_all_selected ? 1.0 : 0.0;
    state.counters["spliced_accepted_WRONGLY"] =
        result.spliced_accepted ? 1.0 : 0.0;
    report::note("BM_PointerSplice", "fooled_len=" + std::to_string(length),
                 result.original_accepted && result.spliced_accepted &&
                     result.spliced_all_selected);
}
BENCHMARK(BM_PointerSplice)->Arg(45)->Arg(90)->Arg(180)->Arg(360)->Arg(720);

void BM_DistanceIncompleteness(benchmark::State& state) {
    // For B-bit counters, Eve has a play iff the cycle radius fits in B
    // bits: report the acceptance frontier.
    const std::size_t length = static_cast<std::size_t>(state.range(0));
    const int bits = 3; // distances up to 7 -> works up to length 15
    SpliceExperiment result;
    for (auto _ : state) {
        result = run_prop23_splice(
            BoundedDistanceVerifier(bits),
            [](const LabeledGraph& g, const IdentifierAssignment&) {
                return distance_certificates(g, 3);
            },
            length, /*id_period=*/length, /*window_radius=*/1);
        sink(result.original_accepted);
    }
    state.counters["len"] = static_cast<double>(length);
    state.counters["yes_instance_accepted"] =
        result.original_accepted ? 1.0 : 0.0;
    report::note("BM_DistanceIncompleteness",
                 "frontier_len=" + std::to_string(length),
                 result.original_accepted == (length <= 15),
                 result.original_accepted ? "accepted" : "rejected");
}
BENCHMARK(BM_DistanceIncompleteness)->Arg(9)->Arg(12)->Arg(15)->Arg(18)->Arg(24);

/// The pigeonhole bound itself: how far apart the first identical window
/// pair lies as the id period grows (the paper's n > (r+1)(2^(m+2)-2)^(2r+1)
/// bound is astronomically generous; in practice pairs appear at one id
/// period).
void BM_WindowCollisionDistance(benchmark::State& state) {
    const std::size_t period = static_cast<std::size_t>(state.range(0));
    const std::size_t length = period * 6;
    const PointerChainVerifier verifier;
    SpliceExperiment result;
    for (auto _ : state) {
        result = run_prop23_splice(
            verifier,
            [](const LabeledGraph& g, const IdentifierAssignment& id) {
                return pointer_certificates(g, id);
            },
            length, period, /*window_radius=*/2);
        sink(result.window_pair_found);
    }
    state.counters["period"] = static_cast<double>(period);
    state.counters["spliced_len"] = static_cast<double>(result.spliced_length);
    state.counters["fooled"] = result.spliced_accepted ? 1.0 : 0.0;
    report::note("BM_WindowCollisionDistance",
                 "pair_period=" + std::to_string(period),
                 result.window_pair_found);
}
BENCHMARK(BM_WindowCollisionDistance)->Arg(9)->Arg(18)->Arg(36);

} // namespace
