#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace lph {
namespace {

TEST(Isomorphism, IdenticalGraphs) {
    const LabeledGraph g = cycle_graph(5, "1");
    EXPECT_TRUE(are_isomorphic(g, g));
}

TEST(Isomorphism, DifferentSizes) {
    EXPECT_FALSE(are_isomorphic(cycle_graph(5), cycle_graph(6)));
}

TEST(Isomorphism, LabelsMatter) {
    LabeledGraph a = path_graph(3, "1");
    LabeledGraph b = path_graph(3, "1");
    b.set_label(1, "0");
    EXPECT_FALSE(are_isomorphic(a, b));
    // But relabeling an end node keeps them isomorphic to a flipped version.
    LabeledGraph c = path_graph(3, "1");
    LabeledGraph d = path_graph(3, "1");
    c.set_label(0, "0");
    d.set_label(2, "0");
    EXPECT_TRUE(are_isomorphic(c, d));
}

TEST(Isomorphism, CycleVsPath) {
    EXPECT_FALSE(are_isomorphic(cycle_graph(4), path_graph(4)));
}

TEST(Isomorphism, NonIsomorphicSameDegreeSequence) {
    // Two 6-node cubic-ish counterexamples are overkill; use C6 vs 2x C3
    // (disconnected graphs are not constructible here), so compare C6 with
    // the prism requires 9 edges.  Instead: two trees with equal degree
    // sequences but different shape.
    LabeledGraph a; // star with a path: degrees 3,1,1,2,1
    for (int i = 0; i < 5; ++i) a.add_node();
    a.add_edge(0, 1);
    a.add_edge(0, 2);
    a.add_edge(0, 3);
    a.add_edge(3, 4);
    LabeledGraph b; // path with a leaf in the middle: degrees 1,3,2,1,1
    for (int i = 0; i < 5; ++i) b.add_node();
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    b.add_edge(1, 4);
    EXPECT_TRUE(are_isomorphic(a, b)); // these are actually the same tree
    // A genuinely different tree: the 5-path.
    EXPECT_FALSE(are_isomorphic(a, path_graph(5)));
}

class PermutationInvariance : public ::testing::TestWithParam<unsigned> {};

TEST_P(PermutationInvariance, PermutedGraphIsomorphic) {
    Rng rng(GetParam());
    const std::size_t n = 4 + GetParam() % 5;
    LabeledGraph g = random_connected_graph(n, GetParam() % 4, rng);
    randomize_labels(g, 2, rng);
    std::vector<NodeId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng.engine());
    const LabeledGraph h = permute_graph(g, perm);
    const auto mapping = find_isomorphism(g, h);
    ASSERT_TRUE(mapping.has_value());
    // The found mapping must preserve labels and edges.
    for (NodeId u = 0; u < n; ++u) {
        EXPECT_EQ(g.label(u), h.label((*mapping)[u]));
        for (NodeId v : g.neighbors(u)) {
            EXPECT_TRUE(h.has_edge((*mapping)[u], (*mapping)[v]));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationInvariance, ::testing::Range(0u, 10u));

TEST(PermuteGraph, ExplicitExample) {
    LabeledGraph g = path_graph(3, "1");
    g.set_label(0, "0");
    const LabeledGraph h = permute_graph(g, {2, 1, 0});
    EXPECT_EQ(h.label(2), "0");
    EXPECT_TRUE(h.has_edge(2, 1));
    EXPECT_TRUE(h.has_edge(1, 0));
    EXPECT_FALSE(h.has_edge(0, 2));
}

} // namespace
} // namespace lph
