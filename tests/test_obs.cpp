// Tests for the observability subsystem (src/obs): metrics registry
// semantics, ring-buffer wraparound, concurrent span emission (exercised
// under TSan via check.sh), Chrome-trace JSON well-formedness — the exported
// document is parsed here with a mini JSON parser and checked for the same
// invariants scripts/trace_lint.py enforces — and the disabled-tracing
// overhead guard.

#include "obs/chrome_trace.hpp"
#include "obs/log_histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace lph {
namespace {

// --------------------------------------------------------------------------
// Mini JSON parser: just enough for trace-event documents and metrics
// snapshots (objects, arrays, strings with escapes, numbers, bools, null).
// --------------------------------------------------------------------------

struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue* find(const std::string& key) const {
        for (const auto& [k, v] : object) {
            if (k == key) {
                return &v;
            }
        }
        return nullptr;
    }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    JsonValue parse() {
        JsonValue v = value();
        skip_ws();
        if (pos_ != s_.size()) {
            ADD_FAILURE() << "trailing bytes after JSON value at " << pos_;
        }
        return v;
    }

private:
    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                    s_[pos_] == '\r' || s_[pos_] == '\t')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= s_.size()) {
            throw std::runtime_error("unexpected end of JSON");
        }
        return s_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            throw std::runtime_error(std::string("expected '") + c + "' at " +
                                     std::to_string(pos_) + ", got '" + peek() +
                                     "'");
        }
        ++pos_;
    }

    JsonValue value() {
        skip_ws();
        switch (peek()) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
        case 'f':
            return boolean();
        case 'n':
            literal("null");
            return JsonValue{};
        default:
            return number();
        }
    }

    void literal(const char* word) {
        for (const char* p = word; *p != '\0'; ++p) {
            expect(*p);
        }
    }

    JsonValue boolean() {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (peek() == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
            v.boolean = false;
        }
        return v;
    }

    JsonValue number() {
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start) {
            throw std::runtime_error("bad number at " + std::to_string(start));
        }
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::stod(s_.substr(start, pos_ - start));
        return v;
    }

    JsonValue string() {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (peek() != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                const char esc = s_[pos_++];
                switch (esc) {
                case 'n':
                    c = '\n';
                    break;
                case 't':
                    c = '\t';
                    break;
                case 'r':
                    c = '\r';
                    break;
                case 'u':
                    // Good enough for the control characters we emit.
                    c = static_cast<char>(
                        std::stoi(s_.substr(pos_, 4), nullptr, 16));
                    pos_ += 4;
                    break;
                default:
                    c = esc;
                }
            }
            v.text.push_back(c);
        }
        expect('"');
        return v;
    }

    JsonValue array() {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
            } else {
                expect(']');
                return v;
            }
        }
    }

    JsonValue object() {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            const JsonValue key = string();
            skip_ws();
            expect(':');
            v.object.emplace_back(key.text, value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
            } else {
                expect('}');
                return v;
            }
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
    return JsonParser(text).parse();
}

/// Every test leaves the process-global tracer off and empty.
class ObsTest : public ::testing::Test {
protected:
    void TearDown() override {
        obs::Tracer::instance().disable();
        obs::Tracer::instance().reset();
    }
};

// --------------------------------------------------------------------------
// MetricsRegistry.
// --------------------------------------------------------------------------

double metric(const obs::MetricList& list, const std::string& name) {
    for (const auto& [metric_name, value] : list) {
        if (metric_name == name) {
            return value;
        }
    }
    ADD_FAILURE() << "metric '" << name << "' not in snapshot";
    return -1;
}

TEST(MetricsRegistry, CountersGaugesHistograms) {
    obs::MetricsRegistry registry;
    registry.add("c.runs");
    registry.add("c.runs", 4);
    registry.set("g.workers", 8);
    registry.set("g.workers", 5); // last write wins
    registry.observe("h.ms", 2.0);
    registry.observe("h.ms", 6.0);
    registry.observe("h.ms", 4.0);

    const obs::MetricList snap = registry.snapshot();
    EXPECT_DOUBLE_EQ(metric(snap, "c.runs"), 5.0);
    EXPECT_DOUBLE_EQ(metric(snap, "g.workers"), 5.0);
    EXPECT_DOUBLE_EQ(metric(snap, "h.ms.count"), 3.0);
    EXPECT_DOUBLE_EQ(metric(snap, "h.ms.sum"), 12.0);
    EXPECT_DOUBLE_EQ(metric(snap, "h.ms.min"), 2.0);
    EXPECT_DOUBLE_EQ(metric(snap, "h.ms.max"), 6.0);
    EXPECT_DOUBLE_EQ(metric(snap, "h.ms.avg"), 4.0);
    // Sorted by name.
    for (std::size_t i = 1; i < snap.size(); ++i) {
        EXPECT_LT(snap[i - 1].first, snap[i].first);
    }
}

TEST(MetricsRegistry, AbsorbAndAccumulatePrefix) {
    obs::MetricsRegistry registry;
    const obs::MetricList stats = {{"hits", 10.0}, {"misses", 2.0}};
    registry.absorb("cache.", stats);
    registry.absorb("cache.", stats); // gauges: overwrite, not add
    registry.accumulate("total.", stats);
    registry.accumulate("total.", stats); // counters: add

    const obs::MetricList snap = registry.snapshot();
    EXPECT_DOUBLE_EQ(metric(snap, "cache.hits"), 10.0);
    EXPECT_DOUBLE_EQ(metric(snap, "total.hits"), 20.0);
    EXPECT_DOUBLE_EQ(metric(snap, "total.misses"), 4.0);
}

TEST(MetricsRegistry, SnapshotJsonParses) {
    obs::MetricsRegistry registry;
    registry.add("game.solves", 3);
    registry.set("game.workers", 4);
    const JsonValue doc = parse_json(registry.snapshot_json());
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    ASSERT_NE(doc.find("game.solves"), nullptr);
    EXPECT_DOUBLE_EQ(doc.find("game.solves")->number, 3.0);
    EXPECT_DOUBLE_EQ(doc.find("game.workers")->number, 4.0);
}

// --------------------------------------------------------------------------
// LogHistogram: bucket geometry, merge algebra, percentile accuracy.
// --------------------------------------------------------------------------

std::uint64_t mix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

TEST(LogHistogram, BucketBoundariesAndMonotonicity) {
    // The first four buckets are exact.
    for (std::uint64_t v = 0; v < 4; ++v) {
        EXPECT_EQ(obs::LogHistogram::bucket_index(static_cast<double>(v)), v);
        EXPECT_DOUBLE_EQ(obs::LogHistogram::bucket_lower(v),
                         static_cast<double>(v));
    }
    // Every value lands in [bucket_lower, bucket_upper), and the index is
    // monotone in the value.
    std::uint64_t state = 42;
    std::vector<double> values = {0, 1, 3, 4, 5, 7, 8, 1023, 1024, 1025};
    for (int i = 0; i < 200; ++i) {
        values.push_back(static_cast<double>(mix64(state) >> (i % 50)));
    }
    std::sort(values.begin(), values.end());
    std::size_t previous = 0;
    for (const double v : values) {
        const std::size_t index = obs::LogHistogram::bucket_index(v);
        ASSERT_LT(index, obs::LogHistogram::kBucketCount);
        EXPECT_GE(index, previous) << "index not monotone at " << v;
        EXPECT_LE(obs::LogHistogram::bucket_lower(index), v);
        EXPECT_LT(v, obs::LogHistogram::bucket_upper(index));
        previous = index;
    }
    // Negative and NaN clamp to the zero bucket rather than crashing.
    EXPECT_EQ(obs::LogHistogram::bucket_index(-5.0), 0u);
}

TEST(LogHistogram, EmptyAndSingleValueEdges) {
    const obs::LogHistogram empty;
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(empty.avg(), 0.0);

    obs::LogHistogram one;
    one.record(37.0);
    EXPECT_EQ(one.count(), 1u);
    // Percentiles of a single sample are that sample: the bucket midpoint
    // clamps to [min, max] = [37, 37].
    EXPECT_DOUBLE_EQ(one.percentile(0.0), 37.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.5), 37.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.999), 37.0);
}

TEST(LogHistogram, MergeIsAssociativeAndCommutative) {
    std::uint64_t state = 7;
    const auto random_histogram = [&state](int samples) {
        obs::LogHistogram h;
        for (int i = 0; i < samples; ++i) {
            h.record(static_cast<double>(mix64(state) >> (mix64(state) % 52)));
        }
        return h;
    };
    // Bucket counts, count, min, and max merge bit-exactly in any order;
    // `sum` is a double accumulator, so reassociation may move its last ulp.
    const auto equal = [](const obs::LogHistogram& x,
                          const obs::LogHistogram& y) {
        if (x.count() != y.count() || x.min() != y.min() ||
            x.max() != y.max()) {
            return false;
        }
        if (std::abs(x.sum() - y.sum()) >
            1e-12 * std::max(std::abs(x.sum()), std::abs(y.sum()))) {
            return false;
        }
        for (std::size_t i = 0; i < obs::LogHistogram::kBucketCount; ++i) {
            if (x.bucket(i) != y.bucket(i)) {
                return false;
            }
        }
        return true;
    };

    for (int round = 0; round < 10; ++round) {
        const obs::LogHistogram a = random_histogram(50);
        const obs::LogHistogram b = random_histogram(80);
        const obs::LogHistogram c = random_histogram(30);

        obs::LogHistogram ab = a;
        ab.merge(b);
        obs::LogHistogram ab_c = ab;
        ab_c.merge(c);

        obs::LogHistogram bc = b;
        bc.merge(c);
        obs::LogHistogram a_bc = a;
        a_bc.merge(bc);

        obs::LogHistogram ba = b;
        ba.merge(a);

        EXPECT_TRUE(equal(ab_c, a_bc)) << "merge not associative";
        EXPECT_TRUE(equal(ab, ba)) << "merge not commutative";
    }
}

TEST(LogHistogram, MergeEqualsRecordingEverything) {
    std::uint64_t state = 13;
    obs::LogHistogram left, right, all;
    for (int i = 0; i < 300; ++i) {
        const double v =
            static_cast<double>(mix64(state) >> (mix64(state) % 40));
        (i % 2 == 0 ? left : right).record(v);
        all.record(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_DOUBLE_EQ(left.sum(), all.sum());
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
    for (std::size_t i = 0; i < obs::LogHistogram::kBucketCount; ++i) {
        EXPECT_EQ(left.bucket(i), all.bucket(i)) << "bucket " << i;
    }
}

TEST(LogHistogram, PercentilesTrackExactQuantiles) {
    std::uint64_t state = 99;
    obs::LogHistogram h;
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) {
        const double v = static_cast<double>(1 + mix64(state) % 1000000);
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (const double q : {0.50, 0.90, 0.99, 0.999}) {
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(values.size())));
        const double exact = values[std::min(rank, values.size()) - 1];
        const double approx = h.percentile(q);
        // Sub-bucketed base-2 buckets guarantee <= 25% relative error; the
        // reported value is a bucket midpoint, so allow that on both sides.
        EXPECT_NEAR(approx, exact, 0.25 * exact + 1.0)
            << "quantile " << q;
    }
}

TEST(LogHistogram, SnapshotExposesTailPercentiles) {
    obs::MetricsRegistry registry;
    for (int i = 1; i <= 100; ++i) {
        registry.observe("h.us", static_cast<double>(i));
    }
    const obs::MetricList snap = registry.snapshot();
    EXPECT_DOUBLE_EQ(metric(snap, "h.us.count"), 100.0);
    // p50 near 50, p99 near 99 — bucket midpoints, so generous bounds.
    EXPECT_NEAR(metric(snap, "h.us.p50"), 50.0, 15.0);
    EXPECT_NEAR(metric(snap, "h.us.p99"), 99.0, 25.0);
    EXPECT_NEAR(metric(snap, "h.us.p999"), 100.0, 25.0);
    EXPECT_GE(metric(snap, "h.us.p90"), metric(snap, "h.us.p50"));
    EXPECT_GE(metric(snap, "h.us.p99"), metric(snap, "h.us.p90"));
    EXPECT_GE(metric(snap, "h.us.p999"), metric(snap, "h.us.p99"));
}

TEST(LogHistogram, AppendJsonShape) {
    obs::LogHistogram h;
    h.record(5.0);
    h.record(500.0);
    std::string out;
    h.append_json(out);
    const JsonValue doc = parse_json(out);
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    EXPECT_DOUBLE_EQ(doc.find("count")->number, 2.0);
    EXPECT_DOUBLE_EQ(doc.find("sum")->number, 505.0);
    EXPECT_DOUBLE_EQ(doc.find("min")->number, 5.0);
    EXPECT_DOUBLE_EQ(doc.find("max")->number, 500.0);
    ASSERT_NE(doc.find("buckets"), nullptr);
    ASSERT_EQ(doc.find("buckets")->kind, JsonValue::Kind::Array);
    double bucket_total = 0;
    for (const JsonValue& entry : doc.find("buckets")->array) {
        ASSERT_EQ(entry.kind, JsonValue::Kind::Array);
        ASSERT_EQ(entry.array.size(), 2u);
        bucket_total += entry.array[1].number;
    }
    EXPECT_DOUBLE_EQ(bucket_total, 2.0);
}

// --------------------------------------------------------------------------
// Tracer ring buffers.
// --------------------------------------------------------------------------

TEST_F(ObsTest, RingBufferWraparound) {
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.reset();
    tracer.enable(16); // 16 is the minimum ring capacity

    // A fresh thread gets a fresh ring with the just-configured capacity.
    std::thread emitter([&] {
        for (std::uint64_t i = 0; i < 40; ++i) {
            tracer.record("test", "test.wrap", i * 10, 5, "i", i);
        }
    });
    emitter.join();

    bool found = false;
    for (const auto& track : tracer.snapshot()) {
        if (track.spans.empty() ||
            std::string(track.spans[0].name) != "test.wrap") {
            continue;
        }
        found = true;
        EXPECT_EQ(track.emitted, 40u);
        EXPECT_EQ(track.dropped, 24u);
        ASSERT_EQ(track.spans.size(), 16u);
        // Oldest surviving span first: records 24..39.
        for (std::size_t i = 0; i < track.spans.size(); ++i) {
            EXPECT_EQ(track.spans[i].arg, 24 + i);
            EXPECT_EQ(track.spans[i].start_us, (24 + i) * 10);
        }
    }
    EXPECT_TRUE(found) << "no ring captured the emitted spans";
}

TEST_F(ObsTest, ConcurrentEmissionWithLiveSnapshots) {
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.reset();
    tracer.enable(1 << 10);

    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 5000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                LPH_SPAN_NAMED(span, "test", "test.concurrent");
                span.arg("i", static_cast<std::uint64_t>(i));
            }
        });
    }
    // Snapshot while the writers are running: must be race-free (TSan) and
    // never return malformed tracks.
    for (int i = 0; i < 20; ++i) {
        for (const auto& track : tracer.snapshot()) {
            EXPECT_GE(track.emitted, track.dropped);
            EXPECT_LE(track.spans.size(), std::size_t{1} << 10);
        }
    }
    for (std::thread& t : threads) {
        t.join();
    }

    std::uint64_t emitted = 0;
    for (const auto& track : tracer.snapshot()) {
        for (const obs::SpanRecord& span : track.spans) {
            if (std::string(span.name) == "test.concurrent") {
                // Quiesced: every surviving record must be intact.
                EXPECT_STREQ(span.cat, "test");
                EXPECT_STREQ(span.arg_name, "i");
            }
        }
        emitted += track.emitted;
    }
    EXPECT_EQ(emitted, static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
}

// --------------------------------------------------------------------------
// Chrome trace export.
// --------------------------------------------------------------------------

/// Walks the traceEvents list enforcing the trace_lint.py invariants:
/// balanced B/E with matching names per (pid, tid), monotone timestamps.
void expect_well_formed(const JsonValue& doc) {
    const JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);

    std::map<std::pair<double, double>, std::vector<std::string>> stacks;
    std::map<std::pair<double, double>, double> last_ts;
    bool saw_thread_name = false;
    for (const JsonValue& ev : events->array) {
        ASSERT_EQ(ev.kind, JsonValue::Kind::Object);
        const JsonValue* ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->text == "M") {
            saw_thread_name =
                saw_thread_name || ev.find("name")->text == "thread_name";
            continue;
        }
        const std::pair<double, double> key = {ev.find("pid")->number,
                                               ev.find("tid")->number};
        const double ts = ev.find("ts")->number;
        const auto it = last_ts.find(key);
        if (it != last_ts.end()) {
            EXPECT_GE(ts, it->second) << "timestamps go backwards";
        }
        last_ts[key] = ts;
        if (ph->text == "B") {
            stacks[key].push_back(ev.find("name")->text);
        } else if (ph->text == "E") {
            ASSERT_FALSE(stacks[key].empty()) << "E with no open B";
            EXPECT_EQ(stacks[key].back(), ev.find("name")->text);
            stacks[key].pop_back();
        } else {
            EXPECT_EQ(ph->text, "i");
        }
    }
    for (const auto& [key, stack] : stacks) {
        EXPECT_TRUE(stack.empty()) << "unclosed B events on tid " << key.second;
    }
    EXPECT_TRUE(saw_thread_name);
}

TEST_F(ObsTest, ChromeTraceWellFormed) {
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.reset();
    tracer.enable(1 << 8);

    std::thread worker([&] {
        LPH_SPAN_NAMED(outer, "test", "test.outer");
        outer.arg("items", 3);
        for (int i = 0; i < 3; ++i) {
            LPH_SPAN("test", "test.inner");
            tracer.instant("test", "test.tick", "i",
                           static_cast<std::uint64_t>(i));
        }
    });
    worker.join();
    std::thread other([&] { LPH_SPAN("test", "test.other"); });
    other.join();
    tracer.disable();

    const std::string json = obs::chrome_trace_json();
    const JsonValue doc = parse_json(json);
    expect_well_formed(doc);

    // The nested spans actually made it out.
    std::map<std::string, int> begins;
    for (const JsonValue& ev : doc.find("traceEvents")->array) {
        if (ev.find("ph")->text == "B") {
            ++begins[ev.find("name")->text];
        }
    }
    EXPECT_EQ(begins["test.outer"], 1);
    EXPECT_EQ(begins["test.inner"], 3);
}

TEST_F(ObsTest, WriteChromeTraceRoundTrips) {
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.reset();
    tracer.enable(1 << 8);
    std::thread worker([] { LPH_SPAN("test", "test.file"); });
    worker.join();
    tracer.disable();

    const std::string path = "test_obs_trace_tmp.json";
    ASSERT_TRUE(obs::write_chrome_trace(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    expect_well_formed(parse_json(buffer.str()));
    std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Disabled-tracing overhead guard.
// --------------------------------------------------------------------------

TEST_F(ObsTest, DisabledTracingIsCheap) {
    obs::Tracer::instance().disable();
    constexpr int kIterations = 1'000'000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIterations; ++i) {
        LPH_SPAN("test", "test.disabled");
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    // One relaxed load + branch per iteration: single-digit milliseconds in
    // practice.  The bound is deliberately generous (loaded CI machines,
    // sanitizer builds) while still catching an accidental always-on path,
    // which costs two clock reads + a record per span — orders of magnitude
    // above the bound.
    EXPECT_LT(ms, 1000.0);

    const auto tracks = obs::Tracer::instance().snapshot();
    for (const auto& track : tracks) {
        for (const obs::SpanRecord& span : track.spans) {
            EXPECT_STRNE(span.name, "test.disabled");
        }
    }
}

// --------------------------------------------------------------------------
// Session.
// --------------------------------------------------------------------------

TEST_F(ObsTest, SessionActivationNestsAndRestores) {
    EXPECT_EQ(obs::Session::active(), nullptr);
    obs::Session outer;
    outer.activate();
    EXPECT_EQ(obs::Session::active(), &outer);
    {
        obs::Session inner;
        inner.activate();
        EXPECT_EQ(obs::Session::active(), &inner);
    }
    EXPECT_EQ(obs::Session::active(), &outer);
}

TEST_F(ObsTest, SessionTracingSwitchAndMetricsFile) {
    obs::Session::Options options;
    options.tracing = true;
    {
        obs::Session session(options);
        EXPECT_TRUE(obs::Tracer::instance().enabled());
        session.metrics().add("game.solves", 2);
        const std::string path = "test_obs_metrics_tmp.json";
        ASSERT_TRUE(session.write_metrics_json(path));
        std::ifstream in(path);
        std::stringstream buffer;
        buffer << in.rdbuf();
        const JsonValue doc = parse_json(buffer.str());
        ASSERT_NE(doc.find("game.solves"), nullptr);
        EXPECT_DOUBLE_EQ(doc.find("game.solves")->number, 2.0);
        std::remove(path.c_str());
    }
    EXPECT_FALSE(obs::Tracer::instance().enabled());
}

} // namespace
} // namespace lph
