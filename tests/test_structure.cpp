#include "graph/generators.hpp"
#include "structure/graph_structure.hpp"
#include "structure/structure.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

TEST(Structure, UnaryAndBinaryRelations) {
    Structure s(3, 2, 1);
    s.set_unary(0, 1);
    s.add_binary(0, 0, 1);
    s.add_binary(0, 1, 2);
    EXPECT_TRUE(s.unary_holds(0, 1));
    EXPECT_FALSE(s.unary_holds(0, 0));
    EXPECT_FALSE(s.unary_holds(1, 1));
    EXPECT_TRUE(s.binary_holds(0, 0, 1));
    EXPECT_FALSE(s.binary_holds(0, 1, 0)); // directed
    EXPECT_TRUE(s.connected(1, 0));        // but connectivity is symmetric
}

TEST(Structure, ConnectedToSortedUnique) {
    Structure s(4, 0, 2);
    s.add_binary(0, 0, 2);
    s.add_binary(1, 2, 0); // same undirected pair via the other relation
    s.add_binary(0, 0, 1);
    EXPECT_EQ(s.connected_to(0), (std::vector<Element>{1, 2}));
}

TEST(Structure, Ball) {
    // A chain 0 -> 1 -> 2 -> 3.
    Structure s(4, 0, 1);
    for (Element i = 0; i + 1 < 4; ++i) {
        s.add_binary(0, i, i + 1);
    }
    EXPECT_EQ(s.ball(0, 0), (std::vector<Element>{0}));
    EXPECT_EQ(s.ball(0, 2), (std::vector<Element>{0, 1, 2}));
    EXPECT_EQ(s.ball(1, 1), (std::vector<Element>{0, 1, 2}));
}

TEST(GraphStructure, Figure4Example) {
    // The paper's Figure 4 up to renaming: a triangle with one pendant; we
    // use labels "1", "01", "", "1" on a small graph and check the counts.
    LabeledGraph g;
    const NodeId a = g.add_node("1");
    const NodeId b = g.add_node("01");
    const NodeId c = g.add_node("");
    g.add_edge(a, b);
    g.add_edge(b, c);

    const GraphStructure gs(g);
    // card($G) = 3 nodes + 3 labeling bits.
    EXPECT_EQ(gs.cardinality(), 6u);

    // O_1 holds exactly at the bits of value 1.
    EXPECT_TRUE(gs.structure().unary_holds(0, gs.bit_element(a, 1)));
    EXPECT_FALSE(gs.structure().unary_holds(0, gs.bit_element(b, 1)));
    EXPECT_TRUE(gs.structure().unary_holds(0, gs.bit_element(b, 2)));

    // ->_1 is the symmetric edge relation between node elements...
    EXPECT_TRUE(gs.structure().binary_holds(0, gs.node_element(a), gs.node_element(b)));
    EXPECT_TRUE(gs.structure().binary_holds(0, gs.node_element(b), gs.node_element(a)));
    EXPECT_FALSE(gs.structure().binary_holds(0, gs.node_element(a), gs.node_element(c)));
    // ...and the successor relation between consecutive bits.
    EXPECT_TRUE(gs.structure().binary_holds(0, gs.bit_element(b, 1), gs.bit_element(b, 2)));
    EXPECT_FALSE(gs.structure().binary_holds(0, gs.bit_element(b, 2), gs.bit_element(b, 1)));

    // ->_2 points from nodes to their bits.
    EXPECT_TRUE(gs.structure().binary_holds(1, gs.node_element(b), gs.bit_element(b, 2)));
    EXPECT_FALSE(gs.structure().binary_holds(1, gs.node_element(a), gs.bit_element(b, 1)));

    // Ownership bookkeeping.
    EXPECT_TRUE(gs.is_node_element(gs.node_element(c)));
    EXPECT_FALSE(gs.is_node_element(gs.bit_element(b, 1)));
    EXPECT_EQ(gs.owner(gs.bit_element(b, 2)), b);
    EXPECT_EQ(gs.bit_position(gs.bit_element(b, 2)), 2u);
}

TEST(GraphStructure, NeighborhoodCardinalities) {
    // Mirror of the paper's example after Figure 4: counts of $N_r(u).
    LabeledGraph g = cycle_graph(4, "1");
    g.set_label(2, "11");
    const GraphStructure gs(g);
    EXPECT_EQ(gs.neighborhood_elements(0, 0).size(), 2u);  // node + 1 bit
    EXPECT_EQ(gs.neighborhood_elements(0, 1).size(), 6u);  // + two labeled nbrs
    EXPECT_EQ(gs.neighborhood_elements(0, 2).size(), 9u);  // whole graph
    EXPECT_EQ(gs.neighborhood_elements(0, 2).size(), gs.cardinality());
}

TEST(GraphStructure, StructuralDistanceOfBits) {
    LabeledGraph g = path_graph(2, "11");
    const GraphStructure gs(g);
    // Bit 2 of node 1 is 2 structural hops from node 1 via bit chain... and
    // 1 hop via ownership (->_2 connects the node to every bit directly).
    const auto ball1 = gs.structure().ball(gs.node_element(1), 1);
    EXPECT_TRUE(std::find(ball1.begin(), ball1.end(), gs.bit_element(1, 2)) !=
                ball1.end());
}

} // namespace
} // namespace lph
