// The locality-aware view cache: LRU mechanics and counters, the soundness
// gates of ViewKeyBuilder, and — the part that must never regress — verdict
// agreement between cache-on and cache-off runs on adversarial instances
// built to maximize view collisions (repeated identifiers inside one graph,
// one cache shared across different graphs).

#include "dtm/faults.hpp"
#include "dtm/view_cache.hpp"
#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "hierarchy/game.hpp"
#include "machines/verifiers.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

/// The color domain matching a ColoringVerifier.
class ColorDomain : public CertificateDomain {
public:
    explicit ColorDomain(const ColoringVerifier& verifier) {
        for (int c = 0; c < verifier.k(); ++c) {
            options_.push_back(verifier.encode_color(c));
        }
    }
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

GameSpec coloring_spec(const ColoringVerifier& verifier,
                       const CertificateDomain& domain) {
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    spec.starts_existential = true;
    return spec;
}

// ---------------------------------------------------------------------------
// ViewCache mechanics.
// ---------------------------------------------------------------------------

TEST(ViewCache, HitMissAndRefresh) {
    ViewCache cache(1024);
    EXPECT_FALSE(cache.lookup("a").has_value());
    cache.insert("a", "1");
    cache.insert("b", "0");
    EXPECT_EQ(cache.lookup("a"), "1");
    EXPECT_EQ(cache.lookup("b"), "0");
    cache.insert("a", "1"); // same-verdict refresh is the expected pattern
    EXPECT_EQ(cache.lookup("a"), "1");
    const ViewCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.verdict_mismatches, 0u);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ViewCache, MismatchedReinsertIsCountedNotMasked) {
#ifndef NDEBUG
    GTEST_SKIP() << "debug builds assert on verdict mismatches instead";
#else
    // Equal keys must imply equal verdicts; a conflicting re-insert is a
    // soundness violation that used to be silently overwritten.  It must be
    // counted and must not change the stored verdict.
    ViewCache cache(1024);
    cache.insert("k", "1");
    cache.insert("k", "0");
    EXPECT_EQ(cache.lookup("k"), "1");
    EXPECT_EQ(cache.stats().verdict_mismatches, 1u);
    cache.insert("k", "1"); // agreeing refresh is not a mismatch
    EXPECT_EQ(cache.stats().verdict_mismatches, 1u);
#endif
}

TEST(ViewCache, BoundedLruEvictsTheColdTail) {
    // Capacity below the shard count clamps every shard to one entry, so a
    // second distinct key landing in the same shard must evict the first.
    ViewCache cache(1);
    for (int i = 0; i < 64; ++i) {
        cache.insert("key" + std::to_string(i), "1");
    }
    const ViewCacheStats stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.entries, 16u); // at most one per shard
    EXPECT_EQ(stats.entries + stats.evictions, 64u);
}

TEST(ViewCache, LruKeepsRecentlyUsedEntries) {
    ViewCache cache(16); // one entry per shard
    cache.insert("hot", "1");
    // Touch "hot" between inserts; same-shard colliders evict each other,
    // but an entry refreshed by lookup must survive its own shard's churn
    // when nothing else maps there.
    EXPECT_EQ(cache.lookup("hot"), "1");
    cache.insert("hot", "1");
    EXPECT_EQ(cache.lookup("hot"), "1");
}

TEST(ViewCache, RestoreCountsAdmittedEntriesOnly) {
    // Regression: restore() used to count every insertion, including entries
    // its own later insertions evicted again — a warm start into a shrunken
    // cache reported more admissions than entries actually live.  The
    // invariant: starting empty, admitted == entries retrievable afterwards.
    ViewCache cache(1); // clamps every shard to one entry
    std::vector<std::pair<std::string, std::string>> snapshot;
    for (int i = 0; i < 64; ++i) {
        snapshot.emplace_back("key" + std::to_string(i), "1");
    }
    const std::size_t admitted = cache.restore(snapshot);
    std::size_t live = 0;
    for (const auto& [key, verdict] : snapshot) {
        live += cache.lookup(key).has_value() ? 1 : 0;
    }
    EXPECT_EQ(admitted, live);
    EXPECT_EQ(admitted, cache.stats().entries);
    EXPECT_LE(admitted, 16u); // one per shard

    // Displacing a PRE-existing tail still counts: the snapshot entry was
    // admitted, the victim just wasn't from this call.
    ViewCache mixed(1);
    for (int i = 0; i < 32; ++i) {
        mixed.insert("pre" + std::to_string(i), "1");
    }
    std::vector<std::pair<std::string, std::string>> fresh;
    for (int i = 0; i < 32; ++i) {
        fresh.emplace_back("snap" + std::to_string(i), "0");
    }
    const std::size_t mixed_admitted = mixed.restore(fresh);
    std::size_t fresh_live = 0;
    for (const auto& [key, verdict] : fresh) {
        fresh_live += mixed.lookup(key).has_value() ? 1 : 0;
    }
    EXPECT_EQ(mixed_admitted, fresh_live);
    EXPECT_GT(mixed_admitted, 0u);
}

TEST(ViewCache, RestoreKeepsLiveVerdictOnConflict) {
    // A snapshot key that already exists is not an admission, and a
    // conflicting snapshot verdict must not overwrite live soundness data.
    ViewCache cache(1024);
    cache.insert("k", "1");
    EXPECT_EQ(cache.restore({{"k", "0"}}), 0u);
    EXPECT_EQ(cache.lookup("k"), "1");
    EXPECT_EQ(cache.stats().verdict_mismatches, 1u);
    EXPECT_EQ(cache.restore({{"k", "1"}}), 0u); // agreeing replay, no mismatch
    EXPECT_EQ(cache.stats().verdict_mismatches, 1u);
}

// ---------------------------------------------------------------------------
// bounded_distances (the serving layer's dirty-ball primitive).
// ---------------------------------------------------------------------------

TEST(BoundedDistances, MatchesFullBfsInsideTheBallAndCutsOffOutside) {
    const LabeledGraph g = cycle_graph(9, "1");
    const std::vector<int> full = g.distances_from(0);
    const std::vector<int> bounded = bounded_distances(g, 0, 2);
    ASSERT_EQ(bounded.size(), g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (full[v] <= 2) {
            EXPECT_EQ(bounded[v], full[v]) << "node " << v;
        } else {
            EXPECT_EQ(bounded[v], -1) << "node " << v;
        }
    }
    const std::vector<int> self_only = bounded_distances(g, 4, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(self_only[v], v == 4 ? 0 : -1);
    }
}

// ---------------------------------------------------------------------------
// ViewKeyBuilder gates and radius.
// ---------------------------------------------------------------------------

TEST(ViewKeyBuilder, GatesOffRunGlobalCouplings) {
    const LabeledGraph g = cycle_graph(8, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);

    ExecutionOptions clean;
    EXPECT_TRUE(ViewKeyBuilder(verifier, g, id, clean).cacheable());

    FaultPlan plan;
    plan.seed = 1;
    plan.drop_prob = 0.5;
    ExecutionOptions with_faults;
    with_faults.faults = &plan;
    EXPECT_FALSE(ViewKeyBuilder(verifier, g, id, with_faults).cacheable());

    ExecutionOptions with_deadline;
    with_deadline.deadline_ms = 1000;
    EXPECT_FALSE(ViewKeyBuilder(verifier, g, id, with_deadline).cacheable());

    ExecutionOptions with_byte_cap;
    with_byte_cap.max_total_message_bytes = 1 << 20;
    EXPECT_FALSE(ViewKeyBuilder(verifier, g, id, with_byte_cap).cacheable());

    // Clashing identifiers: every run fatals before round 1; nothing clean
    // can ever be cached.
    const auto clashed = clash_identifiers(g, id, verifier.id_radius(), 7, 1.0);
    EXPECT_FALSE(ViewKeyBuilder(verifier, g, clashed, clean).cacheable());
}

TEST(ViewKeyBuilder, RadiusIsTheCleanRunHorizon) {
    const LabeledGraph g = cycle_graph(8, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2); // round_bound = 3

    ExecutionOptions enforced;
    EXPECT_EQ(ViewKeyBuilder(verifier, g, id, enforced).radius(), 3);

    ExecutionOptions loose;
    loose.enforce_declared_bounds = false;
    loose.max_rounds = 5;
    EXPECT_EQ(ViewKeyBuilder(verifier, g, id, loose).radius(), 5);
}

TEST(ViewKeyBuilder, KeysSeparateDifferentViews) {
    // Distinct certificates inside the ball, distinct labels, and distinct
    // boundary identifiers must all separate keys.
    const LabeledGraph g = cycle_graph(9, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const ViewKeyBuilder keys(verifier, g, id, ExecutionOptions{});
    ASSERT_TRUE(keys.cacheable());

    const auto all_zero = CertificateListAssignment::concatenate(
        {CertificateAssignment(std::vector<BitString>(9, "0"))}, 9);
    std::vector<BitString> one_flip(9, "0");
    one_flip[1] = "1"; // inside node 0's radius-2 interior
    const auto flipped = CertificateListAssignment::concatenate(
        {CertificateAssignment(one_flip)}, 9);

    std::string a;
    std::string b;
    keys.key_for(0, all_zero, a);
    keys.key_for(0, flipped, b);
    EXPECT_NE(a, b);

    // A certificate change outside the interior leaves the key unchanged.
    std::vector<BitString> far_flip(9, "0");
    far_flip[4] = "1"; // distance 4 > R-1 = 2 from node 0
    const auto far = CertificateListAssignment::concatenate(
        {CertificateAssignment(far_flip)}, 9);
    keys.key_for(0, far, b);
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Cache soundness on adversarial view-collision instances.
// ---------------------------------------------------------------------------

void expect_cache_agrees(const GameSpec& spec, const LabeledGraph& g,
                         const IdentifierAssignment& id, const std::string& what) {
    GameOptions off;
    off.threads = 1;
    off.memoize_views = false;
    GameOptions on;
    on.threads = 1;
    on.memoize_views = true;
    const GameResult without = play_game(spec, g, id, off);
    const GameResult with = play_game(spec, g, id, on);
    EXPECT_EQ(without.accepted, with.accepted) << what;
    EXPECT_EQ(without.machine_runs, with.machine_runs) << what;
    EXPECT_EQ(without.faulted_runs, with.faulted_runs) << what;
    EXPECT_EQ(without.witness.has_value(), with.witness.has_value()) << what;
    if (without.witness && with.witness) {
        EXPECT_TRUE(*without.witness == *with.witness) << what;
    }
}

TEST(CacheSoundness, PeriodicIdentifiersCollideViewsWithinOneGraph) {
    // C_14 with period-7 cyclic identifiers: node u and node u+7 have
    // *identical* static views (distances, ids, labels, degrees, edges), the
    // maximal collision the key's soundness argument allows.  The verdicts
    // must still match the cache-off engine on both the yes- and a no-side.
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    ASSERT_EQ(verifier.id_radius(), 3);

    const LabeledGraph even = cycle_graph(14, "1");
    const auto even_ids = make_cyclic_ids(even, 7); // locally unique: 7 >= 2*3+1
    ASSERT_TRUE(even_ids.is_locally_unique(even, verifier.id_radius()));
    expect_cache_agrees(coloring_spec(verifier, domain), even, even_ids,
                        "C14 period 7");

    // The odd (no-instance, full-exhaustion) side with cyclic identifiers.
    const LabeledGraph odd = cycle_graph(9, "1");
    const auto odd_ids = make_cyclic_ids(odd, 9);
    expect_cache_agrees(coloring_spec(verifier, domain), odd, odd_ids,
                        "C9 cyclic ids");
}

TEST(CacheSoundness, SharedCacheAcrossInstancesReusesAndStaysSound) {
    // One external cache shared across different graphs whose local windows
    // coincide: away from the wrap-around, C_14's windows repeat C_13's
    // (same 4-bit global ids, labels, degrees), so the second game re-hits
    // entries the first inserted — and must still produce the exact
    // cache-off verdicts (C_13 odd: reject; C_14: accept).
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    ViewCache shared(1 << 20);

    const LabeledGraph odd = cycle_graph(13, "1");
    const auto odd_id = make_global_ids(odd);
    const LabeledGraph even = cycle_graph(14, "1");
    const auto even_id = make_global_ids(even);

    GameOptions with_shared;
    with_shared.view_cache = &shared;
    const GameResult first = play_game(coloring_spec(verifier, domain), odd,
                                       odd_id, with_shared);
    EXPECT_FALSE(first.accepted);
    EXPECT_EQ(first.machine_runs, std::uint64_t{1} << 13);

    const GameResult second = play_game(coloring_spec(verifier, domain), even,
                                        even_id, with_shared);
    EXPECT_TRUE(second.accepted);
    EXPECT_TRUE(second.witness.has_value());
    EXPECT_GT(second.stats.node_cache_hits, 0u) << "no cross-instance reuse";

    // Agreement with the cache-off engine on the shared-cache instances.
    GameOptions off;
    off.memoize_views = false;
    const GameResult even_off =
        play_game(coloring_spec(verifier, domain), even, even_id, off);
    EXPECT_EQ(second.accepted, even_off.accepted);
    EXPECT_EQ(second.machine_runs, even_off.machine_runs);
    EXPECT_TRUE(second.witness.has_value() && even_off.witness.has_value() &&
                *second.witness == *even_off.witness);
}

TEST(CacheSoundness, TinyCacheThrashesButStaysCorrect) {
    // An adversarially small cache forces constant eviction; correctness
    // must not depend on residency.
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    const LabeledGraph g = cycle_graph(9, "1");
    const auto id = make_global_ids(g);

    GameOptions tiny;
    tiny.view_cache_entries = 1; // one entry per shard
    GameOptions off;
    off.memoize_views = false;
    const GameResult thrashed =
        play_game(coloring_spec(verifier, domain), g, id, tiny);
    const GameResult reference =
        play_game(coloring_spec(verifier, domain), g, id, off);
    EXPECT_EQ(thrashed.accepted, reference.accepted);
    EXPECT_EQ(thrashed.machine_runs, reference.machine_runs);
    EXPECT_GT(thrashed.stats.cache_evictions, 0u);
}

// ---------------------------------------------------------------------------
// GameTables sharing (the game_tree_size / play_game double-build fix).
// ---------------------------------------------------------------------------

TEST(GameTables, SharedTablesMatchTheConvenienceEntryPoints) {
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    const LabeledGraph g = cycle_graph(6, "1");
    const auto id = make_global_ids(g);
    const GameSpec spec = coloring_spec(verifier, domain);

    const GameTables tables(spec, g, id);
    EXPECT_EQ(tables.layers(), 1u);
    EXPECT_EQ(tables.layer_product(0), std::uint64_t{1} << 6);
    EXPECT_EQ(game_tree_size(tables), game_tree_size(spec, g, id));

    const GameResult via_tables = play_game(spec, tables, g, id);
    const GameResult direct = play_game(spec, g, id);
    EXPECT_EQ(via_tables.accepted, direct.accepted);
    EXPECT_EQ(via_tables.machine_runs, direct.machine_runs);
}

TEST(GameTables, EmptyDomainIsRejectedAtBuildTime) {
    class EmptyDomain : public CertificateDomain {
    public:
        std::vector<BitString> options(const LabeledGraph&,
                                       const IdentifierAssignment&,
                                       NodeId) const override {
            return {};
        }
    };
    const ColoringVerifier verifier(2);
    const EmptyDomain domain;
    const LabeledGraph g = path_graph(2, "1");
    const auto id = make_global_ids(g);
    const GameSpec spec = coloring_spec(verifier, domain);
    EXPECT_THROW(GameTables(spec, g, id), precondition_error);
}

} // namespace
} // namespace lph
