#include "graph/generators.hpp"
#include "graph/serialize.hpp"
#include "graphalg/coloring.hpp"
#include "graphalg/eulerian.hpp"
#include "graphalg/hamiltonian.hpp"
#include "graphalg/spanning.hpp"
#include "oracle/generators.hpp"
#include "oracle/reference.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

TEST(Eulerian, CyclesAreEulerian) {
    EXPECT_TRUE(is_eulerian(cycle_graph(5)));
    EXPECT_FALSE(is_eulerian(path_graph(4)));
    EXPECT_TRUE(is_eulerian(single_node_graph("")));
    EXPECT_FALSE(is_eulerian(star_graph(4)));
    EXPECT_TRUE(is_eulerian(complete_graph(5)));  // K5: all degrees 4
    EXPECT_FALSE(is_eulerian(complete_graph(4))); // K4: all degrees 3
}

class EulerianHierholzer : public ::testing::TestWithParam<unsigned> {};

TEST_P(EulerianHierholzer, CycleExtractionMatchesCharacterization) {
    Rng rng(GetParam());
    const LabeledGraph g =
        random_connected_graph(4 + GetParam() % 6, GetParam() % 6, rng);
    const auto cycle = find_eulerian_cycle(g);
    EXPECT_EQ(cycle.has_value(), is_eulerian(g));
    if (cycle.has_value()) {
        EXPECT_TRUE(verify_eulerian_cycle(g, *cycle));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerianHierholzer, ::testing::Range(0u, 20u));

TEST(Eulerian, ExplicitCycleOnC4) {
    const LabeledGraph g = cycle_graph(4);
    const auto cycle = find_eulerian_cycle(g);
    ASSERT_TRUE(cycle.has_value());
    EXPECT_EQ(cycle->size(), 5u);
    EXPECT_TRUE(verify_eulerian_cycle(g, *cycle));
    EXPECT_FALSE(verify_eulerian_cycle(g, {0, 1, 2, 3})); // not closed
}

TEST(Hamiltonian, SmallCases) {
    EXPECT_TRUE(is_hamiltonian(cycle_graph(3)));
    EXPECT_TRUE(is_hamiltonian(cycle_graph(7)));
    EXPECT_TRUE(is_hamiltonian(complete_graph(5)));
    EXPECT_FALSE(is_hamiltonian(path_graph(4)));
    EXPECT_FALSE(is_hamiltonian(star_graph(4)));
    EXPECT_FALSE(is_hamiltonian(single_node_graph("")));
    EXPECT_TRUE(is_hamiltonian(grid_graph(2, 3)));
    EXPECT_FALSE(is_hamiltonian(grid_graph(1, 3))); // a path
}

TEST(Hamiltonian, GridParity) {
    // A 3x3 grid is bipartite with parts 5/4: no Hamiltonian cycle.
    EXPECT_FALSE(is_hamiltonian(grid_graph(3, 3)));
    EXPECT_TRUE(is_hamiltonian(grid_graph(4, 3)));
}

class HamiltonianWitness : public ::testing::TestWithParam<unsigned> {};

TEST_P(HamiltonianWitness, FoundCyclesVerify) {
    Rng rng(GetParam());
    const LabeledGraph g =
        random_connected_graph(5 + GetParam() % 4, 3 + GetParam() % 5, rng);
    const auto cycle = find_hamiltonian_cycle(g);
    if (cycle.has_value()) {
        EXPECT_TRUE(verify_hamiltonian_cycle(g, *cycle));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HamiltonianWitness, ::testing::Range(0u, 15u));

TEST(Coloring, BipartiteMatchesTwoColoring) {
    for (std::size_t n = 3; n <= 9; ++n) {
        const LabeledGraph g = cycle_graph(n);
        EXPECT_EQ(is_bipartite(g), n % 2 == 0) << n;
        EXPECT_EQ(is_k_colorable(g, 2), n % 2 == 0) << n;
    }
}

TEST(Coloring, ChromaticFacts) {
    EXPECT_TRUE(is_k_colorable(complete_graph(4), 4));
    EXPECT_FALSE(is_k_colorable(complete_graph(4), 3));
    EXPECT_TRUE(is_k_colorable(cycle_graph(5), 3));
    EXPECT_FALSE(is_k_colorable(cycle_graph(5), 2));
    EXPECT_TRUE(is_k_colorable(path_graph(6), 2));
    EXPECT_TRUE(is_k_colorable(single_node_graph(""), 1));
}

class ColoringWitness : public ::testing::TestWithParam<unsigned> {};

TEST_P(ColoringWitness, FoundColoringsVerify) {
    Rng rng(GetParam());
    const LabeledGraph g =
        random_connected_graph(4 + GetParam() % 6, GetParam() % 8, rng);
    for (int k = 2; k <= 4; ++k) {
        const auto colors = find_k_coloring(g, k);
        if (colors.has_value()) {
            EXPECT_TRUE(verify_coloring(g, *colors, k));
        }
        // Monotonicity: k-colorable implies (k+1)-colorable.
        if (colors.has_value()) {
            EXPECT_TRUE(is_k_colorable(g, k + 1));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringWitness, ::testing::Range(0u, 15u));

TEST(Spanning, BfsTreeValid) {
    const LabeledGraph g = grid_graph(3, 3);
    const SpanningTree tree = bfs_spanning_tree(g, 4);
    EXPECT_TRUE(verify_spanning_tree(g, tree));
    EXPECT_EQ(tree.parent[4], 4u);
}

TEST(Spanning, EulerTourVisitsEveryTreeEdgeTwice) {
    Rng rng(3);
    const LabeledGraph g = random_tree(8, rng);
    const SpanningTree tree = bfs_spanning_tree(g, 0);
    const auto walk = euler_tour(g, tree);
    // A DFS walk of an n-node tree has 2(n-1)+1 entries.
    EXPECT_EQ(walk.size(), 2 * (g.num_nodes() - 1) + 1);
    EXPECT_EQ(walk.front(), 0u);
    EXPECT_EQ(walk.back(), 0u);
    // Consecutive entries are adjacent.
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
        EXPECT_TRUE(g.has_edge(walk[i], walk[i + 1]));
    }
}

TEST(Spanning, VerifyRejectsBrokenTrees) {
    const LabeledGraph g = path_graph(3);
    SpanningTree bad;
    bad.root = 0;
    bad.parent = {0, 2, 1}; // 1 and 2 point at each other: cycle
    EXPECT_FALSE(verify_spanning_tree(g, bad));
    SpanningTree nonedge;
    nonedge.root = 0;
    nonedge.parent = {0, 0, 0}; // 2-0 is not an edge of the path
    EXPECT_FALSE(verify_spanning_tree(g, nonedge));
}

} // namespace
} // namespace lph

#include "sat/coloring_sat.hpp"

namespace lph {
namespace {

class ColoringImplementations : public ::testing::TestWithParam<unsigned> {};

TEST_P(ColoringImplementations, ThreeSolversAgree) {
    // Index-order backtracking, DSATUR with canonical pruning, and the
    // DPLL encoding must agree on k-colorability for k = 2..4.
    Rng rng(GetParam() + 2500);
    const LabeledGraph g =
        random_connected_graph(4 + rng.index(6), rng.index(8), rng);
    for (int k = 2; k <= 4; ++k) {
        const bool backtracking = is_k_colorable(g, k);
        const auto dsatur = find_k_coloring_dsatur(g, k);
        const auto dpll_coloring = find_k_coloring_dpll(g, k);
        EXPECT_EQ(dsatur.has_value(), backtracking) << "k=" << k;
        EXPECT_EQ(dpll_coloring.has_value(), backtracking) << "k=" << k;
        if (dsatur.has_value()) {
            EXPECT_TRUE(verify_coloring(g, *dsatur, k));
        }
        if (dpll_coloring.has_value()) {
            EXPECT_TRUE(verify_coloring(g, *dpll_coloring, k));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringImplementations, ::testing::Range(0u, 15u));

TEST(ColoringCnf, ShapeAndUnits) {
    const LabeledGraph g = path_graph(2, "1");
    const Cnf cnf = coloring_cnf(g, 3);
    // Per node: 1 at-least-one + 3 at-most-one; per edge: 3 difference
    // clauses.  2 nodes, 1 edge -> 2*4 + 3 = 11 clauses.
    EXPECT_EQ(cnf.size(), 11u);
    EXPECT_TRUE(is_3cnf(cnf));
}

TEST(DsaturEdgeCases, SingleNodeAndClique) {
    EXPECT_TRUE(find_k_coloring_dsatur(single_node_graph(""), 1).has_value());
    EXPECT_FALSE(find_k_coloring_dsatur(complete_graph(5, ""), 4).has_value());
    EXPECT_TRUE(find_k_coloring_dsatur(complete_graph(5, ""), 5).has_value());
}

} // namespace
} // namespace lph

namespace lph {
namespace {

TEST(ClassicInstances, PetersenFacts) {
    // The Petersen graph: 3-chromatic, famously non-Hamiltonian, and
    // non-Eulerian (3-regular) — a stress instance for the substrates.
    const LabeledGraph petersen = petersen_graph("");
    EXPECT_FALSE(is_k_colorable(petersen, 2));
    EXPECT_TRUE(is_k_colorable(petersen, 3));
    EXPECT_FALSE(is_hamiltonian(petersen));
    EXPECT_FALSE(is_eulerian(petersen));
}

TEST(ClassicInstances, CompleteBipartiteFacts) {
    EXPECT_TRUE(is_k_colorable(complete_bipartite_graph(3, 3, ""), 2));
    EXPECT_TRUE(is_hamiltonian(complete_bipartite_graph(3, 3, "")));
    EXPECT_FALSE(is_hamiltonian(complete_bipartite_graph(2, 3, ""))); // unbalanced
    EXPECT_TRUE(is_eulerian(complete_bipartite_graph(2, 4, "")));
    EXPECT_FALSE(is_eulerian(complete_bipartite_graph(3, 3, "")));
}

TEST(Eulerian, IsolatedVerticesDoNotBreakEulerianness) {
    // Triangle plus two isolated vertices: every degree is even and the
    // positive-degree nodes form one component, so the graph is Eulerian
    // even though it is disconnected as a whole.
    LabeledGraph g = cycle_graph(3);
    g.add_node("1");
    g.add_node("1");
    EXPECT_TRUE(is_eulerian(g));
    const auto cycle = find_eulerian_cycle(g);
    ASSERT_TRUE(cycle.has_value());
    EXPECT_TRUE(verify_eulerian_cycle(g, *cycle));
}

TEST(Eulerian, HierholzerStartsAtAPositiveDegreeNode) {
    // Node 0 is isolated; the triangle lives on 1-2-3.  Starting Hierholzer
    // at the hardcoded node 0 used to emit a bogus single-node "cycle".
    LabeledGraph g;
    g.add_node("1");
    const NodeId a = g.add_node("1");
    const NodeId b = g.add_node("1");
    const NodeId c = g.add_node("1");
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(c, a);
    EXPECT_TRUE(is_eulerian(g));
    const auto cycle = find_eulerian_cycle(g);
    ASSERT_TRUE(cycle.has_value());
    EXPECT_EQ(cycle->size(), g.num_edges() + 1);
    EXPECT_TRUE(verify_eulerian_cycle(g, *cycle));
}

TEST(Eulerian, TwoPositiveDegreeComponentsAreRejected) {
    // Two disjoint triangles: all degrees even, but the edges do not lie in
    // one component, so no single closed walk can cover them.
    LabeledGraph g;
    for (int i = 0; i < 6; ++i) {
        g.add_node("1");
    }
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    g.add_edge(5, 3);
    EXPECT_FALSE(is_eulerian(g));
    EXPECT_FALSE(find_eulerian_cycle(g).has_value());
    EXPECT_FALSE(ref_is_eulerian(g));
}

TEST(Eulerian, EdgelessGraphsAreTriviallyEulerian) {
    LabeledGraph g;
    g.add_node("1");
    g.add_node("1");
    EXPECT_TRUE(is_eulerian(g));
    const auto cycle = find_eulerian_cycle(g);
    ASSERT_TRUE(cycle.has_value());
    EXPECT_TRUE(verify_eulerian_cycle(g, *cycle));
}

class EulerianWithIsolates : public ::testing::TestWithParam<unsigned> {};

TEST_P(EulerianWithIsolates, MatchesBruteForceOracle) {
    // Random unions of components and isolated vertices — the shapes the
    // connectivity check historically got wrong — against the brute-force
    // trail-search oracle.
    Rng rng(GetParam() + 900);
    GraphGenOptions opt;
    opt.min_nodes = 1;
    opt.max_nodes = 6;
    opt.max_extra_edges = 2;
    opt.allow_disconnected = true;
    for (int i = 0; i < 10; ++i) {
        const LabeledGraph g = random_graph_instance(rng, opt);
        const bool fast = is_eulerian(g);
        EXPECT_EQ(fast, ref_is_eulerian(g)) << graph_to_text(g);
        const auto cycle = find_eulerian_cycle(g);
        EXPECT_EQ(cycle.has_value(), fast) << graph_to_text(g);
        if (cycle.has_value()) {
            EXPECT_TRUE(verify_eulerian_cycle(g, *cycle)) << graph_to_text(g);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerianWithIsolates, ::testing::Range(0u, 10u));

TEST(ClassicInstances, WheelFacts) {
    // Odd wheel (even rim): 4-chromatic; even wheel (odd rim): hub + 2-colorable rim.
    EXPECT_FALSE(is_k_colorable(wheel_graph(6, ""), 3)); // rim C5 needs 3 + hub
    EXPECT_TRUE(is_k_colorable(wheel_graph(6, ""), 4));
    EXPECT_TRUE(is_k_colorable(wheel_graph(5, ""), 3));  // rim C4 is 2-colorable
    EXPECT_TRUE(is_hamiltonian(wheel_graph(7, "")));
}

} // namespace
} // namespace lph
