// Adversarial suite for the fault-injection and graceful-degradation layer:
// in-model adversaries (valid identifier reassignments) must not change
// decisions, out-of-model adversaries (clashing ids, malformed certificates,
// bound violations, injected crashes and message faults) must be detected
// with the right RunError code, and a fixed fault seed must replay to the
// identical outcome.

#include "core/report.hpp"
#include "dtm/faults.hpp"
#include "dtm/local.hpp"
#include "dtm/turing.hpp"
#include "graph/generators.hpp"
#include "graphalg/eulerian.hpp"
#include "hierarchy/game.hpp"
#include "machines/deciders.hpp"
#include "machines/turing_examples.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

/// One-round machine echoing a fixed verdict, ignoring all inputs.
class ConstantMachine : public LocalMachine {
public:
    explicit ConstantMachine(std::string verdict) : verdict_(std::move(verdict)) {}
    int round_bound() const override { return 1; }
    RoundOutput on_round(const RoundInput&, std::string&, StepMeter&) const override {
        return {{}, true, verdict_};
    }

private:
    std::string verdict_;
};

/// Burns `work` metered steps against a declared bound.
class BurnMachine : public LocalMachine {
public:
    BurnMachine(std::uint64_t work, Polynomial bound)
        : work_(work), bound_(std::move(bound)) {}
    int round_bound() const override { return 1; }
    Polynomial step_bound() const override { return bound_; }
    RoundOutput on_round(const RoundInput&, std::string&, StepMeter& meter) const override {
        meter.charge(work_);
        return {{}, true, "1"};
    }

private:
    std::uint64_t work_;
    Polynomial bound_;
};

/// Exchanges labels with neighbors and accepts iff they all match its own.
class NeighborLabelsMachine : public LocalMachine {
public:
    int round_bound() const override { return 2; }
    RoundOutput on_round(const RoundInput& input, std::string& state,
                         StepMeter& meter) const override {
        RoundOutput output;
        if (input.round == 1) {
            output.send.assign(input.messages.size(), std::string(input.label));
            state = input.label;
            meter.charge(input.label.size() * input.messages.size());
            return output;
        }
        output.halt = true;
        output.verdict = "1";
        for (const auto& msg : input.messages) {
            meter.charge(msg.size());
            if (msg != state) {
                output.verdict = "0";
            }
        }
        return output;
    }
};

/// Grows its state to `size` symbols in round 1, accepts in round 2.
class HoarderMachine : public LocalMachine {
public:
    explicit HoarderMachine(std::size_t size) : size_(size) {}
    int round_bound() const override { return 2; }
    RoundOutput on_round(const RoundInput& input, std::string& state,
                         StepMeter& meter) const override {
        if (input.round == 1) {
            state.assign(size_, '1');
            meter.charge(size_);
            return {};
        }
        return {{}, true, "1"};
    }

private:
    std::size_t size_;
};

/// Halts only in round 3 despite declaring a 1-round bound.
class SlowMachine : public LocalMachine {
public:
    int round_bound() const override { return 1; }
    RoundOutput on_round(const RoundInput& input, std::string&,
                         StepMeter&) const override {
        RoundOutput out;
        out.halt = input.round >= 3;
        out.verdict = "1";
        return out;
    }
};

ExecutionOptions record_options() {
    ExecutionOptions options;
    options.on_violation = FaultPolicy::Record;
    return options;
}

// ---------------------------------------------------------------------------
// Structured error codes replace generic throws.
// ---------------------------------------------------------------------------

TEST(RunErrorTaxonomy, CodesHaveStableNames) {
    EXPECT_STREQ(to_string(RunError::None), "None");
    EXPECT_STREQ(to_string(RunError::StepBoundViolated), "StepBoundViolated");
    EXPECT_STREQ(to_string(RunError::NodeCrashed), "NodeCrashed");
    EXPECT_TRUE(is_injected_fault(RunError::MessageDropped));
    EXPECT_FALSE(is_injected_fault(RunError::StepBoundViolated));
}

TEST(RunErrorTaxonomy, RunErrorIsAPreconditionError) {
    // Back-compat: pre-existing catch sites for precondition_error keep
    // working when the runners throw the structured error.
    const LabeledGraph g = single_node_graph("1");
    EXPECT_THROW(run_local(SlowMachine{}, g, make_global_ids(g)),
                 precondition_error);
    EXPECT_THROW(run_local(SlowMachine{}, g, make_global_ids(g)), run_error);
}

TEST(RunErrorTaxonomy, RoundBoundViolationCarriesItsCode) {
    const LabeledGraph g = single_node_graph("1");
    try {
        run_local(SlowMachine{}, g, make_global_ids(g));
        FAIL() << "expected run_error";
    } catch (const run_error& e) {
        EXPECT_EQ(e.code(), RunError::RoundBoundViolated);
        EXPECT_EQ(e.fault().round, 2);
        EXPECT_TRUE(e.fault().fatal);
    }
}

TEST(RunErrorTaxonomy, RoundBudgetGuardIsDistinctFromDeclaredBound) {
    const LabeledGraph g = single_node_graph("1");
    ExecutionOptions options = record_options();
    options.enforce_declared_bounds = false;
    options.max_rounds = 2;
    const auto result = run_local(SlowMachine{}, g, make_global_ids(g), options);
    EXPECT_EQ(result.error, RunError::RoundBudgetExceeded);
    EXPECT_FALSE(result.completed);
    EXPECT_FALSE(result.accepted);
}

// ---------------------------------------------------------------------------
// Satellite: overshooting machines are caught by enforce_declared_bounds and
// reported as StepBoundViolated — never as a generic failure.  Property-style
// sweep over work loads on both sides of the declared bound.
// ---------------------------------------------------------------------------

class StepBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StepBoundProperty, OvershootIsStepBoundViolated) {
    const std::uint64_t work = GetParam();
    const LabeledGraph g = single_node_graph("1");
    const auto id = make_global_ids(g);
    const Polynomial bound = Polynomial::constant(64);
    const bool should_violate = work >= 128; // far above bound + input overhead

    // Throw policy: the violation surfaces with exactly its code.
    try {
        const auto result = run_local(BurnMachine(work, bound), g, id);
        EXPECT_FALSE(should_violate) << "expected a violation at work=" << work;
        EXPECT_TRUE(result.accepted);
    } catch (const run_error& e) {
        EXPECT_TRUE(should_violate) << "spurious violation at work=" << work;
        EXPECT_EQ(e.code(), RunError::StepBoundViolated);
        EXPECT_EQ(e.fault().node, 0u);
    }

    // Record policy: the same violation degrades the node instead.
    const auto result = run_local(BurnMachine(work, bound), g, id, record_options());
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.has_fault(RunError::StepBoundViolated), should_violate);
    EXPECT_EQ(result.accepted, !should_violate);
}

INSTANTIATE_TEST_SUITE_P(WorkLoads, StepBoundProperty,
                         ::testing::Values(0u, 16u, 32u, 128u, 1000u, 50000u));

TEST(StepBounds, StepBudgetGuardHasItsOwnCode) {
    const LabeledGraph g = single_node_graph("1");
    ExecutionOptions options = record_options();
    options.enforce_declared_bounds = false;
    options.max_steps_per_round = 100;
    const auto result = run_local(
        BurnMachine(1000, Polynomial::constant(2000)), g, make_global_ids(g),
        options);
    EXPECT_TRUE(result.has_fault(RunError::StepBudgetExceeded));
    EXPECT_FALSE(result.accepted);
}

// ---------------------------------------------------------------------------
// Resource guards: deadline, message-byte cap, per-node space cap.
// ---------------------------------------------------------------------------

TEST(ResourceGuards, DeadlineAbortsWithPartialResults) {
    const LabeledGraph g = cycle_graph(8, "1");
    ExecutionOptions options = record_options();
    options.deadline_ms = 1e-7; // elapses immediately
    const auto result =
        run_local(NeighborLabelsMachine{}, g, make_global_ids(g), options);
    EXPECT_EQ(result.error, RunError::DeadlineExceeded);
    EXPECT_FALSE(result.completed);
    EXPECT_FALSE(result.accepted);
    EXPECT_EQ(result.outputs.size(), g.num_nodes()); // partial outputs present
}

TEST(ResourceGuards, ByteCapFatalUnderRecord) {
    const LabeledGraph g = cycle_graph(8, "1");
    ExecutionOptions options = record_options();
    options.max_total_message_bytes = 2;
    const auto result =
        run_local(NeighborLabelsMachine{}, g, make_global_ids(g), options);
    EXPECT_EQ(result.error, RunError::MessageOverflow);
    EXPECT_FALSE(result.accepted);
}

TEST(ResourceGuards, ByteCapClampsUnderTruncate) {
    const LabeledGraph g = cycle_graph(8, "1");
    ExecutionOptions options;
    options.on_violation = FaultPolicy::Truncate;
    options.max_total_message_bytes = 2;
    const auto result =
        run_local(NeighborLabelsMachine{}, g, make_global_ids(g), options);
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(result.has_fault(RunError::MessageOverflow));
    // Truncated label exchanges read as disagreement: no false accept.
    EXPECT_FALSE(result.accepted);
}

TEST(ResourceGuards, SpaceCapDegradesOrTruncates) {
    const LabeledGraph g = single_node_graph("1");
    const auto id = make_global_ids(g);

    ExecutionOptions record = record_options();
    record.max_space_per_node = 10;
    const auto degraded = run_local(HoarderMachine(100), g, id, record);
    EXPECT_TRUE(degraded.has_fault(RunError::SpaceCapExceeded));
    EXPECT_FALSE(degraded.accepted);

    ExecutionOptions truncate = record;
    truncate.on_violation = FaultPolicy::Truncate;
    const auto clamped = run_local(HoarderMachine(100), g, id, truncate);
    EXPECT_TRUE(clamped.has_fault(RunError::SpaceCapExceeded));
    EXPECT_TRUE(clamped.accepted); // this machine survives the state clamp
}

// ---------------------------------------------------------------------------
// Out-of-model input attacks: identifier clashes and malformed certificates.
// ---------------------------------------------------------------------------

TEST(InputAttacks, IdentifierClashDetected) {
    const LabeledGraph g = path_graph(6, "1");
    const auto id = make_global_ids(g);
    const auto clashed = clash_identifiers(g, id, 1, /*seed=*/7, /*clash_prob=*/1.0);
    ASSERT_FALSE(clashed.is_locally_unique(g, 1));

    try {
        run_local(ConstantMachine("1"), g, clashed);
        FAIL() << "expected run_error";
    } catch (const run_error& e) {
        EXPECT_EQ(e.code(), RunError::IdentifierClash);
    }

    const auto result = run_local(ConstantMachine("1"), g, clashed, record_options());
    EXPECT_EQ(result.error, RunError::IdentifierClash);
    EXPECT_FALSE(result.completed);
    EXPECT_FALSE(result.accepted);
}

TEST(InputAttacks, MalformedCertificatesDetected) {
    const LabeledGraph g = path_graph(4, "1");
    const auto id = make_global_ids(g);
    CertificateAssignment kappa(std::vector<BitString>{"01", "10", "11", "00"});
    const auto good = CertificateListAssignment::concatenate({kappa}, 4);
    const auto bad = malform_certificates(good, /*seed=*/3, /*victim_prob=*/1.0);

    EXPECT_THROW(run_local(ConstantMachine("1"), g, id, bad), run_error);

    const auto result = run_local(ConstantMachine("1"), g, id, bad, record_options());
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.fault_count(RunError::MalformedCertificate), g.num_nodes());
    EXPECT_FALSE(result.accepted);

    // With validation off the junk flows through to a machine that ignores
    // certificates — the attack is then (deliberately) invisible.
    ExecutionOptions lax = record_options();
    lax.validate_certificates = false;
    EXPECT_TRUE(run_local(ConstantMachine("1"), g, id, bad, lax).accepted);
}

// ---------------------------------------------------------------------------
// In-model adversaries: any valid identifier reassignment must leave a
// correct machine's decision unchanged (the paper's "for every locally
// unique identifier assignment").
// ---------------------------------------------------------------------------

TEST(InModelAdversary, AdversarialIdsAreLocallyUnique) {
    Rng rng(11);
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const LabeledGraph g = random_connected_graph(10 + seed, seed, rng, "1");
        const auto id = adversarial_local_ids(g, 2, seed);
        EXPECT_TRUE(id.is_locally_unique(g, 2)) << "seed " << seed;
    }
}

TEST(InModelAdversary, DecisionInvariantUnderIdReassignment) {
    const EulerianDecider decider;
    for (const bool eulerian : {true, false}) {
        const LabeledGraph g =
            eulerian ? cycle_graph(9, "1") : path_graph(9, "1");
        ASSERT_EQ(is_eulerian(g), eulerian);
        const bool reference =
            run_local(decider, g, make_global_ids(g)).accepted;
        EXPECT_EQ(reference, eulerian);
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            const auto id = adversarial_local_ids(g, decider.id_radius(), seed);
            EXPECT_EQ(run_local(decider, g, id).accepted, reference)
                << "seed " << seed;
        }
    }
}

// ---------------------------------------------------------------------------
// Injected faults: crash-stops and message mutations, recorded and survivable.
// ---------------------------------------------------------------------------

TEST(Injection, CrashStopsEveryNode) {
    const LabeledGraph g = cycle_graph(6, "1");
    FaultPlan plan;
    plan.seed = 1;
    plan.crash_prob = 1.0;
    ExecutionOptions options = record_options();
    options.faults = &plan;
    const auto result =
        run_local(ConstantMachine("1"), g, make_global_ids(g), options);
    EXPECT_TRUE(result.ok()); // injected faults are never fatal
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.accepted); // crashed nodes have no verdict
    EXPECT_EQ(result.fault_count(RunError::NodeCrashed), g.num_nodes());
}

TEST(Injection, DroppedMessagesChangeTheVerdictNotTheRun) {
    const LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);
    ASSERT_TRUE(run_local(NeighborLabelsMachine{}, g, id).accepted);

    FaultPlan plan;
    plan.seed = 2;
    plan.drop_prob = 1.0;
    ExecutionOptions options = record_options();
    options.faults = &plan;
    const auto result = run_local(NeighborLabelsMachine{}, g, id, options);
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.accepted); // dropped labels read as disagreement
    EXPECT_GE(result.fault_count(RunError::MessageDropped), 1u);
}

TEST(Injection, CorruptionAndTruncationCarryTheirCodes) {
    const LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);

    FaultPlan corrupt;
    corrupt.seed = 3;
    corrupt.corrupt_prob = 1.0;
    ExecutionOptions options = record_options();
    options.faults = &corrupt;
    const auto corrupted = run_local(NeighborLabelsMachine{}, g, id, options);
    EXPECT_FALSE(corrupted.accepted);
    EXPECT_GE(corrupted.fault_count(RunError::MessageCorrupted), 1u);

    FaultPlan truncate;
    truncate.seed = 3;
    truncate.truncate_prob = 1.0;
    options.faults = &truncate;
    const auto truncated = run_local(NeighborLabelsMachine{}, g, id, options);
    EXPECT_FALSE(truncated.accepted);
    EXPECT_GE(truncated.fault_count(RunError::MessageTruncated), 1u);
}

TEST(Injection, SilentModeAppliesFaultsWithoutRecording) {
    const LabeledGraph g = path_graph(3, "1");
    FaultPlan plan;
    plan.seed = 2;
    plan.drop_prob = 1.0;
    plan.record_injected = false;
    ExecutionOptions options = record_options();
    options.faults = &plan;
    const auto result =
        run_local(NeighborLabelsMachine{}, g, make_global_ids(g), options);
    EXPECT_FALSE(result.accepted); // the adversary still acted...
    EXPECT_TRUE(result.faults.empty()); // ...but left no trace
}

// ---------------------------------------------------------------------------
// Replay determinism: a fault seed fully describes the adversary.
// ---------------------------------------------------------------------------

void expect_same_outcome(const ExecutionResult& a, const ExecutionResult& b) {
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.outputs, b.outputs);
    ASSERT_EQ(a.faults.size(), b.faults.size());
    for (std::size_t i = 0; i < a.faults.size(); ++i) {
        EXPECT_EQ(a.faults[i].code, b.faults[i].code) << "fault " << i;
        EXPECT_EQ(a.faults[i].node, b.faults[i].node) << "fault " << i;
        EXPECT_EQ(a.faults[i].round, b.faults[i].round) << "fault " << i;
    }
}

TEST(Replay, SameSeedSameOutcome) {
    const LabeledGraph g = cycle_graph(12, "1");
    const auto id = make_global_ids(g);
    FaultPlan plan;
    plan.seed = 99;
    plan.crash_prob = 0.2;
    plan.drop_prob = 0.3;
    plan.corrupt_prob = 0.2;
    ExecutionOptions options = record_options();
    options.faults = &plan;

    const auto first = run_local(NeighborLabelsMachine{}, g, id, options);
    const auto second = run_local(NeighborLabelsMachine{}, g, id, options);
    expect_same_outcome(first, second);
    EXPECT_GE(first.faults.size(), 1u);
}

TEST(Replay, DifferentSeedsDiffer) {
    const LabeledGraph g = cycle_graph(12, "1");
    const auto id = make_global_ids(g);
    FaultPlan plan;
    plan.crash_prob = 0.3;
    plan.drop_prob = 0.3;
    ExecutionOptions options = record_options();
    options.faults = &plan;

    std::vector<std::size_t> fault_counts;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        plan.seed = seed;
        fault_counts.push_back(
            run_local(NeighborLabelsMachine{}, g, id, options).faults.size());
    }
    bool any_difference = false;
    for (std::size_t count : fault_counts) {
        any_difference |= count != fault_counts.front();
    }
    EXPECT_TRUE(any_difference);
}

TEST(Replay, AdversarialIdsReplay) {
    const LabeledGraph g = cycle_graph(10, "1");
    const auto a = adversarial_local_ids(g, 2, 5);
    const auto b = adversarial_local_ids(g, 2, 5);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        EXPECT_EQ(a(u), b(u));
    }
}

// ---------------------------------------------------------------------------
// The tape-level runner degrades the same way.
// ---------------------------------------------------------------------------

TEST(TuringFaults, CrashedNodesYieldPartialResults) {
    const LabeledGraph g = cycle_graph(6, "1");
    const auto id = make_global_ids(g);
    const TuringMachine m = make_all_selected_turing();
    ASSERT_TRUE(run_turing(m, g, id).accepted);

    FaultPlan plan;
    plan.seed = 4;
    plan.crash_prob = 1.0;
    ExecutionOptions options = record_options();
    options.faults = &plan;
    const auto result = run_turing(m, g, id, options);
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.accepted);
    EXPECT_EQ(result.fault_count(RunError::NodeCrashed), g.num_nodes());
}

TEST(TuringFaults, UndefinedTransitionHasItsCode) {
    const LabeledGraph g = single_node_graph("1");
    const auto id = make_global_ids(g);
    TuringMachine empty; // delta undefined everywhere

    try {
        run_turing(empty, g, id);
        FAIL() << "expected run_error";
    } catch (const run_error& e) {
        EXPECT_EQ(e.code(), RunError::UndefinedTransition);
    }

    const auto result = run_turing(empty, g, id, record_options());
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(result.has_fault(RunError::UndefinedTransition));
    EXPECT_FALSE(result.accepted);
}

TEST(TuringFaults, IdentifierClashDetectedAtTapeLevel) {
    const LabeledGraph g = path_graph(4, "1");
    const auto id = make_global_ids(g);
    const auto clashed = clash_identifiers(g, id, 1, 5, 1.0);
    const auto result = run_turing(make_all_selected_turing(), g, clashed,
                                   record_options());
    EXPECT_EQ(result.error, RunError::IdentifierClash);
    EXPECT_FALSE(result.accepted);
}

TEST(TuringFaults, ReplaysUnderSameSeed) {
    const LabeledGraph g = cycle_graph(8, "1");
    const auto id = make_global_ids(g);
    const TuringMachine m = make_all_selected_turing();
    FaultPlan plan;
    plan.seed = 17;
    plan.crash_prob = 0.3;
    plan.drop_prob = 0.2;
    ExecutionOptions options = record_options();
    options.faults = &plan;
    expect_same_outcome(run_turing(m, g, id, options),
                        run_turing(m, g, id, options));
}

// ---------------------------------------------------------------------------
// The certificate-game engine: a faulting probe is a recorded loss for Eve,
// not a process abort.
// ---------------------------------------------------------------------------

/// Verifier that violates its declared step bound whenever its certificate
/// is "1", and accepts iff the certificate is "0".
class FussyVerifier : public LocalMachine {
public:
    int round_bound() const override { return 1; }
    Polynomial step_bound() const override { return Polynomial::constant(64); }
    RoundOutput on_round(const RoundInput& input, std::string&,
                         StepMeter& meter) const override {
        if (input.certificates.find('1') != std::string::npos) {
            meter.charge(1'000'000); // blows the declared bound
        }
        return {{}, true, input.certificates == "0" ? "1" : "0"};
    }
};

TEST(GameFaults, FaultingProbeIsARecordedLoss) {
    const LabeledGraph g = single_node_graph("1");
    const auto id = make_global_ids(g);
    // "1" first, so the game hits the faulting probe before the witness.
    const FixedOptionsDomain domain({"1", "0"});
    const FussyVerifier verifier;

    GameOptions intolerant;
    EXPECT_THROW(find_accepting_certificate(verifier, domain, g, id, intolerant),
                 run_error);

    GameOptions tolerant;
    tolerant.tolerate_faults = true;
    GameSpec spec;
    spec.machine = &verifier;
    std::vector<const CertificateDomain*> layers{&domain};
    spec.layers = layers;
    const GameResult result = play_game(spec, g, id, tolerant);
    EXPECT_TRUE(result.accepted); // Eve still finds the "0" witness
    EXPECT_GE(result.faulted_runs, 1u);
    ASSERT_FALSE(result.probe_faults.empty());
    EXPECT_EQ(result.probe_faults.front().code, RunError::StepBoundViolated);
}

TEST(GameFaults, AllProbesFaultingMeansEveLoses) {
    const LabeledGraph g = single_node_graph("1");
    const auto id = make_global_ids(g);
    const FixedOptionsDomain domain({"1", "11"}); // every option trips the bound
    const FussyVerifier verifier;
    GameOptions tolerant;
    tolerant.tolerate_faults = true;
    const auto witness =
        find_accepting_certificate(verifier, domain, g, id, tolerant);
    EXPECT_FALSE(witness.has_value());
}

// ---------------------------------------------------------------------------
// The structured failure report (the bench harness channel).
// ---------------------------------------------------------------------------

TEST(Report, JsonEscaping) {
    EXPECT_EQ(report::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Report, RenderContainsOutcomesAndTotals) {
    std::vector<report::Instance> instances;
    instances.push_back({"bench_a", "n=8", "ok", "", 1.5, 0, {}});
    instances.push_back({"bench_a", "n=16", "StepBoundViolated", "node 3", 2.0, 2,
                         {{"speedup", 3.25}}});
    const std::string json = report::render_report_json("demo", instances, 3.5);
    EXPECT_NE(json.find("\"bench\": \"demo\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"instance_count\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ok_count\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"failed_count\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("StepBoundViolated"), std::string::npos) << json;
    EXPECT_NE(json.find("\"fault_count\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"metrics\": {\"speedup\": 3.250}"), std::string::npos)
        << json;
}

TEST(Report, RecorderDedupesByBenchAndInstance) {
    report::Recorder recorder; // local instance, not the global one
    recorder.record({"b", "i", "ok", "", 1.0, 0, {}});
    recorder.record({"b", "i", "StepBoundViolated", "", 2.0, 1, {}});
    recorder.record({"b", "j", "ok", "", 1.0, 0, {}});
    const auto rows = recorder.instances();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].outcome, "StepBoundViolated"); // overwritten in place
    EXPECT_EQ(rows[1].instance, "j");
}

TEST(Report, FaultToStringNamesTheNodeAndRound) {
    const RunFault fault{RunError::MessageDropped, 3, 2, false, "injected"};
    const std::string text = fault.to_string();
    EXPECT_NE(text.find("MessageDropped"), std::string::npos) << text;
    EXPECT_NE(text.find("3"), std::string::npos) << text;
    EXPECT_NE(text.find("2"), std::string::npos) << text;
}

} // namespace
} // namespace lph
