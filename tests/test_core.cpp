#include "core/bitstring.hpp"
#include "core/check.hpp"
#include "core/rng.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

TEST(BitString, IsBitString) {
    EXPECT_TRUE(is_bit_string(""));
    EXPECT_TRUE(is_bit_string("0101"));
    EXPECT_FALSE(is_bit_string("01#1"));
    EXPECT_FALSE(is_bit_string("abc"));
}

TEST(BitString, IsCertificateListString) {
    EXPECT_TRUE(is_certificate_list_string("01#1#"));
    EXPECT_FALSE(is_certificate_list_string("01x"));
}

TEST(BitString, EncodeZero) { EXPECT_EQ(encode_unsigned(0), "0"); }

TEST(BitString, EncodeExamples) {
    EXPECT_EQ(encode_unsigned(1), "1");
    EXPECT_EQ(encode_unsigned(2), "10");
    EXPECT_EQ(encode_unsigned(5), "101");
    EXPECT_EQ(encode_unsigned(255), "11111111");
}

TEST(BitString, DecodeEmptyIsZero) { EXPECT_EQ(decode_unsigned(""), 0u); }

TEST(BitString, DecodeRejectsNonBits) {
    EXPECT_THROW(decode_unsigned("012"), precondition_error);
}

class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTrip, EncodeDecode) {
    const std::uint64_t value = GetParam();
    EXPECT_EQ(decode_unsigned(encode_unsigned(value)), value);
}

TEST_P(RoundTrip, FixedWidthRoundTrip) {
    const std::uint64_t value = GetParam();
    const int width = bits_for(value + 1);
    const BitString bits = encode_unsigned_width(value, width);
    EXPECT_EQ(bits.size(), static_cast<std::size_t>(width));
    EXPECT_EQ(decode_unsigned(bits), value);
}

INSTANTIATE_TEST_SUITE_P(Values, RoundTrip,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 8u, 100u, 1023u,
                                           1024u, 999999u, (1ull << 40) + 17));

TEST(BitString, WidthTooSmallThrows) {
    EXPECT_THROW(encode_unsigned_width(4, 2), precondition_error);
}

TEST(BitString, JoinSplitHash) {
    const std::vector<std::string> parts{"01", "", "111"};
    const std::string joined = join_hash(parts);
    EXPECT_EQ(joined, "01##111");
    EXPECT_EQ(split_hash(joined), parts);
}

TEST(BitString, SplitSingle) {
    EXPECT_EQ(split_hash(""), std::vector<std::string>{""});
    EXPECT_EQ(split_hash("01"), std::vector<std::string>{"01"});
}

TEST(BitString, SplitTrailingSeparator) {
    const auto parts = split_hash("1#");
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0], "1");
    EXPECT_EQ(parts[1], "");
}

class BitsFor : public ::testing::TestWithParam<std::pair<std::uint64_t, int>> {};

TEST_P(BitsFor, Matches) {
    EXPECT_EQ(bits_for(GetParam().first), GetParam().second);
}

INSTANTIATE_TEST_SUITE_P(
    Values, BitsFor,
    ::testing::Values(std::make_pair(1ull, 1), std::make_pair(2ull, 1),
                      std::make_pair(3ull, 2), std::make_pair(4ull, 2),
                      std::make_pair(5ull, 3), std::make_pair(8ull, 3),
                      std::make_pair(9ull, 4), std::make_pair(1024ull, 10),
                      std::make_pair(1025ull, 11)));

TEST(Rng, Deterministic) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
    }
}

TEST(Rng, UniformInRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform(3, 9);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, EmptyRangeFailsThePreconditionCheck) {
    // index(0) used to compute uniform(0, 0 - 1) — an unsigned underflow to
    // uniform(0, 2^64-1) returning garbage indices.  Both empty-range entry
    // points must fail loudly instead.
    Rng rng(3);
    EXPECT_THROW(rng.index(0), precondition_error);
    EXPECT_THROW(rng.uniform(5, 4), precondition_error);
    // The engine state is untouched by a rejected draw: two generators that
    // diverge only in rejected calls keep producing identical streams.
    Rng a(11);
    Rng b(11);
    EXPECT_THROW(a.index(0), precondition_error);
    EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
}

TEST(Check, ThrowsWithMessage) {
    try {
        check(false, "boom");
        FAIL() << "expected throw";
    } catch (const precondition_error& e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

} // namespace
} // namespace lph
