#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "hierarchy/fagin.hpp"
#include "logic/examples.hpp"
#include "reductions/cook_levin.hpp"
#include "reductions/three_coloring.hpp"
#include "sat/coloring_sat.hpp"
#include "reductions/verify.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

using namespace bf;

// --- Theorem 19: Sigma_1^LFO -> SAT-GRAPH. ---

class CookLevinKColor : public ::testing::TestWithParam<unsigned> {};

TEST_P(CookLevinKColor, EquisatisfiableWithSentence) {
    Rng rng(GetParam() + 21);
    const LabeledGraph g =
        random_connected_graph(2 + rng.index(3), rng.index(3), rng, "");
    const int k = 2 + static_cast<int>(rng.index(2));
    const Formula sentence = paper_formulas::k_colorable(k);
    const CookLevinReduction reduction(sentence);
    const auto id = make_global_ids(g);

    const ReducedGraph reduced = apply_reduction(reduction, g, id);
    // Topology-preserving: same node and edge counts.
    EXPECT_EQ(reduced.graph.num_nodes(), g.num_nodes());
    EXPECT_EQ(reduced.graph.num_edges(), g.num_edges());

    const BooleanGraph bg = BooleanGraph::decode(reduced.graph);
    EXPECT_EQ(is_sat_graph(bg), is_k_colorable(g, k))
        << "seed " << GetParam() << " k=" << k << " n=" << g.num_nodes();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CookLevinKColor, ::testing::Range(0u, 10u));

TEST(CookLevinDetail, AllSelectedStyleSentence) {
    // A Sigma_1 sentence with a dummy set variable: "exists X. forall x.
    // IsNode(x) -> IsSelected(x)".  Truth depends on labels only.
    const Formula sentence = fl::exists_so(
        "X", 1, paper_formulas::forall_node("x", paper_formulas::is_selected("x")));
    const CookLevinReduction reduction(sentence);
    LabeledGraph yes = path_graph(3, "1");
    LabeledGraph no = path_graph(3, "1");
    no.set_label(1, "0");
    const BooleanGraph bg_yes = BooleanGraph::decode(
        apply_reduction(reduction, yes, make_global_ids(yes)).graph);
    const BooleanGraph bg_no = BooleanGraph::decode(
        apply_reduction(reduction, no, make_global_ids(no)).graph);
    EXPECT_TRUE(is_sat_graph(bg_yes));
    EXPECT_FALSE(is_sat_graph(bg_no));
}

TEST(CookLevinDetail, RejectsNonSigma1) {
    EXPECT_THROW(CookLevinReduction(paper_formulas::non_three_colorable()),
                 precondition_error);
    EXPECT_THROW(CookLevinReduction(paper_formulas::exists_unselected_node()),
                 precondition_error);
}

// --- Theorem 20 step 1: SAT-GRAPH -> 3-SAT-GRAPH. ---

class TseytinReduction : public ::testing::TestWithParam<unsigned> {};

TEST_P(TseytinReduction, Equisatisfiable3CnfGraph) {
    Rng rng(GetParam() + 51);
    const std::size_t n = 2 + rng.index(3);
    LabeledGraph topo = random_connected_graph(n, rng.index(2), rng, "");
    // Random small formulas sharing variables P0..P2.
    std::vector<BoolFormula> formulas;
    for (std::size_t i = 0; i < n; ++i) {
        const BoolFormula a = var("P" + std::to_string(rng.index(3)));
        const BoolFormula b = var("P" + std::to_string(rng.index(3)));
        switch (rng.index(4)) {
        case 0:
            formulas.push_back(band(a, bnot(b)));
            break;
        case 1:
            formulas.push_back(bor(bnot(a), b));
            break;
        case 2:
            formulas.push_back(biff(a, bnot(b)));
            break;
        default:
            formulas.push_back(bimplies(a, b));
            break;
        }
    }
    const BooleanGraph bg(topo, formulas);
    const SatGraphTo3Sat reduction;
    const ReducedGraph reduced =
        apply_reduction(reduction, bg.graph(), make_global_ids(bg.graph()));
    const BooleanGraph bg3 = BooleanGraph::decode(reduced.graph);
    EXPECT_TRUE(bg3.is_3cnf_graph());
    EXPECT_EQ(is_sat_graph(bg3), is_sat_graph(bg)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TseytinReduction, ::testing::Range(0u, 15u));

// --- Theorem 20 step 2: 3-SAT-GRAPH -> 3-COLORABLE. ---

class ThreeColReduction : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreeColReduction, EquivalentTo3Colorability) {
    Rng rng(GetParam() + 81);
    const std::size_t n = 1 + rng.index(2);
    LabeledGraph topo =
        n == 1 ? single_node_graph("") : path_graph(n, "");
    std::vector<BoolFormula> formulas;
    for (std::size_t i = 0; i < n; ++i) {
        // Random 3-CNF over two shared variables, 1-2 clauses.
        std::vector<BoolFormula> clauses;
        const int num_clauses = 1 + static_cast<int>(rng.index(2));
        for (int c = 0; c < num_clauses; ++c) {
            std::vector<BoolFormula> lits;
            for (int l = 0; l < 1 + static_cast<int>(rng.index(3)); ++l) {
                BoolFormula v = var("P" + std::to_string(rng.index(2)));
                lits.push_back(rng.chance(0.5) ? v : bnot(v));
            }
            clauses.push_back(bor_all(lits));
        }
        formulas.push_back(band_all(clauses));
    }
    const BooleanGraph bg(topo, formulas);
    const ThreeSatTo3Colorable reduction;
    const ReducedGraph reduced =
        apply_reduction(reduction, bg.graph(), make_global_ids(bg.graph()));
    EXPECT_TRUE(verify_cluster_map(reduced, bg.graph()));
    EXPECT_TRUE(reduced.graph.is_connected());
    EXPECT_EQ(is_k_colorable(reduced.graph, 3), is_sat_graph(bg))
        << "seed " << GetParam() << " nodes " << reduced.graph.num_nodes();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeColReduction, ::testing::Range(0u, 15u));

TEST(ThreeColDetail, UnsatisfiableSingleNode) {
    // (P) and (!P): unsatisfiable 3-CNF; the gadget graph must not be
    // 3-colorable.
    const BoolFormula f = band(var("P"), bnot(var("P")));
    const BooleanGraph bg(single_node_graph(""), {f});
    const ThreeSatTo3Colorable reduction;
    const ReducedGraph reduced =
        apply_reduction(reduction, bg.graph(), make_global_ids(bg.graph()));
    EXPECT_FALSE(is_k_colorable(reduced.graph, 3));
}

TEST(ThreeColDetail, SharedVariableConnectorForcesConsistency) {
    // Node 0 forces P, node 1 forces !P, adjacent: unsatisfiable, so the
    // combined gadget graph is not 3-colorable — the connector gadgets carry
    // the conflict across clusters.
    const BooleanGraph bg(path_graph(2, ""), {var("P"), bnot(var("P"))});
    const ThreeSatTo3Colorable reduction;
    const ReducedGraph reduced =
        apply_reduction(reduction, bg.graph(), make_global_ids(bg.graph()));
    EXPECT_FALSE(is_k_colorable(reduced.graph, 3));

    // Same formulas on non-shared variables: satisfiable and 3-colorable.
    const BooleanGraph ok(path_graph(2, ""), {var("P"), bnot(var("Q"))});
    const ReducedGraph reduced_ok =
        apply_reduction(reduction, ok.graph(), make_global_ids(ok.graph()));
    EXPECT_TRUE(is_k_colorable(reduced_ok.graph, 3));
}

// --- The full Theorem 20 pipeline. ---

TEST(FullPipeline, SentenceToColoringGadgets) {
    // Sigma_1 sentence -> SAT-GRAPH -> 3-SAT-GRAPH -> 3-COLORABLE, end to
    // end.  Satisfiable instances are certified constructively (the
    // completeness half of the Theorem 20 proof, executed); unsatisfiable
    // gadget graphs are refuted by search only at tiny sizes, since generic
    // coloring search degenerates on the widget product space.
    const Formula sentence = fl::exists_so(
        "X", 1, paper_formulas::forall_node("x", paper_formulas::is_selected("x")));
    const CookLevinReduction cook(sentence);
    const SatGraphTo3Sat to3sat;
    const ThreeSatTo3Colorable to3col;

    for (bool expect_sat : {true, false}) {
        const LabeledGraph g = single_node_graph(expect_sat ? "1" : "0");
        const auto id = make_global_ids(g);
        const ReducedGraph step1 = apply_reduction(cook, g, id);
        EXPECT_EQ(is_sat_graph(BooleanGraph::decode(step1.graph)), expect_sat);
        const ReducedGraph step2 =
            apply_reduction(to3sat, step1.graph, make_global_ids(step1.graph));
        const BooleanGraph bg3 = BooleanGraph::decode(step2.graph);
        const auto vals = find_graph_valuation(bg3);
        EXPECT_EQ(vals.has_value(), expect_sat);
        const ReducedGraph step3 =
            apply_reduction(to3col, step2.graph, make_global_ids(step2.graph));
        if (expect_sat) {
            // Constructive certificate: the proof's coloring, verified.
            const auto coloring = construct_gadget_coloring(step3, bg3, *vals);
            ASSERT_TRUE(coloring.has_value());
            EXPECT_TRUE(verify_coloring(step3.graph, *coloring, 3));
        } else {
            EXPECT_FALSE(is_k_colorable_dsatur(step3.graph, 3))
                << step3.graph.num_nodes() << " nodes";
        }
    }
}

TEST(FullPipeline, ConstructiveColoringOnPath) {
    // A genuinely distributed instance: 2-COLORABLE on P2 through all three
    // stages, certified constructively.
    const CookLevinReduction cook(paper_formulas::k_colorable(2));
    const LabeledGraph g = path_graph(2, "");
    const auto id = make_global_ids(g);
    const ReducedGraph step1 = apply_reduction(cook, g, id);
    const ReducedGraph step2 = apply_reduction(SatGraphTo3Sat{}, step1.graph,
                                               make_global_ids(step1.graph));
    const BooleanGraph bg3 = BooleanGraph::decode(step2.graph);
    const auto vals = find_graph_valuation(bg3);
    ASSERT_TRUE(vals.has_value()); // P2 is 2-colorable
    const ReducedGraph step3 = apply_reduction(ThreeSatTo3Colorable{}, step2.graph,
                                               make_global_ids(step2.graph));
    const auto coloring = construct_gadget_coloring(step3, bg3, *vals);
    ASSERT_TRUE(coloring.has_value());
    EXPECT_TRUE(verify_coloring(step3.graph, *coloring, 3));
}

} // namespace
} // namespace lph
