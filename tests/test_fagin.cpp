#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "hierarchy/fagin.hpp"
#include "logic/examples.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

/// Small instances for the two-sided Theorem 12 check.
struct FaginCase {
    std::string name;
    LabeledGraph graph;
    bool expected; // ground truth of the property
};

FaginOptions fast_options() {
    FaginOptions options;
    options.node_elements_only = true;
    options.max_tuples_per_variable = 20;
    return options;
}

class TwoColorableAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TwoColorableAgreement, FormulaMachineAndOracleAgree) {
    const std::size_t n = GetParam();
    const LabeledGraph g = cycle_graph(n, "");
    const auto id = make_global_ids(g);
    const auto report = check_fagin_agreement(paper_formulas::two_colorable(), g,
                                              id, fast_options());
    EXPECT_TRUE(report.agree) << "Theorem 12 agreement failed on C" << n;
    EXPECT_EQ(report.formula_value, is_bipartite(g));
    EXPECT_EQ(report.machine_value, is_bipartite(g));
    EXPECT_GT(report.formula_leaves, 0u);
}

INSTANTIATE_TEST_SUITE_P(Cycles, TwoColorableAgreement,
                         ::testing::Values(3u, 4u, 5u, 6u));

TEST(ThreeColorableAgreement, TriangleAndK4) {
    const auto sentence = paper_formulas::three_colorable();
    {
        const LabeledGraph g = complete_graph(3, "");
        const auto report = check_fagin_agreement(g.num_nodes() ? sentence : sentence,
                                                  g, make_global_ids(g),
                                                  fast_options());
        EXPECT_TRUE(report.agree);
        EXPECT_TRUE(report.formula_value);
    }
    {
        const LabeledGraph g = complete_graph(4, "");
        const auto report =
            check_fagin_agreement(sentence, g, make_global_ids(g), fast_options());
        EXPECT_TRUE(report.agree);
        EXPECT_FALSE(report.formula_value);
    }
}

TEST(AllSelectedAgreement, ZeroBlockSentence) {
    // ALL-SELECTED has no second-order prefix: the game has a single leaf and
    // the machine is an LP decider.
    LabeledGraph yes = path_graph(3, "1");
    LabeledGraph no = path_graph(3, "1");
    no.set_label(1, "0");
    FaginOptions options = fast_options();
    options.node_elements_only = false; // bits matter for IsSelected
    {
        const auto report = check_fagin_agreement(paper_formulas::all_selected(),
                                                  yes, make_global_ids(yes), options);
        EXPECT_TRUE(report.agree);
        EXPECT_TRUE(report.formula_value);
        EXPECT_EQ(report.formula_leaves, 1u);
    }
    {
        const auto report = check_fagin_agreement(paper_formulas::all_selected(),
                                                  no, make_global_ids(no), options);
        EXPECT_TRUE(report.agree);
        EXPECT_FALSE(report.formula_value);
    }
}

TEST(EvalSentenceOnGraph, ReferenceDecisionProcedure) {
    FaginOptions options = fast_options();
    EXPECT_TRUE(
        eval_sentence_on_graph(paper_formulas::two_colorable(), cycle_graph(4, ""),
                               options));
    EXPECT_FALSE(
        eval_sentence_on_graph(paper_formulas::two_colorable(), cycle_graph(5, ""),
                               options));
    EXPECT_TRUE(eval_sentence_on_graph(paper_formulas::k_colorable(4),
                                       complete_graph(4, ""), options));
}

class KColorableSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(KColorableSweep, FormulaMatchesBacktrackingSearch) {
    Rng rng(GetParam() + 11);
    const LabeledGraph g =
        random_connected_graph(3 + rng.index(3), rng.index(3), rng, "");
    FaginOptions options = fast_options();
    for (int k = 2; k <= 3; ++k) {
        EXPECT_EQ(
            eval_sentence_on_graph(paper_formulas::k_colorable(k), g, options),
            is_k_colorable(g, k))
            << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KColorableSweep, ::testing::Range(0u, 8u));

TEST(LocalTupleUniverse, SizesAndLocality) {
    const LabeledGraph g = path_graph(4, "");
    const GraphStructure gs(g);
    // Unary, node-only: one tuple per node.
    EXPECT_EQ(local_tuple_universe(gs, 1, 1, true).size(), 4u);
    // Binary, radius 1, node-only: pairs (u, v) with v in ball(u,1):
    // 2 + 3 + 3 + 2 = 10.
    EXPECT_EQ(local_tuple_universe(gs, 2, 1, true).size(), 10u);
    // Radius covers the whole path: all 16 pairs.
    EXPECT_EQ(local_tuple_universe(gs, 2, 3, true).size(), 16u);
}

TEST(LocalTupleUniverse, IncludesBitsWhenRequested) {
    LabeledGraph g = path_graph(2, "1");
    const GraphStructure gs(g);
    EXPECT_EQ(local_tuple_universe(gs, 1, 1, true).size(), 2u);
    EXPECT_EQ(local_tuple_universe(gs, 1, 1, false).size(), 4u); // + 2 bits
}

TEST(FaginGuard, LargeUniverseThrows) {
    const LabeledGraph g = cycle_graph(8, "");
    FaginOptions options;
    options.max_tuples_per_variable = 4;
    EXPECT_THROW(eval_sentence_on_graph(paper_formulas::two_colorable(), g, options),
                 precondition_error);
}

// Binary relation variables through the machine bridge: certificates carry
// per-node slices of pair sets (the Theorem 12 encoding at arity 2).
TEST(BinaryRelations, ReflexiveWitnessAgrees) {
    // exists P/2. forall-node x. P(x, x): Eve includes the diagonal.
    const Formula sentence = fl::exists_so(
        "P", 2, paper_formulas::forall_node("x", fl::apply("P", {"x", "x"})));
    const LabeledGraph g = path_graph(2, "");
    const auto report = check_fagin_agreement(sentence, g, make_global_ids(g),
                                              fast_options());
    EXPECT_TRUE(report.agree);
    EXPECT_TRUE(report.formula_value);
    EXPECT_TRUE(report.machine_value);
}

TEST(BinaryRelations, PointerParadoxIsFalse) {
    // exists P/2. forall-node x.
    //   (exists-node y~x. P(x,y)) & (forall-node y~x. !P(y,x))
    // "everyone points at a neighbor, nobody is pointed at" — impossible.
    const Formula matrix = paper_formulas::forall_node(
        "x", fl::conj(paper_formulas::exists_node_conn(
                          "y", "x", fl::apply("P", {"x", "y"})),
                      paper_formulas::forall_node_conn(
                          "z", "x", fl::negate(fl::apply("P", {"z", "x"})))));
    const Formula sentence = fl::exists_so("P", 2, matrix);
    const LabeledGraph g = path_graph(2, "");
    const auto report = check_fagin_agreement(sentence, g, make_global_ids(g),
                                              fast_options());
    EXPECT_TRUE(report.agree);
    EXPECT_FALSE(report.formula_value);
    EXPECT_FALSE(report.machine_value);
}

// Higher alternation levels through the machine bridge: Pi_2 sentences with
// one universal and one existential block, exercising multi-layer
// certificate slicing in the FormulaArbiter.
TEST(HigherLevels, Pi2ComplementSentenceIsValid) {
    // forall C. exists D. forall-node x. (C(x) <-> !D(x)) — valid on every
    // graph (Eve answers with the complement set).
    const Formula sentence = fl::forall_so(
        "C", 1,
        fl::exists_so("D", 1,
                      paper_formulas::forall_node(
                          "x", fl::iff(fl::apply("C", {"x"}),
                                       fl::negate(fl::apply("D", {"x"}))))));
    for (std::size_t n : {1u, 2u, 3u}) {
        const LabeledGraph g = n == 1 ? single_node_graph("") : path_graph(n, "");
        const auto report = check_fagin_agreement(sentence, g, make_global_ids(g),
                                                  fast_options());
        EXPECT_TRUE(report.agree) << n;
        EXPECT_TRUE(report.formula_value) << n;
        EXPECT_TRUE(report.machine_value) << n;
    }
}

TEST(HigherLevels, Pi2ConjunctionSentenceIsFalsifiable) {
    // forall C. exists D. forall-node x. (D(x) & C(x)) — Adam plays C = {}.
    const Formula sentence = fl::forall_so(
        "C", 1,
        fl::exists_so("D", 1,
                      paper_formulas::forall_node(
                          "x", fl::conj(fl::apply("D", {"x"}),
                                        fl::apply("C", {"x"})))));
    const LabeledGraph g = path_graph(2, "");
    const auto report =
        check_fagin_agreement(sentence, g, make_global_ids(g), fast_options());
    EXPECT_TRUE(report.agree);
    EXPECT_FALSE(report.formula_value);
    EXPECT_FALSE(report.machine_value);
}

TEST(HigherLevels, Sigma2SelectionCoverSentence) {
    // exists S. forall T. forall-node x.
    //   (S(x) -> IsSelected(x)) & (T(x) & IsSelected(x) -> S(x) | T(x))
    // The first conjunct makes S range over selected nodes only; satisfiable
    // with S = {} regardless, so the sentence is valid — but the machine
    // must still relativize both layers correctly.
    const Formula sentence = fl::exists_so(
        "S", 1,
        fl::forall_so(
            "T", 1,
            paper_formulas::forall_node(
                "x", fl::conj(fl::implies(fl::apply("S", {"x"}),
                                          paper_formulas::is_selected("x")),
                              fl::implies(fl::conj(fl::apply("T", {"x"}),
                                                   paper_formulas::is_selected("x")),
                                          fl::disj(fl::apply("S", {"x"}),
                                                   fl::apply("T", {"x"})))))));
    LabeledGraph g = path_graph(2, "1");
    g.set_label(0, "0");
    FaginOptions options = fast_options();
    options.node_elements_only = true;
    const auto report =
        check_fagin_agreement(sentence, g, make_global_ids(g), options);
    EXPECT_TRUE(report.agree);
    EXPECT_TRUE(report.formula_value);
}

// NOT-ALL-SELECTED as the Sigma_3^LFO game of Example 4 — formula side only
// (the machine side multiplies the already exponential P/X/Y search by a
// machine run per leaf; the agreement content is covered by the colorability
// cases above).
TEST(ExistsUnselectedNode, FormulaSideOnTinyGraphs) {
    FaginOptions options;
    options.node_elements_only = true;
    options.locality_radius = 2;
    options.max_tuples_per_variable = 16;
    options.run_machine_side = false;

    // A 2-node path with one unselected node: Eve wins.
    LabeledGraph mixed = path_graph(2, "1");
    mixed.set_label(0, "0");
    EXPECT_TRUE(eval_sentence_on_graph(paper_formulas::exists_unselected_node(),
                                       mixed, options));

    // All selected: Eve must lose.
    const LabeledGraph all = path_graph(2, "1");
    EXPECT_FALSE(eval_sentence_on_graph(paper_formulas::exists_unselected_node(),
                                        all, options));
}

} // namespace
} // namespace lph
