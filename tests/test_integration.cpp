#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "graphalg/coloring.hpp"
#include "graphalg/eulerian.hpp"
#include "hierarchy/fagin.hpp"
#include "hierarchy/game.hpp"
#include "logic/examples.hpp"
#include "machines/deciders.hpp"
#include "machines/formula_arbiter.hpp"
#include "machines/turing_examples.hpp"
#include "machines/verifiers.hpp"
#include "reductions/classic_reductions.hpp"
#include "structure/graph_structure.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace lph {
namespace {

/// Four independent implementations of ALL-SELECTED must agree: the
/// tape-level Turing machine, the local-algorithm decider, direct formula
/// evaluation, and the generic Theorem-12 arbiter.
class AllSelectedFourWays : public ::testing::TestWithParam<unsigned> {};

TEST_P(AllSelectedFourWays, Agreement) {
    Rng rng(GetParam() + 1000);
    LabeledGraph g = random_connected_graph(2 + rng.index(5), rng.index(4), rng);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        g.set_label(u, rng.chance(0.6) ? "1" : "0");
    }
    const auto id = make_global_ids(g);

    const bool turing = run_turing(make_all_selected_turing(), g, id).accepted;
    const bool local = run_local(AllSelectedDecider{}, g, id).accepted;
    const bool formula =
        satisfies(GraphStructure(g).structure(), paper_formulas::all_selected());
    const bool arbiter =
        run_local(FormulaArbiter(paper_formulas::all_selected()), g, id).accepted;

    EXPECT_EQ(turing, local);
    EXPECT_EQ(local, formula);
    EXPECT_EQ(formula, arbiter);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllSelectedFourWays, ::testing::Range(0u, 15u));

/// Reduction soundness exercised end-to-end through machines: running the
/// EULERIAN decider distributedly on the reduced graph agrees with running
/// the ALL-SELECTED decider on the original (the simulation argument of
/// Section 8).
class ReductionThenDecide : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReductionThenDecide, EulerianDeciderOnReducedGraph) {
    Rng rng(GetParam() + 2000);
    LabeledGraph g = random_connected_graph(2 + rng.index(4), rng.index(3), rng, "1");
    if (rng.chance(0.5)) {
        g.set_label(rng.index(g.num_nodes()), "0");
    }
    const auto id = make_global_ids(g);
    const bool source = run_local(AllSelectedDecider{}, g, id).accepted;

    const ReducedGraph reduced = apply_reduction(AllSelectedToEulerian{}, g, id);
    const auto id2 = make_global_ids(reduced.graph);
    const bool target = run_local(EulerianDecider{}, reduced.graph, id2).accepted;
    EXPECT_EQ(source, target);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionThenDecide, ::testing::Range(0u, 12u));

/// NLP three ways: the certificate game with the coloring verifier, the
/// Sigma_1^LFO formula, and backtracking search.
class ColorabilityThreeWays : public ::testing::TestWithParam<unsigned> {};

TEST_P(ColorabilityThreeWays, Agreement) {
    Rng rng(GetParam() + 3000);
    const LabeledGraph g =
        random_connected_graph(3 + rng.index(3), rng.index(4), rng, "");
    const auto id = make_global_ids(g);
    const int k = 2 + static_cast<int>(rng.index(2));

    const bool search = is_k_colorable(g, k);

    const ColoringVerifier verifier(k);
    class Domain : public CertificateDomain {
    public:
        Domain(const ColoringVerifier& v) {
            for (int c = 0; c < v.k(); ++c) {
                options_.push_back(v.encode_color(c));
            }
        }
        std::vector<BitString> options(const LabeledGraph&,
                                       const IdentifierAssignment&,
                                       NodeId) const override {
            return options_;
        }

    private:
        std::vector<BitString> options_;
    };
    const Domain domain(verifier);
    const bool game =
        find_accepting_certificate(verifier, domain, g, id).has_value();

    FaginOptions options;
    const bool formula =
        eval_sentence_on_graph(paper_formulas::k_colorable(k), g, options);

    EXPECT_EQ(search, game) << "k=" << k;
    EXPECT_EQ(search, formula) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColorabilityThreeWays, ::testing::Range(0u, 10u));

/// Graph properties are closed under isomorphism (Section 3): machines must
/// accept a permuted copy (with correspondingly permuted identifiers) iff
/// they accept the original.
class IsomorphismInvariance : public ::testing::TestWithParam<unsigned> {};

TEST_P(IsomorphismInvariance, DecidersInvariant) {
    Rng rng(GetParam() + 4000);
    LabeledGraph g = random_connected_graph(3 + rng.index(5), rng.index(4), rng);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        g.set_label(u, rng.chance(0.5) ? "1" : "0");
    }
    std::vector<NodeId> perm(g.num_nodes());
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng.engine());
    const LabeledGraph h = permute_graph(g, perm);

    const auto id = make_global_ids(g);
    std::vector<BitString> permuted_ids(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        permuted_ids[perm[u]] = id(u);
    }
    const IdentifierAssignment id_h{std::move(permuted_ids)};

    EXPECT_EQ(run_local(AllSelectedDecider{}, g, id).accepted,
              run_local(AllSelectedDecider{}, h, id_h).accepted);
    EXPECT_EQ(run_local(EulerianDecider{}, g, id).accepted,
              run_local(EulerianDecider{}, h, id_h).accepted);
    EXPECT_EQ(run_turing(make_even_parity_turing(), g, id).accepted,
              run_turing(make_even_parity_turing(), h, id_h).accepted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsomorphismInvariance, ::testing::Range(0u, 10u));

/// Acceptance must be independent of the particular (locally unique)
/// identifier assignment (Section 4: "the collective decision must be
/// independent of the particular identifier assignment id").
class IdentifierIndependence : public ::testing::TestWithParam<unsigned> {};

TEST_P(IdentifierIndependence, SameVerdictUnderDifferentIds) {
    Rng rng(GetParam() + 5000);
    LabeledGraph g = random_connected_graph(4 + rng.index(5), rng.index(4), rng);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        g.set_label(u, rng.chance(0.7) ? "1" : "0");
    }
    const AllSelectedDecider all_selected;
    const EulerianDecider eulerian;
    const auto global = make_global_ids(g);
    const auto small_all = make_small_local_ids(g, all_selected.id_radius());
    const auto small_euler = make_small_local_ids(g, eulerian.id_radius());
    EXPECT_EQ(run_local(all_selected, g, global).accepted,
              run_local(all_selected, g, small_all).accepted);
    EXPECT_EQ(run_local(eulerian, g, global).accepted,
              run_local(eulerian, g, small_euler).accepted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdentifierIndependence, ::testing::Range(0u, 10u));

/// The LabelsAgree tape machine against a one-line oracle, across shapes.
TEST(TapeVsOracle, LabelsAgreeSweep) {
    Rng rng(99);
    const TuringMachine m = make_labels_agree_turing();
    for (int trial = 0; trial < 10; ++trial) {
        LabeledGraph g =
            random_connected_graph(2 + rng.index(4), rng.index(3), rng, "10");
        if (rng.chance(0.5)) {
            g.set_label(rng.index(g.num_nodes()), "11");
        }
        bool uniform = true;
        for (NodeId u = 0; u + 1 < g.num_nodes(); ++u) {
            uniform = uniform && g.label(u) == g.label(u + 1);
        }
        EXPECT_EQ(run_turing(m, g, make_global_ids(g)).accepted, uniform);
    }
}

} // namespace
} // namespace lph
