#include "core/check.hpp"
#include "graph/generators.hpp"
#include "sat/boolean_graph.hpp"
#include "sat/cnf.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

using namespace bf;

/// Brute-force satisfiability over <= 20 variables, as reference.
bool brute_force_sat(const BoolFormula& f) {
    const auto vars = bool_variables(f);
    std::vector<std::string> names(vars.begin(), vars.end());
    const std::uint64_t count = std::uint64_t{1} << names.size();
    for (std::uint64_t mask = 0; mask < count; ++mask) {
        Valuation v;
        for (std::size_t i = 0; i < names.size(); ++i) {
            v[names[i]] = (mask >> i) & 1;
        }
        if (eval_bool(f, v)) {
            return true;
        }
    }
    return false;
}

/// Random formula generator for property tests.
BoolFormula random_formula(Rng& rng, int depth, int num_vars) {
    if (depth == 0 || rng.chance(0.3)) {
        return var("P" + std::to_string(rng.index(static_cast<std::size_t>(num_vars))));
    }
    switch (rng.index(6)) {
    case 0:
        return bnot(random_formula(rng, depth - 1, num_vars));
    case 1:
        return band(random_formula(rng, depth - 1, num_vars),
                    random_formula(rng, depth - 1, num_vars));
    case 2:
        return bor(random_formula(rng, depth - 1, num_vars),
                   random_formula(rng, depth - 1, num_vars));
    case 3:
        return bimplies(random_formula(rng, depth - 1, num_vars),
                        random_formula(rng, depth - 1, num_vars));
    case 4:
        return biff(random_formula(rng, depth - 1, num_vars),
                    random_formula(rng, depth - 1, num_vars));
    default:
        return rng.chance(0.5) ? truth() : falsity();
    }
}

TEST(BoolFormula, EvalBasics) {
    const BoolFormula f = band(var("P"), bnot(var("Q")));
    EXPECT_TRUE(eval_bool(f, {{"P", true}, {"Q", false}}));
    EXPECT_FALSE(eval_bool(f, {{"P", true}, {"Q", true}}));
    EXPECT_THROW(eval_bool(f, {{"P", true}}), precondition_error);
}

TEST(BoolFormula, Variables) {
    const BoolFormula f = biff(var("A"), bor(var("B"), var("A")));
    EXPECT_EQ(bool_variables(f), (std::set<std::string>{"A", "B"}));
}

TEST(BoolFormula, ToStringAndParse) {
    const BoolFormula f =
        bimplies(band(var("P1"), bnot(var("Q"))), bor(truth(), falsity()));
    EXPECT_EQ(bool_to_string(f), ">(&(P1,!(Q)),|(#t,#f))");
}

class LabelRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(LabelRoundTrip, EncodeDecode) {
    Rng rng(GetParam());
    const BoolFormula f = random_formula(rng, 4, 3);
    const BitString label = encode_bool_label(f);
    EXPECT_TRUE(is_bit_string(label));
    const BoolFormula parsed = decode_bool_label(label);
    EXPECT_EQ(bool_to_string(parsed), bool_to_string(f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelRoundTrip, ::testing::Range(0u, 20u));

TEST(LabelCodec, RejectsMalformed) {
    EXPECT_THROW(decode_bool_label("0101"), precondition_error); // not 8-aligned
}

class TseytinEquisat : public ::testing::TestWithParam<unsigned> {};

TEST_P(TseytinEquisat, PreservesSatisfiability) {
    Rng rng(GetParam() + 100);
    const BoolFormula f = random_formula(rng, 4, 4);
    const Cnf cnf = tseytin_3cnf(f, "aux.");
    EXPECT_TRUE(is_3cnf(cnf));
    EXPECT_EQ(is_satisfiable(cnf), brute_force_sat(f));
}

TEST_P(TseytinEquisat, SatisfyingValuationsExtend) {
    // Every satisfying valuation of f extends to one of the Tseytin CNF.
    Rng rng(GetParam() + 500);
    const BoolFormula f = random_formula(rng, 3, 3);
    const Cnf cnf = tseytin_3cnf(f, "aux.");
    const auto model = dpll(cnf);
    if (model.has_value()) {
        // The restriction to f's variables satisfies f.
        Valuation restricted;
        for (const auto& v : bool_variables(f)) {
            restricted[v] = model->at(v);
        }
        EXPECT_TRUE(eval_bool(f, restricted));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TseytinEquisat, ::testing::Range(0u, 30u));

class DpllVsBruteForce : public ::testing::TestWithParam<unsigned> {};

TEST_P(DpllVsBruteForce, Agree) {
    Rng rng(GetParam() + 900);
    // Random 3-CNFs near the phase transition.
    const int vars = 5;
    const int clauses = 3 + static_cast<int>(rng.index(18));
    Cnf cnf;
    for (int c = 0; c < clauses; ++c) {
        Clause clause;
        for (int l = 0; l < 3; ++l) {
            clause.push_back({"P" + std::to_string(rng.index(vars)),
                              rng.chance(0.5)});
        }
        cnf.push_back(clause);
    }
    const auto model = dpll(cnf);
    EXPECT_EQ(model.has_value(), brute_force_sat(cnf_to_formula(cnf)));
    if (model.has_value()) {
        EXPECT_TRUE(eval_cnf(cnf, *model));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpllVsBruteForce, ::testing::Range(0u, 40u));

TEST(Dpll, EmptyAndTrivial) {
    EXPECT_TRUE(dpll({}).has_value());
    EXPECT_FALSE(dpll({{{"P", true}}, {{"P", false}}}).has_value());
    EXPECT_TRUE(dpll({{{"P", true}, {"P", false}}}).has_value());
}

TEST(FormulaToCnf, ParsesClauseShape) {
    const BoolFormula f =
        band(bor(var("A"), bnot(var("B"))), bor(var("C"), var("C")));
    const auto cnf = formula_to_cnf(f);
    ASSERT_TRUE(cnf.has_value());
    EXPECT_EQ(cnf->size(), 2u);
    EXPECT_FALSE(formula_to_cnf(bnot(band(var("A"), var("B")))).has_value());
}

// --- Boolean graphs (SAT-GRAPH semantics). ---

TEST(BooleanGraph, SharedVariableForcesAgreement) {
    // Node 0: P;  node 1: !P.  Adjacent and sharing P: unsatisfiable.
    LabeledGraph topo = path_graph(2, "");
    BooleanGraph bg(topo, {var("P"), bnot(var("P"))});
    EXPECT_FALSE(is_sat_graph(bg));
}

TEST(BooleanGraph, DistinctVariablesIndependent) {
    // Node 0: P;  node 1: !Q.  No sharing: satisfiable.
    LabeledGraph topo = path_graph(2, "");
    BooleanGraph bg(topo, {var("P"), bnot(var("Q"))});
    const auto vals = find_graph_valuation(bg);
    ASSERT_TRUE(vals.has_value());
    EXPECT_TRUE(verify_graph_valuation(bg, *vals));
    EXPECT_TRUE((*vals)[0].at("P"));
    EXPECT_FALSE((*vals)[1].at("Q"));
}

TEST(BooleanGraph, NonAdjacentNodesMayDisagree) {
    // Path 0-1-2 where ends force opposite values of P but the middle node
    // does not mention P: SAT-GRAPH consistency is only edgewise.
    LabeledGraph topo = path_graph(3, "");
    BooleanGraph bg(topo, {var("P"), var("Q"), bnot(var("P"))});
    EXPECT_TRUE(is_sat_graph(bg));
}

TEST(BooleanGraph, ChainPropagatesAgreement) {
    // Every node mentions P: the ends' conflict now propagates.
    LabeledGraph topo = path_graph(3, "");
    BooleanGraph bg(topo,
                    {var("P"), bor(var("P"), bnot(var("P"))), bnot(var("P"))});
    EXPECT_FALSE(is_sat_graph(bg));
}

TEST(BooleanGraph, DecodeFromLabels) {
    LabeledGraph topo = path_graph(2, "");
    const BooleanGraph original(topo, {var("P"), band(var("P"), var("Q"))});
    const BooleanGraph decoded = BooleanGraph::decode(original.graph());
    EXPECT_EQ(bool_to_string(decoded.formula(1)), "&(P,Q)");
}

TEST(BooleanGraph, CnfGraphDetection) {
    LabeledGraph topo = path_graph(2, "");
    const BooleanGraph cnf_graph(
        topo, {bor(var("A"), var("B")), band(bor(var("A"), bnot(var("C"))), var("D"))});
    EXPECT_TRUE(cnf_graph.is_3cnf_graph());
    const BooleanGraph non_cnf(topo, {bnot(band(var("A"), var("B"))), var("C")});
    EXPECT_FALSE(non_cnf.is_3cnf_graph());
}

class RandomBooleanGraphs : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomBooleanGraphs, ValuationsVerify) {
    Rng rng(GetParam() + 77);
    const std::size_t n = 2 + rng.index(4);
    LabeledGraph topo = random_connected_graph(n, rng.index(3), rng);
    std::vector<BoolFormula> formulas;
    for (std::size_t i = 0; i < n; ++i) {
        formulas.push_back(random_formula(rng, 3, 3));
    }
    const BooleanGraph bg(topo, formulas);
    const auto vals = find_graph_valuation(bg);
    if (vals.has_value()) {
        EXPECT_TRUE(verify_graph_valuation(bg, *vals));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBooleanGraphs, ::testing::Range(0u, 25u));

} // namespace
} // namespace lph
