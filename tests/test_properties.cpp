// Cross-cutting property tests: invariants that must hold across random
// instances, connecting several modules at once.

#include "core/check.hpp"
#include "dtm/gather.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "hierarchy/fagin.hpp"
#include "logic/examples.hpp"
#include "machines/deciders.hpp"
#include "reductions/classic_reductions.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace lph {
namespace {

/// Emits a canonical rendering of the gathered neighborhood: sorted node ids,
/// per-node label/certificate, and the sorted edge list (as id pairs).
class CanonicalViewMachine : public NeighborhoodGatherMachine {
public:
    explicit CanonicalViewMachine(int radius) : NeighborhoodGatherMachine(radius) {}
    std::string decide(const NeighborhoodView& view, StepMeter&) const override {
        std::ostringstream out;
        std::vector<std::size_t> order(view.graph.num_nodes());
        for (std::size_t i = 0; i < order.size(); ++i) {
            order[i] = i;
        }
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return view.ids[a] < view.ids[b];
        });
        for (std::size_t i : order) {
            out << view.ids[i] << "=" << view.graph.label(i) << "/"
                << view.certs[i] << ";";
        }
        std::vector<std::string> edges;
        for (NodeId u = 0; u < view.graph.num_nodes(); ++u) {
            for (NodeId v : view.graph.neighbors(u)) {
                if (view.ids[u] < view.ids[v]) {
                    edges.push_back(view.ids[u] + "-" + view.ids[v]);
                }
            }
        }
        std::sort(edges.begin(), edges.end());
        for (const auto& e : edges) {
            out << e << "|";
        }
        return out.str();
    }
};

/// The same canonical rendering computed centrally from the true
/// r-neighborhood.
std::string canonical_truth(const LabeledGraph& g, const IdentifierAssignment& id,
                            const CertificateListAssignment& certs, NodeId u,
                            int radius) {
    const auto sub = g.neighborhood(u, radius);
    std::ostringstream out;
    std::vector<NodeId> order = sub.to_original;
    std::sort(order.begin(), order.end(),
              [&](NodeId a, NodeId b) { return id(a) < id(b); });
    for (NodeId v : order) {
        out << id(v) << "=" << g.label(v) << "/" << certs(v) << ";";
    }
    std::vector<std::string> edges;
    for (NodeId a : sub.to_original) {
        for (NodeId b : g.neighbors(a)) {
            if (sub.from_original.count(b) != 0 && id(a) < id(b)) {
                edges.push_back(id(a) + "-" + id(b));
            }
        }
    }
    std::sort(edges.begin(), edges.end());
    for (const auto& e : edges) {
        out << e << "|";
    }
    return out.str();
}

class GatherExactness : public ::testing::TestWithParam<unsigned> {};

TEST_P(GatherExactness, ViewEqualsTrueNeighborhood) {
    // The flooding protocol reconstructs N_r(u) exactly: same nodes, labels,
    // certificates, and edges — for every node, graph shape, and radius.
    Rng rng(GetParam() + 11);
    LabeledGraph g = random_connected_graph(3 + rng.index(8), rng.index(8), rng);
    randomize_labels(g, 1 + rng.index(3), rng);
    const int radius = static_cast<int>(rng.index(4));
    const CanonicalViewMachine machine(radius);
    const auto id = make_global_ids(g);
    std::vector<BitString> raw_certs(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        raw_certs[u] = encode_unsigned_width(rng.index(16), 4);
    }
    const auto certs = CertificateListAssignment::concatenate(
        {CertificateAssignment(raw_certs)}, g.num_nodes());
    const auto result = run_local(machine, g, id, certs);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        EXPECT_EQ(result.raw_outputs[u], canonical_truth(g, id, certs, u, radius))
            << "node " << u << " radius " << radius;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatherExactness, ::testing::Range(0u, 25u));

class GatherUnderSmallIds : public ::testing::TestWithParam<unsigned> {};

TEST_P(GatherUnderSmallIds, SmallLocalIdsSuffice) {
    // Remark 1 meets the gather protocol: small (radius+2)-locally-unique
    // identifiers are enough for exact reconstruction.
    Rng rng(GetParam() + 500);
    LabeledGraph g = random_connected_graph(6 + rng.index(10), rng.index(6), rng);
    const int radius = 1 + static_cast<int>(rng.index(2));
    const CanonicalViewMachine machine(radius);
    const auto id = make_small_local_ids(g, machine.id_radius());
    const auto certs = CertificateListAssignment::empty(g.num_nodes());
    const auto result = run_local(machine, g, id, certs);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        EXPECT_EQ(result.raw_outputs[u], canonical_truth(g, id, certs, u, radius));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatherUnderSmallIds, ::testing::Range(0u, 15u));

class ReductionIsomorphismInvariance : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReductionIsomorphismInvariance, PermutedInputsGiveIsomorphicOutputs) {
    // Reductions compute graph functions: isomorphic inputs (with matching
    // identifiers) yield isomorphic outputs.
    Rng rng(GetParam() + 900);
    LabeledGraph g = random_connected_graph(3 + rng.index(4), rng.index(3), rng, "1");
    if (rng.chance(0.5)) {
        g.set_label(rng.index(g.num_nodes()), "0");
    }
    std::vector<NodeId> perm(g.num_nodes());
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng.engine());
    const LabeledGraph h = permute_graph(g, perm);
    const auto id_g = make_global_ids(g);
    std::vector<BitString> permuted(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        permuted[perm[u]] = id_g(u);
    }
    const IdentifierAssignment id_h{std::move(permuted)};

    const AllSelectedToEulerian reduction;
    const ReducedGraph rg = apply_reduction(reduction, g, id_g);
    const ReducedGraph rh = apply_reduction(reduction, h, id_h);
    EXPECT_TRUE(are_isomorphic(rg.graph, rh.graph));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionIsomorphismInvariance,
                         ::testing::Range(0u, 10u));

class DeterministicExecution : public ::testing::TestWithParam<unsigned> {};

TEST_P(DeterministicExecution, RerunsAreBitIdentical) {
    Rng rng(GetParam() + 1300);
    LabeledGraph g = random_connected_graph(4 + rng.index(6), rng.index(5), rng);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        g.set_label(u, rng.chance(0.5) ? "1" : "0");
    }
    const auto id = make_global_ids(g);
    const AllSelectedDecider machine;
    const auto a = run_local(machine, g, id);
    const auto b = run_local(machine, g, id);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.total_steps, b.total_steps);
    EXPECT_EQ(a.total_message_bytes, b.total_message_bytes);
    EXPECT_EQ(a.rounds, b.rounds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterministicExecution, ::testing::Range(0u, 8u));

class FaginFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(FaginFuzz, TwoColorableAgreementOnRandomGraphs) {
    Rng rng(GetParam() + 1700);
    const LabeledGraph g = random_connected_graph(3 + rng.index(2), rng.index(3),
                                                  rng, "");
    FaginOptions options;
    options.max_tuples_per_variable = 16;
    const auto report = check_fagin_agreement(paper_formulas::two_colorable(), g,
                                              make_global_ids(g), options);
    EXPECT_TRUE(report.agree) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaginFuzz, ::testing::Range(0u, 8u));

} // namespace
} // namespace lph
