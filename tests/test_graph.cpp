#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

TEST(LabeledGraph, AddNodesAndEdges) {
    LabeledGraph g;
    const NodeId a = g.add_node("1");
    const NodeId b = g.add_node("0");
    g.add_edge(a, b);
    EXPECT_EQ(g.num_nodes(), 2u);
    EXPECT_EQ(g.num_edges(), 1u);
    EXPECT_TRUE(g.has_edge(a, b));
    EXPECT_TRUE(g.has_edge(b, a));
    EXPECT_EQ(g.label(a), "1");
    EXPECT_EQ(g.degree(a), 1u);
}

TEST(LabeledGraph, RejectsSelfLoopsAndDuplicates) {
    LabeledGraph g;
    const NodeId a = g.add_node();
    const NodeId b = g.add_node();
    g.add_edge(a, b);
    EXPECT_THROW(g.add_edge(a, a), precondition_error);
    EXPECT_THROW(g.add_edge(b, a), precondition_error);
}

TEST(LabeledGraph, RemoveEdge) {
    LabeledGraph g;
    const NodeId a = g.add_node();
    const NodeId b = g.add_node();
    const NodeId c = g.add_node();
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.remove_edge(b, a); // either endpoint order
    EXPECT_EQ(g.num_edges(), 1u);
    EXPECT_FALSE(g.has_edge(a, b));
    EXPECT_TRUE(g.has_edge(b, c));
    EXPECT_THROW(g.remove_edge(a, b), precondition_error); // already gone
    EXPECT_THROW(g.remove_edge(a, a), precondition_error);
    EXPECT_THROW(g.remove_edge(a, 9), precondition_error);
    g.add_edge(a, b); // removal leaves the slot reusable
    EXPECT_TRUE(g.has_edge(a, b));
}

TEST(LabeledGraph, RemoveNodeRenumbersAndRequiresIsolation) {
    LabeledGraph g;
    g.add_node("1");
    g.add_node("0");
    g.add_node("1");
    g.add_node("0");
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    EXPECT_THROW(g.remove_node(0), precondition_error); // degree 1
    g.remove_edge(0, 1);
    g.remove_node(1);
    // Nodes 2,3 renumber down to 1,2; the edge and labels follow.
    EXPECT_EQ(g.num_nodes(), 3u);
    EXPECT_TRUE(g.has_edge(1, 2));
    EXPECT_EQ(g.label(0), "1");
    EXPECT_EQ(g.label(1), "1");
    EXPECT_EQ(g.label(2), "0");
    EXPECT_THROW(g.remove_node(7), precondition_error);
}

TEST(LabeledGraph, RejectsNonBitLabels) {
    LabeledGraph g;
    EXPECT_THROW(g.add_node("abc"), precondition_error);
    const NodeId a = g.add_node();
    EXPECT_THROW(g.set_label(a, "2"), precondition_error);
}

TEST(LabeledGraph, NeighborsSorted) {
    LabeledGraph g;
    for (int i = 0; i < 4; ++i) {
        g.add_node();
    }
    g.add_edge(2, 0);
    g.add_edge(2, 3);
    g.add_edge(2, 1);
    EXPECT_EQ(g.neighbors(2), (std::vector<NodeId>{0, 1, 3}));
}

TEST(LabeledGraph, StructuralDegree) {
    LabeledGraph g;
    const NodeId a = g.add_node("101");
    const NodeId b = g.add_node("");
    g.add_edge(a, b);
    EXPECT_EQ(g.structural_degree(a), 4u); // degree 1 + 3 label bits
    EXPECT_EQ(g.structural_degree(b), 1u);
    EXPECT_EQ(g.max_structural_degree(), 4u);
}

TEST(LabeledGraph, Connectivity) {
    LabeledGraph g;
    g.add_node();
    g.add_node();
    EXPECT_FALSE(g.is_connected());
    g.add_edge(0, 1);
    EXPECT_TRUE(g.is_connected());
    EXPECT_NO_THROW(g.validate());
}

TEST(LabeledGraph, Distances) {
    const LabeledGraph g = path_graph(5);
    const auto dist = g.distances_from(0);
    EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(g.diameter(), 4);
}

TEST(LabeledGraph, Ball) {
    const LabeledGraph g = cycle_graph(6);
    EXPECT_EQ(g.ball(0, 0), (std::vector<NodeId>{0}));
    EXPECT_EQ(g.ball(0, 1), (std::vector<NodeId>{0, 1, 5}));
    EXPECT_EQ(g.ball(0, 2), (std::vector<NodeId>{0, 1, 2, 4, 5}));
    EXPECT_EQ(g.ball(0, 3).size(), 6u);
}

TEST(LabeledGraph, InducedSubgraph) {
    const LabeledGraph g = cycle_graph(5, "1");
    const auto sub = g.induced({0, 1, 2});
    EXPECT_EQ(sub.graph.num_nodes(), 3u);
    EXPECT_EQ(sub.graph.num_edges(), 2u); // the 0-1 and 1-2 path edges
    EXPECT_EQ(sub.to_original[0], 0u);
    EXPECT_EQ(sub.from_original.at(2), 2u);
}

TEST(LabeledGraph, NeighborhoodMatchesBall) {
    const LabeledGraph g = grid_graph(3, 3);
    const auto nb = g.neighborhood(4, 1); // center of the grid
    EXPECT_EQ(nb.graph.num_nodes(), 5u);
    EXPECT_EQ(nb.graph.num_edges(), 4u); // star around the center
}

struct GeneratorCase {
    std::string name;
    std::size_t nodes;
    std::size_t edges;
    int diameter;
};

class Generators : public ::testing::TestWithParam<GeneratorCase> {};

LabeledGraph build(const std::string& name) {
    if (name == "path5") return path_graph(5);
    if (name == "cycle6") return cycle_graph(6);
    if (name == "complete4") return complete_graph(4);
    if (name == "star5") return star_graph(5);
    if (name == "grid23") return grid_graph(2, 3);
    check(false, "unknown generator");
    return LabeledGraph{};
}

TEST_P(Generators, ShapeAndConnectivity) {
    const auto& param = GetParam();
    const LabeledGraph g = build(param.name);
    EXPECT_EQ(g.num_nodes(), param.nodes);
    EXPECT_EQ(g.num_edges(), param.edges);
    EXPECT_TRUE(g.is_connected());
    EXPECT_EQ(g.diameter(), param.diameter);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Generators,
    ::testing::Values(GeneratorCase{"path5", 5, 4, 4},
                      GeneratorCase{"cycle6", 6, 6, 3},
                      GeneratorCase{"complete4", 4, 6, 1},
                      GeneratorCase{"star5", 5, 4, 2},
                      GeneratorCase{"grid23", 6, 7, 3}),
    [](const auto& info) { return info.param.name; });

class RandomGraphs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomGraphs, TreesAreTrees) {
    Rng rng(GetParam());
    const std::size_t n = 2 + GetParam() % 20;
    const LabeledGraph g = random_tree(n, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), n - 1);
    EXPECT_TRUE(g.is_connected());
}

TEST_P(RandomGraphs, ConnectedGraphsConnected) {
    Rng rng(GetParam());
    const std::size_t n = 3 + GetParam() % 15;
    const LabeledGraph g = random_connected_graph(n, GetParam() % 5, rng);
    EXPECT_TRUE(g.is_connected());
    EXPECT_GE(g.num_edges(), n - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphs, ::testing::Range<std::size_t>(0, 12));

TEST(Generators, LabelHelpers) {
    LabeledGraph g = path_graph(4, "0");
    set_all_labels(g, "11");
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        EXPECT_EQ(g.label(u), "11");
    }
    Rng rng(5);
    randomize_labels(g, 3, rng);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        EXPECT_EQ(g.label(u).size(), 3u);
    }
}

TEST(LabeledGraph, DotOutput) {
    const LabeledGraph g = path_graph(2, "1");
    const std::string dot = g.to_dot("T");
    EXPECT_NE(dot.find("graph T"), std::string::npos);
    EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
}

TEST(LabeledGraph, SingleNode) {
    const LabeledGraph g = single_node_graph("101");
    EXPECT_EQ(g.num_nodes(), 1u);
    EXPECT_EQ(g.label(0), "101");
    EXPECT_TRUE(g.is_connected());
    EXPECT_EQ(g.diameter(), 0);
}

} // namespace
} // namespace lph

#include "graph/serialize.hpp"

namespace lph {
namespace {

class SerializeRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(SerializeRoundTrip, TextFormatRoundTrips) {
    Rng rng(GetParam() + 3100);
    LabeledGraph g = random_connected_graph(2 + rng.index(10), rng.index(8), rng);
    randomize_labels(g, rng.index(4), rng);
    const LabeledGraph back = graph_from_text(graph_to_text(g));
    EXPECT_TRUE(g == back);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundTrip, ::testing::Range(0u, 12u));

TEST(Serialize, ParsesCommentsAndBlanks) {
    const LabeledGraph g = graph_from_text(
        "# a triangle\n"
        "graph 3\n"
        "\n"
        "label 0 101  # node zero\n"
        "edge 0 1\n"
        "edge 1 2\n"
        "edge 2 0\n");
    EXPECT_EQ(g.num_nodes(), 3u);
    EXPECT_EQ(g.num_edges(), 3u);
    EXPECT_EQ(g.label(0), "101");
}

TEST(Serialize, RejectsMalformed) {
    EXPECT_THROW(graph_from_text("edge 0 1\n"), precondition_error); // no header
    EXPECT_THROW(graph_from_text("graph 2\nedge 0 5\n"), precondition_error);
    EXPECT_THROW(graph_from_text("graph 2\nlabel 0 xyz\n"), precondition_error);
    EXPECT_THROW(graph_from_text("graph 2\nfrobnicate\n"), precondition_error);
}

/// Returns the parse-error message for malformed input ("" if it parsed).
std::string parse_error(const std::string& text) {
    try {
        graph_from_text(text);
    } catch (const precondition_error& e) {
        return e.what();
    }
    return "";
}

TEST(Serialize, ErrorsCarryLineNumberAndToken) {
    const std::string bad_label = parse_error("graph 2\nlabel 0 xyz\n");
    EXPECT_NE(bad_label.find("(line 2)"), std::string::npos) << bad_label;
    EXPECT_NE(bad_label.find("'xyz'"), std::string::npos) << bad_label;

    const std::string bad_directive = parse_error("graph 1\n\n\nwibble 0\n");
    EXPECT_NE(bad_directive.find("(line 4)"), std::string::npos) << bad_directive;
    EXPECT_NE(bad_directive.find("'wibble'"), std::string::npos) << bad_directive;
}

TEST(Serialize, RejectsTruncatedHeader) {
    EXPECT_THROW(graph_from_text(""), precondition_error);
    EXPECT_THROW(graph_from_text("graph\n"), precondition_error);
    EXPECT_THROW(graph_from_text("graph\nedge 0 1\n"), precondition_error);
    const std::string msg = parse_error("graph\n");
    EXPECT_NE(msg.find("node count"), std::string::npos) << msg;
}

TEST(Serialize, RejectsNegativeAndNonNumericIds) {
    EXPECT_THROW(graph_from_text("graph -3\n"), precondition_error);
    EXPECT_THROW(graph_from_text("graph 3\nedge -1 2\n"), precondition_error);
    EXPECT_THROW(graph_from_text("graph 3\nedge 0 2x\n"), precondition_error);
    EXPECT_THROW(graph_from_text("graph 3\nlabel -0 1\n"), precondition_error);
    const std::string msg = parse_error("graph 3\nedge -1 2\n");
    EXPECT_NE(msg.find("'-1'"), std::string::npos) << msg;
}

TEST(Serialize, RejectsTrailingJunk) {
    EXPECT_THROW(graph_from_text("graph 2 junk\n"), precondition_error);
    EXPECT_THROW(graph_from_text("graph 2\nedge 0 1 zzz\n"), precondition_error);
    EXPECT_THROW(graph_from_text("graph 2\nlabel 0 1 1\n"), precondition_error);
    const std::string msg = parse_error("graph 2\nedge 0 1 zzz\n");
    EXPECT_NE(msg.find("trailing junk 'zzz'"), std::string::npos) << msg;
    // A '#' comment is not junk.
    EXPECT_NO_THROW(graph_from_text("graph 2\nedge 0 1 # fine\n"));
}

TEST(Serialize, RejectsDuplicateDirectives) {
    EXPECT_THROW(graph_from_text("graph 2\ngraph 2\n"), precondition_error);
    EXPECT_THROW(graph_from_text("graph 2\nlabel 0 1\nlabel 0 0\n"),
                 precondition_error);
    EXPECT_THROW(graph_from_text("graph 2\nedge 0 1\nedge 1 0\n"),
                 precondition_error);
    EXPECT_THROW(graph_from_text("graph 2\nedge 1 1\n"), precondition_error);
    const std::string msg = parse_error("graph 2\nedge 0 1\nedge 1 0\n");
    EXPECT_NE(msg.find("duplicate edge"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(line 3)"), std::string::npos) << msg;
}

TEST(Serialize, RejectsOversizedIndex) {
    EXPECT_THROW(graph_from_text("graph 12345678901234567890\n"),
                 precondition_error);
}

TEST(Generators, CompleteBipartiteWheelPetersen) {
    const LabeledGraph k23 = complete_bipartite_graph(2, 3);
    EXPECT_EQ(k23.num_nodes(), 5u);
    EXPECT_EQ(k23.num_edges(), 6u);
    EXPECT_TRUE(k23.is_connected());

    const LabeledGraph w6 = wheel_graph(6);
    EXPECT_EQ(w6.num_nodes(), 6u);
    EXPECT_EQ(w6.num_edges(), 10u); // 5-cycle + 5 spokes
    EXPECT_EQ(w6.degree(5), 5u);

    const LabeledGraph petersen = petersen_graph();
    EXPECT_EQ(petersen.num_nodes(), 10u);
    EXPECT_EQ(petersen.num_edges(), 15u);
    for (NodeId u = 0; u < 10; ++u) {
        EXPECT_EQ(petersen.degree(u), 3u);
    }
    EXPECT_EQ(petersen.diameter(), 2);
}

} // namespace
} // namespace lph
