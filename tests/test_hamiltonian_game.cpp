#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graphalg/hamiltonian.hpp"
#include "hierarchy/hamiltonian_game.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

TEST(TwoFactors, CycleHasExactlyOne) {
    const LabeledGraph g = cycle_graph(5, "");
    const auto factors = all_two_factors(g);
    ASSERT_EQ(factors.size(), 1u);
    EXPECT_EQ(factors[0].size(), 5u);
    EXPECT_TRUE(all_degree_two(g, factors[0]));
    EXPECT_EQ(h_components(g, factors[0]).size(), 1u);
}

TEST(TwoFactors, K4HasThree) {
    // K4's 2-factors are its three Hamiltonian cycles.
    const auto factors = all_two_factors(complete_graph(4, ""));
    EXPECT_EQ(factors.size(), 3u);
}

TEST(TwoFactors, PathHasNone) {
    EXPECT_TRUE(all_two_factors(path_graph(4, "")).empty());
}

TEST(TwoFactors, DisconnectedFactorExists) {
    // Two triangles joined by one edge: the only 2-factor is the two
    // disjoint triangles (the bridge cannot be used).
    LabeledGraph g;
    for (int i = 0; i < 6; ++i) {
        g.add_node("");
    }
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    g.add_edge(5, 3);
    g.add_edge(0, 3); // the bridge
    const auto factors = all_two_factors(g);
    ASSERT_EQ(factors.size(), 1u);
    EXPECT_EQ(h_components(g, factors[0]).size(), 2u);
    // Adam's component answer defeats this H (Example 6's second phase).
    EXPECT_TRUE(adam_beats_disconnected(g, factors[0]));
    // And the full game correctly concludes: not Hamiltonian.
    EXPECT_FALSE(hamiltonian_game(g).eve_wins);
    EXPECT_FALSE(is_hamiltonian(g));
}

TEST(EveAnswers, TrivialAndPartitionedCases) {
    const LabeledGraph g = cycle_graph(6, "");
    const EdgeSet h = all_two_factors(g)[0];
    // Trivial S.
    EXPECT_TRUE(eve_answers_s(g, h, std::vector<bool>(6, false)));
    EXPECT_TRUE(eve_answers_s(g, h, std::vector<bool>(6, true)));
    // Any nontrivial S cuts the cycle: she finds the discontinuity.
    std::vector<bool> s(6, false);
    s[1] = s[2] = true;
    EXPECT_TRUE(eve_answers_s(g, h, s));
}

class HamiltonianGameSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(HamiltonianGameSweep, GameValueEqualsHamiltonicity) {
    // Example 6's equivalence, instance by instance, with the internal
    // consistency checks replaying every Adam move on cycles and verifying
    // his winning answer on disconnected 2-factors.
    Rng rng(GetParam() + 17);
    const LabeledGraph g =
        random_connected_graph(4 + rng.index(4), rng.index(6), rng, "");
    const auto result = hamiltonian_game(g);
    EXPECT_EQ(result.eve_wins, is_hamiltonian(g)) << "seed " << GetParam();
    if (result.eve_wins) {
        ASSERT_TRUE(result.winning_h.has_value());
        EXPECT_TRUE(all_degree_two(g, *result.winning_h));
        EXPECT_EQ(h_components(g, *result.winning_h).size(), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HamiltonianGameSweep, ::testing::Range(0u, 15u));

TEST(HamiltonianGameFacts, KnownGraphs) {
    EXPECT_TRUE(hamiltonian_game(cycle_graph(5, "")).eve_wins);
    EXPECT_TRUE(hamiltonian_game(complete_graph(4, "")).eve_wins);
    EXPECT_FALSE(hamiltonian_game(path_graph(4, "")).eve_wins);
    EXPECT_FALSE(hamiltonian_game(star_graph(4, "")).eve_wins);
    EXPECT_FALSE(hamiltonian_game(grid_graph(3, 3, "")).eve_wins);
    EXPECT_TRUE(hamiltonian_game(grid_graph(2, 3, "")).eve_wins);
}

class NonHamiltonianGameSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(NonHamiltonianGameSweep, GameValueEqualsNonHamiltonicity) {
    // Example 7's Pi_4 game: Adam proposes any H; Eve's constructive
    // refutations succeed exactly when the graph has no Hamiltonian cycle.
    Rng rng(GetParam() + 40);
    const LabeledGraph g =
        random_connected_graph(4 + rng.index(2), rng.index(3), rng, "");
    if (g.num_edges() > 10) {
        return; // 2^|E| Adam moves
    }
    const auto result = non_hamiltonian_game(g);
    EXPECT_EQ(result.eve_wins, !is_hamiltonian(g)) << "seed " << GetParam();
    EXPECT_EQ(result.adam_subgraphs_tried > 0, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonHamiltonianGameSweep, ::testing::Range(0u, 15u));

TEST(NonHamiltonianGameFacts, KnownGraphs) {
    EXPECT_TRUE(non_hamiltonian_game(path_graph(4, "")).eve_wins);
    EXPECT_TRUE(non_hamiltonian_game(star_graph(4, "")).eve_wins);
    EXPECT_FALSE(non_hamiltonian_game(cycle_graph(5, "")).eve_wins);
    EXPECT_FALSE(non_hamiltonian_game(complete_graph(4, "")).eve_wins);
}

TEST(EdgeSetHelpers, FromCycleAndDiscontinuity) {
    const auto h = edge_set_from_cycle({0, 1, 2, 3});
    EXPECT_EQ(h.size(), 4u);
    EXPECT_TRUE(h.count({0, 3}) == 1);
    std::vector<bool> s{true, true, false, false};
    EXPECT_TRUE(has_discontinuity(h, s));
    std::vector<bool> all(4, true);
    EXPECT_FALSE(has_discontinuity(h, all));
}

} // namespace
} // namespace lph
