// Tests for the admission-control subsystem (src/service/admission): the
// calibrated cost model's monotonicity and saturation caps, the
// reject/defer/admit decision tree, and the ServiceCore integration — a
// structured AdmissionRejected response (never a hang), big jobs routed to
// their own queue so interactive requests are served first, and the
// admission counters flowing through ServiceStats.

#include "service/admission/admission.hpp"
#include "service/admission/cost_model.hpp"
#include "service/core.hpp"
#include "service/wire.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

namespace {

using namespace lph;
using namespace lph::service;

std::string cycle6_payload() {
    return "graph 6\\nedge 0 1\\nedge 1 2\\nedge 2 3\\nedge 3 4\\nedge 4 5\\n"
           "edge 5 0\\n";
}

Request eval_request(const std::string& formula, const std::string& id) {
    return parse_request("{\"type\":\"eval\",\"id\":\"" + id +
                             "\",\"formula\":\"" + formula + "\",\"graph\":\"" +
                             cycle6_payload() + "\"}",
                         1, WireLimits{});
}

/// Hostile-but-valid input: eight unbounded quantifiers price far beyond any
/// sane admission limit (the evaluator would visit ~n^8 assignments).
std::string oversized_formula() {
    return "exists a. exists b. exists c. exists d. exists e. exists f. "
           "exists g. exists h. (a = b & O1(c))";
}

// -------------------------------------------------------------- cost model -

TEST(CostModel, MonotoneInEveryFeatureUntilCapsSaturate) {
    const auto cost = [](std::size_t n, int r, std::size_t q, int d,
                         const char* backend) {
        return admission::predict_cost_us(n, r, q, d, backend);
    };
    // Nodes.
    EXPECT_LT(cost(8, 1, 2, 0, "interpreted"), cost(16, 1, 2, 0, "interpreted"));
    // Radius grows the ball until it saturates at the whole universe.
    EXPECT_LT(cost(8, 0, 2, 0, "interpreted"), cost(8, 1, 2, 0, "interpreted"));
    EXPECT_LT(cost(8, 1, 2, 0, "interpreted"), cost(8, 2, 2, 0, "interpreted"));
    EXPECT_EQ(cost(8, 3, 2, 0, "interpreted"), cost(8, 9, 2, 0, "interpreted"));
    // Quantifier count, capped at the exponent guard.
    EXPECT_LT(cost(8, 1, 1, 0, "interpreted"), cost(8, 1, 2, 0, "interpreted"));
    EXPECT_EQ(cost(8, 1, 12, 0, "interpreted"),
              cost(8, 1, 20, 0, "interpreted"));
    // Alternation depth, capped at the SO exponent guard.
    EXPECT_LT(cost(8, 1, 1, 0, "interpreted"), cost(8, 1, 1, 1, "interpreted"));
    EXPECT_EQ(cost(8, 1, 1, 2, "interpreted"), cost(8, 1, 1, 3, "interpreted"));
    // The compiled backend is priced at its measured discount.
    EXPECT_DOUBLE_EQ(cost(8, 1, 2, 1, "compiled"),
                     0.25 * cost(8, 1, 2, 1, "interpreted"));
}

TEST(CostModel, CalibrationConstantsAreSane) {
    const admission::CostModel& model = admission::calibrated_cost_model();
    EXPECT_GT(model.base_us, 0.0);
    EXPECT_GT(model.per_element_us, 0.0);
    EXPECT_GT(model.elements_per_node, 0.0);
}

TEST(CostModel, OracleChecksArePricedPerInstance) {
    const Request r = parse_request(
        "{\"type\":\"oracle_check\",\"check\":\"eulerian-vs-bruteforce\","
        "\"seed\":1,\"instances\":10}",
        1, WireLimits{});
    const admission::CostModel& model = admission::calibrated_cost_model();
    EXPECT_DOUBLE_EQ(admission::predict_request_cost_us(r, 0),
                     model.oracle_instance_us * 10);
}

// ---------------------------------------------------------- decision tree --

TEST(AdmissionDecide, RejectDeferAdmitByThreshold) {
    const Request cheap = eval_request("exists x. O1(x)", "a");
    const Request big = eval_request(oversized_formula(), "b");

    admission::AdmissionOptions options;
    options.enabled = true;
    options.max_cost_us = 5e6;
    options.defer_cost_us = 250e3;

    const admission::Decision admit = admission::decide(cheap, 0, options);
    EXPECT_EQ(admit.verdict, admission::Verdict::Admit);
    EXPECT_GT(admit.predicted_us, 0.0);

    const admission::Decision reject = admission::decide(big, 0, options);
    EXPECT_EQ(reject.verdict, admission::Verdict::Reject);
    EXPECT_GT(reject.predicted_us, options.max_cost_us);
    EXPECT_DOUBLE_EQ(reject.limit_us, options.max_cost_us);

    // Between the thresholds: deferred to the big-job queue.
    options.max_cost_us = reject.predicted_us * 2;
    const admission::Decision defer = admission::decide(big, 0, options);
    EXPECT_EQ(defer.verdict, admission::Verdict::Defer);
    EXPECT_DOUBLE_EQ(defer.limit_us, options.defer_cost_us);
}

TEST(AdmissionDecide, ControlPlaneIsNeverWorkload) {
    EXPECT_FALSE(admission::is_workload(RequestType::Stats));
    EXPECT_FALSE(admission::is_workload(RequestType::Health));
    EXPECT_FALSE(admission::is_workload(RequestType::GraphRegister));
    EXPECT_FALSE(admission::is_workload(RequestType::GraphPatch));
    EXPECT_TRUE(admission::is_workload(RequestType::Eval));
    EXPECT_TRUE(admission::is_workload(RequestType::Game));
}

// --------------------------------------------------- ServiceCore wiring ----

ServiceOptions admission_options() {
    ServiceOptions options;
    options.manual_drain = true;
    options.admission.enabled = true;
    return options;
}

TEST(AdmissionCore, OversizedRequestIsStructuredRejection) {
    ServiceCore core(admission_options());
    std::future<Response> f = core.submit(eval_request(oversized_formula(), "x"));
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    const Response r = f.get();
    EXPECT_EQ(r.status, "rejected");
    EXPECT_EQ(r.error, "AdmissionRejected");
    EXPECT_NE(r.detail.find("predicted cost"), std::string::npos);
    EXPECT_NE(r.body.find("\"predicted_cost_us\":"), std::string::npos);
    EXPECT_NE(r.body.find("\"admission_limit_us\":"), std::string::npos);
    EXPECT_EQ(r.id, "\"x\"");

    const ServiceStats stats = core.stats();
    EXPECT_EQ(stats.admission_rejected, 1u);
    EXPECT_EQ(stats.admission_admitted, 0u);
    core.stop();
}

TEST(AdmissionCore, DeferredJobsWaitBehindInteractiveOnes) {
    ServiceOptions options = admission_options();
    // Price every request above the defer threshold except the trivial one.
    options.admission.defer_cost_us = 1e5;
    options.admission.max_cost_us = 1e18;
    ServiceCore core(options);

    // Four quantifiers price past 1e5 us but still execute in milliseconds.
    std::future<Response> big = core.submit(
        eval_request("exists a. exists b. exists c. exists d. a = b", "big"));
    std::future<Response> small =
        core.submit(eval_request("exists x. O1(x)", "small"));

    {
        const ServiceStats stats = core.stats();
        EXPECT_EQ(stats.admission_deferred, 1u);
        EXPECT_EQ(stats.admission_admitted, 1u);
        EXPECT_EQ(stats.big_queue_depth, 1u);
        EXPECT_EQ(stats.queue_depth, 1u);
    }

    // The manual pump drains the interactive queue first, even though the
    // big job was submitted first.
    ASSERT_TRUE(core.drain_some());
    ASSERT_EQ(small.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(big.wait_for(std::chrono::seconds(0)),
              std::future_status::timeout);
    EXPECT_EQ(small.get().status, "ok");

    ASSERT_TRUE(core.drain_some());
    EXPECT_EQ(big.get().status, "ok");
    EXPECT_EQ(core.stats().big_queue_depth, 0u);
    core.stop();
}

TEST(AdmissionCore, BigJobPoolIsolatesInteractiveTrafficUnderLoad) {
    ServiceOptions options;
    options.threads = 2;
    options.admission.enabled = true;
    options.admission.defer_cost_us = 1e5;
    options.admission.max_cost_us = 1e18;
    options.admission.big_job_threads = 1;
    ServiceCore core(options);

    std::vector<std::future<Response>> big, small;
    for (int i = 0; i < 4; ++i) {
        big.push_back(core.submit(eval_request(
            "exists a. exists b. exists c. exists d. a = b",
            "big" + std::to_string(i))));
    }
    for (int i = 0; i < 16; ++i) {
        small.push_back(core.submit(
            eval_request("exists x. O1(x)", "small" + std::to_string(i))));
    }
    for (auto& f : small) {
        EXPECT_EQ(f.get().status, "ok");
    }
    for (auto& f : big) {
        EXPECT_EQ(f.get().status, "ok");
    }
    const ServiceStats stats = core.stats();
    EXPECT_EQ(stats.admission_deferred, 4u);
    EXPECT_EQ(stats.admission_admitted, 16u);
    EXPECT_EQ(stats.admission_rejected, 0u);
    core.stop();
}

TEST(AdmissionCore, DisabledAdmissionCountsNothing) {
    ServiceOptions options;
    options.manual_drain = true;
    ServiceCore core(options);
    std::future<Response> f = core.submit(eval_request("exists x. O1(x)", "a"));
    ASSERT_TRUE(core.drain_some());
    EXPECT_EQ(f.get().status, "ok");
    const ServiceStats stats = core.stats();
    EXPECT_EQ(stats.admission_admitted, 0u);
    EXPECT_EQ(stats.admission_rejected, 0u);
    EXPECT_EQ(stats.admission_deferred, 0u);
    core.stop();
}

TEST(AdmissionCore, ControlPlaneAlwaysAdmittedEvenWithTinyLimit) {
    ServiceOptions options = admission_options();
    options.admission.max_cost_us = 0.001; // rejects every priced workload
    ServiceCore core(options);

    std::future<Response> health =
        core.submit(parse_request("{\"type\":\"health\"}", 1, WireLimits{}));
    std::future<Response> stats_rq =
        core.submit(parse_request("{\"type\":\"stats\"}", 1, WireLimits{}));
    ASSERT_TRUE(core.drain_some());
    ASSERT_TRUE(core.drain_some());
    EXPECT_EQ(health.get().status, "ok");
    EXPECT_EQ(stats_rq.get().status, "ok");

    std::future<Response> priced =
        core.submit(eval_request("exists x. O1(x)", "w"));
    const Response r = priced.get();
    EXPECT_EQ(r.status, "rejected");
    EXPECT_EQ(r.error, "AdmissionRejected");
    core.stop();
}

TEST(AdmissionCore, MetricsSnapshotCarriesAdmissionCounters) {
    ServiceOptions options = admission_options();
    ServiceCore core(options);
    std::future<Response> f = core.submit(eval_request(oversized_formula(), "x"));
    EXPECT_EQ(f.get().status, "rejected");
    const std::vector<std::pair<std::string, double>> metrics =
        core.stats().to_metrics();
    bool saw_rejected = false;
    for (const auto& [name, value] : metrics) {
        if (name == "admission.rejected") {
            saw_rejected = true;
            EXPECT_EQ(value, 1.0);
        }
    }
    EXPECT_TRUE(saw_rejected);
    core.stop();
}

} // namespace
