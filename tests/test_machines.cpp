#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "graphalg/eulerian.hpp"
#include "logic/examples.hpp"
#include "machines/deciders.hpp"
#include "machines/formula_arbiter.hpp"
#include "machines/verifiers.hpp"
#include "sat/boolean_graph.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

ExecutionResult run_plain(const LocalMachine& m, const LabeledGraph& g) {
    return run_local(m, g, make_global_ids(g));
}

ExecutionResult run_with(const LocalMachine& m, const LabeledGraph& g,
                         const CertificateAssignment& kappa) {
    const auto list = CertificateListAssignment::concatenate({kappa}, g.num_nodes());
    return run_local(m, g, make_global_ids(g), list);
}

class AllSelectedOnShapes : public ::testing::TestWithParam<unsigned> {};

TEST_P(AllSelectedOnShapes, MatchesOracle) {
    Rng rng(GetParam());
    LabeledGraph g = random_connected_graph(3 + rng.index(6), rng.index(4), rng);
    bool all = true;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const bool selected = rng.chance(0.7);
        g.set_label(u, selected ? "1" : "0");
        all = all && selected;
    }
    EXPECT_EQ(run_plain(AllSelectedDecider{}, g).accepted, all);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllSelectedOnShapes, ::testing::Range(0u, 20u));

class EulerianOnShapes : public ::testing::TestWithParam<unsigned> {};

TEST_P(EulerianOnShapes, MatchesEulerTheorem) {
    Rng rng(GetParam() + 40);
    const LabeledGraph g =
        random_connected_graph(3 + rng.index(7), rng.index(6), rng);
    EXPECT_EQ(run_plain(EulerianDecider{}, g).accepted, is_eulerian(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerianOnShapes, ::testing::Range(0u, 25u));

TEST(EulerianDeciderFacts, KnownGraphs) {
    EXPECT_TRUE(run_plain(EulerianDecider{}, cycle_graph(6, "1")).accepted);
    EXPECT_FALSE(run_plain(EulerianDecider{}, path_graph(4, "1")).accepted);
    EXPECT_TRUE(run_plain(EulerianDecider{}, complete_graph(5, "1")).accepted);
}

TEST(AllLabeledDecider, GeneralizedConstant) {
    LabeledGraph g = cycle_graph(4, "01");
    EXPECT_TRUE(run_plain(AllLabeledDecider{"01"}, g).accepted);
    EXPECT_FALSE(run_plain(AllLabeledDecider{"1"}, g).accepted);
}

// --- Coloring verifier (Example 3 / Theorem 20). ---

class ColoringVerifierCases : public ::testing::TestWithParam<unsigned> {};

TEST_P(ColoringVerifierCases, AcceptsExactlyProperColorings) {
    Rng rng(GetParam() + 7);
    const LabeledGraph g =
        random_connected_graph(3 + rng.index(5), rng.index(5), rng, "1");
    const ColoringVerifier verifier(3);
    const auto coloring = find_k_coloring(g, 3);
    if (coloring.has_value()) {
        std::vector<BitString> certs(g.num_nodes());
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
            certs[u] = verifier.encode_color((*coloring)[u]);
        }
        EXPECT_TRUE(run_with(verifier, g, CertificateAssignment(certs)).accepted);
    }
    // A monochromatic "coloring" is rejected on any graph with an edge.
    std::vector<BitString> mono(g.num_nodes(), verifier.encode_color(0));
    EXPECT_FALSE(run_with(verifier, g, CertificateAssignment(mono)).accepted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringVerifierCases, ::testing::Range(0u, 15u));

TEST(ColoringVerifierDetail, MalformedCertificateRejected) {
    const LabeledGraph g = path_graph(2, "1");
    const ColoringVerifier verifier(3);
    CertificateAssignment bad(std::vector<BitString>{"11", "00"}); // 3: out of range
    EXPECT_FALSE(run_with(verifier, g, bad).accepted);
    CertificateAssignment wrong_width(std::vector<BitString>{"0", "01"});
    EXPECT_FALSE(run_with(verifier, g, wrong_width).accepted);
}

TEST(ColoringVerifierDetail, ColorCodec) {
    const ColoringVerifier verifier(3);
    for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(verifier.decode_color(verifier.encode_color(c)), c);
    }
    EXPECT_EQ(verifier.decode_color("11"), -1);
    EXPECT_EQ(verifier.decode_color(""), -1);
}

// --- SAT-GRAPH verifier (Theorem 19). ---

TEST(SatGraphVerifierTest, AcceptsConsistentValuations) {
    using namespace bf;
    LabeledGraph topo = path_graph(2, "");
    const BooleanGraph bg(topo, {var("P"), bor(var("P"), var("Q"))});
    const auto vals = find_graph_valuation(bg);
    ASSERT_TRUE(vals.has_value());
    std::vector<BitString> certs;
    for (const auto& v : *vals) {
        certs.push_back(encode_valuation_certificate(v));
    }
    EXPECT_TRUE(
        run_with(SatGraphVerifier{}, bg.graph(), CertificateAssignment(certs))
            .accepted);
}

TEST(SatGraphVerifierTest, RejectsInconsistentValuations) {
    using namespace bf;
    LabeledGraph topo = path_graph(2, "");
    const BooleanGraph bg(topo, {var("P"), bor(var("P"), bnot(var("P")))});
    std::vector<BitString> certs{encode_valuation_certificate({{"P", true}}),
                                 encode_valuation_certificate({{"P", false}})};
    EXPECT_FALSE(
        run_with(SatGraphVerifier{}, bg.graph(), CertificateAssignment(certs))
            .accepted);
}

TEST(SatGraphVerifierTest, RejectsUnsatisfyingValuation) {
    using namespace bf;
    LabeledGraph topo = single_node_graph("");
    const BooleanGraph bg(topo, {band(var("P"), bnot(var("P")))});
    std::vector<BitString> certs{encode_valuation_certificate({{"P", true}})};
    EXPECT_FALSE(
        run_with(SatGraphVerifier{}, bg.graph(), CertificateAssignment(certs))
            .accepted);
}

TEST(ValuationCertificate, RoundTrip) {
    const Valuation v{{"P", true}, {"Qx", false}, {"aux0.1", true}};
    const BitString cert = encode_valuation_certificate(v);
    EXPECT_TRUE(is_bit_string(cert));
    EXPECT_EQ(decode_valuation_certificate(cert), v);
}

// --- The generic Theorem-12 arbiter as an LP decider (zero blocks). ---

TEST(FormulaArbiterLP, AllSelectedSentence) {
    const FormulaArbiter arbiter(paper_formulas::all_selected());
    EXPECT_EQ(arbiter.levels(), 0u);
    LabeledGraph yes = cycle_graph(5, "1");
    LabeledGraph no = cycle_graph(5, "1");
    no.set_label(2, "0");
    EXPECT_TRUE(run_local(arbiter, yes, make_global_ids(yes)).accepted);
    EXPECT_FALSE(run_local(arbiter, no, make_global_ids(no)).accepted);
}

TEST(FormulaArbiterLP, WorksUnderSmallLocalIds) {
    const FormulaArbiter arbiter(paper_formulas::all_selected());
    const LabeledGraph g = cycle_graph(24, "1");
    const auto id = make_small_local_ids(g, arbiter.id_radius());
    EXPECT_TRUE(run_local(arbiter, g, id).accepted);
}

TEST(PrefixDecomposition, ThreeColorable) {
    const auto prefix = decompose_prefix_sentence(paper_formulas::three_colorable());
    ASSERT_EQ(prefix.blocks.size(), 1u);
    EXPECT_TRUE(prefix.blocks[0].existential);
    EXPECT_EQ(prefix.blocks[0].variables.size(), 3u);
    EXPECT_EQ(prefix.blocks[0].variables[0].name, "C0");
    EXPECT_EQ(prefix.matrix_var, "x");
    EXPECT_GE(prefix.radius, 1);
}

TEST(PrefixDecomposition, Hamiltonian) {
    const auto prefix = decompose_prefix_sentence(paper_formulas::hamiltonian());
    ASSERT_EQ(prefix.blocks.size(), 5u);
    EXPECT_TRUE(prefix.blocks[0].existential);  // H
    EXPECT_FALSE(prefix.blocks[1].existential); // S
    EXPECT_TRUE(prefix.blocks[2].existential);  // C, P
    EXPECT_EQ(prefix.blocks[2].variables.size(), 2u);
}

TEST(RelationCertificate, RoundTrip) {
    const std::vector<SOVariable> vars{{"P", 2, true}, {"X", 1, true}};
    RelationSlice slice;
    slice["P"] = {{{"01", 0}, {"10", 2}}, {{"01", 1}, {"01", 0}}};
    slice["X"] = {{{"01", 0}}};
    const BitString cert = encode_relation_certificate(slice, vars);
    EXPECT_TRUE(is_bit_string(cert));
    const RelationSlice parsed = decode_relation_certificate(cert, vars);
    EXPECT_EQ(parsed.at("P").size(), 2u);
    EXPECT_EQ(parsed.at("X").size(), 1u);
    EXPECT_EQ(parsed.at("P")[0][1].owner_id, "10");
    EXPECT_EQ(parsed.at("P")[0][1].bit_position, 2u);
}

TEST(RelationCertificate, EmptySlice) {
    const std::vector<SOVariable> vars{{"X", 1, true}};
    RelationSlice slice;
    slice["X"] = {};
    const BitString cert = encode_relation_certificate(slice, vars);
    const RelationSlice parsed = decode_relation_certificate(cert, vars);
    EXPECT_TRUE(parsed.at("X").empty());
}

} // namespace
} // namespace lph
