#include "core/check.hpp"
#include "dtm/turing.hpp"
#include "graph/generators.hpp"
#include "machines/turing_examples.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

TEST(TuringMachine, TransitionLookupPrecedence) {
    TuringMachine m;
    m.add_rule("s", '0', '0', '0', "exact", '=', '=', '=', Move::Stay, Move::Stay,
               Move::Stay);
    m.add_rule("s", '*', '*', '*', "wild", '=', '=', '=', Move::Stay, Move::Stay,
               Move::Stay);
    EXPECT_EQ(m.transition("s", {'0', '0', '0'})->next_state, "exact");
    EXPECT_EQ(m.transition("s", {'1', '0', '0'})->next_state, "wild");
    EXPECT_FALSE(m.transition("t", {'0', '0', '0'}).has_value());
}

TEST(TuringMachine, RejectsBadSymbols) {
    TuringMachine m;
    EXPECT_THROW(m.add_rule("s", 'x', '0', '0', "t", '=', '=', '=', Move::Stay,
                            Move::Stay, Move::Stay),
                 precondition_error);
}

class AllSelectedTuring : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllSelectedTuring, AcceptsAllOnes) {
    const TuringMachine m = make_all_selected_turing();
    const LabeledGraph g = cycle_graph(GetParam(), "1");
    const auto id = make_global_ids(g);
    const ExecutionResult result = run_turing(m, g, id);
    EXPECT_TRUE(result.accepted);
    EXPECT_EQ(result.rounds, 1);
    for (const auto& out : result.outputs) {
        EXPECT_EQ(out, "1");
    }
}

TEST_P(AllSelectedTuring, RejectsWithOneUnselected) {
    const TuringMachine m = make_all_selected_turing();
    LabeledGraph g = cycle_graph(GetParam(), "1");
    g.set_label(0, "0");
    const auto id = make_global_ids(g);
    const ExecutionResult result = run_turing(m, g, id);
    EXPECT_FALSE(result.accepted);
    EXPECT_EQ(result.outputs[0], "0");
    EXPECT_EQ(result.outputs[1], "1"); // other nodes individually accept
}

TEST_P(AllSelectedTuring, RejectsLongerLabel) {
    const TuringMachine m = make_all_selected_turing();
    LabeledGraph g = cycle_graph(GetParam(), "1");
    g.set_label(1, "11");
    const auto id = make_global_ids(g);
    EXPECT_FALSE(run_turing(m, g, id).accepted);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllSelectedTuring, ::testing::Values(3u, 5u, 8u));

TEST(AllSelectedTuringSingle, SingleNode) {
    const TuringMachine m = make_all_selected_turing();
    const LabeledGraph yes = single_node_graph("1");
    const LabeledGraph no = single_node_graph("0");
    EXPECT_TRUE(run_turing(m, yes, make_global_ids(yes)).accepted);
    EXPECT_FALSE(run_turing(m, no, make_global_ids(no)).accepted);
}

TEST(EvenParityTuring, CountsOnes) {
    const TuringMachine m = make_even_parity_turing();
    struct Case {
        BitString label;
        bool accept;
    };
    for (const auto& c : {Case{"", true}, Case{"0", true}, Case{"1", false},
                          Case{"11", true}, Case{"101", true}, Case{"111", false},
                          Case{"110011", true}}) {
        const LabeledGraph g = single_node_graph(c.label);
        EXPECT_EQ(run_turing(m, g, make_global_ids(g)).accepted, c.accept)
            << "label " << c.label;
    }
}

TEST(EvenParityTuring, UnanimityOverGraph) {
    const TuringMachine m = make_even_parity_turing();
    LabeledGraph g = path_graph(3, "11");
    EXPECT_TRUE(run_turing(m, g, make_global_ids(g)).accepted);
    g.set_label(2, "10");
    EXPECT_FALSE(run_turing(m, g, make_global_ids(g)).accepted);
}

class LabelsAgreeTuring : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LabelsAgreeTuring, AcceptsUniformLabels) {
    const TuringMachine m = make_labels_agree_turing();
    const LabeledGraph g = cycle_graph(GetParam(), "101");
    const ExecutionResult result = run_turing(m, g, make_global_ids(g));
    EXPECT_TRUE(result.accepted);
    EXPECT_EQ(result.rounds, 2);
    EXPECT_GT(result.total_message_bytes, 0u);
}

TEST_P(LabelsAgreeTuring, RejectsDivergingLabel) {
    const TuringMachine m = make_labels_agree_turing();
    LabeledGraph g = cycle_graph(GetParam(), "101");
    g.set_label(0, "100");
    const ExecutionResult result = run_turing(m, g, make_global_ids(g));
    EXPECT_FALSE(result.accepted);
}

TEST_P(LabelsAgreeTuring, RejectsShorterLabel) {
    const TuringMachine m = make_labels_agree_turing();
    LabeledGraph g = cycle_graph(GetParam(), "101");
    g.set_label(1, "10");
    EXPECT_FALSE(run_turing(m, g, make_global_ids(g)).accepted);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LabelsAgreeTuring, ::testing::Values(3u, 4u, 7u));

TEST(LabelsAgreeTuringShapes, StarAndPath) {
    const TuringMachine m = make_labels_agree_turing();
    const LabeledGraph star = star_graph(5, "11");
    EXPECT_TRUE(run_turing(m, star, make_global_ids(star)).accepted);
    LabeledGraph path = path_graph(4, "01");
    EXPECT_TRUE(run_turing(m, path, make_global_ids(path)).accepted);
    path.set_label(3, "11");
    EXPECT_FALSE(run_turing(m, path, make_global_ids(path)).accepted);
}

TEST(LabelsAgreeTuringSingle, SingleNodeAccepts) {
    const TuringMachine m = make_labels_agree_turing();
    const LabeledGraph g = single_node_graph("1");
    EXPECT_TRUE(run_turing(m, g, make_global_ids(g)).accepted);
}

TEST(RunTuring, StepTimeIsLinear) {
    // The ALL-SELECTED machine makes O(content length) steps.
    const TuringMachine m = make_all_selected_turing();
    LabeledGraph g = single_node_graph("1");
    const auto small = run_turing(m, g, make_global_ids(g));
    LabeledGraph big = single_node_graph("1");
    // Make the certificate part long via a fat label on another instance.
    LabeledGraph fat = single_node_graph(BitString(200, '1'));
    const auto large = run_turing(m, fat, make_global_ids(fat));
    EXPECT_GT(large.total_steps, small.total_steps);
    EXPECT_LT(large.total_steps, 10 * (200 + 10)); // linear with small factor
}

TEST(RunTuring, NonHaltingMachineCaught) {
    // A machine spinning in place trips the per-round step guard.
    TuringMachine m;
    m.add_rule(TuringMachine::kStart, '*', '*', '*', "spin", '=', '=', '=',
               Move::Stay, Move::Stay, Move::Stay);
    m.add_rule("spin", '*', '*', '*', "spin", '=', '=', '=', Move::Stay,
               Move::Stay, Move::Stay);
    const LabeledGraph g = single_node_graph("1");
    ExecutionOptions options;
    options.max_steps_per_round = 1000;
    EXPECT_THROW(run_turing(m, g, make_global_ids(g), options),
                 precondition_error);
}

TEST(RunTuring, NonBitMessagesRejected) {
    // A machine writing '#'-free garbage is fine, but a message containing a
    // blank survives filtering; one writing the left-end marker cannot even
    // be expressed.  Exercise the bit-string check with a separator-only
    // sending tape: messages are empty strings, which are legal.
    TuringMachine m;
    m.add_rule(TuringMachine::kStart, '*', '*', '*', TuringMachine::kStop, '=',
               '1', '=', Move::Stay, Move::Stay, Move::Stay);
    const LabeledGraph g = single_node_graph("1");
    const auto result = run_turing(m, g, make_global_ids(g));
    EXPECT_EQ(result.rounds, 1);
}

TEST(RunTuring, PauseResumesNextRound) {
    // A two-round machine that pauses in round 1 and stops in round 2; the
    // internal tape persists across the pause.
    TuringMachine m;
    m.add_rule(TuringMachine::kStart, '*', '>', '*', "peek", '=', '=', '=',
               Move::Stay, Move::Right, Move::Stay);
    // Round 1: label's first bit present -> overwrite with 0 and pause.
    m.add_rule("peek", '*', '1', '*', TuringMachine::kPause, '=', '0', '=',
               Move::Stay, Move::Stay, Move::Stay);
    // Round 2: the bit is now 0 -> accept.
    m.add_rule("peek", '*', '0', '*', "accept", '=', '=', '=', Move::Stay,
               Move::Stay, Move::Stay);
    m.add_rule("accept", '*', '*', '*', TuringMachine::kStop, '=', '1', '=',
               Move::Stay, Move::Stay, Move::Stay);
    const LabeledGraph g = single_node_graph("1");
    const auto result = run_turing(m, g, make_global_ids(g));
    EXPECT_EQ(result.rounds, 2);
}

TEST(RunTuring, UndefinedTransitionThrows) {
    TuringMachine m; // empty delta: even 'start' is undefined
    const LabeledGraph g = single_node_graph("1");
    EXPECT_THROW(run_turing(m, g, make_global_ids(g)), precondition_error);
}

} // namespace
} // namespace lph
