// Tests for the language frontend (src/lang): hand-written precedence and
// scope against the printer-normative grammar, the parse∘print == id
// guarantee over the corpus formulas, structured error positions, the
// untrusted-input limits (depth, text size, variable count), and the
// prenex/alternation classifier features the admission cost model consumes.

#include "lang/analyze.hpp"
#include "lang/lexer.hpp"
#include "lang/parser.hpp"
#include "logic/formula.hpp"
#include "service/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace lph;
using lang::parse_error;
using lang::parse_formula;
using lang::ParseLimits;

/// Both spellings must build the identical AST — precedence asserted
/// against an explicitly parenthesised twin, not against printer output.
void expect_same_ast(const std::string& loose, const std::string& explicit_) {
    const Formula a = parse_formula(loose);
    const Formula b = parse_formula(explicit_);
    EXPECT_TRUE(lang::ast_identical(a, b))
        << loose << " != " << explicit_ << "\n  loose:    " << to_string(a)
        << "\n  explicit: " << to_string(b);
}

// ----------------------------------------------------------- precedence ----

TEST(LangParser, BinaryConnectivePrecedence) {
    expect_same_ast("T & F | T", "((T & F) | T)");
    expect_same_ast("T | F & T", "(T | (F & T))");
    expect_same_ast("T -> F -> F", "(T -> (F -> F))"); // right-associative
    expect_same_ast("T <-> F <-> T", "((T <-> F) <-> T)"); // left-associative
    expect_same_ast("T <-> F -> T", "(T <-> (F -> T))");
    expect_same_ast("T -> F | T", "(T -> (F | T))");
    expect_same_ast("! T & F", "(!(T) & F)");
    expect_same_ast("! ! T", "!(!(T))");
}

TEST(LangParser, QuantifierBodyIsOneUnaryUnit) {
    // The printer never parenthesises quantifier bodies, so the parser gives
    // them exactly one unary-level unit: "exists x. A & B" is
    // "(exists x. A) & B", not "exists x. (A & B)".
    expect_same_ast("exists x. x = x & T", "((exists x. x = x) & T)");
    const Formula narrow = parse_formula("exists x. x = x & T");
    const Formula wide = parse_formula("exists x. (x = x & T)");
    EXPECT_FALSE(lang::ast_identical(narrow, wide));
}

TEST(LangParser, ArrowAtomBindsDigitsNotImplication) {
    // "x ->1 y" is the binary-relation atom; with a space before the digits
    // the arrow is an implication and "1" fails to parse as a formula.
    const Formula atom = parse_formula("exists x. exists y. x ->1 y");
    EXPECT_EQ(to_string(parse_formula(to_string(atom))), to_string(atom));
    EXPECT_THROW(parse_formula("exists x. exists y. x -> 1 y"), parse_error);
}

// ----------------------------------------------------- parse∘print == id ---

TEST(LangParser, CorpusFormulasRoundTrip) {
    const std::vector<std::string> names = {
        "all_selected",    "two_colorable", "three_colorable",
        "not_all_selected", "hamiltonian",  "non_hamiltonian"};
    for (const std::string& name : names) {
        const Formula original = service::formula_by_name(name, 0);
        const std::string text = to_string(original);
        const Formula reparsed = parse_formula(text);
        EXPECT_TRUE(lang::ast_identical(original, reparsed)) << name;
        EXPECT_EQ(to_string(reparsed), text) << name;
    }
    for (std::uint64_t fseed = 0; fseed < 16; ++fseed) {
        const Formula original = service::formula_by_name("random", fseed);
        const std::string text = to_string(original);
        EXPECT_TRUE(lang::ast_identical(original, parse_formula(text)))
            << "random fseed=" << fseed;
    }
}

// -------------------------------------------------------- error positions --

TEST(LangParser, LexErrorsCarryLineAndColumn) {
    try {
        parse_formula("exists x.\n  @");
        FAIL() << "'@' accepted";
    } catch (const parse_error& e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_EQ(e.column(), 3u);
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(LangParser, SyntaxErrorsCarryPositions) {
    try {
        parse_formula("(T &\nF");
        FAIL() << "unclosed paren accepted";
    } catch (const parse_error& e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_GE(e.column(), 1u);
    }
    EXPECT_THROW(parse_formula(""), parse_error);
    EXPECT_THROW(parse_formula("exists T. T"), parse_error); // reserved name
    EXPECT_THROW(parse_formula("T F"), parse_error);         // trailing token
}

// ------------------------------------------------------------------ limits -

TEST(LangParser, DeepNestingParsesUpToTheLimitThenFails) {
    // Each paren level costs one formula() and one unary() guard, so 120
    // levels sit comfortably under the default 256 while 200 blow past it.
    const auto nested = [](int levels) {
        std::string text(static_cast<std::size_t>(levels), '(');
        text += "T";
        text += std::string(static_cast<std::size_t>(levels), ')');
        return text;
    };
    EXPECT_NO_THROW(parse_formula(nested(120)));
    try {
        parse_formula(nested(200));
        FAIL() << "200-deep nesting accepted";
    } catch (const parse_error& e) {
        EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
    }
    // Custom limits bind tighter.
    ParseLimits tight;
    tight.max_depth = 8;
    EXPECT_THROW(parse_formula(nested(10), tight), parse_error);
}

TEST(LangParser, TextAndVariableLimitsAreEnforced) {
    ParseLimits tiny;
    tiny.lex.max_text_bytes = 8;
    EXPECT_THROW(parse_formula("exists longname. T", tiny), parse_error);

    ParseLimits few_vars;
    few_vars.max_variables = 2;
    EXPECT_NO_THROW(parse_formula("exists a. exists b. a = b", few_vars));
    EXPECT_THROW(
        parse_formula("exists a. exists b. exists c. a = b", few_vars),
        parse_error);
}

// -------------------------------------------------------------- classifier -

TEST(LangAnalyze, CountsQuantifierFeatures) {
    const lang::FormulaAnalysis fo = lang::analyze(parse_formula(
        "exists x. O1(x)"));
    EXPECT_EQ(fo.fo_quantifiers, 1u);
    EXPECT_EQ(fo.conn_quantifiers, 0u);
    EXPECT_EQ(fo.so_quantifiers, 0u);
    EXPECT_EQ(fo.radius, 0);
    EXPECT_GE(fo.size, 2u);
    EXPECT_FALSE(fo.class_name().empty());

    const lang::FormulaAnalysis local = lang::analyze(parse_formula(
        "forall x. exists y~x. O1(y)"));
    EXPECT_EQ(local.fo_quantifiers, 1u);
    EXPECT_EQ(local.conn_quantifiers, 1u);
    EXPECT_GE(local.radius, 1);

    const lang::FormulaAnalysis so = lang::analyze(parse_formula(
        "EXISTS R/2. forall x. R(x,x)"));
    EXPECT_EQ(so.so_quantifiers, 1u);
    EXPECT_EQ(so.max_so_arity, 2u);
    EXPECT_EQ(so.total_so_arity, 2u);
}

TEST(LangAnalyze, CorpusFormulaSizesMatchTheLogicCore) {
    const std::vector<std::string> names = {"all_selected", "two_colorable",
                                            "three_colorable", "hamiltonian"};
    for (const std::string& name : names) {
        const Formula f = service::formula_by_name(name, 0);
        const lang::FormulaAnalysis analysis = lang::analyze(f);
        EXPECT_EQ(analysis.size, formula_size(f)) << name;
        EXPECT_FALSE(analysis.class_name().empty()) << name;
    }
}

} // namespace
