#include "core/check.hpp"
#include "graph/generators.hpp"
#include "hierarchy/game.hpp"
#include "automata/mso_words.hpp"
#include "machines/regular_path.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace lph {
namespace {

Dfa parity_dfa() {
    Dfa dfa(2, 2, 0);
    dfa.set_accepting(0, true);
    dfa.set_transition(0, 0, 0);
    dfa.set_transition(0, 1, 1);
    dfa.set_transition(1, 0, 1);
    dfa.set_transition(1, 1, 0);
    return dfa;
}

Dfa ends_with_one_dfa() {
    // Not reversal-closed: tests the "either orientation" semantics.
    Dfa dfa(2, 2, 0);
    dfa.set_accepting(1, true);
    dfa.set_transition(0, 0, 0);
    dfa.set_transition(0, 1, 1);
    dfa.set_transition(1, 0, 0);
    dfa.set_transition(1, 1, 1);
    return dfa;
}

bool in_language_some_orientation(const Dfa& dfa, const BitString& word) {
    auto accepts = [&](const BitString& w) {
        std::vector<std::size_t> symbols;
        for (char c : w) {
            symbols.push_back(c == '1' ? 1 : 0);
        }
        return dfa.accepts(symbols);
    };
    BitString reversed(word.rbegin(), word.rend());
    return accepts(word) || accepts(reversed);
}

/// All certificates of the verifier's shape, as a game domain.
class CertDomain : public CertificateDomain {
public:
    explicit CertDomain(const RegularPathVerifier& verifier) {
        for (int hp = 0; hp < 2; ++hp) {
            for (int hi = 0; hi < 2; ++hi) {
                for (std::size_t q = 0; q < verifier.dfa().num_states(); ++q) {
                    options_.push_back(
                        verifier.encode_certificate(hp != 0, hi != 0, q));
                }
            }
        }
    }
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

TEST(WordPath, RoundTrip) {
    for (const BitString word : {"0", "1", "10", "0110", "11111"}) {
        const LabeledGraph g = word_to_path(word);
        EXPECT_EQ(g.num_nodes(), word.size());
        const auto back = path_to_word(g);
        ASSERT_TRUE(back.has_value());
        // Reading direction may flip; accept either.
        BitString reversed(word.rbegin(), word.rend());
        EXPECT_TRUE(*back == word || *back == reversed) << word;
    }
}

TEST(WordPath, RejectsNonPaths) {
    EXPECT_FALSE(path_to_word(cycle_graph(4, "1")).has_value());
    EXPECT_FALSE(path_to_word(star_graph(4, "1")).has_value());
    EXPECT_FALSE(path_to_word(path_graph(3, "11")).has_value()); // 2-bit labels
}

class ExhaustiveSoundness : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExhaustiveSoundness, GameValueEqualsRegularMembership) {
    // All words of length <= 3, all certificates enumerated: the Sigma_1 game
    // accepts exactly the words (in some orientation) of the language.
    const Dfa dfa = GetParam() == 0 ? parity_dfa() : ends_with_one_dfa();
    const RegularPathVerifier verifier(dfa);
    const CertDomain domain(verifier);
    for (std::size_t len = 1; len <= 3; ++len) {
        const std::uint64_t count = std::uint64_t{1} << len;
        for (std::uint64_t v = 0; v < count; ++v) {
            const BitString word = encode_unsigned_width(v, static_cast<int>(len));
            const LabeledGraph g = word_to_path(word);
            const auto id = make_global_ids(g);
            const bool game =
                find_accepting_certificate(verifier, domain, g, id).has_value();
            EXPECT_EQ(game, in_language_some_orientation(dfa, word)) << word;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Dfas, ExhaustiveSoundness, ::testing::Values(0u, 1u));

class StrategyCompleteness : public ::testing::TestWithParam<unsigned> {};

TEST_P(StrategyCompleteness, EveWinsExactlyOnMembers) {
    const Dfa dfa = GetParam() == 0 ? parity_dfa() : ends_with_one_dfa();
    const RegularPathVerifier verifier(dfa);
    for (std::size_t len = 1; len <= 8; ++len) {
        const std::uint64_t count = std::uint64_t{1} << len;
        for (std::uint64_t v = 0; v < count; ++v) {
            const BitString word = encode_unsigned_width(v, static_cast<int>(len));
            const LabeledGraph g = word_to_path(word);
            const auto id = make_global_ids(g);
            const auto certs = verifier.eve_certificates(g, id);
            const bool member = in_language_some_orientation(dfa, word);
            EXPECT_EQ(certs.has_value(), member) << word;
            if (certs.has_value()) {
                const auto list = CertificateListAssignment::concatenate(
                    {*certs}, g.num_nodes());
                EXPECT_TRUE(run_local(verifier, g, id, list).accepted) << word;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Dfas, StrategyCompleteness, ::testing::Values(0u, 1u));

TEST(RegularPath, SingleNodeWord) {
    const RegularPathVerifier verifier(ends_with_one_dfa());
    const LabeledGraph one = word_to_path("1");
    const LabeledGraph zero = word_to_path("0");
    EXPECT_TRUE(verifier.eve_certificates(one, make_global_ids(one)).has_value());
    EXPECT_FALSE(verifier.eve_certificates(zero, make_global_ids(zero)).has_value());
}

TEST(RegularPath, ConstantCertificateSize) {
    // Certificate size is independent of the path length — the "constant
    // certificates on bounded-degree graphs" regime of the paper.
    const RegularPathVerifier verifier(parity_dfa());
    for (std::size_t len : {4u, 64u, 512u}) {
        const LabeledGraph g = word_to_path(BitString(len, '1'));
        const auto id = make_global_ids(g);
        const auto certs = verifier.eve_certificates(g, id);
        if (certs.has_value()) {
            for (NodeId u = 0; u < g.num_nodes(); ++u) {
                EXPECT_EQ((*certs)(u).size(), 3u); // 2 flags + 1 state bit
            }
        }
    }
}

TEST(RegularPath, MsoPipelineEndToEnd) {
    // MSO sentence -> DFA (Büchi–Elgot–Trakhtenbrot) -> NLP verifier on path
    // graphs: the full Section 9.3 positive pipeline.  "There are two
    // consecutive 1s" is reversal-closed, so orientation is immaterial.
    const Formula sentence = fl::exists(
        "x", fl::exists("y", fl::conj(fl::binary(1, "x", "y"),
                                      fl::conj(fl::unary(1, "x"),
                                               fl::unary(1, "y")))));
    const Dfa dfa = compile_mso_to_dfa(sentence).minimized();
    const RegularPathVerifier verifier(dfa);
    for (const BitString word : {"0110", "1010", "0011", "000", "11"}) {
        const LabeledGraph g = word_to_path(word);
        const auto id = make_global_ids(g);
        const auto certs = verifier.eve_certificates(g, id);
        const bool member = mso_holds_on_word(sentence, word);
        EXPECT_EQ(certs.has_value(), member) << word;
        if (certs.has_value()) {
            const auto list =
                CertificateListAssignment::concatenate({*certs}, g.num_nodes());
            EXPECT_TRUE(run_local(verifier, g, id, list).accepted) << word;
        }
    }
}

TEST(RegularPath, BrokenChainRejected) {
    // A certificate assignment whose states skip a transition is rejected.
    const Dfa dfa = parity_dfa();
    const RegularPathVerifier verifier(dfa);
    const LabeledGraph g = word_to_path("11");
    const auto id = make_global_ids(g);
    const auto good = verifier.eve_certificates(g, id);
    ASSERT_TRUE(good.has_value());
    // Corrupt the second node's state.
    auto bad = *good;
    BitString cert = bad(1);
    cert.back() = cert.back() == '0' ? '1' : '0';
    bad.set(1, cert);
    const auto list = CertificateListAssignment::concatenate({bad}, 2);
    EXPECT_FALSE(run_local(verifier, g, id, list).accepted);
}

} // namespace
} // namespace lph
