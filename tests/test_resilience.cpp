// Tests for the resilience layer (DESIGN.md "Resilience"): the snapshot
// codec's fail-closed decoding (every single-byte corruption, truncation,
// version mismatch, and hostile length field must reject — a snapshot is
// never trusted partially), memo/view-cache export/restore, ServiceCore
// warm-start round trips, the supervisor's backoff/circuit-breaker ledger,
// client retry backoff, wire-level chaos determinism and the garble
// soundness property, the SIGPIPE-proof transport, and the open oracle
// check registry.

#include "core/check.hpp"
#include "dtm/view_cache.hpp"
#include "oracle/harness.hpp"
#include "service/chaos.hpp"
#include "service/core.hpp"
#include "service/memo.hpp"
#include "service/retry.hpp"
#include "service/server.hpp"
#include "service/snapshot.hpp"
#include "service/supervisor.hpp"
#include "service/transport.hpp"
#include "service/wire.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

using namespace lph;
using namespace lph::service;

SnapshotData sample_snapshot() {
    SnapshotData data;
    SnapshotSection memo;
    memo.name = "memo";
    memo.entries = {{"game|allsel|0", "\"accepted\":true"},
                    {"decide|eulerian", "\"answer\":false"},
                    // Binary-safe: keys and values may hold NULs, newlines,
                    // and high bytes (view keys are binary encodings).
                    {std::string("bin\0key\n", 8), std::string("\xff\x00v", 3)}};
    SnapshotSection views;
    views.name = "view:allsel";
    views.entries = {{"ballkey1", "1"}, {"ballkey2", "0"}};
    data.sections = {memo, views};
    return data;
}

void expect_equal(const SnapshotData& a, const SnapshotData& b) {
    ASSERT_EQ(a.sections.size(), b.sections.size());
    for (std::size_t i = 0; i < a.sections.size(); ++i) {
        EXPECT_EQ(a.sections[i].name, b.sections[i].name);
        EXPECT_EQ(a.sections[i].entries, b.sections[i].entries);
    }
}

std::string temp_path(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
}

// ------------------------------------------------------------- codec -------

TEST(SnapshotCodec, RoundTripsEmptyAndPopulated) {
    for (const SnapshotData& data : {SnapshotData{}, sample_snapshot()}) {
        const std::string bytes = encode_snapshot(data);
        SnapshotData decoded;
        std::string error;
        ASSERT_EQ(decode_snapshot(bytes, &decoded, &error),
                  SnapshotReadResult::Loaded)
            << error;
        expect_equal(data, decoded);
    }
}

TEST(SnapshotCodec, EverySingleByteFlipIsRejected) {
    const std::string bytes = encode_snapshot(sample_snapshot());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::string corrupt = bytes;
        corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
        SnapshotData out;
        std::string error;
        EXPECT_EQ(decode_snapshot(corrupt, &out, &error),
                  SnapshotReadResult::Rejected)
            << "flip at byte " << i << " was accepted";
        EXPECT_TRUE(out.sections.empty())
            << "rejected snapshot leaked partial data (byte " << i << ")";
    }
}

TEST(SnapshotCodec, EveryTruncationIsRejected) {
    const std::string bytes = encode_snapshot(sample_snapshot());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        SnapshotData out;
        std::string error;
        EXPECT_EQ(decode_snapshot(bytes.substr(0, len), &out, &error),
                  SnapshotReadResult::Rejected)
            << "truncation to " << len << " bytes was accepted";
    }
}

TEST(SnapshotCodec, TrailingBytesAreRejected) {
    std::string bytes = encode_snapshot(sample_snapshot());
    bytes.push_back('\0');
    SnapshotData out;
    std::string error;
    EXPECT_EQ(decode_snapshot(bytes, &out, &error),
              SnapshotReadResult::Rejected);
}

void patch_u32_le(std::string& bytes, std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        bytes[offset + static_cast<std::size_t>(i)] =
            static_cast<char>((v >> (8 * i)) & 0xFF);
    }
}

void refresh_checksum(std::string& bytes) {
    const std::uint64_t sum =
        fnv1a64(bytes.substr(8, bytes.size() - 8 - 8));
    for (int i = 0; i < 8; ++i) {
        bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
            static_cast<char>((sum >> (8 * i)) & 0xFF);
    }
}

TEST(SnapshotCodec, FutureVersionIsRejectedEvenWithValidChecksum) {
    std::string bytes = encode_snapshot(sample_snapshot());
    patch_u32_le(bytes, 8, kSnapshotVersion + 1); // version follows the magic
    refresh_checksum(bytes);
    SnapshotData out;
    std::string error;
    EXPECT_EQ(decode_snapshot(bytes, &out, &error),
              SnapshotReadResult::Rejected);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(SnapshotCodec, HostileEntryCountIsBoundsCheckedBeforeAllocation) {
    // A section claiming 2^60 entries with a valid checksum must be rejected
    // by arithmetic, not by attempting the reserve.
    std::string bytes = "LPHSNAP\n";
    const auto put_u32 = [&bytes](std::uint32_t v) {
        for (int i = 0; i < 4; ++i) {
            bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
        }
    };
    const auto put_u64 = [&bytes](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
        }
    };
    put_u32(kSnapshotVersion);
    put_u32(1);        // one section
    put_u32(1);        // name length
    bytes.push_back('m');
    put_u64(1ull << 60); // hostile entry count
    put_u64(fnv1a64(bytes.substr(8)));
    SnapshotData out;
    std::string error;
    EXPECT_EQ(decode_snapshot(bytes, &out, &error),
              SnapshotReadResult::Rejected);
}

TEST(SnapshotCodec, FileRoundTripAndMissingFile) {
    const std::string path = temp_path("lph_test_snapshot_roundtrip.snap");
    std::filesystem::remove(path);

    SnapshotData out;
    std::string error;
    EXPECT_EQ(read_snapshot_file(path, &out, &error),
              SnapshotReadResult::Missing);

    const SnapshotData data = sample_snapshot();
    ASSERT_TRUE(write_snapshot_file(path, data, &error)) << error;
    EXPECT_EQ(read_snapshot_file(path, &out, &error),
              SnapshotReadResult::Loaded)
        << error;
    expect_equal(data, out);
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    std::filesystem::remove(path);
}

// ------------------------------------------------- cache export/restore ----

TEST(MemoSnapshot, RestoreRebuildsEntriesWithoutPollutingStats) {
    ResultMemo memo;
    memo.insert("a", "va");
    memo.insert("b", "vb");
    memo.insert("c", "vc");
    ASSERT_TRUE(memo.lookup("a").has_value());

    ResultMemo restored;
    EXPECT_EQ(restored.restore(memo.export_entries()), 3u);
    const ResultMemoStats stats = restored.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.entries, 3u);
    EXPECT_EQ(restored.lookup("b").value(), "vb");
    EXPECT_EQ(restored.lookup("c").value(), "vc");
}

TEST(MemoSnapshot, RestoreRespectsShrunkCapacity) {
    ResultMemo big(1 << 10);
    for (int i = 0; i < 64; ++i) {
        big.insert("key" + std::to_string(i), "v");
    }
    ResultMemo small(8); // 8 shards -> one entry per shard
    const std::size_t admitted = small.restore(big.export_entries());
    EXPECT_LE(admitted, 8u);
    EXPECT_LE(small.stats().entries, 8u);
}

TEST(ViewCacheSnapshot, RestoreNeverOverwritesLiveVerdicts) {
    ViewCache cache(64);
    cache.insert("ball", "1");
    const std::size_t admitted = cache.restore({{"ball", "0"}, {"other", "1"}});
    EXPECT_EQ(admitted, 1u); // "other" admitted, conflicting "ball" refused
    EXPECT_EQ(cache.lookup("ball").value(), "1");
    EXPECT_EQ(cache.stats().verdict_mismatches, 1u);
}

// ------------------------------------------------- core warm start ---------

Request game_request(const std::string& id) {
    const std::string line =
        "{\"type\":\"game\",\"id\":" + id +
        ",\"machine\":\"allsel\",\"layers\":0,\"sigma\":true,"
        "\"ids\":\"global\",\"graph\":\"graph 4\\nlabel 0 1\\nlabel 1 1\\n"
        "label 2 1\\nlabel 3 1\\nedge 0 1\\nedge 1 2\\nedge 2 3\\n\"}";
    return parse_request(line, 1, WireLimits{});
}

ServiceOptions snapshot_options(const std::string& path) {
    ServiceOptions options;
    options.manual_drain = true;
    options.snapshot_path = path;
    return options;
}

TEST(ServiceCoreSnapshot, WarmStartServesFromRestoredMemo) {
    const std::string path = temp_path("lph_test_warm_start.snap");
    std::filesystem::remove(path);
    {
        ServiceCore core(snapshot_options(path));
        const Response response = core.call(game_request("1"));
        ASSERT_EQ(response.status, "ok");
        EXPECT_FALSE(response.memo_hit);
        core.stop(); // writes the snapshot
        EXPECT_EQ(core.snapshot_stats().saves, 1u);
    }
    ASSERT_TRUE(std::filesystem::exists(path));
    {
        ServiceCore core(snapshot_options(path));
        EXPECT_EQ(core.snapshot_stats().loads, 1u);
        EXPECT_GE(core.snapshot_stats().entries_loaded, 1u);
        const Response response = core.call(game_request("2"));
        ASSERT_EQ(response.status, "ok");
        EXPECT_TRUE(response.memo_hit) << "warm start did not prime the memo";
    }
    std::filesystem::remove(path);
}

TEST(ServiceCoreSnapshot, CorruptSnapshotColdStartsCleanly) {
    const std::string path = temp_path("lph_test_corrupt.snap");
    {
        std::ofstream out(path, std::ios::binary);
        out << "LPHSNAP\nnot really a snapshot";
    }
    ServiceCore core(snapshot_options(path));
    EXPECT_EQ(core.snapshot_stats().rejected, 1u);
    EXPECT_EQ(core.snapshot_stats().loads, 0u);
    const Response response = core.call(game_request("1"));
    EXPECT_EQ(response.status, "ok"); // cold start, but fully operational
    core.stop();
    // The shutdown save must replace the corrupt file with a loadable one.
    SnapshotData out;
    std::string error;
    EXPECT_EQ(read_snapshot_file(path, &out, &error),
              SnapshotReadResult::Loaded)
        << error;
    std::filesystem::remove(path);
}

// ------------------------------------------------- supervisor ledger -------

RestartPolicy test_policy() {
    RestartPolicy policy;
    policy.base_backoff_ms = 100;
    policy.max_backoff_ms = 5000;
    policy.min_healthy_uptime_ms = 1000;
    policy.max_consecutive_crashes = 3;
    policy.jitter_seed = 7;
    return policy;
}

TEST(SupervisorLedgerTest, BackoffGrowsExponentiallyWithJitter) {
    SupervisorLedger ledger(1, test_policy());
    double now = 0;
    double previous_nominal = 0;
    for (int crash = 1; crash <= 3; ++crash) {
        ledger.on_started(0, now);
        now += 10; // dies young every time
        ASSERT_TRUE(ledger.on_exit(0, now, false));
        const double delay = ledger.slot(0).restart_at_ms - now;
        const double nominal = 100 * static_cast<double>(1 << (crash - 1));
        EXPECT_GE(delay, nominal * 0.5);
        EXPECT_LT(delay, nominal * 1.5);
        EXPECT_GT(nominal, previous_nominal);
        previous_nominal = nominal;
        now = ledger.slot(0).restart_at_ms;
    }
}

TEST(SupervisorLedgerTest, HealthyUptimeResetsTheCrashCounter) {
    SupervisorLedger ledger(1, test_policy());
    ledger.on_started(0, 0);
    ASSERT_TRUE(ledger.on_exit(0, 10, false));
    ledger.on_started(0, 200);
    ASSERT_TRUE(ledger.on_exit(0, 250, false));
    EXPECT_EQ(ledger.slot(0).consecutive_crashes, 2);
    // A long healthy life, then a crash: the counter restarts from 1.
    ledger.on_started(0, 1000);
    ASSERT_TRUE(ledger.on_exit(0, 5000, false));
    EXPECT_EQ(ledger.slot(0).consecutive_crashes, 1);
}

TEST(SupervisorLedgerTest, CircuitBreakerGivesUpACrashLoopingSlot) {
    SupervisorLedger ledger(2, test_policy());
    double now = 0;
    for (int crash = 1; crash <= 3; ++crash) {
        ledger.on_started(0, now);
        now += 1;
        ASSERT_TRUE(ledger.on_exit(0, now, false)) << "crash " << crash;
        now = ledger.slot(0).restart_at_ms;
    }
    ledger.on_started(0, now);
    EXPECT_FALSE(ledger.on_exit(0, now + 1, false)); // 4th > max(3): give up
    EXPECT_EQ(ledger.slot(0).state, SupervisorLedger::SlotState::GivenUp);
    EXPECT_EQ(ledger.given_up(), 1u);
    EXPECT_EQ(ledger.due_slot(now + 1e9), -1); // never restarted again
}

TEST(SupervisorLedgerTest, CleanExitIsNotRestarted) {
    SupervisorLedger ledger(1, test_policy());
    ledger.on_started(0, 0);
    EXPECT_FALSE(ledger.on_exit(0, 5, true));
    EXPECT_EQ(ledger.running(), 0u);
    EXPECT_EQ(ledger.due_slot(1e9), -1);
}

TEST(SupervisorLedgerTest, DueSlotAndDeadlineTrackTheEarliestRestart) {
    SupervisorLedger ledger(2, test_policy());
    ledger.on_started(0, 0);
    ledger.on_started(1, 0);
    ASSERT_TRUE(ledger.on_exit(0, 10, false));
    ASSERT_TRUE(ledger.on_exit(1, 500, false));
    const double first = ledger.slot(0).restart_at_ms;
    EXPECT_EQ(ledger.next_deadline_ms(),
              std::min(first, ledger.slot(1).restart_at_ms));
    EXPECT_EQ(ledger.due_slot(first - 1), -1);
    EXPECT_EQ(ledger.due_slot(first), 0);
    ledger.on_started(0, first);
    EXPECT_EQ(ledger.due_slot(first), -1); // restarted, no longer due
    EXPECT_EQ(ledger.total_restarts(), 1u);
}

TEST(SupervisorLedgerTest, JitterIsDeterministicPerSeed) {
    SupervisorLedger a(1, test_policy());
    SupervisorLedger b(1, test_policy());
    a.on_started(0, 0);
    b.on_started(0, 0);
    ASSERT_TRUE(a.on_exit(0, 10, false));
    ASSERT_TRUE(b.on_exit(0, 10, false));
    EXPECT_EQ(a.slot(0).restart_at_ms, b.slot(0).restart_at_ms);
}

// ------------------------------------------------- client retry ------------

TEST(RetryBackoff, PureBoundedJitteredExponential) {
    RetryPolicy policy;
    policy.base_backoff_ms = 10;
    policy.max_backoff_ms = 500;
    policy.seed = 42;
    for (std::uint64_t request = 0; request < 20; ++request) {
        for (int attempt = 1; attempt <= 10; ++attempt) {
            const double delay = backoff_delay_ms(policy, request, attempt);
            EXPECT_EQ(delay, backoff_delay_ms(policy, request, attempt))
                << "not pure";
            const double cap =
                std::min(policy.max_backoff_ms,
                         policy.base_backoff_ms *
                             static_cast<double>(1ull << (attempt - 1)));
            EXPECT_GE(delay, 0.0);
            EXPECT_LT(delay, cap);
        }
    }
    // Different seeds give different schedules (full jitter, not lockstep).
    RetryPolicy other = policy;
    other.seed = 43;
    bool any_differ = false;
    for (int attempt = 2; attempt <= 6 && !any_differ; ++attempt) {
        any_differ = backoff_delay_ms(policy, 0, attempt) !=
                     backoff_delay_ms(other, 0, attempt);
    }
    EXPECT_TRUE(any_differ);
}

// ------------------------------------------------- chaos -------------------

TEST(Chaos, ReplaysDeterministicallyAndRespectsPrecedence) {
    ChaosPlan everything;
    everything.seed = 9;
    everything.drop_prob = 1;
    everything.truncate_prob = 1;
    everything.garble_prob = 1;
    everything.delay_prob = 1;
    everything.kill_prob = 1;
    const ChaosInjector harshest(&everything);
    EXPECT_EQ(harshest.action_for(0), ChaosAction::KillWorker);

    ChaosPlan drops = everything;
    drops.kill_prob = 0;
    drops.truncate_prob = 0;
    drops.garble_prob = 0;
    drops.delay_prob = 0;
    const ChaosInjector dropper(&drops);
    EXPECT_EQ(dropper.action_for(5), ChaosAction::Drop);

    ChaosPlan mixed;
    mixed.seed = 31;
    mixed.drop_prob = 0.2;
    mixed.garble_prob = 0.3;
    const ChaosInjector a(&mixed);
    const ChaosInjector b(&mixed);
    int fired = 0;
    for (std::uint64_t i = 0; i < 200; ++i) {
        EXPECT_EQ(a.action_for(i), b.action_for(i));
        fired += a.action_for(i) != ChaosAction::None ? 1 : 0;
    }
    EXPECT_GT(fired, 0);
    EXPECT_LT(fired, 200);

    const ChaosInjector inert(nullptr);
    EXPECT_FALSE(inert.active());
    EXPECT_EQ(inert.action_for(0), ChaosAction::None);
}

TEST(Chaos, GarbleCanNeverForgeADifferentVerdict) {
    // The soundness construction: xor-0xFF pushes any ASCII byte to >= 0x80,
    // which can never be a digit, a quote, or a byte of "true"/"false".  So a
    // garbled response either fails to parse or (when the flip lands inside
    // an unrelated string value) parses with its verdict intact.
    ServiceOptions options;
    options.manual_drain = true;
    ServiceCore core(options);
    for (const char* id : {"1", "2", "3"}) {
        const Response response = core.call(game_request(id));
        ASSERT_EQ(response.status, "ok");
        const std::string original = response.to_json();
        const auto golden = parse_verdict(original);
        ASSERT_TRUE(golden.has_value());
        ASSERT_TRUE(golden->has_verdict);
        // Not just the middle byte the injector flips: the invariant holds
        // for a flip at *every* position.
        for (std::size_t i = 0; i < original.size(); ++i) {
            std::string garbled = original;
            garbled[i] = static_cast<char>(garbled[i] ^ 0xFF);
            const auto view = parse_verdict(garbled);
            if (view.has_value() && view->status == "ok" &&
                view->has_verdict && view->id == golden->id) {
                EXPECT_EQ(view->verdict, golden->verdict)
                    << "flip at byte " << i << " forged a verdict";
            }
        }
    }
}

// ------------------------------------------------- transport ---------------

TEST(Transport, PeerDisconnectIsAStatusNotASignal) {
    ignore_sigpipe();
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ::close(fds[1]);
    // Large enough to overrun any kernel buffering on the first or second
    // write; the death this guards against is SIGPIPE, so surviving to see
    // the return value is the point.
    const std::string payload(1 << 20, 'x');
    TransportStatus status = TransportStatus::Ok;
    for (int i = 0; i < 4 && status == TransportStatus::Ok; ++i) {
        status = send_all(fds[0], payload);
    }
    EXPECT_EQ(status, TransportStatus::PeerClosed);
    ::close(fds[0]);
}

TEST(Transport, EofAndTimeoutAreDistinctStatuses) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    std::string buffer, line;
    EXPECT_EQ(recv_line_fd(fds[0], buffer, line, 50),
              TransportStatus::TimedOut);

    ASSERT_EQ(send_all(fds[1], "hello\n"), TransportStatus::Ok);
    EXPECT_EQ(recv_line_fd(fds[0], buffer, line, 50), TransportStatus::Ok);
    EXPECT_EQ(line, "hello");

    ::close(fds[1]);
    EXPECT_EQ(recv_line_fd(fds[0], buffer, line, 50),
              TransportStatus::PeerClosed);
    ::close(fds[0]);
}

TEST(TcpServerResilience, ClientVanishingMidConversationKeepsServing) {
    ServiceOptions options;
    options.threads = 2;
    ServiceCore core(options);
    TcpServer server(core, static_cast<std::uint16_t>(0), 2);
    server.start();

    // A client that submits work and vanishes without reading its responses:
    // the server's writes hit a dead socket (EPIPE/ECONNRESET) and must not
    // take the daemon down.
    {
        TcpClient rude("127.0.0.1", server.port());
        rude.send_line(game_request("1").to_json());
        rude.send_line(game_request("2").to_json());
    } // closed here, responses unread

    // The daemon keeps serving new connections.
    TcpClient polite("127.0.0.1", server.port());
    polite.send_line(game_request("3").to_json());
    std::string response;
    ASSERT_EQ(polite.recv_line_status(response, 10000), TransportStatus::Ok);
    const auto view = parse_verdict(response);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->status, "ok");
    server.shutdown();
    core.stop();
}

// ------------------------------------------------- oracle registry ---------

ReproCase dummy_generate(Rng& rng) {
    ReproCase r;
    r.params["n"] = std::to_string(rng.uniform(0, 3));
    return r;
}

std::optional<std::string> dummy_compare(const ReproCase&) {
    return std::nullopt;
}

std::optional<std::string> other_compare(const ReproCase&) {
    return std::nullopt;
}

TEST(OracleRegistry, RegisterCheckIsIdempotentButConflictChecked) {
    RegisteredCheck check;
    check.name = "test-resilience-dummy";
    check.generate = dummy_generate;
    check.compare = dummy_compare;
    register_check(check);
    EXPECT_TRUE(is_check_name("test-resilience-dummy"));
    EXPECT_NO_THROW(register_check(check)); // same pointers: idempotent

    RegisteredCheck conflicting = check;
    conflicting.compare = other_compare;
    EXPECT_THROW(register_check(conflicting), precondition_error);

    const CheckReport report = run_check("test-resilience-dummy", 3, 5);
    EXPECT_TRUE(report.passed());
    EXPECT_EQ(report.instances, 5u);
}

TEST(ChaosOracle, ServiceChaosCheckAgreesOnASeededCorpus) {
    register_service_checks();
    ASSERT_TRUE(is_check_name("service-chaos-vs-direct"));
    const CheckReport report = run_check("service-chaos-vs-direct", 5, 15);
    EXPECT_TRUE(report.passed())
        << (report.divergences.empty() ? ""
                                       : report.divergences.front().detail);
}

} // namespace
