// Compiled-core equivalence and orbit accounting: the Compiled backend
// (per-view decision tables + 64-wide packed evaluation + orbit sharing)
// must return bit-identical GameResults (verdict, deterministic counters,
// fault records, witness) to the interpreted reference engine, on clean
// games, faulting games, games that abort, and multi-layer alternation.
// Orbit counters must be exact: zero on asymmetric instances (globally
// unique ids make every view class a singleton), positive on symmetric
// cycles with periodic identifiers, with tree_size unchanged either way.

#include "dtm/faults.hpp"
#include "graph/generators.hpp"
#include "graph/identifiers.hpp"
#include "graphalg/coloring.hpp"
#include "hierarchy/compiled.hpp"
#include "hierarchy/game.hpp"
#include "machines/verifiers.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

/// The color domain matching a ColoringVerifier.
class ColorDomain : public CertificateDomain {
public:
    explicit ColorDomain(const ColoringVerifier& verifier) {
        for (int c = 0; c < verifier.k(); ++c) {
            options_.push_back(verifier.encode_color(c));
        }
    }
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

/// Verifier that violates its declared step bound whenever its certificate
/// contains a '1', and accepts iff the certificate is "0".
class FussyVerifier : public LocalMachine {
public:
    int round_bound() const override { return 1; }
    Polynomial step_bound() const override { return Polynomial::constant(64); }
    RoundOutput on_round(const RoundInput& input, std::string&,
                         StepMeter& meter) const override {
        if (input.certificates.find('1') != std::string::npos) {
            meter.charge(1'000'000); // blows the declared bound
        }
        return {{}, true, input.certificates == "0" ? "1" : "0"};
    }
};

/// Sigma_2 arbiter: Eve's bit must imply Adam's bit is harmless.
class ImpliesMachine : public NeighborhoodGatherMachine {
public:
    ImpliesMachine() : NeighborhoodGatherMachine(0) {}
    std::string decide(const NeighborhoodView& view, StepMeter&) const override {
        const auto parts = split_hash(view.certs[view.self]);
        const std::string eve = parts.size() > 0 ? parts[0] : "";
        const std::string adam = parts.size() > 1 ? parts[1] : "";
        return (eve == "1" || adam == "0") ? "1" : "0";
    }
};

void expect_identical(const GameResult& reference, const GameResult& other,
                      const std::string& what) {
    EXPECT_EQ(reference.accepted, other.accepted) << what;
    EXPECT_EQ(reference.machine_runs, other.machine_runs) << what;
    EXPECT_EQ(reference.faulted_runs, other.faulted_runs) << what;
    EXPECT_EQ(reference.witness.has_value(), other.witness.has_value()) << what;
    if (reference.witness.has_value() && other.witness.has_value()) {
        EXPECT_TRUE(*reference.witness == *other.witness) << what;
    }
    ASSERT_EQ(reference.probe_faults.size(), other.probe_faults.size()) << what;
    for (std::size_t i = 0; i < reference.probe_faults.size(); ++i) {
        EXPECT_EQ(reference.probe_faults[i].code, other.probe_faults[i].code)
            << what << " fault " << i;
        EXPECT_EQ(reference.probe_faults[i].node, other.probe_faults[i].node)
            << what << " fault " << i;
        EXPECT_EQ(reference.probe_faults[i].round, other.probe_faults[i].round)
            << what << " fault " << i;
    }
}

/// Runs the interpreted sequential reference against the Compiled backend at
/// 1 and 4 threads (same prebuilt tables, so one compilation serves both).
void expect_compiled_identical(const GameSpec& spec, const LabeledGraph& g,
                               const IdentifierAssignment& id,
                               const GameOptions& base, const std::string& what) {
    const GameTables tables(spec, g, id);
    GameOptions reference_options = base;
    reference_options.threads = 1;
    reference_options.memoize_views = false;
    reference_options.backend = GameBackend::Interpreted;
    const GameResult reference = play_game(spec, tables, g, id, reference_options);
    for (const unsigned threads : {1u, 4u}) {
        GameOptions options = base;
        options.threads = threads;
        options.backend = GameBackend::Compiled;
        const GameResult result = play_game(spec, tables, g, id, options);
        expect_identical(reference, result,
                         what + " compiled threads=" + std::to_string(threads));
        // The leaves-vs-sources identity the stats promise holds on the
        // packed path too (table-served leaves count as cache hits).
        EXPECT_EQ(result.stats.leaves_processed,
                  result.stats.leaf_cache_hits + result.stats.local_runs)
            << what;
    }
}

class CompiledSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(CompiledSeeds, RandomColoringGamesMatchInterpreted) {
    Rng rng(GetParam() + 211);
    const LabeledGraph g =
        random_connected_graph(3 + rng.index(6), rng.index(6), rng, "1");
    const auto id = make_global_ids(g);
    for (int k = 2; k <= 3; ++k) {
        const ColoringVerifier verifier(k);
        const ColorDomain domain(verifier);
        GameSpec spec;
        spec.machine = &verifier;
        spec.layers = {&domain};
        spec.starts_existential = true;
        expect_compiled_identical(spec, g, id, GameOptions{},
                                  "k=" + std::to_string(k) + " seed=" +
                                      std::to_string(GetParam()));
        GameOptions compiled;
        compiled.backend = GameBackend::Compiled;
        EXPECT_EQ(play_game(spec, g, id, compiled).accepted,
                  is_k_colorable(g, k));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledSeeds, ::testing::Range(0u, 8u));

TEST(CompiledGame, PackedBlockWiderThanAWordExhaustsExactly) {
    // 2^11 leaves >= the 64-leaf low block: a no-instance forces the packed
    // scan over the full space, and (coloring runs are always clean) every
    // leaf must be served from the tables.
    const LabeledGraph g = cycle_graph(11, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    expect_compiled_identical(spec, g, id, GameOptions{}, "odd cycle 11");

    GameOptions compiled;
    compiled.threads = 1;
    compiled.backend = GameBackend::Compiled;
    const GameResult result = play_game(spec, g, id, compiled);
    EXPECT_FALSE(result.accepted);
    EXPECT_EQ(result.machine_runs, std::uint64_t{1} << 11);
    EXPECT_EQ(result.stats.leaf_cache_hits, std::uint64_t{1} << 11);
    EXPECT_EQ(result.stats.local_runs, 0u);
    EXPECT_GT(result.stats.packed_words_evaluated, 0u);
    EXPECT_GT(result.stats.compiled_classes, 0u);
}

TEST(CompiledGame, BlockNarrowerThanAWordStillMatches) {
    // 3 nodes x 2 colors = 8 leaves: the whole space fits inside one partial
    // pattern word.
    const LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    expect_compiled_identical(spec, g, id, GameOptions{}, "path 3");
}

TEST(CompiledGame, ToleratedFaultLeavesFallBackIdentically) {
    // Faulting certificates are Unknown table entries: the packed scan must
    // fall back to the interpreter for exactly those leaves, reproducing the
    // fault tallies and samples bit for bit.
    const LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);
    const FussyVerifier verifier;
    const FixedOptionsDomain domain({"1", "0"});
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    GameOptions base;
    base.tolerate_faults = true;
    expect_compiled_identical(spec, g, id, base, "fussy");
}

TEST(CompiledGame, AbortingGamesThrowTheSameError) {
    const LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);
    const FussyVerifier verifier;
    const FixedOptionsDomain domain({"1", "0"});
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    for (const unsigned threads : {1u, 4u}) {
        GameOptions options;
        options.threads = threads;
        options.backend = GameBackend::Compiled;
        try {
            play_game(spec, g, id, options);
            FAIL() << "expected run_error (threads=" << threads << ")";
        } catch (const run_error& e) {
            EXPECT_EQ(e.code(), RunError::StepBoundViolated);
        }
    }
}

TEST(CompiledGame, FaultPlanDisablesCompilationButNotCorrectness) {
    // A fault plan makes node verdicts run-global, so the context is not
    // compilable; the Compiled backend must silently serve the interpreted
    // path with unchanged results.
    const LabeledGraph g = cycle_graph(6, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    FaultPlan plan;
    plan.seed = 23;
    plan.drop_prob = 0.3;
    GameOptions base;
    base.tolerate_faults = true;
    base.exec.faults = &plan;
    base.exec.on_violation = FaultPolicy::Record;
    expect_compiled_identical(spec, g, id, base, "injected");

    GameOptions compiled = base;
    compiled.backend = GameBackend::Compiled;
    const GameResult result = play_game(spec, g, id, compiled);
    EXPECT_EQ(result.stats.compiled_classes, 0u);
    EXPECT_EQ(result.stats.packed_words_evaluated, 0u);
}

TEST(CompiledGame, CostGateDeclinesUnprofitableCompiles) {
    // On a 5-cycle the whole graph sits inside every R-ball, so compilation
    // costs 5 x 2^5 ball runs against a 2^5-leaf solve; a 1.0 cost ratio
    // must decline (falling back to the interpreter with identical results)
    // while the ungated default still compiles.
    const LabeledGraph g = cycle_graph(5, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    spec.starts_existential = true;

    GameOptions gated;
    gated.compile_cost_ratio = 1.0;
    expect_compiled_identical(spec, g, id, gated, "gated 5-cycle");

    GameOptions compiled = gated;
    compiled.backend = GameBackend::Compiled;
    const GameResult declined = play_game(spec, g, id, compiled);
    EXPECT_EQ(declined.stats.compiled_classes, 0u);
    EXPECT_EQ(declined.stats.packed_words_evaluated, 0u);

    compiled.compile_cost_ratio = 0;
    const GameResult eager = play_game(spec, g, id, compiled);
    EXPECT_EQ(eager.stats.compiled_classes, 5u);
    EXPECT_EQ(eager.accepted, declined.accepted);
    EXPECT_EQ(eager.machine_runs, declined.machine_runs);
}

TEST(CompiledGame, MultiLayerGamesPackTheDeepestLayer) {
    // Sigma_2: the packed scan serves the (universal) inner layer while the
    // outer layer keeps the chunked odometer; 2^8 inner leaves > one word.
    const LabeledGraph g = path_graph(8, "1");
    const auto id = make_global_ids(g);
    const ImpliesMachine machine;
    const FixedOptionsDomain bits({"0", "1"});
    GameSpec spec;
    spec.machine = &machine;
    spec.starts_existential = true;
    spec.layers = {&bits, &bits};
    expect_compiled_identical(spec, g, id, GameOptions{}, "sigma2");

    GameOptions compiled;
    compiled.backend = GameBackend::Compiled;
    const GameResult result = play_game(spec, g, id, compiled);
    EXPECT_TRUE(result.accepted);
    ASSERT_TRUE(result.witness.has_value());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        EXPECT_EQ((*result.witness)(u), "1");
    }
    EXPECT_GT(result.stats.packed_words_evaluated, 0u);
}

TEST(CompiledGame, GloballyUniqueIdsMakeEveryOrbitASingleton) {
    // Deliberate asymmetry: globally unique identifiers put every node in
    // its own view class, so orbit sharing must claim nothing.
    for (const LabeledGraph& g :
         {path_graph(7, "1"), cycle_graph(9, "1"), star_graph(6, "1")}) {
        const auto id = make_global_ids(g);
        const ColoringVerifier verifier(2);
        const ColorDomain domain(verifier);
        GameSpec spec;
        spec.machine = &verifier;
        spec.layers = {&domain};
        const GameTables tables(spec, g, id);
        const CompiledGameCore* core =
            tables.compiled(spec, g, id, ExecutionOptions{});
        ASSERT_NE(core, nullptr);
        EXPECT_EQ(core->orbit_hits(), 0u);
        EXPECT_EQ(core->classes().size(), g.num_nodes());
        EXPECT_EQ(core->tree_size(), tables.tree_size());
    }
}

TEST(CompiledGame, PeriodicIdsShareOrbitsWithExactTreeSize) {
    // A 14-cycle with period-7 identifiers is vertex-transitive up to the id
    // pattern (period 7 >= 2 * id_radius + 1 keeps the ids locally unique):
    // 7 view classes serve all 14 nodes, and the orbit-multiplied tree size
    // still equals the interpreted product.
    const LabeledGraph g = cycle_graph(14, "1");
    const auto id = make_cyclic_ids(g, 7);
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    const GameTables tables(spec, g, id);
    const CompiledGameCore* core = tables.compiled(spec, g, id, ExecutionOptions{});
    ASSERT_NE(core, nullptr);
    EXPECT_EQ(core->classes().size(), 7u);
    EXPECT_EQ(core->orbit_hits(), 7u);
    EXPECT_EQ(core->tree_size(), tables.tree_size());
    EXPECT_TRUE(core->fully_known());

    // And the shared tables drive a bit-identical solve.
    expect_compiled_identical(spec, g, id, GameOptions{}, "cyclic ids");
    GameOptions compiled;
    compiled.backend = GameBackend::Compiled;
    const GameResult result = play_game(spec, tables, g, id, compiled);
    EXPECT_TRUE(result.accepted); // even cycle, 2-colorable
    EXPECT_EQ(result.stats.orbit_hits, 7u);
    EXPECT_EQ(result.stats.compiled_classes, 7u);
}

TEST(CompiledGame, TablesCacheCompilationAcrossSolves) {
    // The first Compiled solve on a GameTables pays the compilation; later
    // solves (any thread count) reuse it and report compile_ms == 0.
    const LabeledGraph g = cycle_graph(9, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    const GameTables tables(spec, g, id);
    GameOptions compiled;
    compiled.threads = 1;
    compiled.backend = GameBackend::Compiled;
    const GameResult first = play_game(spec, tables, g, id, compiled);
    EXPECT_GT(first.stats.compile_ms, 0.0);
    const GameResult second = play_game(spec, tables, g, id, compiled);
    EXPECT_EQ(second.stats.compile_ms, 0.0);
    expect_identical(first, second, "cached compilation");
}

} // namespace
} // namespace lph
