#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "hierarchy/pointsto_game.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

const NodePredicate kUnselected = [](const LabeledGraph& g, NodeId u) {
    return g.label(u) != "1";
};

TEST(ForcedCharges, ForestPropagates) {
    // Path 0-1-2, node 0 unselected; parents point toward 0.
    LabeledGraph g = path_graph(3, "1");
    g.set_label(0, "0");
    const ParentAssignment p{0, 0, 1};
    const std::vector<bool> x_empty(3, false);
    const auto y = forced_charges(g, p, x_empty, kUnselected);
    ASSERT_TRUE(y.has_value());
    // Roots positive; children copy outside X.
    EXPECT_TRUE((*y)[0]);
    EXPECT_TRUE((*y)[1]);
    EXPECT_TRUE((*y)[2]);

    const std::vector<bool> x_mid{false, true, false};
    const auto y2 = forced_charges(g, p, x_mid, kUnselected);
    ASSERT_TRUE(y2.has_value());
    EXPECT_TRUE((*y2)[0]);
    EXPECT_FALSE((*y2)[1]); // inverted (in X)
    EXPECT_FALSE((*y2)[2]); // copies its parent
}

TEST(ForcedCharges, RootMustSatisfyTheta) {
    const LabeledGraph g = path_graph(2, "1"); // all selected
    const ParentAssignment p{0, 0};
    EXPECT_FALSE(forced_charges(g, p, {false, false}, kUnselected).has_value());
}

TEST(ForcedCharges, SingletonXDefeatsCycles) {
    // Triangle with a 3-cycle of pointers and no roots.
    LabeledGraph g = complete_graph(3, "1");
    g.set_label(0, "0");
    const ParentAssignment p{1, 2, 0};
    // Empty X: inversions cancel, Eve survives this move...
    EXPECT_TRUE(forced_charges(g, p, {false, false, false}, kUnselected).has_value());
    // ...but the paper's singleton X does not.
    EXPECT_FALSE(forced_charges(g, p, {true, false, false}, kUnselected).has_value());
    // Two inversions cancel again.
    EXPECT_TRUE(forced_charges(g, p, {true, true, false}, kUnselected).has_value());
}

TEST(ParentsBeatEveryAdamMove, MatchesForestCriterion) {
    LabeledGraph g = cycle_graph(4, "1");
    g.set_label(2, "0");
    // BFS forest toward node 2.
    EXPECT_TRUE(parents_beat_every_adam_move(g, {1, 2, 2, 2}, kUnselected));
    // A pointer cycle loses.
    EXPECT_FALSE(parents_beat_every_adam_move(g, {1, 2, 3, 0}, kUnselected));
    // A root that is selected loses.
    EXPECT_FALSE(parents_beat_every_adam_move(g, {0, 0, 3, 2}, kUnselected));
}

class PointsToGameSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PointsToGameSweep, GameValueEqualsNotAllSelected) {
    // Example 4, executed: Eve wins the full Exists-P Forall-X game iff some
    // node is unselected.  The game engine also cross-checks the analytic
    // forest criterion against the literal Forall-X for every P it tries.
    Rng rng(GetParam() + 60);
    LabeledGraph g = random_connected_graph(2 + rng.index(3), rng.index(3), rng);
    bool any_unselected = false;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const bool selected = rng.chance(0.6);
        g.set_label(u, selected ? "1" : "0");
        any_unselected = any_unselected || !selected;
    }
    const auto result = play_points_to_game(g, kUnselected);
    EXPECT_EQ(result.eve_wins, any_unselected);
    if (result.eve_wins) {
        ASSERT_TRUE(result.winning_parents.has_value());
        EXPECT_TRUE(
            parents_beat_every_adam_move(g, *result.winning_parents, kUnselected));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointsToGameSweep, ::testing::Range(0u, 15u));

class ConstructiveStrategy : public ::testing::TestWithParam<unsigned> {};

TEST_P(ConstructiveStrategy, BfsForestAlwaysWins) {
    // Eve's strategy from the paper: BFS pointers toward the nearest
    // unselected node — it beats every Adam move on every yes-instance.
    Rng rng(GetParam() + 200);
    LabeledGraph g = random_connected_graph(3 + rng.index(8), rng.index(6), rng, "1");
    g.set_label(rng.index(g.num_nodes()), "0");
    const auto p = constructive_parents(g, kUnselected);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(parents_beat_every_adam_move(g, *p, kUnselected));
    // And explicitly against a sample of Adam's moves.
    for (unsigned trial = 0; trial < 16; ++trial) {
        std::vector<bool> x(g.num_nodes());
        for (std::size_t i = 0; i < x.size(); ++i) {
            x[i] = rng.chance(0.5);
        }
        EXPECT_TRUE(forced_charges(g, *p, x, kUnselected).has_value());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstructiveStrategy, ::testing::Range(0u, 12u));

TEST(ExistsUnselectedGame, LargeInstances) {
    // The semantic shortcut scales far beyond the brute-force formula game.
    LabeledGraph big = cycle_graph(200, "1");
    EXPECT_FALSE(exists_unselected_by_game(big));
    big.set_label(137, "0");
    EXPECT_TRUE(exists_unselected_by_game(big));
}

class NonColorableGame : public ::testing::TestWithParam<unsigned> {};

TEST_P(NonColorableGame, MatchesColoringSearch) {
    // Example 5, executed: the Pi-side game over Adam's color proposals
    // agrees with backtracking 3-colorability on small graphs.
    Rng rng(GetParam() + 90);
    const std::size_t n = 3 + rng.index(2);
    const LabeledGraph g = random_connected_graph(n, rng.index(4), rng, "");
    const auto result = non_three_colorable_by_game(g);
    EXPECT_EQ(result.non_colorable, !is_k_colorable(g, 3))
        << "n=" << n << " seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonColorableGame, ::testing::Range(0u, 8u));

TEST(NonColorableGame, K4IsNotThreeColorable) {
    const auto result = non_three_colorable_by_game(complete_graph(4, ""));
    EXPECT_TRUE(result.non_colorable);
    EXPECT_EQ(result.adam_colorings_tried, 4096u); // Eve refutes all 8^4 moves
}

TEST(PointsToGuards, ParentSpaceGuard) {
    const LabeledGraph g = complete_graph(8, "1");
    EXPECT_THROW(play_points_to_game(g, kUnselected, 100), precondition_error);
}

} // namespace
} // namespace lph

#include "hierarchy/fagin.hpp"
#include "logic/examples.hpp"

namespace lph {
namespace {

class FormulaVsGame : public ::testing::TestWithParam<unsigned> {};

TEST_P(FormulaVsGame, Sigma3SentenceAgreesWithSemanticGame) {
    // Example 4, both ways: the Sigma_3^LFO sentence evaluated by the
    // brute-force quantifier game versus the semantic PointsTo game with
    // constructive strategies.  Tiny graphs only — the formula side
    // enumerates 2^(P-universe).
    Rng rng(GetParam() + 700);
    LabeledGraph g = path_graph(2 + rng.index(2), "1");
    if (rng.chance(0.5)) {
        g.set_label(rng.index(g.num_nodes()), "0");
    }
    FaginOptions options;
    options.locality_radius = 2;
    options.max_tuples_per_variable = 16;
    options.run_machine_side = false;
    const bool by_formula =
        eval_sentence_on_graph(paper_formulas::exists_unselected_node(), g, options);
    const bool by_game = exists_unselected_by_game(g);
    EXPECT_EQ(by_formula, by_game) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormulaVsGame, ::testing::Range(0u, 8u));

} // namespace
} // namespace lph
