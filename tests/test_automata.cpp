#include "automata/dfa.hpp"
#include "automata/mso_words.hpp"
#include "core/check.hpp"
#include "core/rng.hpp"
#include "logic/formula.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

using namespace fl;

/// A handcrafted DFA over {0,1} accepting words with an even number of 1s.
Dfa parity_dfa() {
    Dfa dfa(2, 2, 0);
    dfa.set_accepting(0, true);
    dfa.set_transition(0, 0, 0);
    dfa.set_transition(0, 1, 1);
    dfa.set_transition(1, 0, 1);
    dfa.set_transition(1, 1, 0);
    return dfa;
}

/// A handcrafted DFA over {0,1} accepting even-length words.
Dfa even_length_dfa() {
    Dfa dfa(2, 2, 0);
    dfa.set_accepting(0, true);
    for (std::size_t s = 0; s < 2; ++s) {
        dfa.set_transition(0, s, 1);
        dfa.set_transition(1, s, 0);
    }
    return dfa;
}

TEST(Dfa, AcceptsAndOps) {
    const Dfa parity = parity_dfa();
    EXPECT_TRUE(parity.accepts({}));
    EXPECT_FALSE(parity.accepts({1}));
    EXPECT_TRUE(parity.accepts({1, 0, 1}));
    const Dfa odd = parity.complemented();
    EXPECT_TRUE(odd.accepts({1}));
    const Dfa both = Dfa::intersection(parity, even_length_dfa());
    EXPECT_TRUE(both.accepts({1, 1}));
    EXPECT_FALSE(both.accepts({1, 1, 0}));   // odd length
    EXPECT_FALSE(both.accepts({1, 0}));      // odd parity
    const Dfa either = Dfa::union_of(parity, even_length_dfa());
    EXPECT_TRUE(either.accepts({1, 0}));
    EXPECT_FALSE(either.accepts({1, 0, 0}));
}

TEST(Dfa, MinimizationPreservesLanguage) {
    // Blow up the parity DFA with redundant product states, then minimize.
    const Dfa parity = parity_dfa();
    const Dfa redundant = Dfa::intersection(parity, parity);
    const Dfa minimal = redundant.minimized();
    EXPECT_EQ(minimal.num_states(), 2u);
    EXPECT_TRUE(Dfa::equivalent(minimal, parity));
}

TEST(Dfa, EmptinessAndShortestWord) {
    Dfa never(1, 2, 0);
    never.set_transition(0, 0, 0);
    never.set_transition(0, 1, 0);
    EXPECT_TRUE(never.is_empty());
    const Dfa parity = parity_dfa();
    EXPECT_FALSE(parity.is_empty());
    // Shortest accepted word of odd-parity: "1".
    EXPECT_EQ(parity.complemented().shortest_accepted(),
              (std::vector<std::size_t>{1}));
}

TEST(Nfa, SubsetConstruction) {
    // NFA accepting words containing "11".
    Nfa nfa(3, 2);
    nfa.set_start(0);
    nfa.set_accepting(2);
    nfa.add_transition(0, 0, 0);
    nfa.add_transition(0, 1, 0);
    nfa.add_transition(0, 1, 1);
    nfa.add_transition(1, 1, 2);
    nfa.add_transition(2, 0, 2);
    nfa.add_transition(2, 1, 2);
    const Dfa dfa = nfa.determinized().minimized();
    EXPECT_TRUE(dfa.accepts({0, 1, 1, 0}));
    EXPECT_FALSE(dfa.accepts({1, 0, 1, 0}));
    EXPECT_EQ(dfa.num_states(), 3u);
}

// --- The Büchi–Elgot–Trakhtenbrot compiler. ---

struct MsoCase {
    std::string name;
    Formula sentence;
};

Formula first_position(const std::string& x) {
    return negate(exists("y_" + x, binary(1, "y_" + x, x)));
}

Formula last_position(const std::string& x) {
    return negate(exists("z_" + x, binary(1, x, "z_" + x)));
}

class MsoCompiler : public ::testing::TestWithParam<MsoCase> {};

TEST_P(MsoCompiler, AgreesWithDirectSemanticsOnAllShortWords) {
    const Dfa dfa = compile_mso_to_dfa(GetParam().sentence);
    for (std::size_t len = 1; len <= 7; ++len) {
        const std::uint64_t count = std::uint64_t{1} << len;
        for (std::uint64_t v = 0; v < count; ++v) {
            const BitString word = encode_unsigned_width(v, static_cast<int>(len));
            EXPECT_EQ(dfa_accepts_bits(dfa, word),
                      mso_holds_on_word(GetParam().sentence, word))
                << GetParam().name << " on " << word;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sentences, MsoCompiler,
    ::testing::Values(
        MsoCase{"some_one", exists("x", unary(1, "x"))},
        MsoCase{"all_ones", forall("x", unary(1, "x"))},
        MsoCase{"first_is_one",
                exists("x", conj(first_position("x"), unary(1, "x")))},
        MsoCase{"two_consecutive_ones",
                exists("x", exists("y", conj(binary(1, "x", "y"),
                                             conj(unary(1, "x"), unary(1, "y")))))},
        MsoCase{"every_one_followed_by_zero",
                forall("x",
                       implies(unary(1, "x"),
                               exists("y", conj(binary(1, "x", "y"),
                                                negate(unary(1, "y"))))))},
        MsoCase{"bounded_quantifier_demo",
                forall("x", implies(conj(first_position("x"), unary(1, "x")),
                                    exists_conn("w", "x", unary(1, "w"))))}),
    [](const auto& info) { return info.param.name; });

TEST(MsoCompiler, EvenLengthViaMonadicSet) {
    // exists X: first in X, successor alternates membership, last not in X
    // — defines even length.
    const Formula alternates = forall(
        "a", forall("b", implies(binary(1, "a", "b"),
                                 iff(apply("X", {"a"}),
                                     negate(apply("X", {"b"}))))));
    const Formula starts =
        forall("c", implies(first_position("c"), apply("X", {"c"})));
    const Formula ends =
        forall("d", implies(last_position("d"), negate(apply("X", {"d"}))));
    const Formula sentence =
        exists_so("X", 1, conj(alternates, conj(starts, ends)));
    const Dfa dfa = compile_mso_to_dfa(sentence);
    for (std::size_t len = 1; len <= 8; ++len) {
        const BitString word(len, '0');
        EXPECT_EQ(dfa_accepts_bits(dfa, word), len % 2 == 0) << len;
    }
}

TEST(MsoCompiler, EvenParityViaPrefixSets) {
    // exists X: X(x) iff the prefix up to x has odd 1-count; the last
    // position is not in X  ==  even number of 1s.
    const Formula base = forall(
        "p", implies(first_position("p"), iff(apply("X", {"p"}), unary(1, "p"))));
    const Formula step = forall(
        "q", forall("r", implies(binary(1, "q", "r"),
                                 iff(apply("X", {"r"}),
                                     iff(apply("X", {"q"}),
                                         negate(unary(1, "r")))))));
    const Formula end =
        forall("s", implies(last_position("s"), negate(apply("X", {"s"}))));
    const Formula sentence = exists_so("X", 1, conj(base, conj(step, end)));
    const Dfa compiled = compile_mso_to_dfa(sentence);
    // Equivalent to the handcrafted parity DFA on nonempty words; check by
    // exhaustive comparison (the compiled DFA works over a bigger alphabet).
    for (std::size_t len = 1; len <= 8; ++len) {
        const std::uint64_t count = std::uint64_t{1} << len;
        for (std::uint64_t v = 0; v < count; ++v) {
            const BitString word = encode_unsigned_width(v, static_cast<int>(len));
            std::vector<std::size_t> symbols;
            for (char c : word) {
                symbols.push_back(c == '1' ? 1 : 0);
            }
            EXPECT_EQ(dfa_accepts_bits(compiled, word), parity_dfa().accepts(symbols))
                << word;
        }
    }
}

TEST(MsoCompiler, RejectsReboundNames) {
    const Formula bad = exists("x", exists("x", unary(1, "x")));
    EXPECT_THROW(compile_mso_to_dfa(bad), precondition_error);
}

TEST(MsoCompiler, RejectsNonMonadic) {
    const Formula bad = exists_so("R", 2, forall("x", apply("R", {"x", "x"})));
    EXPECT_THROW(compile_mso_to_dfa(bad), precondition_error);
}

// --- Nerode-class growth: the Section 9.3 non-regularity witness. ---

bool majority(const BitString& w) {
    std::size_t ones = 0;
    for (char c : w) {
        ones += c == '1';
    }
    return 2 * ones >= w.size();
}

bool parity_lang(const BitString& w) {
    std::size_t ones = 0;
    for (char c : w) {
        ones += c == '1';
    }
    return ones % 2 == 0;
}

TEST(Nerode, RegularLanguagesHaveBoundedClasses) {
    EXPECT_EQ(count_nerode_classes(parity_lang, 6, 4), 2u);
    EXPECT_EQ(count_nerode_classes([](const BitString& w) { return w.size() % 2 == 0; },
                                   6, 4),
              2u);
}

TEST(Nerode, MajorityClassesGrowWithLength) {
    // MAJORITY distinguishes prefixes by their 1-surplus: the class count
    // grows linearly, witnessing non-regularity (pumping/Myhill–Nerode).
    const std::size_t at4 = count_nerode_classes(majority, 4, 4);
    const std::size_t at6 = count_nerode_classes(majority, 6, 6);
    const std::size_t at8 = count_nerode_classes(majority, 8, 8);
    EXPECT_LT(at4, at6);
    EXPECT_LT(at6, at8);
    EXPECT_GE(at8, 9u);
}

} // namespace
} // namespace lph
