#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "hierarchy/restrictive.hpp"
#include "machines/verifiers.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

/// Restrictor: every node's layer-1 certificate must decode to a valid color
/// (checks only the node's own certificate — trivially locally repairable).
class ValidColorRestrictor : public NeighborhoodGatherMachine {
public:
    explicit ValidColorRestrictor(int k)
        : NeighborhoodGatherMachine(0), verifier_(k) {}
    std::string decide(const NeighborhoodView& view, StepMeter&) const override {
        const auto parts = split_hash(view.certs[view.self]);
        const std::string cert = parts.empty() ? "" : parts[0];
        return verifier_.decode_color(cert) >= 0 ? "1" : "0";
    }

private:
    ColoringVerifier verifier_;
};

/// A *restrictive* coloring arbiter: assumes its certificates are valid
/// colors and only checks the properness condition (neighbors differ).
/// Without the restrictor it would misbehave on garbage certificates.
class TrustingColoringArbiter : public NeighborhoodGatherMachine {
public:
    explicit TrustingColoringArbiter(int k)
        : NeighborhoodGatherMachine(1), verifier_(k) {}
    std::string decide(const NeighborhoodView& view, StepMeter&) const override {
        const auto mine_parts = split_hash(view.certs[view.self]);
        const std::string mine = mine_parts.empty() ? "" : mine_parts[0];
        for (NodeId v : view.graph.neighbors(view.self)) {
            const auto their_parts = split_hash(view.certs[v]);
            if (!their_parts.empty() && their_parts[0] == mine) {
                return "0";
            }
        }
        return "1";
    }

private:
    ColoringVerifier verifier_;
};

TEST(Subview, ExtractsCenteredNeighborhood) {
    NeighborhoodView view;
    view.graph = path_graph(5, "1");
    view.self = 0;
    view.ids = {"000", "001", "010", "011", "100"};
    view.certs = {"a", "b", "c", "d", "e"};
    const NeighborhoodView sub = subview(view, 2, 1);
    EXPECT_EQ(sub.graph.num_nodes(), 3u);
    EXPECT_EQ(sub.ids[sub.self], "010");
    EXPECT_EQ(sub.certs.size(), 3u);
}

TEST(TruncateCertificates, KeepsPrefixLayers) {
    const std::vector<std::string> certs{"0#1#11", "1#0#00"};
    const auto t1 = truncate_certificates(certs, 1);
    EXPECT_EQ(t1[0], "0");
    const auto t2 = truncate_certificates(certs, 2);
    EXPECT_EQ(t2[1], "1#0");
}

class Lemma8Equivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(Lemma8Equivalence, RestrictiveAndWrappedGamesAgree) {
    // The Sigma_1 coloring game with a "valid color" restrictor over a RAW
    // bit-string domain: the restrictive game, the Lemma 8 wrapper under the
    // same raw (unrestricted) quantification, and plain colorability must
    // all agree.
    Rng rng(GetParam() + 31);
    const LabeledGraph g =
        random_connected_graph(3 + rng.index(2), rng.index(3), rng, "1");
    const auto id = make_global_ids(g);
    const int k = 2;

    const TrustingColoringArbiter arbiter(k);
    const ValidColorRestrictor restrictor(k);
    const RawBitStringDomain raw(2); // includes garbage certificates

    RestrictiveGameSpec spec;
    spec.arbiter = &arbiter;
    spec.layers = {&raw};
    spec.restrictors = {&restrictor};
    spec.starts_existential = true;
    const GameResult restrictive = play_restrictive_game(spec, g, id);

    const PermissiveWrapper wrapped(arbiter, {&restrictor}, true);
    GameSpec permissive;
    permissive.machine = &wrapped;
    permissive.layers = {&raw};
    permissive.starts_existential = true;
    const GameResult unrestricted = play_game(permissive, g, id);

    EXPECT_EQ(restrictive.accepted, unrestricted.accepted)
        << "Lemma 8 equivalence failed, seed " << GetParam();
    EXPECT_EQ(restrictive.accepted, is_k_colorable(g, k));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma8Equivalence, ::testing::Range(0u, 8u));

TEST(RestrictiveGame, UniversalLayerWithNoValidChoiceIsTrue) {
    // A Pi_1 game whose restrictor rejects everything: the universal
    // quantifier ranges over the empty set, so Eve wins vacuously.
    class RejectAll : public NeighborhoodGatherMachine {
    public:
        RejectAll() : NeighborhoodGatherMachine(0) {}
        std::string decide(const NeighborhoodView&, StepMeter&) const override {
            return "0";
        }
    };
    class AcceptNothing : public NeighborhoodGatherMachine {
    public:
        AcceptNothing() : NeighborhoodGatherMachine(0) {}
        std::string decide(const NeighborhoodView&, StepMeter&) const override {
            return "0";
        }
    };
    const LabeledGraph g = path_graph(2, "1");
    const auto id = make_global_ids(g);
    const RejectAll restrictor;
    const AcceptNothing arbiter;
    const FixedOptionsDomain bits({"0", "1"});
    RestrictiveGameSpec spec;
    spec.arbiter = &arbiter;
    spec.layers = {&bits};
    spec.restrictors = {&restrictor};
    spec.starts_existential = false; // Pi side
    EXPECT_TRUE(play_restrictive_game(spec, g, id).accepted);
    // On the Sigma side the same empty range makes Eve lose.
    spec.starts_existential = true;
    EXPECT_FALSE(play_restrictive_game(spec, g, id).accepted);
}

TEST(RestrictiveGame, TrivialRestrictorsMatchPlainGame) {
    const LabeledGraph g = cycle_graph(4, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    std::vector<BitString> colors;
    for (int c = 0; c < 2; ++c) {
        colors.push_back(verifier.encode_color(c));
    }
    const FixedOptionsDomain domain(colors);

    RestrictiveGameSpec spec;
    spec.arbiter = &verifier;
    spec.layers = {&domain};
    spec.restrictors = {nullptr};
    spec.starts_existential = true;
    EXPECT_TRUE(play_restrictive_game(spec, g, id).accepted);

    GameSpec plain;
    plain.machine = &verifier;
    plain.layers = {&domain};
    plain.starts_existential = true;
    EXPECT_TRUE(play_game(plain, g, id).accepted);
}

} // namespace
} // namespace lph
