// Parallel-vs-sequential equivalence of the certificate-game engine: the
// fanned-out, memoized solver must return bit-identical GameResults (verdict,
// deterministic counters, fault records, witness) to the 1-thread,
// cache-off reference path, on clean games, faulting games, and games that
// abort.  Only GameResult::stats may differ.

#include "dtm/faults.hpp"
#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "hierarchy/game.hpp"
#include "machines/verifiers.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

/// The color domain matching a ColoringVerifier.
class ColorDomain : public CertificateDomain {
public:
    explicit ColorDomain(const ColoringVerifier& verifier) {
        for (int c = 0; c < verifier.k(); ++c) {
            options_.push_back(verifier.encode_color(c));
        }
    }
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

/// Verifier that violates its declared step bound whenever its certificate
/// contains a '1', and accepts iff the certificate is "0".
class FussyVerifier : public LocalMachine {
public:
    int round_bound() const override { return 1; }
    Polynomial step_bound() const override { return Polynomial::constant(64); }
    RoundOutput on_round(const RoundInput& input, std::string&,
                         StepMeter& meter) const override {
        if (input.certificates.find('1') != std::string::npos) {
            meter.charge(1'000'000); // blows the declared bound
        }
        return {{}, true, input.certificates == "0" ? "1" : "0"};
    }
};

/// The engine configurations under test.  threads=1 + memoize off is the
/// sequential reference; everything else must match it exactly.
std::vector<GameOptions> engine_matrix(const GameOptions& base) {
    std::vector<GameOptions> matrix;
    for (const unsigned threads : {1u, 4u}) {
        for (const bool memoize : {false, true}) {
            GameOptions options = base;
            options.threads = threads;
            options.memoize_views = memoize;
            matrix.push_back(options);
        }
    }
    return matrix;
}

void expect_identical(const GameResult& reference, const GameResult& other,
                      const std::string& what) {
    EXPECT_EQ(reference.accepted, other.accepted) << what;
    EXPECT_EQ(reference.machine_runs, other.machine_runs) << what;
    EXPECT_EQ(reference.faulted_runs, other.faulted_runs) << what;
    EXPECT_EQ(reference.witness.has_value(), other.witness.has_value()) << what;
    if (reference.witness.has_value() && other.witness.has_value()) {
        EXPECT_TRUE(*reference.witness == *other.witness) << what;
    }
    ASSERT_EQ(reference.probe_faults.size(), other.probe_faults.size()) << what;
    for (std::size_t i = 0; i < reference.probe_faults.size(); ++i) {
        EXPECT_EQ(reference.probe_faults[i].code, other.probe_faults[i].code)
            << what << " fault " << i;
        EXPECT_EQ(reference.probe_faults[i].node, other.probe_faults[i].node)
            << what << " fault " << i;
        EXPECT_EQ(reference.probe_faults[i].round, other.probe_faults[i].round)
            << what << " fault " << i;
    }
}

void expect_matrix_identical(const GameSpec& spec, const LabeledGraph& g,
                             const IdentifierAssignment& id,
                             const GameOptions& base, const std::string& what) {
    GameOptions reference_options = base;
    reference_options.threads = 1;
    reference_options.memoize_views = false;
    const GameResult reference = play_game(spec, g, id, reference_options);
    for (const GameOptions& options : engine_matrix(base)) {
        const GameResult result = play_game(spec, g, id, options);
        expect_identical(reference, result,
                         what + " threads=" + std::to_string(options.threads) +
                             " memoize=" + std::to_string(options.memoize_views));
    }
}

class SeqParSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(SeqParSeeds, RandomColoringGamesAgree) {
    Rng rng(GetParam() + 101);
    const LabeledGraph g =
        random_connected_graph(3 + rng.index(5), rng.index(5), rng, "1");
    const auto id = make_global_ids(g);
    for (int k = 2; k <= 3; ++k) {
        const ColoringVerifier verifier(k);
        const ColorDomain domain(verifier);
        GameSpec spec;
        spec.machine = &verifier;
        spec.layers = {&domain};
        spec.starts_existential = true;
        expect_matrix_identical(spec, g, id, GameOptions{},
                                "k=" + std::to_string(k) + " seed=" +
                                    std::to_string(GetParam()));
        // The verdict itself stays correct.
        GameOptions parallel;
        parallel.threads = 4;
        EXPECT_EQ(play_game(spec, g, id, parallel).accepted,
                  is_k_colorable(g, k));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqParSeeds, ::testing::Range(0u, 8u));

TEST(ParallelGame, ExhaustiveNoInstanceAgrees) {
    // A no-instance forces full exhaustion in every configuration, so all
    // counters cover the complete assignment space.
    const LabeledGraph g = cycle_graph(9, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    expect_matrix_identical(spec, g, id, GameOptions{}, "odd cycle");
    GameOptions parallel;
    parallel.threads = 4;
    const GameResult result = play_game(spec, g, id, parallel);
    EXPECT_FALSE(result.accepted);
    EXPECT_EQ(result.machine_runs, std::uint64_t{1} << 9);
}

TEST(ParallelGame, ToleratedFaultGamesAgree) {
    // Faulting probes (step-bound blowups under tolerate_faults) must be
    // tallied and sampled identically by every engine configuration.
    const LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);
    const FussyVerifier verifier;
    const FixedOptionsDomain domain({"1", "0"});
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    GameOptions base;
    base.tolerate_faults = true;
    expect_matrix_identical(spec, g, id, base, "fussy");
    GameOptions parallel = base;
    parallel.threads = 4;
    const GameResult result = play_game(spec, g, id, parallel);
    EXPECT_TRUE(result.accepted); // the all-"0" assignment still wins
    EXPECT_GE(result.faulted_runs, 1u);
    ASSERT_FALSE(result.probe_faults.empty());
    EXPECT_EQ(result.probe_faults.front().code, RunError::StepBoundViolated);
}

TEST(ParallelGame, AbortingGamesThrowTheSameError) {
    // Without tolerate_faults the engine aborts on the first faulting probe
    // in leaf order — sequential and parallel alike (the parallel merge
    // rethrows the minimal-index exception).
    const LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);
    const FussyVerifier verifier;
    const FixedOptionsDomain domain({"1", "0"});
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    for (const GameOptions& options : engine_matrix(GameOptions{})) {
        try {
            play_game(spec, g, id, options);
            FAIL() << "expected run_error (threads=" << options.threads << ")";
        } catch (const run_error& e) {
            EXPECT_EQ(e.code(), RunError::StepBoundViolated);
        }
    }
}

TEST(ParallelGame, InjectedFaultGamesAgree) {
    // A fault plan disables the view cache (run-global coupling) but the
    // parallel fan-out must still match the sequential reference replay.
    const LabeledGraph g = cycle_graph(6, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    FaultPlan plan;
    plan.seed = 23;
    plan.drop_prob = 0.3;
    GameOptions base;
    base.tolerate_faults = true;
    base.exec.faults = &plan;
    base.exec.on_violation = FaultPolicy::Record;
    expect_matrix_identical(spec, g, id, base, "injected");
}

TEST(ParallelGame, MultiLayerGamesAgree) {
    // Sigma_2 alternation: Eve then Adam, one bit per node.
    class XorMachine : public NeighborhoodGatherMachine {
    public:
        explicit XorMachine(bool winnable)
            : NeighborhoodGatherMachine(0), winnable_(winnable) {}
        std::string decide(const NeighborhoodView& view, StepMeter&) const override {
            const auto parts = split_hash(view.certs[view.self]);
            const std::string eve = parts.size() > 0 ? parts[0] : "";
            const std::string adam = parts.size() > 1 ? parts[1] : "";
            if (winnable_) {
                return (eve == "1" || adam == "0") ? "1" : "0";
            }
            return eve == adam ? "1" : "0";
        }

    private:
        bool winnable_;
    };
    const LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);
    const FixedOptionsDomain bits({"0", "1"});
    for (const bool winnable : {false, true}) {
        const XorMachine machine(winnable);
        GameSpec spec;
        spec.machine = &machine;
        spec.starts_existential = true;
        spec.layers = {&bits, &bits};
        expect_matrix_identical(spec, g, id, GameOptions{},
                                winnable ? "winnable" : "unwinnable");
        EXPECT_EQ(play_game(spec, g, id).accepted, winnable);
    }
}

TEST(ParallelGame, MultiLayerWitnessIsRecordedAndWins) {
    // The outermost existential assignment is recorded for deeper games too
    // (it used to be dropped for anything beyond Sigma_1): Eve's winning
    // opening must beat *every* Adam reply.
    class ImpliesMachine : public NeighborhoodGatherMachine {
    public:
        ImpliesMachine() : NeighborhoodGatherMachine(0) {}
        std::string decide(const NeighborhoodView& view, StepMeter&) const override {
            const auto parts = split_hash(view.certs[view.self]);
            const std::string eve = parts.size() > 0 ? parts[0] : "";
            const std::string adam = parts.size() > 1 ? parts[1] : "";
            return (eve == "1" || adam == "0") ? "1" : "0";
        }
    };
    const LabeledGraph g = path_graph(2, "1");
    const auto id = make_global_ids(g);
    const ImpliesMachine machine;
    const FixedOptionsDomain bits({"0", "1"});
    GameSpec spec;
    spec.machine = &machine;
    spec.starts_existential = true;
    spec.layers = {&bits, &bits};
    for (const GameOptions& options : engine_matrix(GameOptions{})) {
        const GameResult result = play_game(spec, g, id, options);
        ASSERT_TRUE(result.accepted);
        ASSERT_TRUE(result.witness.has_value());
        // Eve's only winning opening is all-"1" (any "0" loses to adam="1").
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
            EXPECT_EQ((*result.witness)(u), "1");
        }
        // Her opening beats every Adam reply.
        for (const std::string a0 : {"0", "1"}) {
            for (const std::string a1 : {"0", "1"}) {
                CertificateAssignment adam(std::vector<BitString>{a0, a1});
                const auto list = CertificateListAssignment::concatenate(
                    {*result.witness, adam}, g.num_nodes());
                EXPECT_TRUE(run_local(machine, g, id, list).accepted)
                    << a0 << "," << a1;
            }
        }
    }
}

TEST(ParallelGame, PiSideGamesHaveNoWitness) {
    // When Adam opens, a winning Eve needs a strategy, not one assignment;
    // the engine must not fabricate a witness.
    class AcceptAll : public NeighborhoodGatherMachine {
    public:
        AcceptAll() : NeighborhoodGatherMachine(0) {}
        std::string decide(const NeighborhoodView&, StepMeter&) const override {
            return "1";
        }
    };
    const LabeledGraph g = path_graph(2, "1");
    const auto id = make_global_ids(g);
    const AcceptAll machine;
    const FixedOptionsDomain bits({"0", "1"});
    GameSpec spec;
    spec.machine = &machine;
    spec.starts_existential = false;
    spec.layers = {&bits};
    for (const GameOptions& options : engine_matrix(GameOptions{})) {
        const GameResult result = play_game(spec, g, id, options);
        EXPECT_TRUE(result.accepted);
        EXPECT_FALSE(result.witness.has_value());
    }
}

TEST(ParallelGame, StatsDescribeTheWork) {
    const LabeledGraph g = cycle_graph(11, "1");
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};

    GameOptions sequential;
    sequential.threads = 1;
    sequential.memoize_views = false;
    const GameResult seq = play_game(spec, g, id, sequential);
    EXPECT_EQ(seq.stats.leaves_processed, std::uint64_t{1} << 11);
    EXPECT_EQ(seq.stats.local_runs, seq.stats.leaves_processed);
    EXPECT_EQ(seq.stats.leaf_cache_hits, 0u);
    EXPECT_EQ(seq.stats.workers, 1u);

    GameOptions memoized;
    memoized.threads = 4;
    memoized.memoize_views = true;
    const GameResult par = play_game(spec, g, id, memoized);
    EXPECT_EQ(par.stats.leaves_processed,
              par.stats.leaf_cache_hits + par.stats.local_runs);
    EXPECT_GT(par.stats.leaf_cache_hits, 0u);
    EXPECT_LT(par.stats.local_runs, seq.stats.local_runs);
    EXPECT_GT(par.stats.cache_hit_rate(), 0.3);
    EXPECT_GE(par.stats.workers, 4u);
    EXPECT_GT(par.stats.chunks, 1u);
}

/// With one worker there is no speculation: GameStats must agree exactly with
/// the deterministic counters, and busy/wall stay consistent, whether the
/// solve early-exits (a yes-instance deciding on an early assignment) or
/// exhausts the space (a no-instance) — and on the layerless single-probe
/// path, which used to report busy_ms = 0.
void expect_single_thread_stats_consistent(const GameResult& result) {
    EXPECT_EQ(result.stats.leaves_processed, result.machine_runs);
    EXPECT_EQ(result.stats.workers, 1u);
    EXPECT_EQ(result.stats.chunks, 1u);
    EXPECT_GT(result.stats.busy_ms, 0.0);
    EXPECT_GT(result.stats.wall_ms, 0.0);
    // One worker's processing time fits inside the solve's wall clock (small
    // slack for the two clocks being read at slightly different points).
    EXPECT_LE(result.stats.busy_ms, result.stats.wall_ms * 1.05 + 0.5);
}

TEST(ParallelGame, SingleThreadStatsMatchDeterministicCounters) {
    const auto solve = [](const LabeledGraph& g, bool memoize) {
        const auto id = make_global_ids(g);
        const ColoringVerifier verifier(2);
        const ColorDomain domain(verifier);
        GameSpec spec;
        spec.machine = &verifier;
        spec.layers = {&domain};
        GameOptions options;
        options.threads = 1;
        options.memoize_views = memoize;
        return play_game(spec, g, id, options);
    };

    for (const bool memoize : {false, true}) {
        // Even cycle: 2-colorable, so the solve exits at the first accepting
        // assignment without touching the rest of the space.
        const GameResult early = solve(cycle_graph(8, "1"), memoize);
        EXPECT_TRUE(early.accepted);
        EXPECT_LT(early.machine_runs, std::uint64_t{1} << 8);
        expect_single_thread_stats_consistent(early);

        // Odd cycle: not 2-colorable, every assignment is probed.
        const GameResult full = solve(cycle_graph(9, "1"), memoize);
        EXPECT_FALSE(full.accepted);
        EXPECT_EQ(full.machine_runs, std::uint64_t{1} << 9);
        expect_single_thread_stats_consistent(full);
    }
}

TEST(ParallelGame, LeafOnlyGameReportsBusyTime) {
    // A spec with no quantifier layers runs the arbiter exactly once.
    class AcceptAll : public NeighborhoodGatherMachine {
    public:
        AcceptAll() : NeighborhoodGatherMachine(0) {}
        std::string decide(const NeighborhoodView&, StepMeter&) const override {
            return "1";
        }
    };
    const LabeledGraph g = path_graph(4, "1");
    const auto id = make_global_ids(g);
    const AcceptAll machine;
    GameSpec spec;
    spec.machine = &machine;
    const GameResult result = play_game(spec, g, id, GameOptions{});
    EXPECT_TRUE(result.accepted);
    EXPECT_EQ(result.machine_runs, 1u);
    expect_single_thread_stats_consistent(result);
}

} // namespace
} // namespace lph
