#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graphalg/eulerian.hpp"
#include "graphalg/hamiltonian.hpp"
#include "reductions/classic_reductions.hpp"
#include "reductions/verify.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

bool all_selected_oracle(const LabeledGraph& g) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.label(u) != "1") {
            return false;
        }
    }
    return true;
}

/// A labeled instance: a random connected graph with either all-"1" labels
/// or one flipped node.
LabeledGraph make_instance(unsigned seed, bool all_selected) {
    Rng rng(seed);
    LabeledGraph g = random_connected_graph(2 + rng.index(5), rng.index(4), rng, "1");
    if (!all_selected) {
        g.set_label(rng.index(g.num_nodes()), "0");
    }
    return g;
}

TEST(ClusterCodec, RoundTrip) {
    ClusterSpec spec;
    spec.nodes.push_back({"a", "01"});
    spec.nodes.push_back({"b", ""});
    spec.internal_edges.emplace_back("a", "b");
    spec.cross_edges.push_back({"a", "101", "c"});
    const std::string text = encode_cluster(spec);
    const ClusterSpec parsed = decode_cluster(text);
    ASSERT_EQ(parsed.nodes.size(), 2u);
    EXPECT_EQ(parsed.nodes[0].name, "a");
    EXPECT_EQ(parsed.nodes[0].label, "01");
    ASSERT_EQ(parsed.internal_edges.size(), 1u);
    ASSERT_EQ(parsed.cross_edges.size(), 1u);
    EXPECT_EQ(parsed.cross_edges[0].neighbor_id, "101");
    EXPECT_EQ(parsed.cross_edges[0].remote_name, "c");
}

TEST(ClusterCodec, EmptySections) {
    ClusterSpec spec;
    spec.nodes.push_back({"only", "1"});
    const ClusterSpec parsed = decode_cluster(encode_cluster(spec));
    EXPECT_EQ(parsed.nodes.size(), 1u);
    EXPECT_TRUE(parsed.internal_edges.empty());
    EXPECT_TRUE(parsed.cross_edges.empty());
}

// --- Proposition 15: ALL-SELECTED -> EULERIAN. ---

class EulerianReduction : public ::testing::TestWithParam<unsigned> {};

TEST_P(EulerianReduction, EquivalenceAndClusterMap) {
    for (bool all : {true, false}) {
        const LabeledGraph g = make_instance(GetParam(), all);
        const AllSelectedToEulerian reduction;
        const auto check_result = check_reduction(
            reduction, g, make_global_ids(g), all_selected_oracle,
            [](const LabeledGraph& h) { return is_eulerian(h); });
        EXPECT_TRUE(check_result.cluster_map_ok);
        EXPECT_TRUE(check_result.output_connected);
        EXPECT_EQ(check_result.source_member, all);
        EXPECT_TRUE(check_result.equivalence_holds)
            << "seed " << GetParam() << " all=" << all;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerianReduction, ::testing::Range(0u, 15u));

TEST(EulerianReductionDetail, Figure7Shape) {
    // Two nodes joined by an edge, one unselected: the reduced graph has two
    // copies per node, four cross edges, and one vertical edge.
    LabeledGraph g = path_graph(2, "1");
    g.set_label(1, "0");
    const AllSelectedToEulerian reduction;
    const ReducedGraph reduced = apply_reduction(reduction, g, make_global_ids(g));
    EXPECT_EQ(reduced.graph.num_nodes(), 4u);
    EXPECT_EQ(reduced.graph.num_edges(), 5u);
    EXPECT_FALSE(is_eulerian(reduced.graph)); // odd degrees at node 1's copies
}

TEST(EulerianReductionDetail, SingleNodeSpecialCase) {
    const AllSelectedToEulerian reduction;
    const LabeledGraph yes = single_node_graph("1");
    const LabeledGraph no = single_node_graph("0");
    EXPECT_TRUE(is_eulerian(
        apply_reduction(reduction, yes, make_global_ids(yes)).graph));
    EXPECT_FALSE(
        is_eulerian(apply_reduction(reduction, no, make_global_ids(no)).graph));
}

// --- Proposition 16: ALL-SELECTED -> HAMILTONIAN. ---

class HamiltonianReduction : public ::testing::TestWithParam<unsigned> {};

TEST_P(HamiltonianReduction, EquivalenceAndClusterMap) {
    for (bool all : {true, false}) {
        const LabeledGraph g = make_instance(GetParam() + 100, all);
        const AllSelectedToHamiltonian reduction;
        const auto check_result = check_reduction(
            reduction, g, make_global_ids(g), all_selected_oracle,
            [](const LabeledGraph& h) { return is_hamiltonian(h); });
        EXPECT_TRUE(check_result.cluster_map_ok);
        EXPECT_TRUE(check_result.output_connected);
        EXPECT_TRUE(check_result.equivalence_holds)
            << "seed " << GetParam() << " all=" << all << " nodes "
            << check_result.output_nodes;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HamiltonianReduction, ::testing::Range(0u, 12u));

TEST(HamiltonianReductionDetail, PortCycleSizes) {
    // A degree-d node becomes a cycle of max(3, 2d) port nodes (Figure 2).
    const LabeledGraph g = star_graph(4, "1"); // hub degree 3, leaves degree 1
    const AllSelectedToHamiltonian reduction;
    const ReducedGraph reduced = apply_reduction(reduction, g, make_global_ids(g));
    EXPECT_EQ(reduced.clusters[0].size(), 6u); // hub: 2*3 ports
    EXPECT_EQ(reduced.clusters[1].size(), 3u); // leaf: 2 ports + 1 dummy
    EXPECT_TRUE(is_hamiltonian(reduced.graph));
}

TEST(HamiltonianReductionDetail, PendantKillsHamiltonicity) {
    LabeledGraph g = star_graph(3, "1");
    g.set_label(2, "0");
    const AllSelectedToHamiltonian reduction;
    const ReducedGraph reduced = apply_reduction(reduction, g, make_global_ids(g));
    // The "bad" pendant has degree 1.
    bool has_degree_one = false;
    for (NodeId w = 0; w < reduced.graph.num_nodes(); ++w) {
        has_degree_one = has_degree_one || reduced.graph.degree(w) == 1;
    }
    EXPECT_TRUE(has_degree_one);
    EXPECT_FALSE(is_hamiltonian(reduced.graph));
}

// --- Proposition 17: NOT-ALL-SELECTED -> HAMILTONIAN. ---

class CoHamiltonianReduction : public ::testing::TestWithParam<unsigned> {};

TEST_P(CoHamiltonianReduction, EquivalenceAndClusterMap) {
    for (bool all : {true, false}) {
        const LabeledGraph g = make_instance(GetParam() + 300, all);
        if (g.num_nodes() > 3) {
            continue; // keep the Hamiltonian search tractable (2(2d+3) nodes each)
        }
        const NotAllSelectedToHamiltonian reduction;
        const auto check_result = check_reduction(
            reduction, g, make_global_ids(g),
            [](const LabeledGraph& h) { return !all_selected_oracle(h); },
            [](const LabeledGraph& h) { return is_hamiltonian(h); });
        EXPECT_TRUE(check_result.cluster_map_ok);
        EXPECT_TRUE(check_result.output_connected);
        EXPECT_TRUE(check_result.equivalence_holds)
            << "seed " << GetParam() << " all=" << all;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoHamiltonianReduction, ::testing::Range(0u, 12u));

TEST(CoHamiltonianDetail, SingleNodeBothWays) {
    const NotAllSelectedToHamiltonian reduction;
    const LabeledGraph unselected = single_node_graph("0");
    const LabeledGraph selected = single_node_graph("1");
    EXPECT_TRUE(is_hamiltonian(
        apply_reduction(reduction, unselected, make_global_ids(unselected)).graph));
    EXPECT_FALSE(is_hamiltonian(
        apply_reduction(reduction, selected, make_global_ids(selected)).graph));
}

TEST(CoHamiltonianDetail, DeckSizes) {
    LabeledGraph g = path_graph(2, "1");
    g.set_label(0, "0");
    const NotAllSelectedToHamiltonian reduction;
    const ReducedGraph reduced = apply_reduction(reduction, g, make_global_ids(g));
    // Each degree-1 node: two decks of 2*1+3 = 5 nodes.
    EXPECT_EQ(reduced.graph.num_nodes(), 20u);
    EXPECT_TRUE(is_hamiltonian(reduced.graph));
}

TEST(ApplyReduction, RejectsDanglingCrossEdges) {
    class BrokenReduction : public ReductionMachine {
    public:
        BrokenReduction() : ReductionMachine(1) {}
        ClusterSpec build_cluster(const NeighborhoodView& view,
                                  StepMeter&) const override {
            ClusterSpec spec;
            spec.nodes.push_back({"a", ""});
            for (NodeId v : view.graph.neighbors(view.self)) {
                spec.cross_edges.push_back({"a", view.ids[v], "nonexistent"});
            }
            return spec;
        }
    };
    const LabeledGraph g = path_graph(2, "1");
    EXPECT_THROW(apply_reduction(BrokenReduction{}, g, make_global_ids(g)),
                 precondition_error);
}

} // namespace
} // namespace lph

#include "graphalg/spanning.hpp"
#include "hierarchy/hamiltonian_game.hpp"

namespace lph {
namespace {

class EulerTourWitness : public ::testing::TestWithParam<unsigned> {};

TEST_P(EulerTourWitness, TreeYieldsHamiltonianCycleInReducedGraph) {
    // The constructive half of Proposition 16: any spanning tree of an
    // all-selected input yields an explicit Hamiltonian cycle of G' — no
    // search involved, so this scales to hundreds of output nodes.
    Rng rng(GetParam() + 4000);
    const LabeledGraph g =
        random_connected_graph(3 + rng.index(20), rng.index(12), rng, "1");
    const auto id = make_global_ids(g);
    const ReducedGraph reduced =
        apply_reduction(AllSelectedToHamiltonian{}, g, id);
    const SpanningTree tree = bfs_spanning_tree(g, rng.index(g.num_nodes()));
    const auto cycle = hamiltonian_witness_from_tree(g, id, tree, reduced);
    // A Hamiltonian cycle == a connected 2-regular spanning edge set.
    EdgeSet h(cycle.begin(), cycle.end());
    EXPECT_TRUE(all_degree_two(reduced.graph, h));
    EXPECT_EQ(h_components(reduced.graph, h).size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerTourWitness, ::testing::Range(0u, 15u));

TEST(EulerTourWitnessDetail, RejectsUnselectedInputs) {
    LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);
    const SpanningTree tree = bfs_spanning_tree(g, 0);
    g.set_label(1, "0");
    const ReducedGraph reduced =
        apply_reduction(AllSelectedToHamiltonian{}, g, id);
    EXPECT_THROW(hamiltonian_witness_from_tree(g, id, tree, reduced),
                 precondition_error);
}

} // namespace
} // namespace lph
