#include "logic/classify.hpp"
#include "logic/examples.hpp"
#include "logic/formula.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

using namespace fl;

TEST(Formula, FreeVariables) {
    const Formula phi = exists_conn("z", "y", disj(binary(1, "z", "y"), unary(1, "x")));
    const auto free = free_fo_variables(phi);
    EXPECT_EQ(free, (std::set<std::string>{"x", "y"}));
}

TEST(Formula, AnchorOfBoundedQuantifierIsFree) {
    const Formula phi = exists_conn("z", "y", top());
    EXPECT_EQ(free_fo_variables(phi), (std::set<std::string>{"y"}));
}

TEST(Formula, FreeSecondOrder) {
    const Formula phi = exists_so("R", 2, apply("R", {"x", "x"}));
    EXPECT_TRUE(free_so_variables(phi).empty());
    const Formula open = apply("S", {"x"});
    EXPECT_EQ(free_so_variables(open), (std::set<std::string>{"S"}));
}

TEST(Formula, SubstitutionRespectsBinding) {
    // In "exists x ~ y. R(x, w)", substituting w -> v renames only w; x stays
    // bound.
    const Formula phi = exists_conn("x", "y", apply("R", {"x", "w"}));
    const Formula sub = substitute_fo(phi, "w", "v");
    EXPECT_EQ(free_fo_variables(sub), (std::set<std::string>{"y", "v"}));
    // Substituting the bound variable is a no-op inside.
    const Formula same = substitute_fo(phi, "x", "v");
    EXPECT_EQ(free_fo_variables(same), (std::set<std::string>{"y", "w"}));
}

TEST(Formula, SubstitutionAvoidsCapture) {
    // Substituting y -> x in "exists x ~ y. R(y)" must not capture.
    const Formula phi = exists_conn("x", "y", apply("R", {"y"}));
    const Formula sub = substitute_fo(phi, "y", "x");
    // The bound variable was renamed away from x.
    EXPECT_EQ(free_fo_variables(sub), (std::set<std::string>{"x"}));
    EXPECT_NE(to_string(sub).find("R(x)"), std::string::npos);
}

TEST(Formula, ToStringReadable) {
    const Formula phi = forall("x", implies(unary(1, "x"), equals("x", "x")));
    EXPECT_EQ(to_string(phi), "forall x. (O1(x) -> x = x)");
}

TEST(Formula, SizeCounts) {
    EXPECT_EQ(formula_size(top()), 1u);
    EXPECT_EQ(formula_size(conj(top(), bottom())), 3u);
}

TEST(Classify, BFDetection) {
    const Formula bf = exists_conn("z", "y", negate(unary(1, "z")));
    const FormulaClass c = classify(bf);
    EXPECT_TRUE(c.first_order);
    EXPECT_TRUE(c.bounded);
    EXPECT_FALSE(c.local_fo);
    EXPECT_EQ(c.bf_depth, 1);
}

TEST(Classify, UnboundedNotBF) {
    const Formula fo = exists("z", unary(1, "z"));
    const FormulaClass c = classify(fo);
    EXPECT_TRUE(c.first_order);
    EXPECT_FALSE(c.bounded);
}

TEST(Classify, LfoShape) {
    const Formula lfo = forall("x", exists_conn("y", "x", top()));
    EXPECT_TRUE(classify(lfo).local_fo);
    EXPECT_EQ(sigma_lfo_level(lfo), 0);
    EXPECT_EQ(pi_lfo_level(lfo), 0);
}

struct LevelCase {
    std::string name;
    Formula formula;
    int sigma;
    int pi;
    bool monadic;
};

class PaperFormulaLevels : public ::testing::TestWithParam<LevelCase> {};

TEST_P(PaperFormulaLevels, MatchesPaper) {
    const auto& param = GetParam();
    EXPECT_EQ(sigma_lfo_level(param.formula), param.sigma);
    EXPECT_EQ(pi_lfo_level(param.formula), param.pi);
    EXPECT_EQ(classify(param.formula).monadic, param.monadic);
}

INSTANTIATE_TEST_SUITE_P(
    SectionFiveTwo, PaperFormulaLevels,
    ::testing::Values(
        // Example 2: ALL-SELECTED is an LFO-sentence (level 0 on both sides).
        LevelCase{"all_selected", paper_formulas::all_selected(), 0, 0, true},
        // Example 3: 3-COLORABLE is Sigma_1^LFO.
        LevelCase{"three_colorable", paper_formulas::three_colorable(), 1, -1,
                  true},
        // Example 4: NOT-ALL-SELECTED as a Sigma_3^LFO-sentence.
        LevelCase{"exists_unselected", paper_formulas::exists_unselected_node(),
                  3, -1, false},
        // Example 5: NON-3-COLORABLE as a Pi_4^LFO-sentence.
        LevelCase{"non_three_colorable", paper_formulas::non_three_colorable(),
                  -1, 4, false},
        // Example 6: HAMILTONIAN as a Sigma_5^LFO-sentence.
        LevelCase{"hamiltonian", paper_formulas::hamiltonian(), 5, -1, false},
        // Example 7: NON-HAMILTONIAN as a Pi_4^LFO-sentence.
        LevelCase{"non_hamiltonian", paper_formulas::non_hamiltonian(), -1, 4,
                  false}),
    [](const auto& info) { return info.param.name; });

TEST(Classify, MatrixMustBeLfo) {
    // An SO prefix over an unbounded matrix is in neither local hierarchy.
    const Formula phi = exists_so("R", 1, exists("x", apply("R", {"x"})));
    EXPECT_EQ(sigma_lfo_level(phi), -1);
    EXPECT_EQ(pi_lfo_level(phi), -1);
    EXPECT_TRUE(classify(phi).matrix_is_fo);
}

TEST(Classify, AlternationBlocksCounted) {
    const Formula matrix = forall("x", unary(1, "x"));
    const Formula phi =
        exists_so("A", 1, exists_so("B", 1, forall_so("C", 1, matrix)));
    const FormulaClass c = classify(phi);
    EXPECT_EQ(c.so_blocks, 2); // EE|A -> two blocks
    EXPECT_TRUE(c.starts_existential);
    EXPECT_EQ(sigma_lfo_level(phi), 2);
}

TEST(Shorthand, ExistsWithinZeroSubstitutes) {
    const Formula phi = exists_within("x", 0, "y", unary(1, "x"));
    EXPECT_EQ(to_string(phi), "O1(y)");
}

TEST(Shorthand, ExistsWithinOneExpands) {
    const Formula phi = exists_within("x", 1, "y", unary(1, "x"));
    // Must mention O1(y) (distance 0) and a bounded quantifier step.
    const std::string text = to_string(phi);
    EXPECT_NE(text.find("O1(y)"), std::string::npos);
    EXPECT_NE(text.find("exists"), std::string::npos);
    EXPECT_TRUE(classify(phi).bounded);
    EXPECT_EQ(free_fo_variables(phi), (std::set<std::string>{"y"}));
}

TEST(Shorthand, DepthGrowsWithRadius) {
    const Formula f1 = exists_within("x", 1, "y", unary(1, "x"));
    const Formula f3 = exists_within("x", 3, "y", unary(1, "x"));
    EXPECT_LT(classify(f1).bf_depth, classify(f3).bf_depth);
}

} // namespace
} // namespace lph
