#include "core/check.hpp"
#include "logic/eval.hpp"
#include "pictures/mso_pictures.hpp"
#include "pictures/tiling.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

namespace pf = picture_formulas;

TEST(PicturePositions, CornersAndEdges) {
    const Picture p = blank_picture(2, 3);
    const Structure s = picture_structure(p);
    // Row-major elements: (0,0)=0 ... (1,2)=5.
    Assignment sigma;
    sigma.fo["x"] = 0;
    EXPECT_TRUE(evaluate(s, pf::top_left("x"), sigma));
    EXPECT_FALSE(evaluate(s, pf::bottom_right("x"), sigma));
    sigma.fo["x"] = 5;
    EXPECT_TRUE(evaluate(s, pf::bottom_right("x"), sigma));
    EXPECT_TRUE(evaluate(s, pf::last_column("x"), sigma));
    sigma.fo["x"] = 3; // (1,0)
    EXPECT_TRUE(evaluate(s, pf::first_column("x"), sigma));
    EXPECT_TRUE(evaluate(s, pf::bottom_row("x"), sigma));
    EXPECT_FALSE(evaluate(s, pf::top_row("x"), sigma));
}

TEST(PictureBits, SomeAndAll) {
    Picture p(2, 2, 1);
    EXPECT_FALSE(picture_satisfies(p, pf::some_bit(1)));
    p.set(0, 1, "1");
    EXPECT_TRUE(picture_satisfies(p, pf::some_bit(1)));
    EXPECT_FALSE(picture_satisfies(p, pf::all_bits(1)));
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            p.set(i, j, "1");
        }
    }
    EXPECT_TRUE(picture_satisfies(p, pf::all_bits(1)));
}

TEST(PictureBits, FirstColumnBlank) {
    Picture p(3, 2, 1);
    EXPECT_TRUE(picture_satisfies(p, pf::first_column_blank()));
    p.set(1, 1, "1"); // second column may carry bits
    EXPECT_TRUE(picture_satisfies(p, pf::first_column_blank()));
    p.set(2, 0, "1");
    EXPECT_FALSE(picture_satisfies(p, pf::first_column_blank()));
}

class SquareFormulaVsTiling
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SquareFormulaVsTiling, TheoremTwentyNineCorrespondence) {
    // The existential monadic sentence and the tiling system recognize the
    // same (square) pictures — the logic/automata correspondence of
    // Theorem 29, exercised instance by instance.
    const auto [rows, cols] = GetParam();
    const Picture p = blank_picture(static_cast<std::size_t>(rows),
                                    static_cast<std::size_t>(cols));
    const bool by_formula = picture_satisfies(p, pf::square());
    const bool by_tiling = square_tiling_system().recognizes(p);
    EXPECT_EQ(by_formula, by_tiling) << rows << "x" << cols;
    EXPECT_EQ(by_formula, rows == cols);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SquareFormulaVsTiling,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(2, 2),
                      std::make_pair(3, 3), std::make_pair(4, 4),
                      std::make_pair(1, 2), std::make_pair(2, 1),
                      std::make_pair(2, 3), std::make_pair(3, 2),
                      std::make_pair(3, 4)));

TEST(SquareFormula, ContentIrrelevant) {
    Picture p(3, 3, 1);
    p.set(0, 2, "1");
    p.set(2, 2, "1");
    EXPECT_TRUE(picture_satisfies(p, pf::square()));
}

TEST(PictureSatisfies, UniverseGuard) {
    const Picture p = blank_picture(5, 6); // 30 pixels > default guard
    EXPECT_THROW(picture_satisfies(p, pf::square()), precondition_error);
}

} // namespace
} // namespace lph
