#include "core/check.hpp"
#include "graph/generators.hpp"
#include "pictures/matz.hpp"
#include "pictures/picture.hpp"
#include "pictures/tiling.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace lph {
namespace {

TEST(Picture, BasicAccess) {
    Picture p(2, 3, 2);
    EXPECT_EQ(p.at(0, 0), "00");
    p.set(1, 2, "10");
    EXPECT_EQ(p.at(1, 2), "10");
    EXPECT_THROW(p.set(0, 0, "1"), precondition_error);
    EXPECT_THROW(p.at(2, 0), precondition_error);
}

TEST(PictureStructure, Figure5Shape) {
    // A 2-bit picture of size (2,2): 4 pixel elements, vertical and
    // horizontal successors, one unary relation per bit.
    Picture p(2, 2, 2);
    p.set(0, 0, "10");
    p.set(1, 1, "01");
    const Structure s = picture_structure(p);
    EXPECT_EQ(s.domain_size(), 4u);
    EXPECT_EQ(s.num_unary(), 2u);
    EXPECT_EQ(s.num_binary(), 2u);
    // Element order is row-major: (0,0)=0, (0,1)=1, (1,0)=2, (1,1)=3.
    EXPECT_TRUE(s.unary_holds(0, 0));  // first bit of (0,0)
    EXPECT_FALSE(s.unary_holds(1, 0));
    EXPECT_TRUE(s.unary_holds(1, 3));
    EXPECT_TRUE(s.binary_holds(0, 0, 2));  // vertical successor
    EXPECT_TRUE(s.binary_holds(1, 0, 1));  // horizontal successor
    EXPECT_FALSE(s.binary_holds(0, 0, 1));
    EXPECT_FALSE(s.binary_holds(1, 1, 0)); // directed
}

class PictureGraphRoundTrip : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(PictureGraphRoundTrip, EncodeDecode) {
    const auto [rows, cols] = GetParam();
    Rng rng(static_cast<std::uint64_t>(rows * 31 + cols));
    Picture p(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols), 2);
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < cols; ++j) {
            BitString v(2, '0');
            v[0] = rng.chance(0.5) ? '1' : '0';
            v[1] = rng.chance(0.5) ? '1' : '0';
            p.set(static_cast<std::size_t>(i), static_cast<std::size_t>(j), v);
        }
    }
    const LabeledGraph g = picture_to_graph(p);
    EXPECT_EQ(g.num_nodes(), p.rows() * p.cols());
    EXPECT_TRUE(g.is_connected());
    const auto decoded = graph_to_picture(g, 2);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, p);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PictureGraphRoundTrip,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(1, 5),
                                           std::make_pair(3, 1),
                                           std::make_pair(2, 3),
                                           std::make_pair(4, 4),
                                           std::make_pair(3, 7)));

TEST(PictureGraph, DecodeRejectsNonGrid) {
    // A cycle is not a picture encoding.
    const LabeledGraph g = cycle_graph(6, "000000");
    EXPECT_FALSE(graph_to_picture(g, 2).has_value());
}

TEST(TilingSystem, AllBlankBaseline) {
    const TilingSystem system = all_blank_tiling_system();
    EXPECT_TRUE(system.recognizes(blank_picture(2, 3)));
    EXPECT_TRUE(system.recognizes(blank_picture(1, 1)));
    Picture nonblank(1, 2, 1);
    nonblank.set(0, 1, "1");
    EXPECT_FALSE(system.recognizes(nonblank));
}

class SquareTiling : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SquareTiling, RecognizesExactlySquares) {
    const auto [rows, cols] = GetParam();
    const TilingSystem system = square_tiling_system();
    const Picture p = blank_picture(static_cast<std::size_t>(rows),
                                    static_cast<std::size_t>(cols));
    EXPECT_EQ(system.recognizes(p), rows == cols)
        << rows << "x" << cols;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SquareTiling,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(2, 2),
                      std::make_pair(3, 3), std::make_pair(5, 5),
                      std::make_pair(1, 2), std::make_pair(2, 3),
                      std::make_pair(3, 2), std::make_pair(4, 6),
                      std::make_pair(6, 4), std::make_pair(7, 7)));

TEST(SquareTiling, PreimageVerifies) {
    const TilingSystem system = square_tiling_system();
    const Picture p = blank_picture(4, 4);
    const auto preimage = system.find_preimage(p);
    ASSERT_TRUE(preimage.has_value());
    EXPECT_TRUE(system.verify_preimage(p, *preimage));
    // The diagonal cells carry symbol D (=1).
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ((*preimage)[static_cast<std::size_t>(i * 4 + i)], 1);
    }
}

class CounterTiling : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CounterTiling, RecognizesExactlyPowerWidths) {
    const auto [rows, cols] = GetParam();
    const TilingSystem system = binary_counter_tiling_system();
    const Picture p = blank_picture(static_cast<std::size_t>(rows),
                                    static_cast<std::size_t>(cols));
    const bool expected =
        in_matz_language(1, static_cast<std::size_t>(rows),
                         static_cast<std::size_t>(cols));
    EXPECT_EQ(system.recognizes(p), expected) << rows << "x" << cols;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CounterTiling,
    ::testing::Values(std::make_pair(1, 2), std::make_pair(2, 4),
                      std::make_pair(3, 8), std::make_pair(4, 16),
                      std::make_pair(1, 1), std::make_pair(1, 3),
                      std::make_pair(2, 3), std::make_pair(2, 5),
                      std::make_pair(2, 8), std::make_pair(3, 6),
                      std::make_pair(3, 9), std::make_pair(4, 8)));

TEST(CounterTiling, PreimageEncodesBinaryCounter) {
    const TilingSystem system = binary_counter_tiling_system();
    const Picture p = blank_picture(3, 8);
    const auto preimage = system.find_preimage(p);
    ASSERT_TRUE(preimage.has_value());
    EXPECT_TRUE(system.verify_preimage(p, *preimage));
    // Column j reads the binary value j (LSB in the bottom row).
    for (int j = 0; j < 8; ++j) {
        int value = 0;
        for (int i = 0; i < 3; ++i) {
            const int symbol = (*preimage)[static_cast<std::size_t>(i * 8 + j)];
            const int bit = symbol / 2;
            value |= bit << (2 - i); // row 2 is the LSB
        }
        EXPECT_EQ(value, j);
    }
}

TEST(Matz, IteratedExp) {
    EXPECT_EQ(iterated_exp(1, 3), 8u);
    EXPECT_EQ(iterated_exp(2, 2), 16u);    // 2^(2^2)
    EXPECT_EQ(iterated_exp(3, 1), 16u);    // 2^(2^(2^1))
    EXPECT_EQ(iterated_exp(1, 70), std::numeric_limits<std::uint64_t>::max());
}

TEST(Matz, LanguageMembership) {
    EXPECT_TRUE(in_matz_language(1, 3, 8));
    EXPECT_FALSE(in_matz_language(1, 3, 9));
    EXPECT_TRUE(in_matz_language(2, 2, 16));
    EXPECT_FALSE(in_matz_language(2, 2, 8));
}

TEST(Matz, WitnessGeneration) {
    const auto w = matz_witness(1, 4);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->rows(), 4u);
    EXPECT_EQ(w->cols(), 16u);
    // Too large to materialize.
    EXPECT_FALSE(matz_witness(2, 6).has_value());
}

TEST(MatzAndTiling, Level1IsTheCounterLanguage) {
    // The tiling system recognizes exactly the level-1 Matz language on every
    // witness we can build.
    const TilingSystem system = binary_counter_tiling_system();
    for (std::size_t m = 1; m <= 4; ++m) {
        const auto w = matz_witness(1, m);
        ASSERT_TRUE(w.has_value());
        EXPECT_TRUE(system.recognizes(*w)) << "height " << m;
    }
}

} // namespace
} // namespace lph
