#include "graph/certificates.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace lph {
namespace {

TEST(Polynomial, Evaluate) {
    const Polynomial p{3, 2, 1}; // 3 + 2n + n^2
    EXPECT_EQ(p(0), 3u);
    EXPECT_EQ(p(1), 6u);
    EXPECT_EQ(p(10), 123u);
    EXPECT_EQ(p.degree(), 2u);
}

TEST(Polynomial, SaturatesInsteadOfOverflowing) {
    const Polynomial p = Polynomial::monomial(1, 4); // n^4
    EXPECT_EQ(p(std::uint64_t{1} << 15), std::uint64_t{1} << 60);
    // (2^17)^4 = 2^68 exceeds uint64: evaluation saturates at the maximum.
    EXPECT_EQ(p(std::uint64_t{1} << 17), std::numeric_limits<std::uint64_t>::max());
}

TEST(Polynomial, MaxDominates) {
    const Polynomial a{1, 5};
    const Polynomial b{7, 2, 1};
    const Polynomial m = Polynomial::max(a, b);
    EXPECT_TRUE(a.dominated_by(m));
    EXPECT_TRUE(b.dominated_by(m));
    EXPECT_FALSE(m.dominated_by(a));
}

TEST(Polynomial, ToString) {
    EXPECT_EQ(Polynomial({3, 2, 1}).to_string(), "n^2 + 2n + 3");
    EXPECT_EQ(Polynomial::constant(5).to_string(), "5");
}

TEST(NeighborhoodInformation, CountsLabelsAndIds) {
    LabeledGraph g = path_graph(3, "11");
    const IdentifierAssignment id({"0", "1", "00"});
    // N_1(1) = all three nodes: each contributes 1 + len(label) + len(id).
    EXPECT_EQ(neighborhood_information(g, id, 1, 1),
              (1 + 2 + 1) + (1 + 2 + 1) + (1 + 2 + 2));
    // N_0(0) = just node 0.
    EXPECT_EQ(neighborhood_information(g, id, 0, 0), 1 + 2 + 1);
}

TEST(Certificates, RpBoundedness) {
    LabeledGraph g = path_graph(3, "1");
    const IdentifierAssignment id({"0", "1", "00"});
    CertificateAssignment kappa(std::vector<BitString>{"0101", "", "1"});
    // Information at radius 0 is >= 3 per node; the identity polynomial
    // dominates every certificate length here.
    EXPECT_TRUE(is_rp_bounded(kappa, g, id, 0, Polynomial{0, 2}));
    // A zero polynomial only admits empty certificates.
    EXPECT_FALSE(is_rp_bounded(kappa, g, id, 0, Polynomial::constant(0)));
    CertificateAssignment empty(std::vector<BitString>{"", "", ""});
    EXPECT_TRUE(is_rp_bounded(empty, g, id, 0, Polynomial::constant(0)));
}

TEST(CertificateList, ConcatenateAndSplit) {
    CertificateAssignment k1(std::vector<BitString>{"0", "11"});
    CertificateAssignment k2(std::vector<BitString>{"", "1"});
    const auto list = CertificateListAssignment::concatenate({k1, k2}, 2);
    EXPECT_EQ(list(0), "0#");
    EXPECT_EQ(list(1), "11#1");
    EXPECT_EQ(list.layers(), 2u);
    EXPECT_EQ(list.layer(0), k1);
    EXPECT_EQ(list.layer(1), k2);
}

TEST(CertificateList, EmptyList) {
    const auto list = CertificateListAssignment::empty(3);
    EXPECT_EQ(list(1), "");
    EXPECT_EQ(list.layers(), 0u);
}

TEST(CertificateList, TrivialAssignment) {
    const auto trivial = CertificateAssignment::trivial(4);
    for (NodeId u = 0; u < 4; ++u) {
        EXPECT_EQ(trivial(u), "");
    }
}

} // namespace
} // namespace lph
