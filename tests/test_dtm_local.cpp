#include "dtm/gather.hpp"
#include "dtm/local.hpp"
#include "core/check.hpp"
#include "graph/generators.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

/// One-round machine echoing a fixed verdict.
class ConstantMachine : public LocalMachine {
public:
    explicit ConstantMachine(std::string verdict) : verdict_(std::move(verdict)) {}
    int round_bound() const override { return 1; }
    RoundOutput on_round(const RoundInput&, std::string&, StepMeter&) const override {
        return {{}, true, verdict_};
    }

private:
    std::string verdict_;
};

/// Machine that deliberately burns `work` metered steps per round.
class BurnMachine : public LocalMachine {
public:
    BurnMachine(std::uint64_t work, Polynomial bound)
        : work_(work), bound_(std::move(bound)) {}
    int round_bound() const override { return 1; }
    Polynomial step_bound() const override { return bound_; }
    RoundOutput on_round(const RoundInput&, std::string&, StepMeter& meter) const override {
        meter.charge(work_);
        return {{}, true, "1"};
    }

private:
    std::uint64_t work_;
    Polynomial bound_;
};

/// Two-round machine where each node learns its neighbors' labels.
class NeighborLabelsMachine : public LocalMachine {
public:
    int round_bound() const override { return 2; }
    RoundOutput on_round(const RoundInput& input, std::string& state,
                         StepMeter& meter) const override {
        RoundOutput output;
        if (input.round == 1) {
            output.send.assign(input.messages.size(), std::string(input.label));
            state = input.label;
            meter.charge(input.label.size() * input.messages.size());
            return output;
        }
        // Accept iff all neighbor labels equal mine.
        output.halt = true;
        output.verdict = "1";
        for (const auto& msg : input.messages) {
            meter.charge(msg.size());
            if (msg != state) {
                output.verdict = "0";
            }
        }
        return output;
    }
};

TEST(RunLocal, UnanimityAcceptance) {
    const LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);
    EXPECT_TRUE(run_local(ConstantMachine("1"), g, id).accepted);
    EXPECT_FALSE(run_local(ConstantMachine("0"), g, id).accepted);
    EXPECT_FALSE(run_local(ConstantMachine(""), g, id).accepted);
}

TEST(RunLocal, NonBitVerdictFiltered) {
    const LabeledGraph g = single_node_graph("1");
    const auto result = run_local(ConstantMachine("1a1"), g, make_global_ids(g));
    EXPECT_EQ(result.outputs[0], "11");       // filtered
    EXPECT_EQ(result.raw_outputs[0], "1a1");  // raw preserved
    EXPECT_FALSE(result.accepted);
}

TEST(RunLocal, StepBoundEnforced) {
    const LabeledGraph g = single_node_graph("1");
    const auto id = make_global_ids(g);
    // Declared constant bound 4 but burns 1000 steps: rejected by the runner.
    EXPECT_THROW(run_local(BurnMachine(1000, Polynomial::constant(4)), g, id),
                 precondition_error);
    // A generous bound passes.
    EXPECT_TRUE(run_local(BurnMachine(1000, Polynomial::constant(2000)), g, id)
                    .accepted);
    // Disabling enforcement also passes.
    ExecutionOptions lax;
    lax.enforce_declared_bounds = false;
    EXPECT_TRUE(
        run_local(BurnMachine(1000, Polynomial::constant(4)), g, id, lax).accepted);
}

TEST(RunLocal, MessagesFollowIdentifierOrder) {
    const LabeledGraph g = path_graph(3, "1");
    // Center node 1 has neighbors 0 and 2; give 2 the smaller identifier.
    IdentifierAssignment id({"10", "01", "00"});
    ASSERT_TRUE(id.is_locally_unique(g, 2));

    class ProbeMachine : public LocalMachine {
    public:
        int round_bound() const override { return 2; }
        RoundOutput on_round(const RoundInput& input, std::string& state,
                             StepMeter&) const override {
            if (input.round == 1) {
                RoundOutput out;
                out.send.assign(input.messages.size(), std::string(input.id));
                state = "x";
                return out;
            }
            RoundOutput out;
            out.halt = true;
            // Record the received sender ids in order.
            for (const auto& m : input.messages) {
                out.verdict += m + "|";
            }
            return out;
        }
    };
    const auto result = run_local(ProbeMachine{}, g, id);
    // Node 1 receives from id "00" (node 2) before id "10" (node 0).
    EXPECT_EQ(result.raw_outputs[1], "00|10|");
}

TEST(RunLocal, NeighborLabelsMachineWorks) {
    LabeledGraph g = star_graph(4, "1");
    const auto id = make_global_ids(g);
    EXPECT_TRUE(run_local(NeighborLabelsMachine{}, g, id).accepted);
    g.set_label(2, "0");
    const auto result = run_local(NeighborLabelsMachine{}, g, id);
    EXPECT_FALSE(result.accepted);
    // The hub and node 2 both see the disagreement; leaves 1 and 3 accept.
    EXPECT_EQ(result.outputs[1], "1");
    EXPECT_EQ(result.outputs[0], "0");
}

TEST(RunLocal, RoundBoundEnforced) {
    class SlowMachine : public LocalMachine {
    public:
        int round_bound() const override { return 1; }
        RoundOutput on_round(const RoundInput& input, std::string&,
                             StepMeter&) const override {
            RoundOutput out;
            out.halt = input.round >= 3;
            out.verdict = "1";
            return out;
        }
    };
    const LabeledGraph g = single_node_graph("1");
    EXPECT_THROW(run_local(SlowMachine{}, g, make_global_ids(g)),
                 precondition_error);
}

// --- The gather machine underlying most concrete machines. ---

/// Gathers radius r and outputs the number of nodes seen (as unary 1s), so
/// tests can verify the reconstructed neighborhood.
class CountMachine : public NeighborhoodGatherMachine {
public:
    explicit CountMachine(int radius) : NeighborhoodGatherMachine(radius) {}
    std::string decide(const NeighborhoodView& view, StepMeter&) const override {
        return std::string(view.graph.num_nodes(), '1');
    }
};

struct GatherCase {
    std::string name;
    std::size_t n;
    int radius;
    std::size_t expected_nodes; // |ball(0, radius)| on this graph
};

class GatherCounts : public ::testing::TestWithParam<GatherCase> {};

TEST_P(GatherCounts, SeesExactlyTheBall) {
    const auto& param = GetParam();
    const LabeledGraph g =
        param.name == "cycle" ? cycle_graph(param.n, "1") : path_graph(param.n, "1");
    const auto id = make_global_ids(g);
    const auto result = run_local(CountMachine(param.radius), g, id);
    EXPECT_EQ(result.raw_outputs[0].size(), param.expected_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    Radii, GatherCounts,
    ::testing::Values(GatherCase{"cycle", 8, 1, 3}, GatherCase{"cycle", 8, 2, 5},
                      GatherCase{"cycle", 8, 3, 7}, GatherCase{"cycle", 8, 4, 8},
                      GatherCase{"path", 6, 2, 3}, GatherCase{"path", 6, 0, 1}),
    [](const auto& info) {
        return info.param.name + std::to_string(info.param.n) + "_r" +
               std::to_string(info.param.radius);
    });

/// Verifies the reconstructed edges: decides whether N_r(self) is a cycle.
class SeesTriangleMachine : public NeighborhoodGatherMachine {
public:
    SeesTriangleMachine() : NeighborhoodGatherMachine(1) {}
    std::string decide(const NeighborhoodView& view, StepMeter&) const override {
        // In a triangle every 1-neighborhood is the whole triangle.
        return view.graph.num_nodes() == 3 && view.graph.num_edges() == 3 ? "1"
                                                                          : "0";
    }
};

TEST(Gather, ReconstructsEdgesAmongNeighbors) {
    const LabeledGraph triangle = complete_graph(3, "1");
    EXPECT_TRUE(
        run_local(SeesTriangleMachine{}, triangle, make_global_ids(triangle))
            .accepted);
    const LabeledGraph path = path_graph(3, "1");
    EXPECT_FALSE(
        run_local(SeesTriangleMachine{}, path, make_global_ids(path)).accepted);
}

TEST(Gather, CertificatesTravelWithViews) {
    class CertSumMachine : public NeighborhoodGatherMachine {
    public:
        CertSumMachine() : NeighborhoodGatherMachine(1) {}
        std::string decide(const NeighborhoodView& view, StepMeter&) const override {
            std::string all;
            for (const auto& c : view.certs) {
                all += c;
            }
            // Accept iff some certificate in the neighborhood contains a 1.
            return all.find('1') != std::string::npos ? "1" : "0";
        }
    };
    const LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);
    CertificateAssignment kappa(std::vector<BitString>{"0", "0", "1"});
    const auto list = CertificateListAssignment::concatenate({kappa}, 3);
    const auto result = run_local(CertSumMachine{}, g, id, list);
    // Node 0 is two hops from the certificate "1": it does not see it.
    EXPECT_EQ(result.outputs[0], "0");
    EXPECT_EQ(result.outputs[1], "1");
    EXPECT_EQ(result.outputs[2], "1");
}

TEST(LocalView, SerializationRoundTrip) {
    LocalView view = LocalView::initial("01", "1", "0#1");
    view.set_self_neighbors({"10", "11"});
    const std::string data = view.serialize();
    const LocalView parsed = LocalView::deserialize(data);
    EXPECT_EQ(parsed.self(), "01");
    EXPECT_EQ(parsed.nodes().at("01").label, "1");
    EXPECT_EQ(parsed.nodes().at("01").certificates, "0#1");
    EXPECT_EQ(parsed.nodes().at("01").neighbor_ids,
              (std::vector<BitString>{"10", "11"}));
}

TEST(LocalView, MergeIncrementsDistance) {
    LocalView mine = LocalView::initial("0", "1", "");
    LocalView theirs = LocalView::initial("1", "0", "");
    mine.merge_from_neighbor(theirs);
    EXPECT_EQ(mine.nodes().at("1").dist, 1);
    EXPECT_EQ(mine.nodes().at("0").dist, 0);
}

} // namespace
} // namespace lph
