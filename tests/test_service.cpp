// Tests for the serving layer (src/service): the strict JSON/wire parsers,
// the hardened graph wire format (round-trip property tests), the
// ServiceCore failure paths the serving contract promises — deadline
// expiry as a RunError taxonomy code, queue-full as a structured rejection
// (never a hang), malformed lines as ProtocolError with the connection
// still usable, injected engine faults as structured per-request failures —
// plus the memo/queue gauges flowing through the MetricsRegistry snapshot
// and a TCP loopback session.  The incremental-serving section covers the
// resident-graph store (graph_register/graph_patch), the exact r-locality
// dirty-ball boundary, memo invalidation on patch, and patch-vs-full-
// recompute agreement (including the registered oracle check).

#include "core/rng.hpp"
#include "dtm/view_cache.hpp"
#include "graph/generators.hpp"
#include "graph/identifiers.hpp"
#include "graph/serialize.hpp"
#include "hierarchy/game.hpp"
#include "obs/log_histogram.hpp"
#include "obs/session.hpp"
#include "oracle/harness.hpp"
#include "service/chaos.hpp"
#include "service/core.hpp"
#include "service/graph_store.hpp"
#include "service/json.hpp"
#include "service/memo.hpp"
#include "service/registry.hpp"
#include "service/scrape.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <sstream>
#include <thread>

namespace {

using namespace lph;
using namespace lph::service;

std::string cycle6_text() {
    return "graph 6\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 5\n"
           "edge 5 0\n";
}

std::string cycle6_payload() {
    return "graph 6\\nedge 0 1\\nedge 1 2\\nedge 2 3\\nedge 3 4\\nedge 4 5\\n"
           "edge 5 0\\n";
}

/// Large enough (2^11 leaves vs ~350 compile-time ball runs) that the
/// service's compilation profitability gate chooses the compiled tables.
std::string cycle11_payload() {
    std::string payload = "graph 11";
    for (int v = 0; v < 11; ++v) {
        payload += "\\nedge " + std::to_string(v) + " " +
                   std::to_string((v + 1) % 11);
    }
    payload += "\\n";
    return payload;
}

ServiceOptions manual_options() {
    ServiceOptions options;
    options.manual_drain = true;
    return options;
}

// ---------------------------------------------------------------- JSON -----

TEST(ServiceJson, ParsesScalarsObjectsAndArrays) {
    const JsonValue doc = parse_json(
        R"({"a":1,"b":"x","c":true,"d":null,"e":[1,2],"f":{"g":-2.5}})");
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.find("a")->number, 1.0);
    EXPECT_EQ(doc.find("b")->string, "x");
    EXPECT_TRUE(doc.find("c")->boolean);
    EXPECT_EQ(doc.find("d")->kind, JsonValue::Kind::Null);
    EXPECT_EQ(doc.find("e")->items.size(), 2u);
    EXPECT_EQ(doc.find("f")->find("g")->number, -2.5);
}

TEST(ServiceJson, RejectsTrailingGarbage) {
    EXPECT_THROW(parse_json(R"({"a":1} extra)"), precondition_error);
    EXPECT_THROW(parse_json(R"({"a":1}{"b":2})"), precondition_error);
}

TEST(ServiceJson, RejectsDuplicateKeysWithByteOffset) {
    try {
        parse_json(R"({"a":1,"a":2})");
        FAIL() << "duplicate key accepted";
    } catch (const precondition_error& e) {
        EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    }
}

TEST(ServiceJson, RejectsMalformedDocuments) {
    EXPECT_THROW(parse_json(""), precondition_error);
    EXPECT_THROW(parse_json("{"), precondition_error);
    EXPECT_THROW(parse_json(R"({"a":})"), precondition_error);
    EXPECT_THROW(parse_json("{'a':1}"), precondition_error);
    EXPECT_THROW(parse_json(R"({"a":01})"), precondition_error);
    EXPECT_THROW(parse_json("\x01"), precondition_error);
    EXPECT_THROW(parse_json(std::string("{\"a\":\"\x01\"}")), precondition_error);
}

TEST(ServiceJson, RejectsOverDeepNesting) {
    // Exactly at the 32-level limit parses; one past it is a structured
    // error naming the limit — never a stack overflow.
    const auto nested = [](int levels) {
        std::string text(static_cast<std::size_t>(levels), '[');
        text += "1";
        text += std::string(static_cast<std::size_t>(levels), ']');
        return text;
    };
    EXPECT_NO_THROW(parse_json(nested(32)));
    try {
        parse_json(nested(33));
        FAIL() << "33-deep nesting accepted";
    } catch (const precondition_error& e) {
        EXPECT_NE(std::string(e.what()).find("nesting deeper than 32"),
                  std::string::npos);
    }
    // Unclosed nesting fails the same way, not with "unexpected end".
    EXPECT_THROW(parse_json(std::string(40, '[')), precondition_error);
    // Mixed object/array nesting counts every level.
    std::string mixed;
    for (int i = 0; i < 20; ++i) {
        mixed += "{\"k\":[";
    }
    EXPECT_THROW(parse_json(mixed), precondition_error);
}

// ------------------------------------------------- graph wire hardening ----

TEST(GraphWire, RejectsTrailingGarbageWithLineNumbers) {
    try {
        graph_from_text("graph 2\nedge 0 1 junk\n");
        FAIL() << "trailing junk accepted";
    } catch (const precondition_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("trailing junk"), std::string::npos);
        EXPECT_NE(what.find("line 2"), std::string::npos);
    }
    EXPECT_THROW(graph_from_text("graph 2 2\n"), precondition_error);
    EXPECT_THROW(graph_from_text("graph 2\nbogus 0 1\n"), precondition_error);
}

TEST(GraphWire, EnforcesReadLimits) {
    GraphReadLimits limits;
    limits.max_nodes = 4;
    EXPECT_THROW(graph_from_text("graph 5\n", limits), precondition_error);

    limits = {};
    limits.max_edges = 2;
    EXPECT_THROW(
        graph_from_text("graph 4\nedge 0 1\nedge 1 2\nedge 2 3\n", limits),
        precondition_error);

    limits = {};
    limits.max_label_bits = 2;
    EXPECT_THROW(graph_from_text("graph 1\nlabel 0 10101\n", limits),
                 precondition_error);

    limits = {};
    limits.max_bytes = 10;
    try {
        graph_from_text("graph 2\nedge 0 1\n", limits);
        FAIL() << "oversized payload accepted";
    } catch (const precondition_error& e) {
        EXPECT_NE(std::string(e.what()).find("bytes"), std::string::npos);
    }
}

TEST(GraphWire, RoundTripPropertyRandomGraphs) {
    Rng rng(2026);
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t n = 1 + rng.index(12);
        LabeledGraph g = random_connected_graph(n, rng.index(n + 1), rng, "1");
        if (rng.chance(0.5)) {
            randomize_labels(g, 1 + rng.index(4), rng);
        }
        const std::string wire = graph_to_text(g);
        const LabeledGraph back = graph_from_text(wire);
        // Bit-identical round trip: same canonical serialization.
        EXPECT_EQ(graph_to_text(back), wire) << "trial " << trial;
    }
}

// ---------------------------------------------------------------- wire -----

TEST(Wire, ParsesGameRequestAndCanonicalizesGraph) {
    const Request r = parse_request(
        "{\"type\":\"game\",\"id\":7,\"machine\":\"coloring3\",\"layers\":1,"
        "\"graph\":\"" + cycle6_payload() + "\"}",
        1, WireLimits{});
    EXPECT_EQ(r.type, RequestType::Game);
    EXPECT_EQ(r.id, "7");
    EXPECT_EQ(r.machine, "coloring3");
    EXPECT_TRUE(r.has_graph);
    // graph_to_text normalizes edge endpoints and sort order, so compare
    // against the re-serialized parse rather than the raw wire text.
    EXPECT_EQ(r.canonical_graph, graph_to_text(graph_from_text(cycle6_text())));
    EXPECT_NE(r.graph_digest(), 0u);
    EXPECT_FALSE(r.memo_key().empty());
}

TEST(Wire, RejectsMalformedRequestsWithLineNumbers) {
    const WireLimits limits;
    const std::map<std::string, std::string> rejects = {
        {"not json at all", "line 3"},
        {"{\"type\":\"nope\"}", "unknown request type"},
        {"{\"type\":\"game\",\"machine\":\"coloring3\"}",
         "needs \"graph\" or \"digest\""},
        {"{\"type\":\"game\",\"machine\":\"unknown-machine\",\"graph\":\"x\"}",
         "unknown machine"},
        {"{\"type\":\"stats\",\"bogus\":1}", "unknown field"},
        {"{\"type\":\"decide\",\"problem\":\"eulerian\",\"k\":99,"
         "\"graph\":\"graph 1\\n\"}",
         "\"k\""},
        {"{\"type\":\"game\",\"machine\":\"allsel\",\"layers\":9,"
         "\"graph\":\"graph 1\\n\"}",
         "\"layers\""},
    };
    for (const auto& [line, needle] : rejects) {
        try {
            parse_request(line, 3, limits);
            FAIL() << "accepted: " << line;
        } catch (const precondition_error& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("line 3"), std::string::npos) << what;
            EXPECT_NE(what.find(needle), std::string::npos) << what;
        }
    }
}

TEST(Wire, EnforcesGraphLimitsFromWireLimits) {
    WireLimits limits;
    limits.max_graph_nodes = 4;
    EXPECT_THROW(
        parse_request("{\"type\":\"decide\",\"problem\":\"eulerian\","
                      "\"graph\":\"graph 6\\n\"}",
                      1, limits),
        precondition_error);
}

TEST(Wire, RequestRoundTripProperty) {
    // request -> to_json -> parse_request -> to_json is a fixed point, and
    // the graph payload survives bit-identically.
    Rng rng(7);
    const WireLimits limits;
    const std::vector<std::string> machines = machine_names();
    for (int trial = 0; trial < 40; ++trial) {
        LabeledGraph g =
            random_connected_graph(1 + rng.index(8), rng.index(4), rng, "1");
        Request r;
        r.type = RequestType::Game;
        r.id = std::to_string(trial);
        r.machine = machines[rng.index(machines.size())];
        r.layers = static_cast<int>(rng.index(3));
        r.sigma = rng.chance(0.5);
        r.ids = rng.chance(0.5) ? "global" : "local";
        r.tolerate_faults = rng.chance(0.3);
        r.backend = rng.chance(0.5) ? "compiled" : "interpreted";
        if (rng.chance(0.3)) {
            r.fault_seed = rng.uniform(1, 1000);
            r.fault_crash = 0.25;
        }
        if (rng.chance(0.3)) {
            r.deadline_ms = 1500;
        }
        r.graph = g;
        r.canonical_graph = graph_to_text(g);
        r.has_graph = true;

        const std::string wire = r.to_json();
        const Request parsed = parse_request(wire, 1, limits);
        EXPECT_EQ(parsed.to_json(), wire) << "trial " << trial;
        EXPECT_EQ(parsed.canonical_graph, r.canonical_graph);
        EXPECT_EQ(parsed.memo_key(), r.memo_key());
        EXPECT_EQ(parsed.graph_digest(), r.graph_digest());
    }
}

TEST(Wire, MemoKeyExcludesIdAndDeadline) {
    const std::string base =
        "{\"type\":\"decide\",\"problem\":\"eulerian\",\"graph\":\"" +
        cycle6_payload() + "\"";
    const Request a = parse_request(base + ",\"id\":1}", 1, WireLimits{});
    const Request b = parse_request(base + ",\"id\":2,\"deadline_ms\":50}", 1,
                                    WireLimits{});
    EXPECT_EQ(a.memo_key(), b.memo_key());
}

TEST(Wire, BackendFieldValidatedAndPartOfMemoKey) {
    const std::string base =
        "{\"type\":\"game\",\"machine\":\"coloring2\",\"layers\":1,"
        "\"graph\":\"" + cycle6_payload() + "\"";
    const Request dflt = parse_request(base + "}", 1, WireLimits{});
    EXPECT_EQ(dflt.backend, "compiled");
    const Request interp =
        parse_request(base + ",\"backend\":\"interpreted\"}", 1, WireLimits{});
    EXPECT_EQ(interp.backend, "interpreted");
    // The backends profile differently, so they must never share a memo slot.
    EXPECT_NE(dflt.memo_key(), interp.memo_key());
    EXPECT_EQ(parse_request(interp.to_json(), 1, WireLimits{}).backend,
              "interpreted");
    EXPECT_THROW(
        parse_request(base + ",\"backend\":\"quantum\"}", 1, WireLimits{}),
        precondition_error);
}

TEST(Wire, EvalRequestCanonicalizesAndRoundTrips) {
    // The stored formula text is the parser's canonical re-print, so two
    // spellings of the same sentence share a memo slot and a wire rendering.
    const std::string base = ",\"graph\":\"" + cycle6_payload() + "\"}";
    const Request tight = parse_request(
        "{\"type\":\"eval\",\"formula\":\"exists x. O1(x)\"" + base, 1,
        WireLimits{});
    const Request spaced = parse_request(
        "{\"type\":\"eval\",\"formula\":\"exists   x .  O1( x )\"" + base, 1,
        WireLimits{});
    EXPECT_EQ(tight.eval_text, lph::to_string(tight.eval_formula));
    EXPECT_EQ(tight.eval_text, spaced.eval_text);
    EXPECT_EQ(tight.memo_key(), spaced.memo_key());
    EXPECT_FALSE(tight.memo_key().empty());

    // to_json -> parse_request is a fixed point.
    const Request reparsed = parse_request(tight.to_json(), 1, WireLimits{});
    EXPECT_EQ(reparsed.to_json(), tight.to_json());
    EXPECT_EQ(reparsed.memo_key(), tight.memo_key());

    // A digest reference is accepted in place of an inline graph.
    const Request by_ref = parse_request(
        "{\"type\":\"eval\",\"formula\":\"T\",\"digest\":\"12345\"}", 1,
        WireLimits{});
    EXPECT_TRUE(by_ref.has_ref_digest);
}

TEST(Wire, EvalRequestSurfacesParseErrorsAsProtocol) {
    const std::string base = ",\"graph\":\"" + cycle6_payload() + "\"}";
    // A syntax error is a protocol error carrying the frontend's position.
    try {
        parse_request("{\"type\":\"eval\",\"formula\":\"exists x. ((\"" + base,
                      7, WireLimits{});
        FAIL() << "syntax error accepted";
    } catch (const precondition_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 7"), std::string::npos); // wire line
        EXPECT_NE(what.find("col"), std::string::npos);    // formula position
    }
    // Missing formula / oversized formula are protocol errors too.
    EXPECT_THROW(parse_request("{\"type\":\"eval\"" + base, 1, WireLimits{}),
                 precondition_error);
    WireLimits tiny;
    tiny.max_formula_bytes = 4;
    EXPECT_THROW(
        parse_request("{\"type\":\"eval\",\"formula\":\"exists x. O1(x)\"" +
                          base,
                      1, tiny),
        precondition_error);
}

// ---------------------------------------------------------- ServiceCore ----

Request decide_request(const std::string& problem, const std::string& id) {
    return parse_request("{\"type\":\"decide\",\"id\":\"" + id +
                             "\",\"problem\":\"" + problem + "\",\"graph\":\"" +
                             cycle6_payload() + "\"}",
                         1, WireLimits{});
}

TEST(ServiceCore, ServesMixedRequestsAndEchoesIds) {
    ServiceCore core(manual_options());
    const Response r1 = core.call(decide_request("eulerian", "a"));
    EXPECT_EQ(r1.status, "ok");
    EXPECT_EQ(r1.id, "\"a\"");
    EXPECT_NE(r1.body.find("\"answer\":true"), std::string::npos);

    const Response r2 = core.call(parse_request(
        "{\"type\":\"game\",\"machine\":\"coloring2\",\"layers\":1,"
        "\"graph\":\"" + cycle6_payload() + "\"}",
        1, WireLimits{}));
    EXPECT_EQ(r2.status, "ok");
    EXPECT_NE(r2.body.find("\"accepted\":true"), std::string::npos);
    EXPECT_NE(r2.body.find("\"witness\""), std::string::npos);

    const Response r3 =
        core.call(parse_request("{\"type\":\"health\"}", 1, WireLimits{}));
    EXPECT_EQ(r3.status, "ok");
    EXPECT_NE(r3.body.find("\"ok\":true"), std::string::npos);
}

TEST(ServiceCore, MemoServesRepeatedRequestsAndReportsGauges) {
    obs::Session session;
    ServiceOptions options = manual_options();
    options.obs = &session;
    ServiceCore core(options);

    const Response miss = core.call(decide_request("coloring", "1"));
    const Response hit = core.call(decide_request("coloring", "2"));
    EXPECT_EQ(miss.status, "ok");
    EXPECT_FALSE(miss.memo_hit);
    EXPECT_TRUE(hit.memo_hit);
    EXPECT_EQ(hit.body, miss.body); // replayed verbatim
    EXPECT_EQ(core.memo_stats().hits, 1u);
    EXPECT_EQ(core.memo_stats().entries, 1u);

    // The gauges flow through the MetricsRegistry snapshot path (same schema
    // as the loadgen BENCH rows and `lphd --metrics=`).
    core.publish_metrics();
    std::map<std::string, double> snapshot;
    for (const auto& [name, value] : session.metrics().snapshot()) {
        snapshot[name] = value;
    }
    EXPECT_EQ(snapshot.at("service.submitted"), 2.0);
    EXPECT_EQ(snapshot.at("service.completed"), 2.0);
    EXPECT_EQ(snapshot.at("service.memo_served"), 1.0);
    EXPECT_EQ(snapshot.at("service.memo.hits"), 1.0);
    EXPECT_EQ(snapshot.at("service.memo.entries"), 1.0);
    EXPECT_TRUE(snapshot.count("service.queue_depth"));
    EXPECT_TRUE(snapshot.count("service.max_queue_depth"));
    EXPECT_TRUE(snapshot.count("service.cache.hits"));
}

TEST(ServiceCore, BackendsAgreeOnTheWireButMemoSeparately) {
    obs::Session session;
    ServiceOptions options = manual_options();
    options.obs = &session;
    ServiceCore core(options);
    const std::string base =
        "{\"type\":\"game\",\"machine\":\"coloring2\",\"layers\":1,"
        "\"graph\":\"" + cycle11_payload() + "\"";
    const Response interpreted = core.call(parse_request(
        base + ",\"backend\":\"interpreted\"}", 1, WireLimits{}));
    const Response compiled = core.call(parse_request(base + "}", 1,
                                                      WireLimits{}));
    ASSERT_EQ(compiled.status, "ok");
    ASSERT_EQ(interpreted.status, "ok");
    EXPECT_FALSE(compiled.memo_hit); // backend is part of the memo key
    EXPECT_EQ(compiled.body, interpreted.body); // bit-identical results

    // The default (compiled) request flowed through the packed evaluator and
    // its counters reached the session registry.
    core.publish_metrics();
    std::map<std::string, double> snapshot;
    for (const auto& [name, value] : session.metrics().snapshot()) {
        snapshot[name] = value;
    }
    EXPECT_GE(snapshot.at("game.compiled_classes"), 1.0);
    EXPECT_GE(snapshot.at("game.packed_words_evaluated"), 1.0);
}

TEST(ServiceCore, QueueFullIsStructuredRejectionNotHang) {
    ServiceOptions options = manual_options();
    options.queue_capacity = 2;
    ServiceCore core(options);

    auto f1 = core.submit(decide_request("eulerian", "1"));
    auto f2 = core.submit(decide_request("eulerian", "2"));
    auto f3 = core.submit(decide_request("eulerian", "3"));

    // The rejection resolves immediately, without any draining.
    ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const Response rejected = f3.get();
    EXPECT_EQ(rejected.status, "rejected");
    EXPECT_EQ(rejected.error, "QueueFull");
    EXPECT_EQ(rejected.id, "\"3\"");
    EXPECT_EQ(core.stats().rejected, 1u);

    core.drain();
    EXPECT_EQ(f1.get().status, "ok");
    EXPECT_EQ(f2.get().status, "ok");
}

TEST(ServiceCore, DeadlineExpiryUsesRunErrorTaxonomy) {
    ServiceCore core(manual_options());
    Request request = decide_request("eulerian", "d");
    request.deadline_ms = 0.01;
    auto future = core.submit(std::move(request));
    // Let the deadline expire while the request waits in the queue — the
    // same RunError::DeadlineExceeded code the engine's guard uses.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    core.drain();
    const Response response = future.get();
    EXPECT_EQ(response.status, "error");
    EXPECT_EQ(response.error, "DeadlineExceeded");
    EXPECT_NE(response.detail.find("in queue"), std::string::npos);
    EXPECT_EQ(core.stats().errors, 1u);
}

TEST(ServiceCore, EngineFaultPropagatesAsTaxonomyCode) {
    // The fussy verifier violates its declared step bound on any certificate
    // containing a '1'; without tolerate_faults the engine throws run_error
    // and the service maps it to the taxonomy code.
    ServiceCore core(manual_options());
    const Response response = core.call(parse_request(
        "{\"type\":\"game\",\"machine\":\"fussy\",\"layers\":1,"
        "\"graph\":\"graph 2\\nedge 0 1\\n\"}",
        1, WireLimits{}));
    EXPECT_EQ(response.status, "error");
    EXPECT_EQ(response.error, "StepBoundViolated");
}

TEST(ServiceCore, InjectedFaultsAreStructuredUnderTolerateFaults) {
    ServiceCore core(manual_options());
    const std::string base =
        "{\"type\":\"game\",\"machine\":\"eulerian\",\"layers\":0,"
        "\"fault_seed\":7,\"fault_crash\":1.0,\"graph\":\"" +
        cycle6_payload() + "\"";

    // tolerate_faults: the faulted leaf is scored as a loss and reported on
    // a *successful* response.
    const Response tolerated = core.call(
        parse_request(base + ",\"tolerate_faults\":true}", 1, WireLimits{}));
    EXPECT_EQ(tolerated.status, "ok");
    EXPECT_NE(tolerated.body.find("\"accepted\":false"), std::string::npos);
    EXPECT_NE(tolerated.body.find("\"faulted_runs\":1"), std::string::npos);
    EXPECT_NE(tolerated.body.find("NodeCrashed"), std::string::npos);

    // Without it, the injected fault escalates to a structured per-request
    // error carrying the taxonomy code.
    const Response escalated = core.call(
        parse_request(base + ",\"tolerate_faults\":false}", 1, WireLimits{}));
    EXPECT_EQ(escalated.status, "error");
    EXPECT_EQ(escalated.error, "NodeCrashed");
}

TEST(ServiceCore, BatchesSameGraphRequests) {
    ServiceOptions options = manual_options();
    options.memoize_results = false; // count batches, not memo hits
    ServiceCore core(options);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(
            core.submit(decide_request("eulerian", std::to_string(i))));
    }
    futures.push_back(core.submit(parse_request(
        "{\"type\":\"decide\",\"problem\":\"eulerian\","
        "\"graph\":\"graph 3\\nedge 0 1\\nedge 1 2\\nedge 0 2\\n\"}",
        1, WireLimits{})));

    // First drain takes the four same-digest requests as one batch; the
    // odd-graph request is left for the second drain.
    EXPECT_TRUE(core.drain_some());
    EXPECT_EQ(core.queue_depth(), 1u);
    EXPECT_TRUE(core.drain_some());
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(futures[i].get().batch, 4u);
    }
    EXPECT_EQ(futures[4].get().batch, 1u);
    EXPECT_EQ(core.stats().batches, 2u);
    EXPECT_EQ(core.stats().batched_requests, 5u);
}

TEST(ServiceCore, WorkerPoolServesConcurrentSubmissions) {
    ServiceOptions options;
    options.threads = 3;
    options.queue_capacity = 512;
    ServiceCore core(options);
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(
            core.submit(decide_request(i % 2 ? "eulerian" : "coloring",
                                       std::to_string(i))));
    }
    for (auto& future : futures) {
        EXPECT_EQ(future.get().status, "ok");
    }
    const ServiceStats stats = core.stats();
    EXPECT_EQ(stats.completed, 64u);
    EXPECT_EQ(stats.rejected, 0u);
}

// -------------------------------------------------------------- streams ----

TEST(ServeStream, MalformedLineKeepsStreamUsable) {
    ServiceOptions options;
    options.threads = 1;
    ServiceCore core(options);
    std::istringstream in("this is not json\n"
                          "{\"type\":\"health\",\"id\":1}\n"
                          "{\"type\":\"health\",\"bogus\":true}\n"
                          "{\"type\":\"health\",\"id\":2}\n");
    std::ostringstream out;
    const ServeReport report = serve_stream(core, in, out);
    EXPECT_EQ(report.lines, 4u);
    EXPECT_EQ(report.requests, 2u);
    EXPECT_EQ(report.protocol_errors, 2u);
    EXPECT_EQ(core.stats().protocol_errors, 2u);

    std::istringstream lines(out.str());
    std::string line;
    std::vector<std::string> responses;
    while (std::getline(lines, line)) {
        responses.push_back(line);
    }
    ASSERT_EQ(responses.size(), 4u);
    // In order: error, ok, error, ok — the connection survived both bad lines.
    EXPECT_NE(responses[0].find("ProtocolError"), std::string::npos);
    EXPECT_NE(responses[0].find("line 1"), std::string::npos);
    EXPECT_NE(responses[1].find("\"id\":1"), std::string::npos);
    EXPECT_NE(responses[1].find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(responses[2].find("ProtocolError"), std::string::npos);
    EXPECT_NE(responses[3].find("\"id\":2"), std::string::npos);
}

TEST(TcpServerTest, ServesLoopbackConnections) {
    ServiceOptions options;
    options.threads = 2;
    ServiceCore core(options);
    TcpServer server(core, 0, 2);
    server.start();
    ASSERT_NE(server.port(), 0);

    {
        TcpClient client("127.0.0.1", server.port());
        client.send_line("{\"type\":\"health\",\"id\":1}");
        client.send_line("garbage");
        client.send_line(
            "{\"type\":\"decide\",\"id\":2,\"problem\":\"eulerian\","
            "\"graph\":\"" + cycle6_payload() + "\"}");
        std::string line;
        ASSERT_TRUE(client.recv_line(line));
        EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
        ASSERT_TRUE(client.recv_line(line));
        EXPECT_NE(line.find("ProtocolError"), std::string::npos);
        ASSERT_TRUE(client.recv_line(line));
        EXPECT_NE(line.find("\"answer\":true"), std::string::npos);
    }

    // A second connection works after the first closed.
    {
        TcpClient client("127.0.0.1", server.port());
        client.send_line("{\"type\":\"stats\"}");
        std::string line;
        ASSERT_TRUE(client.recv_line(line));
        EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
    }

    server.shutdown();
    core.stop();
}

// ------------------------------------------------------------ result memo ---

TEST(ResultMemo, RestoreCountsAdmittedOnlyAndIsNotTraffic) {
    // Regression: restore() used to count every insertion, including entries
    // its own later insertions evicted again.  Invariant on an empty memo:
    // admitted == entries retrievable afterwards, and a warm start must not
    // look like traffic (hits/misses stay zero).
    ResultMemo memo(1); // clamps every shard to one entry
    std::vector<std::pair<std::string, std::string>> snapshot;
    for (int i = 0; i < 32; ++i) {
        snapshot.emplace_back("key" + std::to_string(i), "body");
    }
    const std::size_t admitted = memo.restore(snapshot);
    EXPECT_EQ(memo.stats().hits, 0u);
    EXPECT_EQ(memo.stats().misses, 0u);
    EXPECT_EQ(admitted, memo.stats().entries);
    EXPECT_LE(admitted, 8u); // one per shard
    std::size_t live = 0;
    for (const auto& [key, body] : snapshot) {
        live += memo.lookup(key).has_value() ? 1 : 0;
    }
    EXPECT_EQ(admitted, live);
    // A snapshot key that already exists is a refresh, not an admission.
    ResultMemo roomy(64);
    roomy.insert("k", "b");
    EXPECT_EQ(roomy.restore({{"k", "b"}, {"fresh", "b2"}}), 1u);
    EXPECT_EQ(roomy.stats().entries, 2u);
}

TEST(ResultMemo, InvalidateDigestDropsOnlyKeysEmbeddingTheDigest) {
    ResultMemo memo(64);
    memo.insert("game|eulerian|0|1|global|0|0|0|0|0|0|compiled|123", "a");
    memo.insert("decide|eulerian|3|123", "b");
    memo.insert("decide|eulerian|3|456", "c");
    memo.insert("decide|eulerian|3|1123", "d"); // "|123" is not a suffix of "|1123"
    EXPECT_EQ(memo.invalidate_digest(123), 2u);
    EXPECT_EQ(memo.stats().invalidated, 2u);
    EXPECT_EQ(memo.stats().entries, 2u);
    EXPECT_FALSE(memo.lookup("decide|eulerian|3|123").has_value());
    EXPECT_TRUE(memo.lookup("decide|eulerian|3|456").has_value());
    EXPECT_TRUE(memo.lookup("decide|eulerian|3|1123").has_value());
    EXPECT_EQ(memo.invalidate_digest(999), 0u);
}

// ------------------------------------------------- wire: incremental ops ----

TEST(Wire, ParsesGraphRegisterAndPatchAndRoundTrips) {
    const Request reg = parse_request(
        "{\"type\":\"graph_register\",\"id\":9,\"graph\":\"" +
            cycle6_payload() + "\"}",
        1, WireLimits{});
    EXPECT_EQ(reg.type, RequestType::GraphRegister);
    EXPECT_TRUE(reg.has_graph);
    EXPECT_EQ(reg.graph_digest(), fnv1a64(reg.canonical_graph));
    EXPECT_EQ(reg.memo_key(), ""); // register must never be memo-served

    const Request patch = parse_request(
        "{\"type\":\"graph_patch\",\"id\":10,\"digest\":\"12345\",\"ops\":["
        "{\"op\":\"add_edge\",\"u\":0,\"v\":2},"
        "{\"op\":\"remove_edge\",\"u\":1,\"v\":2},"
        "{\"op\":\"relabel\",\"u\":3,\"label\":\"0\"},"
        "{\"op\":\"add_node\",\"label\":\"1\"},"
        "{\"op\":\"remove_node\",\"u\":4}],"
        "\"machine\":\"eulerian\",\"layers\":0}",
        1, WireLimits{});
    EXPECT_EQ(patch.type, RequestType::GraphPatch);
    EXPECT_TRUE(patch.has_ref_digest);
    EXPECT_EQ(patch.ref_digest, 12345u);
    EXPECT_EQ(patch.machine, "eulerian");
    EXPECT_EQ(patch.memo_key(), ""); // a patch mutates state
    ASSERT_EQ(patch.ops.size(), 5u);
    EXPECT_EQ(patch.ops[0].kind, PatchOp::Kind::AddEdge);
    EXPECT_EQ(patch.ops[0].u, 0u);
    EXPECT_EQ(patch.ops[0].v, 2u);
    EXPECT_EQ(patch.ops[1].kind, PatchOp::Kind::RemoveEdge);
    EXPECT_EQ(patch.ops[2].kind, PatchOp::Kind::Relabel);
    EXPECT_EQ(patch.ops[2].label, "0");
    EXPECT_EQ(patch.ops[3].kind, PatchOp::Kind::AddNode);
    EXPECT_EQ(patch.ops[3].label, "1");
    EXPECT_EQ(patch.ops[4].kind, PatchOp::Kind::RemoveNode);
    EXPECT_EQ(patch.ops[4].u, 4u);

    // to_json -> parse_request is a fixed point for both new types.
    const Request reg2 = parse_request(reg.to_json(), 1, WireLimits{});
    EXPECT_EQ(reg2.to_json(), reg.to_json());
    const Request patch2 = parse_request(patch.to_json(), 1, WireLimits{});
    EXPECT_EQ(patch2.to_json(), patch.to_json());

    // game/decide accept a digest reference in place of a graph payload.
    const Request ref = parse_request(
        "{\"type\":\"game\",\"machine\":\"eulerian\",\"layers\":0,"
        "\"digest\":\"777\"}",
        1, WireLimits{});
    EXPECT_TRUE(ref.has_ref_digest);
    EXPECT_EQ(ref.ref_digest, 777u);
    EXPECT_FALSE(ref.has_graph);
}

TEST(Wire, RejectsMalformedPatchRequests) {
    const WireLimits limits;
    const std::vector<std::string> rejects = {
        // missing digest / missing or empty ops
        "{\"type\":\"graph_patch\",\"ops\":[{\"op\":\"add_node\","
        "\"label\":\"1\"}]}",
        "{\"type\":\"graph_patch\",\"digest\":\"1\"}",
        "{\"type\":\"graph_patch\",\"digest\":\"1\",\"ops\":[]}",
        // digests travel as canonical decimal strings, never numbers
        "{\"type\":\"graph_patch\",\"digest\":1,\"ops\":[{\"op\":\"add_node\","
        "\"label\":\"1\"}]}",
        "{\"type\":\"graph_patch\",\"digest\":\"0x12\",\"ops\":["
        "{\"op\":\"add_node\",\"label\":\"1\"}]}",
        // unknown op, per-op field rules
        "{\"type\":\"graph_patch\",\"digest\":\"1\",\"ops\":["
        "{\"op\":\"teleport\",\"u\":0}]}",
        "{\"type\":\"graph_patch\",\"digest\":\"1\",\"ops\":["
        "{\"op\":\"add_node\",\"label\":\"1\",\"u\":0}]}",
        "{\"type\":\"graph_patch\",\"digest\":\"1\",\"ops\":["
        "{\"op\":\"add_edge\",\"u\":0}]}",
        // a request carries a graph or a digest reference, never both
        "{\"type\":\"game\",\"machine\":\"eulerian\",\"layers\":0,"
        "\"digest\":\"1\",\"graph\":\"graph 1\\n\"}",
        // a register must carry the graph inline
        "{\"type\":\"graph_register\",\"digest\":\"1\"}",
    };
    for (const std::string& line : rejects) {
        EXPECT_THROW(parse_request(line, 1, limits), precondition_error)
            << "accepted: " << line;
    }

    WireLimits tight;
    tight.max_patch_ops = 2;
    EXPECT_THROW(
        parse_request("{\"type\":\"graph_patch\",\"digest\":\"1\",\"ops\":["
                      "{\"op\":\"add_node\",\"label\":\"1\"},"
                      "{\"op\":\"add_node\",\"label\":\"1\"},"
                      "{\"op\":\"add_node\",\"label\":\"1\"}]}",
                      1, tight),
        precondition_error);
}

// -------------------------------------------------- incremental serving ----

std::string escape_newlines(const std::string& text) {
    std::string out;
    for (const char c : text) {
        if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

/// Registers `g` as a resident graph and returns its canonical digest.
std::uint64_t register_resident(ServiceCore& core, const LabeledGraph& g) {
    const std::string canonical = graph_to_text(g);
    const Response r = core.call(
        parse_request("{\"type\":\"graph_register\",\"graph\":\"" +
                          escape_newlines(canonical) + "\"}",
                      1, WireLimits{}));
    EXPECT_EQ(r.status, "ok") << r.detail;
    return fnv1a64(canonical);
}

Request game_by_digest(std::uint64_t digest, const std::string& machine,
                       int layers, const std::string& extras = "") {
    return parse_request("{\"type\":\"game\",\"machine\":\"" + machine +
                             "\",\"layers\":" + std::to_string(layers) +
                             ",\"digest\":\"" + std::to_string(digest) + "\"" +
                             extras + "}",
                         1, WireLimits{});
}

Request patch_request(std::uint64_t digest, const std::string& ops_json,
                      const std::string& extras = "") {
    return parse_request("{\"type\":\"graph_patch\",\"digest\":\"" +
                             std::to_string(digest) + "\",\"ops\":[" +
                             ops_json + "]" + extras + "}",
                         1, WireLimits{});
}

/// The boolean verdict of a patch/game response (the field `lph_client
/// --verify --against` compares).
bool response_verdict(const Response& r) {
    const std::optional<VerdictView> view = parse_verdict(r.to_json());
    EXPECT_TRUE(view.has_value() && view->has_verdict) << r.to_json();
    return view.has_value() && view->has_verdict && view->verdict;
}

TEST(ServiceCore, GraphRegisterIsIdempotentAndServesDigestReferences) {
    ServiceCore core(manual_options());
    const LabeledGraph cycle = graph_from_text(cycle6_text());
    const std::uint64_t digest = fnv1a64(graph_to_text(cycle));

    const Response first = core.call(
        parse_request("{\"type\":\"graph_register\",\"graph\":\"" +
                          cycle6_payload() + "\"}",
                      1, WireLimits{}));
    EXPECT_EQ(first.status, "ok");
    EXPECT_NE(first.body.find("\"digest\":\"" + std::to_string(digest) + "\""),
              std::string::npos);
    EXPECT_NE(first.body.find("\"existed\":false"), std::string::npos);

    const Response again = core.call(
        parse_request("{\"type\":\"graph_register\",\"graph\":\"" +
                          cycle6_payload() + "\"}",
                      1, WireLimits{}));
    EXPECT_NE(again.body.find("\"existed\":true"), std::string::npos);
    EXPECT_EQ(core.stats().graphs_resident, 1u);

    // decide/game resolve the resident copy through the digest.
    const Response ref = core.call(parse_request(
        "{\"type\":\"decide\",\"problem\":\"eulerian\",\"digest\":\"" +
            std::to_string(digest) + "\"}",
        1, WireLimits{}));
    EXPECT_EQ(ref.status, "ok") << ref.detail;
    EXPECT_NE(ref.body.find("\"answer\":true"), std::string::npos);

    const Response unknown = core.call(parse_request(
        "{\"type\":\"decide\",\"problem\":\"eulerian\",\"digest\":\"" +
            std::to_string(digest + 1) + "\"}",
        1, WireLimits{}));
    EXPECT_EQ(unknown.status, "error");
    EXPECT_EQ(unknown.error, "UnknownGraph");
}

TEST(ServiceCore, ExpiredInQueueRequestsAreNotBatchAccounted) {
    // Regression: requests whose deadline expired while queued used to count
    // toward batched_requests and busy time, skewing avg_batch and the
    // busy/throughput ratios the loadgen reports.  They error, they count in
    // the dedicated gauge, and the batch accounting only sees served work.
    obs::Session session;
    ServiceOptions options = manual_options();
    options.obs = &session;
    ServiceCore core(options);

    Request e1 = decide_request("eulerian", "e1");
    Request e2 = decide_request("eulerian", "e2");
    e1.deadline_ms = 0.01;
    e2.deadline_ms = 0.01;
    auto f1 = core.submit(std::move(e1));
    auto f2 = core.submit(std::move(e2));
    auto f3 = core.submit(decide_request("eulerian", "live"));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    core.drain();

    EXPECT_EQ(f1.get().error, "DeadlineExceeded");
    EXPECT_EQ(f2.get().error, "DeadlineExceeded");
    EXPECT_EQ(f3.get().status, "ok");

    const ServiceStats stats = core.stats();
    EXPECT_EQ(stats.errors, 2u);
    EXPECT_EQ(stats.expired_in_queue, 2u);
    EXPECT_EQ(stats.completed, 1u);
    // All three shared a digest, so one batch was drained — but only the
    // live request counts as batched work.
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.batched_requests, 1u);
    EXPECT_EQ(stats.avg_batch(), 1.0);

    core.publish_metrics();
    std::map<std::string, double> snapshot;
    for (const auto& [name, value] : session.metrics().snapshot()) {
        snapshot[name] = value;
    }
    EXPECT_EQ(snapshot.at("service.expired_in_queue"), 2.0);
    EXPECT_EQ(snapshot.at("service.batched_requests"), 1.0);
}

TEST(GraphStore, DirtyBallStopsAtExactRadius) {
    // The r-locality boundary, pinned exactly: with view radius R, a relabel
    // dirties ball(u, R-1) — a node at distance exactly R never sees the
    // label — and an edge edit dirties the radius-R balls of both endpoints
    // in the pre- AND post-edit graphs.  Nodes one step beyond provably keep
    // their verdicts.
    GraphStore store;
    const LabeledGraph cycle = cycle_graph(20, "1");
    const std::string canonical = graph_to_text(cycle);
    store.register_graph(cycle, canonical);
    std::uint64_t digest = fnv1a64(canonical);
    const int radius = 3;

    {
        std::vector<PatchOp> relabel(1);
        relabel[0].kind = PatchOp::Kind::Relabel;
        relabel[0].u = 10;
        relabel[0].label = "0";
        const PatchOutcome out = store.apply_patch(digest, relabel, radius,
                                                   "global", 1, "",
                                                   WireLimits{});
        // ball(10, R-1 = 2): nodes 8..12.  Node 7 sits at distance R and is
        // clean; node 8 at R-1 is dirty.
        EXPECT_EQ(out.dirty, (std::vector<NodeId>{8, 9, 10, 11, 12}));
        digest = out.new_digest;
    }
    {
        std::vector<PatchOp> cut(1);
        cut[0].kind = PatchOp::Kind::RemoveEdge;
        cut[0].u = 0;
        cut[0].v = 1;
        const PatchOutcome out = store.apply_patch(digest, cut, radius,
                                                   "global", 1, "",
                                                   WireLimits{});
        // Pre-edit balls of radius 3 around 0 and 1 cover 17..4; the
        // post-edit (path) balls are a subset.  Node 5, at distance R+1 from
        // the nearer endpoint, stays clean.
        EXPECT_EQ(out.dirty, (std::vector<NodeId>{0, 1, 2, 3, 4, 17, 18, 19}));
        digest = out.new_digest;
    }
    {
        // Re-adding the edge dirties the same region through the post-edit
        // graph, and round-trips the content back to a previous digest.
        std::vector<PatchOp> mend(1);
        mend[0].kind = PatchOp::Kind::AddEdge;
        mend[0].u = 0;
        mend[0].v = 1;
        const PatchOutcome out = store.apply_patch(digest, mend, radius,
                                                   "global", 1, "",
                                                   WireLimits{});
        EXPECT_EQ(out.dirty, (std::vector<NodeId>{0, 1, 2, 3, 4, 17, 18, 19}));
    }
}

TEST(GraphStore, InvalidOpRollsBackTheWholePatch) {
    GraphStore store;
    const LabeledGraph cycle = graph_from_text(cycle6_text());
    const std::string canonical = graph_to_text(cycle);
    store.register_graph(cycle, canonical);
    const std::uint64_t digest = fnv1a64(canonical);

    // Op 0 is valid, op 1 is not — the resident must stay untouched.
    std::vector<PatchOp> ops(2);
    ops[0].kind = PatchOp::Kind::AddEdge;
    ops[0].u = 0;
    ops[0].v = 3;
    ops[1].kind = PatchOp::Kind::RemoveEdge;
    ops[1].u = 1;
    ops[1].v = 4;
    try {
        store.apply_patch(digest, ops, 1, "global", 1, "", WireLimits{});
        FAIL() << "invalid patch accepted";
    } catch (const precondition_error& e) {
        EXPECT_NE(std::string(e.what()).find("op 1: "), std::string::npos);
    }
    const std::shared_ptr<ResidentGraph> resident = store.find(digest);
    ASSERT_NE(resident, nullptr);
    EXPECT_FALSE(resident->graph.has_edge(0, 3));
    EXPECT_EQ(resident->canonical, canonical);
}

TEST(ServiceCore, PatchRekeysDigestAndNeverServesPrePatchBody) {
    ServiceCore core(manual_options());
    LabeledGraph mirror = graph_from_text(cycle6_text());
    const std::uint64_t d0 = register_resident(core, mirror);

    const Response before = core.call(game_by_digest(d0, "eulerian", 0));
    ASSERT_EQ(before.status, "ok") << before.detail;
    EXPECT_TRUE(response_verdict(before)); // a cycle is eulerian
    EXPECT_TRUE(core.call(game_by_digest(d0, "eulerian", 0)).memo_hit);

    // The chord gives nodes 0 and 2 odd degree; the patch re-keys the
    // resident and drops every memoized body for the old digest.
    mirror.add_edge(0, 2);
    const std::uint64_t d1 = fnv1a64(graph_to_text(mirror));
    const Response patched = core.call(
        patch_request(d0, "{\"op\":\"add_edge\",\"u\":0,\"v\":2}"));
    ASSERT_EQ(patched.status, "ok") << patched.detail;
    EXPECT_NE(patched.body.find("\"digest\":\"" + std::to_string(d1) + "\""),
              std::string::npos);
    EXPECT_NE(patched.body.find("\"version\":1"), std::string::npos);
    EXPECT_GE(core.memo_stats().invalidated, 1u);

    const Response stale = core.call(game_by_digest(d0, "eulerian", 0));
    EXPECT_EQ(stale.status, "error");
    EXPECT_EQ(stale.error, "UnknownGraph");

    const Response after = core.call(game_by_digest(d1, "eulerian", 0));
    ASSERT_EQ(after.status, "ok") << after.detail;
    EXPECT_FALSE(after.memo_hit);
    EXPECT_FALSE(response_verdict(after));

    // Patch back: the content (and digest) round-trips to d0, but the memo
    // entry for d0 was invalidated, so the verdict is recomputed — a client
    // can never observe a body computed for content the digest no longer
    // names.
    mirror.remove_edge(0, 2);
    ASSERT_EQ(fnv1a64(graph_to_text(mirror)), d0);
    const Response reverted = core.call(
        patch_request(d1, "{\"op\":\"remove_edge\",\"u\":0,\"v\":2}"));
    ASSERT_EQ(reverted.status, "ok") << reverted.detail;
    EXPECT_NE(reverted.body.find("\"version\":2"), std::string::npos);
    const Response recomputed = core.call(game_by_digest(d0, "eulerian", 0));
    ASSERT_EQ(recomputed.status, "ok");
    EXPECT_FALSE(recomputed.memo_hit);
    EXPECT_TRUE(response_verdict(recomputed));
    EXPECT_EQ(recomputed.body, before.body); // same content, same body
}

TEST(ServiceCore, DisconnectedQueryErrorsButPatchCommits) {
    ServiceCore core(manual_options());
    LabeledGraph mirror = graph_from_text("graph 3\nedge 0 1\nedge 1 2\n");
    const std::uint64_t d0 = register_resident(core, mirror);

    // The cut disconnects node 2.  The patch commits — that is how graphs
    // move through intermediate shapes — but the attached query fails the
    // same way any query on a disconnected graph does.
    mirror.remove_edge(1, 2);
    const std::uint64_t d1 = fnv1a64(graph_to_text(mirror));
    const Response cut = core.call(
        patch_request(d0, "{\"op\":\"remove_edge\",\"u\":1,\"v\":2}",
                      ",\"machine\":\"eulerian\",\"layers\":0"));
    EXPECT_EQ(cut.status, "error");
    EXPECT_EQ(cut.error, "InvalidRequest");
    EXPECT_NE(cut.detail.find("connected"), std::string::npos);

    // The new digest resolves (the patch committed) and the old one is gone;
    // plain queries against the disconnected resident error identically.
    const Response direct = core.call(game_by_digest(d1, "eulerian", 0));
    EXPECT_EQ(direct.status, "error");
    EXPECT_EQ(direct.error, "InvalidRequest");
    EXPECT_EQ(core.call(game_by_digest(d0, "eulerian", 0)).error,
              "UnknownGraph");

    // Reconnecting restores service; the verdict matches a full recompute
    // of the same content.
    mirror.add_edge(0, 2);
    const Response mended = core.call(
        patch_request(d1, "{\"op\":\"add_edge\",\"u\":0,\"v\":2}",
                      ",\"machine\":\"eulerian\",\"layers\":0"));
    ASSERT_EQ(mended.status, "ok") << mended.detail;

    ServiceOptions golden_options = manual_options();
    golden_options.memoize_results = false;
    ServiceCore golden(golden_options);
    const Response full = golden.serve_unbatched(parse_request(
        "{\"type\":\"game\",\"machine\":\"eulerian\",\"layers\":0,"
        "\"graph\":\"" + escape_newlines(graph_to_text(mirror)) + "\"}",
        1, WireLimits{}));
    ASSERT_EQ(full.status, "ok") << full.detail;
    EXPECT_EQ(response_verdict(mended), response_verdict(full));
}

TEST(ServiceCore, PatchSequenceMatchesFullRecomputeAndGoesIncremental) {
    // A grow/shrink/relabel sequence replayed against full recomputation of
    // every intermediate graph — the deterministic core of what the
    // service-patch-vs-full-recompute oracle check fuzzes at scale.
    ServiceCore core(manual_options());
    ServiceOptions golden_options = manual_options();
    golden_options.memoize_results = false;
    golden_options.share_view_cache = false;
    ServiceCore golden(golden_options);

    LabeledGraph mirror = cycle_graph(8, "1");
    std::uint64_t digest = register_resident(core, mirror);

    const auto check_step = [&](const std::string& ops_json,
                                const std::string& machine, int layers,
                                const std::string& backend) {
        const std::string extras = ",\"machine\":\"" + machine +
                                   "\",\"layers\":" + std::to_string(layers) +
                                   ",\"backend\":\"" + backend + "\"";
        const Response served =
            core.call(patch_request(digest, ops_json, extras));
        ASSERT_EQ(served.status, "ok") << served.detail;
        digest = fnv1a64(graph_to_text(mirror));
        EXPECT_NE(served.body.find("\"digest\":\"" + std::to_string(digest) +
                                   "\""),
                  std::string::npos)
            << served.body;
        const Response full = golden.serve_unbatched(parse_request(
            "{\"type\":\"game\",\"machine\":\"" + machine +
                "\",\"layers\":" + std::to_string(layers) + ",\"backend\":\"" +
                backend + "\",\"graph\":\"" +
                escape_newlines(graph_to_text(mirror)) + "\"}",
            1, WireLimits{}));
        ASSERT_EQ(full.status, "ok") << full.detail;
        EXPECT_EQ(response_verdict(served), response_verdict(full))
            << ops_json;
    };

    // Chord toggle, twice: the second query reuses the verdicts retained by
    // the first and goes through the incremental decider path.
    mirror.add_edge(0, 2);
    check_step("{\"op\":\"add_edge\",\"u\":0,\"v\":2}", "eulerian", 0,
               "interpreted");
    mirror.remove_edge(0, 2);
    check_step("{\"op\":\"remove_edge\",\"u\":0,\"v\":2}", "eulerian", 0,
               "interpreted");

    // Grow through a (momentarily) disconnected state inside one patch.
    mirror.add_node("1");
    mirror.add_edge(8, 3);
    check_step(
        "{\"op\":\"add_node\",\"label\":\"1\"},"
        "{\"op\":\"add_edge\",\"u\":8,\"v\":3}",
        "eulerian", 0, "interpreted");

    // Relabel plus a layered query: the engine's partial-leaves path.
    mirror.set_label(5, "0");
    check_step("{\"op\":\"relabel\",\"u\":5,\"label\":\"0\"}", "coloring2", 1,
               "interpreted");

    // Shrink back (LIFO, so no renumbering surprises on the mirror).
    mirror.remove_edge(8, 3);
    mirror.remove_node(8);
    check_step(
        "{\"op\":\"remove_edge\",\"u\":8,\"v\":3},"
        "{\"op\":\"remove_node\",\"u\":8}",
        "eulerian", 0, "interpreted");

    const ServiceStats stats = core.stats();
    EXPECT_EQ(stats.patches_applied, 5u);
    EXPECT_EQ(stats.patch_incremental + stats.patch_full, 5u);
    EXPECT_GE(stats.patch_incremental, 1u); // retention actually engaged
    EXPECT_GT(stats.patch_total_nodes, stats.patch_dirty_nodes);
}

TEST(EnginePartialLeaves, MatchesFullSolveBitIdentically) {
    // The engine boundary of incremental serving: partial_leaves with a
    // dirty-node hint, against a shared cache warmed by the pre-patch graph,
    // must reproduce the verdict AND the deterministic counters of a fresh
    // full solve on the patched graph.
    // allsel gathers at radius 0 (round bound 1), so a relabel dirties only
    // the node itself and its radius-1 ball sim stays far below the
    // whole-graph cost — the profitability gate keeps the partial path.
    const BuiltGame game = build_game("allsel", 1, true);
    const LabeledGraph before = cycle_graph(8, "1");
    LabeledGraph after = before;
    after.set_label(5, "0");
    const IdentifierAssignment id = make_global_ids(after);

    ViewCache shared(1 << 16);
    GameOptions warm;
    warm.threads = 1;
    warm.view_cache = &shared;
    play_game(game.spec, before, id, warm);

    // Dirty set for the relabel, computed by the same store the service uses.
    GraphStore store;
    store.register_graph(before, graph_to_text(before));
    std::vector<PatchOp> relabel(1);
    relabel[0].kind = PatchOp::Kind::Relabel;
    relabel[0].u = 5;
    relabel[0].label = "0";
    const ViewKeyBuilder keys(*game.spec.machine, after, id,
                              ExecutionOptions{});
    const PatchOutcome outcome = store.apply_patch(
        fnv1a64(graph_to_text(before)), relabel, keys.radius(), "global",
        game.spec.machine->id_radius(), "", WireLimits{});
    EXPECT_EQ(outcome.dirty, (std::vector<NodeId>{5}));

    GameOptions partial;
    partial.threads = 1;
    partial.view_cache = &shared;
    partial.partial_leaves = true;
    partial.recompute_nodes = &outcome.dirty;
    const GameResult incremental = play_game(game.spec, after, id, partial);

    GameOptions fresh;
    fresh.threads = 1;
    const GameResult full = play_game(game.spec, after, id, fresh);

    EXPECT_EQ(incremental.accepted, full.accepted);
    EXPECT_EQ(incremental.machine_runs, full.machine_runs);
    EXPECT_EQ(incremental.faulted_runs, full.faulted_runs);
    EXPECT_EQ(incremental.witness.has_value(), full.witness.has_value());
    // The incremental solve actually took the partial path: ball runs for
    // the dirty region, no full-graph fallbacks.
    EXPECT_GT(incremental.stats.ball_runs, 0u);
    EXPECT_EQ(incremental.stats.partial_fallbacks, 0u);
    EXPECT_GT(incremental.stats.partial_leaf_evals +
                  incremental.stats.leaf_cache_hits,
              0u);
}

TEST(ServiceOracle, PatchOracleSmoke) {
    // The registered differential check that fuzzes random patch sequences
    // (incremental core vs full-recompute reference); lph_fuzz --smoke runs
    // it at 350 instances, this is the in-tree canary.
    register_service_checks();
    ASSERT_TRUE(is_check_name("service-patch-vs-full-recompute"));
    const CheckReport report =
        run_check("service-patch-vs-full-recompute", 1, 25);
    EXPECT_TRUE(report.passed())
        << report.divergences.front().detail;
    EXPECT_EQ(report.instances, 25u);
}

// --------------------------------------------------------------- registry ---

TEST(Registry, NamesAreValidatedAndBuildable) {
    for (const std::string& name : machine_names()) {
        EXPECT_TRUE(is_machine_name(name));
        const BuiltGame game = build_game(name, 1, true);
        EXPECT_NE(game.spec.machine, nullptr);
        EXPECT_EQ(game.spec.layers.size(), 1u);
    }
    EXPECT_FALSE(is_machine_name("no-such-machine"));
    EXPECT_THROW(build_game("no-such-machine", 1, true), precondition_error);
    EXPECT_THROW(build_game("allsel", 9, true), precondition_error);

    for (const std::string& name : formula_names()) {
        EXPECT_TRUE(is_formula_name(name));
    }
    EXPECT_FALSE(is_formula_name("no-such-formula"));
}

// ---------------------------------------------------- timing observability --

TEST(WireTiming, TimingAndTraceRoundTripOverTheWire) {
    ServiceCore core(manual_options());
    const Request request = parse_request(
        "{\"type\":\"decide\",\"id\":9,\"trace\":{\"id\":77},"
        "\"problem\":\"eulerian\",\"graph\":\"" + cycle6_payload() + "\"}",
        1, WireLimits{});
    EXPECT_EQ(request.trace_id, "77");

    const Response response = core.call(request);
    ASSERT_EQ(response.status, "ok");
    ASSERT_TRUE(response.timing.present);
    const std::string line = response.to_json();
    EXPECT_NE(line.find("\"trace\":{\"id\":77}"), std::string::npos);

    const auto view = parse_timing(line);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->queue_us, response.timing.queue_us);
    EXPECT_EQ(view->batch_us, response.timing.batch_us);
    EXPECT_EQ(view->exec_us, response.timing.exec_us);
    EXPECT_EQ(view->write_us, response.timing.write_us);
    EXPECT_EQ(view->worker_pid, response.timing.worker_pid);
    EXPECT_EQ(view->generation, response.timing.generation);
    EXPECT_EQ(view->batch_size, response.batch);
    EXPECT_EQ(view->stage_sum_us(), response.timing.stage_sum_us());

    // Lines without a timing envelope parse to nullopt, not garbage.
    EXPECT_FALSE(parse_timing("{\"status\":\"ok\"}").has_value());
    EXPECT_FALSE(parse_timing("not json").has_value());
}

TEST(WireTiming, StageSumBoundedByClientObservedWall) {
    ServiceOptions options;
    options.threads = 2;
    ServiceCore core(options);
    for (int i = 0; i < 8; ++i) {
        const auto start = std::chrono::steady_clock::now();
        const Response response =
            core.call(decide_request("eulerian", std::to_string(i)));
        const double wall_us = std::chrono::duration<double, std::micro>(
                                   std::chrono::steady_clock::now() - start)
                                   .count();
        ASSERT_EQ(response.status, "ok");
        ASSERT_TRUE(response.timing.present);
        // Each stage rounds to whole microseconds, so allow half-ulp-per-
        // stage slack on top of the measured wall.
        EXPECT_LE(static_cast<double>(response.timing.stage_sum_us()),
                  wall_us + 3.0)
            << "request " << i;
    }
    core.stop();
}

TEST(WireTiming, MemoHitsCarryFreshTiming) {
    ServiceCore core(manual_options());
    const Request request = decide_request("eulerian", "memo");
    const Response miss = core.call(request);
    const Response hit = core.call(request);
    ASSERT_EQ(hit.status, "ok");
    EXPECT_TRUE(hit.memo_hit);
    ASSERT_TRUE(hit.timing.present);
    // The memo stores body fragments, not envelopes: a hit's timing is its
    // own serve, not a replay of the miss's.
    EXPECT_NE(hit.to_json().find("\"memo_hit\":true"), std::string::npos);
}

TEST(StatsDetail, FullSnapshotExposesHistogramsAndIdentity) {
    ServiceCore core(manual_options());
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(core.call(decide_request("eulerian", std::to_string(i)))
                      .status,
                  "ok");
    }
    const Response summary = core.call(
        parse_request("{\"type\":\"stats\",\"id\":90}", 1, WireLimits{}));
    ASSERT_EQ(summary.status, "ok");
    EXPECT_EQ(summary.body.find("\"histograms\""), std::string::npos);

    const Response full = core.call(parse_request(
        "{\"type\":\"stats\",\"id\":91,\"detail\":\"full\"}", 1,
        WireLimits{}));
    ASSERT_EQ(full.status, "ok");
    const auto snapshot = parse_worker_snapshot(full.to_json());
    ASSERT_TRUE(snapshot.has_value());
    EXPECT_GT(snapshot->pid, 0);
    EXPECT_GE(snapshot->uptime_ms, 0.0);
    EXPECT_GE(snapshot->metric("service.completed"), 5.0);
    const auto latency = snapshot->histograms.find("service.latency_us");
    ASSERT_NE(latency, snapshot->histograms.end());
    // The full-stats probe renders before its own timing is recorded, so the
    // latency histogram holds every request served before it.
    EXPECT_GE(latency->second.count(), 5u);
    EXPECT_GT(latency->second.percentile(0.99), 0.0);
    for (const char* stage : {"service.queue_us", "service.batch_us",
                              "service.exec_us", "service.write_us"}) {
        EXPECT_NE(snapshot->histograms.find(stage),
                  snapshot->histograms.end())
            << stage;
    }
}

TEST(Scrape, RejectsMalformedSnapshots) {
    EXPECT_FALSE(parse_worker_snapshot("not json").has_value());
    EXPECT_FALSE(parse_worker_snapshot("{\"status\":\"ok\"}").has_value());
    EXPECT_FALSE(
        parse_worker_snapshot(
            "{\"status\":\"error\",\"type\":\"stats\",\"metrics\":{}}")
            .has_value());
    // Bucket counts that do not add up to "count" are rejected, not merged.
    EXPECT_FALSE(
        parse_worker_snapshot(
            "{\"status\":\"ok\",\"type\":\"stats\",\"metrics\":{},"
            "\"histograms\":{\"h\":{\"count\":5,\"sum\":1,\"min\":1,"
            "\"max\":1,\"buckets\":[[0,2]]}}}")
            .has_value());
}

TEST(Scrape, ClusterMergeEqualsPerWorkerSums) {
    // Two independent cores behind two loopback listeners stand in for two
    // supervised workers; both answer a full-stats probe over the real wire.
    ServiceOptions options;
    options.threads = 2;
    ServiceCore core_a(options);
    ServiceCore core_b(options);
    TcpServer server_a(core_a, 0, 2);
    TcpServer server_b(core_b, 0, 2);
    server_a.start();
    server_b.start();

    const auto drive = [](std::uint16_t port, int requests) -> WorkerSnapshot {
        TcpClient client("127.0.0.1", port);
        for (int i = 0; i < requests; ++i) {
            client.send_line(
                "{\"type\":\"decide\",\"id\":" + std::to_string(i) +
                ",\"problem\":\"eulerian\",\"graph\":\"" + cycle6_payload() +
                "\"}");
            std::string line;
            EXPECT_TRUE(client.recv_line(line));
        }
        client.send_line("{\"type\":\"stats\",\"detail\":\"full\"}");
        std::string line;
        EXPECT_TRUE(client.recv_line(line));
        const auto snapshot = parse_worker_snapshot(line);
        EXPECT_TRUE(snapshot.has_value());
        return snapshot.value_or(WorkerSnapshot{});
    };

    WorkerSnapshot a = drive(server_a.port(), 7);
    WorkerSnapshot b = drive(server_b.port(), 11);
    server_a.shutdown();
    server_b.shutdown();
    core_a.stop();
    core_b.stop();

    // Both cores live in this process, so fake distinct worker pids the way
    // a real supervised cluster would present them.
    a.pid = 111;
    b.pid = 222;
    const double completed_sum = a.metric("service.completed") +
                                 b.metric("service.completed");
    const std::uint64_t latency_count_sum =
        a.histograms.at("service.latency_us").count() +
        b.histograms.at("service.latency_us").count();

    const ClusterView view = merge_workers({a, b});
    ASSERT_EQ(view.workers.size(), 2u);
    EXPECT_DOUBLE_EQ(view.summed_metrics.at("service.completed"),
                     completed_sum);
    const auto merged = view.histograms.find("service.latency_us");
    ASSERT_NE(merged, view.histograms.end());
    EXPECT_EQ(merged->second.count(), latency_count_sum);
    // Bucket-by-bucket, the merge is the per-worker sum — the bit-exactness
    // lph_top's cluster totals rely on.
    for (std::size_t i = 0; i < obs::LogHistogram::kBucketCount; ++i) {
        EXPECT_EQ(merged->second.bucket(i),
                  a.histograms.at("service.latency_us").bucket(i) +
                      b.histograms.at("service.latency_us").bucket(i))
            << "bucket " << i;
    }

    // Duplicate probes of the same worker dedupe (last wins), never
    // double-count.
    const ClusterView deduped = merge_workers({a, a, b});
    EXPECT_EQ(deduped.workers.size(), 2u);
    EXPECT_DOUBLE_EQ(deduped.summed_metrics.at("service.completed"),
                     completed_sum);
}

} // namespace
