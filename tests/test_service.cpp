// Tests for the serving layer (src/service): the strict JSON/wire parsers,
// the hardened graph wire format (round-trip property tests), the
// ServiceCore failure paths the serving contract promises — deadline
// expiry as a RunError taxonomy code, queue-full as a structured rejection
// (never a hang), malformed lines as ProtocolError with the connection
// still usable, injected engine faults as structured per-request failures —
// plus the memo/queue gauges flowing through the MetricsRegistry snapshot
// and a TCP loopback session.

#include "core/rng.hpp"
#include "graph/generators.hpp"
#include "graph/serialize.hpp"
#include "obs/session.hpp"
#include "service/core.hpp"
#include "service/json.hpp"
#include "service/registry.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <sstream>
#include <thread>

namespace {

using namespace lph;
using namespace lph::service;

std::string cycle6_text() {
    return "graph 6\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 5\n"
           "edge 5 0\n";
}

std::string cycle6_payload() {
    return "graph 6\\nedge 0 1\\nedge 1 2\\nedge 2 3\\nedge 3 4\\nedge 4 5\\n"
           "edge 5 0\\n";
}

/// Large enough (2^11 leaves vs ~350 compile-time ball runs) that the
/// service's compilation profitability gate chooses the compiled tables.
std::string cycle11_payload() {
    std::string payload = "graph 11";
    for (int v = 0; v < 11; ++v) {
        payload += "\\nedge " + std::to_string(v) + " " +
                   std::to_string((v + 1) % 11);
    }
    payload += "\\n";
    return payload;
}

ServiceOptions manual_options() {
    ServiceOptions options;
    options.manual_drain = true;
    return options;
}

// ---------------------------------------------------------------- JSON -----

TEST(ServiceJson, ParsesScalarsObjectsAndArrays) {
    const JsonValue doc = parse_json(
        R"({"a":1,"b":"x","c":true,"d":null,"e":[1,2],"f":{"g":-2.5}})");
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.find("a")->number, 1.0);
    EXPECT_EQ(doc.find("b")->string, "x");
    EXPECT_TRUE(doc.find("c")->boolean);
    EXPECT_EQ(doc.find("d")->kind, JsonValue::Kind::Null);
    EXPECT_EQ(doc.find("e")->items.size(), 2u);
    EXPECT_EQ(doc.find("f")->find("g")->number, -2.5);
}

TEST(ServiceJson, RejectsTrailingGarbage) {
    EXPECT_THROW(parse_json(R"({"a":1} extra)"), precondition_error);
    EXPECT_THROW(parse_json(R"({"a":1}{"b":2})"), precondition_error);
}

TEST(ServiceJson, RejectsDuplicateKeysWithByteOffset) {
    try {
        parse_json(R"({"a":1,"a":2})");
        FAIL() << "duplicate key accepted";
    } catch (const precondition_error& e) {
        EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    }
}

TEST(ServiceJson, RejectsMalformedDocuments) {
    EXPECT_THROW(parse_json(""), precondition_error);
    EXPECT_THROW(parse_json("{"), precondition_error);
    EXPECT_THROW(parse_json(R"({"a":})"), precondition_error);
    EXPECT_THROW(parse_json("{'a':1}"), precondition_error);
    EXPECT_THROW(parse_json(R"({"a":01})"), precondition_error);
    EXPECT_THROW(parse_json("\x01"), precondition_error);
    EXPECT_THROW(parse_json(std::string("{\"a\":\"\x01\"}")), precondition_error);
}

TEST(ServiceJson, RejectsOverDeepNesting) {
    std::string deep;
    for (int i = 0; i < 40; ++i) {
        deep += "[";
    }
    EXPECT_THROW(parse_json(deep), precondition_error);
}

// ------------------------------------------------- graph wire hardening ----

TEST(GraphWire, RejectsTrailingGarbageWithLineNumbers) {
    try {
        graph_from_text("graph 2\nedge 0 1 junk\n");
        FAIL() << "trailing junk accepted";
    } catch (const precondition_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("trailing junk"), std::string::npos);
        EXPECT_NE(what.find("line 2"), std::string::npos);
    }
    EXPECT_THROW(graph_from_text("graph 2 2\n"), precondition_error);
    EXPECT_THROW(graph_from_text("graph 2\nbogus 0 1\n"), precondition_error);
}

TEST(GraphWire, EnforcesReadLimits) {
    GraphReadLimits limits;
    limits.max_nodes = 4;
    EXPECT_THROW(graph_from_text("graph 5\n", limits), precondition_error);

    limits = {};
    limits.max_edges = 2;
    EXPECT_THROW(
        graph_from_text("graph 4\nedge 0 1\nedge 1 2\nedge 2 3\n", limits),
        precondition_error);

    limits = {};
    limits.max_label_bits = 2;
    EXPECT_THROW(graph_from_text("graph 1\nlabel 0 10101\n", limits),
                 precondition_error);

    limits = {};
    limits.max_bytes = 10;
    try {
        graph_from_text("graph 2\nedge 0 1\n", limits);
        FAIL() << "oversized payload accepted";
    } catch (const precondition_error& e) {
        EXPECT_NE(std::string(e.what()).find("bytes"), std::string::npos);
    }
}

TEST(GraphWire, RoundTripPropertyRandomGraphs) {
    Rng rng(2026);
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t n = 1 + rng.index(12);
        LabeledGraph g = random_connected_graph(n, rng.index(n + 1), rng, "1");
        if (rng.chance(0.5)) {
            randomize_labels(g, 1 + rng.index(4), rng);
        }
        const std::string wire = graph_to_text(g);
        const LabeledGraph back = graph_from_text(wire);
        // Bit-identical round trip: same canonical serialization.
        EXPECT_EQ(graph_to_text(back), wire) << "trial " << trial;
    }
}

// ---------------------------------------------------------------- wire -----

TEST(Wire, ParsesGameRequestAndCanonicalizesGraph) {
    const Request r = parse_request(
        "{\"type\":\"game\",\"id\":7,\"machine\":\"coloring3\",\"layers\":1,"
        "\"graph\":\"" + cycle6_payload() + "\"}",
        1, WireLimits{});
    EXPECT_EQ(r.type, RequestType::Game);
    EXPECT_EQ(r.id, "7");
    EXPECT_EQ(r.machine, "coloring3");
    EXPECT_TRUE(r.has_graph);
    // graph_to_text normalizes edge endpoints and sort order, so compare
    // against the re-serialized parse rather than the raw wire text.
    EXPECT_EQ(r.canonical_graph, graph_to_text(graph_from_text(cycle6_text())));
    EXPECT_NE(r.graph_digest(), 0u);
    EXPECT_FALSE(r.memo_key().empty());
}

TEST(Wire, RejectsMalformedRequestsWithLineNumbers) {
    const WireLimits limits;
    const std::map<std::string, std::string> rejects = {
        {"not json at all", "line 3"},
        {"{\"type\":\"nope\"}", "unknown request type"},
        {"{\"type\":\"game\",\"machine\":\"coloring3\"}", "missing \"graph\""},
        {"{\"type\":\"game\",\"machine\":\"unknown-machine\",\"graph\":\"x\"}",
         "unknown machine"},
        {"{\"type\":\"stats\",\"bogus\":1}", "unknown field"},
        {"{\"type\":\"decide\",\"problem\":\"eulerian\",\"k\":99,"
         "\"graph\":\"graph 1\\n\"}",
         "\"k\""},
        {"{\"type\":\"game\",\"machine\":\"allsel\",\"layers\":9,"
         "\"graph\":\"graph 1\\n\"}",
         "\"layers\""},
    };
    for (const auto& [line, needle] : rejects) {
        try {
            parse_request(line, 3, limits);
            FAIL() << "accepted: " << line;
        } catch (const precondition_error& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("line 3"), std::string::npos) << what;
            EXPECT_NE(what.find(needle), std::string::npos) << what;
        }
    }
}

TEST(Wire, EnforcesGraphLimitsFromWireLimits) {
    WireLimits limits;
    limits.max_graph_nodes = 4;
    EXPECT_THROW(
        parse_request("{\"type\":\"decide\",\"problem\":\"eulerian\","
                      "\"graph\":\"graph 6\\n\"}",
                      1, limits),
        precondition_error);
}

TEST(Wire, RequestRoundTripProperty) {
    // request -> to_json -> parse_request -> to_json is a fixed point, and
    // the graph payload survives bit-identically.
    Rng rng(7);
    const WireLimits limits;
    const std::vector<std::string> machines = machine_names();
    for (int trial = 0; trial < 40; ++trial) {
        LabeledGraph g =
            random_connected_graph(1 + rng.index(8), rng.index(4), rng, "1");
        Request r;
        r.type = RequestType::Game;
        r.id = std::to_string(trial);
        r.machine = machines[rng.index(machines.size())];
        r.layers = static_cast<int>(rng.index(3));
        r.sigma = rng.chance(0.5);
        r.ids = rng.chance(0.5) ? "global" : "local";
        r.tolerate_faults = rng.chance(0.3);
        r.backend = rng.chance(0.5) ? "compiled" : "interpreted";
        if (rng.chance(0.3)) {
            r.fault_seed = rng.uniform(1, 1000);
            r.fault_crash = 0.25;
        }
        if (rng.chance(0.3)) {
            r.deadline_ms = 1500;
        }
        r.graph = g;
        r.canonical_graph = graph_to_text(g);
        r.has_graph = true;

        const std::string wire = r.to_json();
        const Request parsed = parse_request(wire, 1, limits);
        EXPECT_EQ(parsed.to_json(), wire) << "trial " << trial;
        EXPECT_EQ(parsed.canonical_graph, r.canonical_graph);
        EXPECT_EQ(parsed.memo_key(), r.memo_key());
        EXPECT_EQ(parsed.graph_digest(), r.graph_digest());
    }
}

TEST(Wire, MemoKeyExcludesIdAndDeadline) {
    const std::string base =
        "{\"type\":\"decide\",\"problem\":\"eulerian\",\"graph\":\"" +
        cycle6_payload() + "\"";
    const Request a = parse_request(base + ",\"id\":1}", 1, WireLimits{});
    const Request b = parse_request(base + ",\"id\":2,\"deadline_ms\":50}", 1,
                                    WireLimits{});
    EXPECT_EQ(a.memo_key(), b.memo_key());
}

TEST(Wire, BackendFieldValidatedAndPartOfMemoKey) {
    const std::string base =
        "{\"type\":\"game\",\"machine\":\"coloring2\",\"layers\":1,"
        "\"graph\":\"" + cycle6_payload() + "\"";
    const Request dflt = parse_request(base + "}", 1, WireLimits{});
    EXPECT_EQ(dflt.backend, "compiled");
    const Request interp =
        parse_request(base + ",\"backend\":\"interpreted\"}", 1, WireLimits{});
    EXPECT_EQ(interp.backend, "interpreted");
    // The backends profile differently, so they must never share a memo slot.
    EXPECT_NE(dflt.memo_key(), interp.memo_key());
    EXPECT_EQ(parse_request(interp.to_json(), 1, WireLimits{}).backend,
              "interpreted");
    EXPECT_THROW(
        parse_request(base + ",\"backend\":\"quantum\"}", 1, WireLimits{}),
        precondition_error);
}

// ---------------------------------------------------------- ServiceCore ----

Request decide_request(const std::string& problem, const std::string& id) {
    return parse_request("{\"type\":\"decide\",\"id\":\"" + id +
                             "\",\"problem\":\"" + problem + "\",\"graph\":\"" +
                             cycle6_payload() + "\"}",
                         1, WireLimits{});
}

TEST(ServiceCore, ServesMixedRequestsAndEchoesIds) {
    ServiceCore core(manual_options());
    const Response r1 = core.call(decide_request("eulerian", "a"));
    EXPECT_EQ(r1.status, "ok");
    EXPECT_EQ(r1.id, "\"a\"");
    EXPECT_NE(r1.body.find("\"answer\":true"), std::string::npos);

    const Response r2 = core.call(parse_request(
        "{\"type\":\"game\",\"machine\":\"coloring2\",\"layers\":1,"
        "\"graph\":\"" + cycle6_payload() + "\"}",
        1, WireLimits{}));
    EXPECT_EQ(r2.status, "ok");
    EXPECT_NE(r2.body.find("\"accepted\":true"), std::string::npos);
    EXPECT_NE(r2.body.find("\"witness\""), std::string::npos);

    const Response r3 =
        core.call(parse_request("{\"type\":\"health\"}", 1, WireLimits{}));
    EXPECT_EQ(r3.status, "ok");
    EXPECT_NE(r3.body.find("\"ok\":true"), std::string::npos);
}

TEST(ServiceCore, MemoServesRepeatedRequestsAndReportsGauges) {
    obs::Session session;
    ServiceOptions options = manual_options();
    options.obs = &session;
    ServiceCore core(options);

    const Response miss = core.call(decide_request("coloring", "1"));
    const Response hit = core.call(decide_request("coloring", "2"));
    EXPECT_EQ(miss.status, "ok");
    EXPECT_FALSE(miss.memo_hit);
    EXPECT_TRUE(hit.memo_hit);
    EXPECT_EQ(hit.body, miss.body); // replayed verbatim
    EXPECT_EQ(core.memo_stats().hits, 1u);
    EXPECT_EQ(core.memo_stats().entries, 1u);

    // The gauges flow through the MetricsRegistry snapshot path (same schema
    // as the loadgen BENCH rows and `lphd --metrics=`).
    core.publish_metrics();
    std::map<std::string, double> snapshot;
    for (const auto& [name, value] : session.metrics().snapshot()) {
        snapshot[name] = value;
    }
    EXPECT_EQ(snapshot.at("service.submitted"), 2.0);
    EXPECT_EQ(snapshot.at("service.completed"), 2.0);
    EXPECT_EQ(snapshot.at("service.memo_served"), 1.0);
    EXPECT_EQ(snapshot.at("service.memo.hits"), 1.0);
    EXPECT_EQ(snapshot.at("service.memo.entries"), 1.0);
    EXPECT_TRUE(snapshot.count("service.queue_depth"));
    EXPECT_TRUE(snapshot.count("service.max_queue_depth"));
    EXPECT_TRUE(snapshot.count("service.cache.hits"));
}

TEST(ServiceCore, BackendsAgreeOnTheWireButMemoSeparately) {
    obs::Session session;
    ServiceOptions options = manual_options();
    options.obs = &session;
    ServiceCore core(options);
    const std::string base =
        "{\"type\":\"game\",\"machine\":\"coloring2\",\"layers\":1,"
        "\"graph\":\"" + cycle11_payload() + "\"";
    const Response interpreted = core.call(parse_request(
        base + ",\"backend\":\"interpreted\"}", 1, WireLimits{}));
    const Response compiled = core.call(parse_request(base + "}", 1,
                                                      WireLimits{}));
    ASSERT_EQ(compiled.status, "ok");
    ASSERT_EQ(interpreted.status, "ok");
    EXPECT_FALSE(compiled.memo_hit); // backend is part of the memo key
    EXPECT_EQ(compiled.body, interpreted.body); // bit-identical results

    // The default (compiled) request flowed through the packed evaluator and
    // its counters reached the session registry.
    core.publish_metrics();
    std::map<std::string, double> snapshot;
    for (const auto& [name, value] : session.metrics().snapshot()) {
        snapshot[name] = value;
    }
    EXPECT_GE(snapshot.at("game.compiled_classes"), 1.0);
    EXPECT_GE(snapshot.at("game.packed_words_evaluated"), 1.0);
}

TEST(ServiceCore, QueueFullIsStructuredRejectionNotHang) {
    ServiceOptions options = manual_options();
    options.queue_capacity = 2;
    ServiceCore core(options);

    auto f1 = core.submit(decide_request("eulerian", "1"));
    auto f2 = core.submit(decide_request("eulerian", "2"));
    auto f3 = core.submit(decide_request("eulerian", "3"));

    // The rejection resolves immediately, without any draining.
    ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const Response rejected = f3.get();
    EXPECT_EQ(rejected.status, "rejected");
    EXPECT_EQ(rejected.error, "QueueFull");
    EXPECT_EQ(rejected.id, "\"3\"");
    EXPECT_EQ(core.stats().rejected, 1u);

    core.drain();
    EXPECT_EQ(f1.get().status, "ok");
    EXPECT_EQ(f2.get().status, "ok");
}

TEST(ServiceCore, DeadlineExpiryUsesRunErrorTaxonomy) {
    ServiceCore core(manual_options());
    Request request = decide_request("eulerian", "d");
    request.deadline_ms = 0.01;
    auto future = core.submit(std::move(request));
    // Let the deadline expire while the request waits in the queue — the
    // same RunError::DeadlineExceeded code the engine's guard uses.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    core.drain();
    const Response response = future.get();
    EXPECT_EQ(response.status, "error");
    EXPECT_EQ(response.error, "DeadlineExceeded");
    EXPECT_NE(response.detail.find("in queue"), std::string::npos);
    EXPECT_EQ(core.stats().errors, 1u);
}

TEST(ServiceCore, EngineFaultPropagatesAsTaxonomyCode) {
    // The fussy verifier violates its declared step bound on any certificate
    // containing a '1'; without tolerate_faults the engine throws run_error
    // and the service maps it to the taxonomy code.
    ServiceCore core(manual_options());
    const Response response = core.call(parse_request(
        "{\"type\":\"game\",\"machine\":\"fussy\",\"layers\":1,"
        "\"graph\":\"graph 2\\nedge 0 1\\n\"}",
        1, WireLimits{}));
    EXPECT_EQ(response.status, "error");
    EXPECT_EQ(response.error, "StepBoundViolated");
}

TEST(ServiceCore, InjectedFaultsAreStructuredUnderTolerateFaults) {
    ServiceCore core(manual_options());
    const std::string base =
        "{\"type\":\"game\",\"machine\":\"eulerian\",\"layers\":0,"
        "\"fault_seed\":7,\"fault_crash\":1.0,\"graph\":\"" +
        cycle6_payload() + "\"";

    // tolerate_faults: the faulted leaf is scored as a loss and reported on
    // a *successful* response.
    const Response tolerated = core.call(
        parse_request(base + ",\"tolerate_faults\":true}", 1, WireLimits{}));
    EXPECT_EQ(tolerated.status, "ok");
    EXPECT_NE(tolerated.body.find("\"accepted\":false"), std::string::npos);
    EXPECT_NE(tolerated.body.find("\"faulted_runs\":1"), std::string::npos);
    EXPECT_NE(tolerated.body.find("NodeCrashed"), std::string::npos);

    // Without it, the injected fault escalates to a structured per-request
    // error carrying the taxonomy code.
    const Response escalated = core.call(
        parse_request(base + ",\"tolerate_faults\":false}", 1, WireLimits{}));
    EXPECT_EQ(escalated.status, "error");
    EXPECT_EQ(escalated.error, "NodeCrashed");
}

TEST(ServiceCore, BatchesSameGraphRequests) {
    ServiceOptions options = manual_options();
    options.memoize_results = false; // count batches, not memo hits
    ServiceCore core(options);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(
            core.submit(decide_request("eulerian", std::to_string(i))));
    }
    futures.push_back(core.submit(parse_request(
        "{\"type\":\"decide\",\"problem\":\"eulerian\","
        "\"graph\":\"graph 3\\nedge 0 1\\nedge 1 2\\nedge 0 2\\n\"}",
        1, WireLimits{})));

    // First drain takes the four same-digest requests as one batch; the
    // odd-graph request is left for the second drain.
    EXPECT_TRUE(core.drain_some());
    EXPECT_EQ(core.queue_depth(), 1u);
    EXPECT_TRUE(core.drain_some());
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(futures[i].get().batch, 4u);
    }
    EXPECT_EQ(futures[4].get().batch, 1u);
    EXPECT_EQ(core.stats().batches, 2u);
    EXPECT_EQ(core.stats().batched_requests, 5u);
}

TEST(ServiceCore, WorkerPoolServesConcurrentSubmissions) {
    ServiceOptions options;
    options.threads = 3;
    options.queue_capacity = 512;
    ServiceCore core(options);
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(
            core.submit(decide_request(i % 2 ? "eulerian" : "coloring",
                                       std::to_string(i))));
    }
    for (auto& future : futures) {
        EXPECT_EQ(future.get().status, "ok");
    }
    const ServiceStats stats = core.stats();
    EXPECT_EQ(stats.completed, 64u);
    EXPECT_EQ(stats.rejected, 0u);
}

// -------------------------------------------------------------- streams ----

TEST(ServeStream, MalformedLineKeepsStreamUsable) {
    ServiceOptions options;
    options.threads = 1;
    ServiceCore core(options);
    std::istringstream in("this is not json\n"
                          "{\"type\":\"health\",\"id\":1}\n"
                          "{\"type\":\"health\",\"bogus\":true}\n"
                          "{\"type\":\"health\",\"id\":2}\n");
    std::ostringstream out;
    const ServeReport report = serve_stream(core, in, out);
    EXPECT_EQ(report.lines, 4u);
    EXPECT_EQ(report.requests, 2u);
    EXPECT_EQ(report.protocol_errors, 2u);
    EXPECT_EQ(core.stats().protocol_errors, 2u);

    std::istringstream lines(out.str());
    std::string line;
    std::vector<std::string> responses;
    while (std::getline(lines, line)) {
        responses.push_back(line);
    }
    ASSERT_EQ(responses.size(), 4u);
    // In order: error, ok, error, ok — the connection survived both bad lines.
    EXPECT_NE(responses[0].find("ProtocolError"), std::string::npos);
    EXPECT_NE(responses[0].find("line 1"), std::string::npos);
    EXPECT_NE(responses[1].find("\"id\":1"), std::string::npos);
    EXPECT_NE(responses[1].find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(responses[2].find("ProtocolError"), std::string::npos);
    EXPECT_NE(responses[3].find("\"id\":2"), std::string::npos);
}

TEST(TcpServerTest, ServesLoopbackConnections) {
    ServiceOptions options;
    options.threads = 2;
    ServiceCore core(options);
    TcpServer server(core, 0, 2);
    server.start();
    ASSERT_NE(server.port(), 0);

    {
        TcpClient client("127.0.0.1", server.port());
        client.send_line("{\"type\":\"health\",\"id\":1}");
        client.send_line("garbage");
        client.send_line(
            "{\"type\":\"decide\",\"id\":2,\"problem\":\"eulerian\","
            "\"graph\":\"" + cycle6_payload() + "\"}");
        std::string line;
        ASSERT_TRUE(client.recv_line(line));
        EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
        ASSERT_TRUE(client.recv_line(line));
        EXPECT_NE(line.find("ProtocolError"), std::string::npos);
        ASSERT_TRUE(client.recv_line(line));
        EXPECT_NE(line.find("\"answer\":true"), std::string::npos);
    }

    // A second connection works after the first closed.
    {
        TcpClient client("127.0.0.1", server.port());
        client.send_line("{\"type\":\"stats\"}");
        std::string line;
        ASSERT_TRUE(client.recv_line(line));
        EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
    }

    server.shutdown();
    core.stop();
}

// --------------------------------------------------------------- registry ---

TEST(Registry, NamesAreValidatedAndBuildable) {
    for (const std::string& name : machine_names()) {
        EXPECT_TRUE(is_machine_name(name));
        const BuiltGame game = build_game(name, 1, true);
        EXPECT_NE(game.spec.machine, nullptr);
        EXPECT_EQ(game.spec.layers.size(), 1u);
    }
    EXPECT_FALSE(is_machine_name("no-such-machine"));
    EXPECT_THROW(build_game("no-such-machine", 1, true), precondition_error);
    EXPECT_THROW(build_game("allsel", 9, true), precondition_error);

    for (const std::string& name : formula_names()) {
        EXPECT_TRUE(is_formula_name(name));
    }
    EXPECT_FALSE(is_formula_name("no-such-formula"));
}

} // namespace
