// The differential oracle harness tested against itself: reference oracles
// on classic instances, engine-vs-reference bit-identity, shrinker
// minimality, repro round-trips, a zero-divergence fuzz pass over every
// registered check, and the planted-bug selftest.

#include "graph/generators.hpp"
#include "graph/serialize.hpp"
#include "graphalg/coloring.hpp"
#include "graphalg/eulerian.hpp"
#include "graphalg/hamiltonian.hpp"
#include "hierarchy/game.hpp"
#include "logic/eval.hpp"
#include "machines/verifiers.hpp"
#include "oracle/generators.hpp"
#include "oracle/harness.hpp"
#include "oracle/reference.hpp"
#include "oracle/repro.hpp"
#include "oracle/selftest.hpp"
#include "oracle/shrink.hpp"
#include "structure/graph_structure.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

TEST(ReferenceOracles, ClassicGraphFacts) {
    const LabeledGraph petersen = petersen_graph();
    EXPECT_FALSE(ref_is_eulerian(petersen)); // 3-regular: odd degrees
    EXPECT_FALSE(ref_is_hamiltonian(petersen));
    EXPECT_FALSE(ref_is_k_colorable(petersen, 2));
    EXPECT_TRUE(ref_is_k_colorable(petersen, 3));

    const LabeledGraph c5 = cycle_graph(5);
    EXPECT_TRUE(ref_is_eulerian(c5));
    EXPECT_TRUE(ref_is_hamiltonian(c5));
    EXPECT_FALSE(ref_is_k_colorable(c5, 2));
    EXPECT_TRUE(ref_is_k_colorable(c5, 3));

    const LabeledGraph k4 = complete_graph(4);
    EXPECT_FALSE(ref_is_eulerian(k4)); // degree 3 everywhere
    EXPECT_TRUE(ref_is_hamiltonian(k4));
    EXPECT_FALSE(ref_is_k_colorable(k4, 3));
    EXPECT_TRUE(ref_is_k_colorable(k4, 4));

    LabeledGraph triangle_plus_isolate = cycle_graph(3);
    triangle_plus_isolate.add_node("1");
    EXPECT_TRUE(ref_is_eulerian(triangle_plus_isolate));
}

TEST(ReferenceGame, BitIdenticalToEngineOnColoringGames) {
    Rng rng(12);
    for (int round = 0; round < 8; ++round) {
        const LabeledGraph g =
            random_connected_graph(2 + rng.index(3), rng.index(3), rng, "1");
        const auto id = make_global_ids(g);
        for (const bool sigma : {true, false}) {
            const ColoringVerifier verifier(2);
            const FixedOptionsDomain domain(
                {verifier.encode_color(0), verifier.encode_color(1)});
            GameSpec spec;
            spec.machine = &verifier;
            spec.layers = {&domain, &domain};
            spec.starts_existential = sigma;

            GameOptions sequential;
            sequential.threads = 1;
            sequential.memoize_views = false;
            const GameResult engine = play_game(spec, g, id, sequential);
            const RefGameResult reference = ref_play_game(spec, g, id);

            EXPECT_EQ(engine.accepted, reference.accepted);
            EXPECT_EQ(engine.machine_runs, reference.machine_runs);
            EXPECT_EQ(engine.faulted_runs, reference.faulted_runs);
            ASSERT_EQ(engine.witness.has_value(), reference.witness.has_value());
            if (engine.witness.has_value()) {
                EXPECT_TRUE(*engine.witness == *reference.witness);
            }
        }
    }
}

TEST(ReferenceLogic, AgreesWithEvaluatorOnHandwrittenSentences) {
    const LabeledGraph g = path_graph(3, "10");
    const GraphStructure gs(g);
    const std::vector<Formula> sentences = {
        fl::forall("x", fl::exists_conn("y", "x", fl::top())),
        fl::exists("x", fl::conj(fl::unary(1, "x"),
                                 fl::forall_conn("y", "x",
                                                 fl::negate(fl::equals("x", "y"))))),
        fl::exists_so("X", 1,
                      fl::forall("x", fl::apply("X", {"x"}))),
        fl::forall_so("X", 1,
                      fl::exists("x", fl::disj(fl::apply("X", {"x"}),
                                               fl::negate(fl::apply("X", {"x"}))))),
    };
    for (const Formula& sentence : sentences) {
        EXPECT_EQ(satisfies(gs.structure(), sentence),
                  ref_satisfies(gs.structure(), sentence))
            << to_string(sentence);
    }
}

TEST(ReferenceLogic, RandomSentencesAreClosed) {
    Rng rng(5);
    FormulaGenOptions opt;
    opt.allow_so = true;
    for (int i = 0; i < 50; ++i) {
        const Formula sentence = random_sentence(rng, opt);
        EXPECT_TRUE(free_fo_variables(sentence).empty()) << to_string(sentence);
        EXPECT_TRUE(free_so_variables(sentence).empty()) << to_string(sentence);
    }
}

TEST(Shrinker, ReducesToSingleOffendingNode) {
    // Divergence predicate: "some node is labeled 0".  The 1-minimal
    // counterexample is a single 0-labeled node.
    Rng rng(3);
    LabeledGraph g = random_connected_graph(6, 3, rng, "1");
    g.set_label(4, "0");
    const DivergencePredicate has_zero = [](const LabeledGraph& candidate) {
        for (NodeId u = 0; u < candidate.num_nodes(); ++u) {
            if (candidate.label(u) == "0") {
                return true;
            }
        }
        return false;
    };
    ShrinkStats stats;
    const LabeledGraph shrunk = shrink_graph(g, has_zero, &stats);
    EXPECT_EQ(shrunk.num_nodes(), 1u);
    EXPECT_EQ(shrunk.num_edges(), 0u);
    EXPECT_EQ(shrunk.label(0), "0");
    EXPECT_EQ(stats.nodes_removed, 5u);
    EXPECT_GT(stats.predicate_calls, 0u);
}

TEST(Shrinker, RejectsNonDivergingStart) {
    const LabeledGraph g = path_graph(2);
    EXPECT_THROW(
        shrink_graph(g, [](const LabeledGraph&) { return false; }, nullptr),
        precondition_error);
}

TEST(Shrinker, ThrowingPredicateIsNotADivergence) {
    // The predicate only holds on graphs with >= 2 nodes and throws on
    // single-node candidates: shrinking must stop at 2 nodes, not crash.
    const LabeledGraph g = path_graph(4);
    const DivergencePredicate fussy = [](const LabeledGraph& candidate) {
        check(candidate.num_nodes() >= 2, "too small to even evaluate");
        return true;
    };
    const LabeledGraph shrunk = shrink_graph(g, fussy, nullptr);
    EXPECT_EQ(shrunk.num_nodes(), 2u);
}

TEST(Repro, RoundTripsThroughText) {
    ReproCase repro;
    repro.check = "eulerian-vs-bruteforce";
    repro.seed = 123456789;
    repro.params["ids"] = "global";
    repro.params["k"] = "3";
    repro.graph = cycle_graph(4, "01");

    const std::string text = repro_to_text(repro);
    const ReproCase parsed = repro_from_text(text);
    EXPECT_EQ(parsed.check, repro.check);
    EXPECT_EQ(parsed.seed, repro.seed);
    EXPECT_EQ(parsed.params, repro.params);
    EXPECT_TRUE(parsed.graph == repro.graph);
    EXPECT_EQ(repro_to_text(parsed), text);
}

TEST(Repro, RejectsMalformedInput) {
    EXPECT_THROW(repro_from_text("not a repro"), precondition_error);
    EXPECT_THROW(repro_from_text("lph-fuzz-repro 1\ncheck x\nseed 1\n"),
                 precondition_error); // missing graph section
}

TEST(Harness, RegistryCoversEveryDecisionPath) {
    const auto names = check_names();
    EXPECT_GE(names.size(), 6u);
    for (const std::string& name : names) {
        EXPECT_TRUE(is_check_name(name));
    }
    EXPECT_FALSE(is_check_name("no-such-check"));
}

class CheckZeroDivergence : public ::testing::TestWithParam<std::string> {};

TEST_P(CheckZeroDivergence, SeededCorpusAgrees) {
    const CheckReport report = run_check(GetParam(), 2024, 25);
    EXPECT_EQ(report.instances, 25u);
    for (const Divergence& d : report.divergences) {
        ADD_FAILURE() << GetParam() << " diverged: " << d.detail << "\n"
                      << repro_to_text(d.repro);
    }
    // The JSON row is well-formed enough to grep in CI logs.
    const std::string row = report_row_json(report);
    EXPECT_NE(row.find("\"check\":\"" + GetParam() + "\""), std::string::npos);
    EXPECT_NE(row.find("\"status\":\"pass\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllChecks, CheckZeroDivergence,
                         ::testing::ValuesIn(check_names()),
                         [](const auto& info) {
                             std::string name = info.param;
                             for (char& ch : name) {
                                 if (ch == '-') {
                                     ch = '_';
                                 }
                             }
                             return name;
                         });

TEST(Harness, ReplayAgreesOnFreshInstance) {
    ReproCase repro;
    repro.check = "eulerian-vs-bruteforce";
    repro.graph = cycle_graph(4);
    EXPECT_FALSE(replay_repro(repro).has_value());
}

TEST(Selftest, PlantedOffByOneIsCaughtAndShrunkToOneNode) {
    const SelftestResult result = run_selftest(7);
    EXPECT_TRUE(result.divergence_found) << result.detail;
    ASSERT_GT(result.shrunk.num_nodes(), 0u);
    EXPECT_LE(result.shrunk_nodes, 6u) << result.detail;
    // The minimal counterexample for "unanimity skips node 0" is a single
    // node whose label is not "1".
    EXPECT_EQ(result.shrunk_nodes, 1u) << graph_to_text(result.shrunk);
    EXPECT_NE(result.shrunk.label(0), "1");
}

} // namespace
} // namespace lph
