#include "core/check.hpp"
#include "graph/generators.hpp"
#include "logic/eval.hpp"
#include "logic/examples.hpp"
#include "structure/graph_structure.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

using namespace fl;

Structure word_structure(const BitString& word) {
    Structure s(word.size(), 1, 1);
    for (std::size_t i = 0; i < word.size(); ++i) {
        if (word[i] == '1') {
            s.set_unary(0, i);
        }
        if (i + 1 < word.size()) {
            s.add_binary(0, i, i + 1);
        }
    }
    return s;
}

TEST(Eval, AtomsOnWords) {
    const Structure s = word_structure("010");
    Assignment sigma;
    sigma.fo["x"] = 1;
    sigma.fo["y"] = 2;
    EXPECT_TRUE(evaluate(s, unary(1, "x"), sigma));
    EXPECT_FALSE(evaluate(s, unary(1, "y"), sigma));
    EXPECT_TRUE(evaluate(s, binary(1, "x", "y"), sigma));
    EXPECT_FALSE(evaluate(s, binary(1, "y", "x"), sigma));
    EXPECT_FALSE(evaluate(s, equals("x", "y"), sigma));
}

TEST(Eval, Connectives) {
    const Structure s = word_structure("1");
    Assignment sigma;
    sigma.fo["x"] = 0;
    EXPECT_TRUE(evaluate(s, disj(bottom(), unary(1, "x")), sigma));
    EXPECT_FALSE(evaluate(s, conj(top(), bottom()), sigma));
    EXPECT_TRUE(evaluate(s, implies(bottom(), bottom()), sigma));
    EXPECT_TRUE(evaluate(s, iff(top(), unary(1, "x")), sigma));
    EXPECT_FALSE(evaluate(s, negate(top()), sigma));
}

TEST(Eval, UnboundedQuantifiers) {
    const Structure s = word_structure("010");
    EXPECT_TRUE(satisfies(s, exists("x", unary(1, "x"))));
    EXPECT_FALSE(satisfies(s, forall("x", unary(1, "x"))));
    EXPECT_TRUE(satisfies(word_structure("111"), forall("x", unary(1, "x"))));
}

TEST(Eval, BoundedQuantifiersRangeOverConnected) {
    const Structure s = word_structure("0100");
    Assignment sigma;
    sigma.fo["y"] = 0;
    // Position 1 is connected to 0 and carries a 1.
    EXPECT_TRUE(evaluate(s, exists_conn("z", "y", unary(1, "z")), sigma));
    sigma.fo["y"] = 3;
    // Position 3's only neighbor is 2, which is 0.
    EXPECT_FALSE(evaluate(s, exists_conn("z", "y", unary(1, "z")), sigma));
}

TEST(Eval, SecondOrderWithExplicitRelation) {
    const Structure s = word_structure("000");
    RelationValue r(2);
    r.insert({0, 2});
    Assignment sigma;
    sigma.so.emplace("R", r);
    sigma.fo["x"] = 0;
    sigma.fo["y"] = 2;
    EXPECT_TRUE(evaluate(s, apply("R", {"x", "y"}), sigma));
    EXPECT_FALSE(evaluate(s, apply("R", {"y", "x"}), sigma));
}

TEST(Eval, ExistentialSOFindsWitness) {
    // There is a set X containing exactly the 1-positions.
    const Structure s = word_structure("0110");
    const Formula phi =
        exists_so("X", 1, forall("x", iff(apply("X", {"x"}), unary(1, "x"))));
    EXPECT_TRUE(satisfies(s, phi));
}

TEST(Eval, UniversalSOCanFail) {
    const Structure s = word_structure("01");
    // Not every set X agrees with the bit predicate.
    const Formula phi =
        forall_so("X", 1, forall("x", iff(apply("X", {"x"}), unary(1, "x"))));
    EXPECT_FALSE(satisfies(s, phi));
}

TEST(Eval, UniverseGuardThrows) {
    const Structure s = word_structure("0000000000"); // 10 elements
    SOPolicy policy;
    policy.max_universe_size = 8;
    const Formula phi = exists_so("X", 1, top());
    EXPECT_THROW(satisfies(s, phi, policy), precondition_error);
}

TEST(Eval, TupleUniverseSizes) {
    const Structure s = word_structure("000");
    SOPolicy all;
    EXPECT_EQ(so_tuple_universe(s, 1, all).size(), 3u);
    EXPECT_EQ(so_tuple_universe(s, 2, all).size(), 9u);
    SOPolicy local;
    local.universe = SOPolicy::Universe::LocalTuples;
    local.locality_radius = 1;
    // Pairs (a,b) with b within distance 1 of a on the 3-chain:
    // 0:{0,1} 1:{0,1,2} 2:{1,2} -> 2+3+2 = 7.
    EXPECT_EQ(so_tuple_universe(s, 2, local).size(), 7u);
}

// --- Section 5.2 formulas evaluated on structural representations. ---

TEST(PaperEval, IsNodeAndBits) {
    LabeledGraph g = path_graph(2, "1");
    const GraphStructure gs(g);
    Assignment sigma;
    sigma.fo["x"] = gs.node_element(0);
    EXPECT_TRUE(evaluate(gs.structure(), paper_formulas::is_node("x"), sigma));
    sigma.fo["x"] = gs.bit_element(0, 1);
    EXPECT_FALSE(evaluate(gs.structure(), paper_formulas::is_node("x"), sigma));
    EXPECT_TRUE(evaluate(gs.structure(), paper_formulas::is_bit1("x"), sigma));
    EXPECT_FALSE(evaluate(gs.structure(), paper_formulas::is_bit0("x"), sigma));
}

TEST(PaperEval, IsSelectedExactlyLabelOne) {
    LabeledGraph g = path_graph(3, "1");
    g.set_label(1, "11"); // "11" is selected-looking but not exactly "1"
    g.set_label(2, "0");
    const GraphStructure gs(g);
    Assignment sigma;
    sigma.fo["x"] = gs.node_element(0);
    EXPECT_TRUE(evaluate(gs.structure(), paper_formulas::is_selected("x"), sigma));
    sigma.fo["x"] = gs.node_element(1);
    EXPECT_FALSE(evaluate(gs.structure(), paper_formulas::is_selected("x"), sigma));
    sigma.fo["x"] = gs.node_element(2);
    EXPECT_FALSE(evaluate(gs.structure(), paper_formulas::is_selected("x"), sigma));
}

class AllSelectedFormula : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllSelectedFormula, MatchesGroundTruth) {
    const std::size_t n = GetParam();
    LabeledGraph yes = cycle_graph(n, "1");
    LabeledGraph no = cycle_graph(n, "1");
    no.set_label(n / 2, "0");
    EXPECT_TRUE(satisfies(GraphStructure(yes).structure(),
                          paper_formulas::all_selected()));
    EXPECT_FALSE(satisfies(GraphStructure(no).structure(),
                           paper_formulas::all_selected()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllSelectedFormula, ::testing::Values(3u, 4u, 6u, 9u));

TEST(PaperEval, TwoColorableOnSmallCycles) {
    // Unlabeled cycles keep the SO universes tiny.
    const Formula phi = paper_formulas::two_colorable();
    EXPECT_TRUE(satisfies(GraphStructure(cycle_graph(4, "")).structure(), phi));
    EXPECT_FALSE(satisfies(GraphStructure(cycle_graph(5, "")).structure(), phi));
}

TEST(PaperEval, ThreeColorableSmall) {
    const Formula phi = paper_formulas::three_colorable();
    EXPECT_TRUE(satisfies(GraphStructure(cycle_graph(5, "")).structure(), phi));
    EXPECT_FALSE(satisfies(GraphStructure(complete_graph(4, "")).structure(), phi));
}

} // namespace
} // namespace lph
