#include "core/check.hpp"
#include "graph/generators.hpp"
#include "hierarchy/separations.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

// --- Proposition 21: the symmetry-breaking experiment. ---

class Prop21 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Prop21, TranscriptsMatchAcrossGluedCycles) {
    const LocalBipartiteDecider decider(1);
    const SymmetryExperiment result =
        run_prop21_experiment(decider, GetParam());
    // Ground truth: the odd cycle is not 2-colorable, the glued one is.
    EXPECT_FALSE(result.g_bipartite);
    EXPECT_TRUE(result.g2_bipartite);
    // The paper's argument realized: node-for-node identical verdicts, hence
    // identical acceptance — the machine cannot be a 2-COLORABLE decider.
    EXPECT_TRUE(result.transcripts_match);
    EXPECT_EQ(result.g_accepted, result.g2_accepted);
    // This particular candidate accepts both (every local view is a path).
    EXPECT_TRUE(result.g_accepted);
}

INSTANTIATE_TEST_SUITE_P(OddLengths, Prop21, ::testing::Values(9u, 11u, 15u, 21u));

TEST(Prop21Radius, LargerRadiusDoesNotHelp) {
    // Raising the machine's radius does not break the symmetry as long as
    // the cycle is long enough.
    const LocalBipartiteDecider decider(3);
    const SymmetryExperiment result = run_prop21_experiment(decider, 15);
    EXPECT_TRUE(result.transcripts_match);
    EXPECT_EQ(result.g_accepted, result.g2_accepted);
}

TEST(Prop21Guard, CycleTooShortRejected) {
    const LocalBipartiteDecider decider(3);
    // id radius = 3 + 2 = 5; need length > 10.
    EXPECT_THROW(run_prop21_experiment(decider, 9), precondition_error);
}

// --- Proposition 23: the two failure horns for NOT-ALL-SELECTED. ---

TEST(BoundedDistance, SoundAndCompleteOnShortCycles) {
    const BoundedDistanceVerifier verifier(4); // distances up to 15
    for (std::size_t len : {9u, 12u, 15u}) {
        const LabeledGraph g = one_unselected_cycle(len);
        const auto id = make_cyclic_ids(g, len); // globally unique here
        const auto certs = distance_certificates(g, 4);
        ASSERT_TRUE(certs.has_value()) << len;
        const auto list =
            CertificateListAssignment::concatenate({*certs}, g.num_nodes());
        EXPECT_TRUE(run_local(verifier, g, id, list).accepted) << len;
    }
}

TEST(BoundedDistance, RejectsAllSelectedWithAnyStrategyCertificate) {
    // Soundness: the all-selected cycle admits no accepting counter
    // assignment at all; the strategy already has no play.
    const LabeledGraph g = cycle_graph(9, "1");
    EXPECT_FALSE(distance_certificates(g, 4).has_value());
}

TEST(BoundedDistance, SoundnessExhaustiveOnTinyCycle) {
    // Exhaustively search all 1-bit counter assignments on an all-selected
    // 9-cycle (512 plays): the verifier rejects every one of them.
    const BoundedDistanceVerifier verifier(1);
    const DistanceCertificateDomain domain(1);
    const LabeledGraph g = cycle_graph(9, "1");
    const auto id = make_cyclic_ids(g, 9);
    EXPECT_FALSE(find_accepting_certificate(verifier, domain, g, id).has_value());
}

TEST(BoundedDistance, IncompletenessHornOnLongCycles) {
    // With B bits, cycles longer than 2*(2^B - 1) + 1 have nodes whose true
    // distance does not fit, and indeed no valid counter assignment exists:
    // Eve cannot play, so the verifier rejects a yes-instance.
    const int bits = 2; // distances up to 3
    const SpliceExperiment result = run_prop23_splice(
        BoundedDistanceVerifier(bits),
        [bits](const LabeledGraph& g, const IdentifierAssignment&) {
            return distance_certificates(g, bits);
        },
        /*cycle_length=*/24, /*id_period=*/12, /*window_radius=*/1);
    EXPECT_FALSE(result.original_accepted);
}

TEST(PointerChain, CompleteOnYesInstances) {
    const PointerChainVerifier verifier;
    for (std::size_t len : {12u, 20u}) {
        const LabeledGraph g = one_unselected_cycle(len);
        const auto id = make_cyclic_ids(g, len > 12 ? 10u : 12u);
        const auto certs = pointer_certificates(g, id);
        ASSERT_TRUE(certs.has_value());
        const auto list =
            CertificateListAssignment::concatenate({*certs}, g.num_nodes());
        EXPECT_TRUE(run_local(verifier, g, id, list).accepted) << len;
    }
}

class Prop23Splice : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Prop23Splice, SplicedAllSelectedCycleAccepted) {
    // The unsoundness horn, via the paper's pigeonhole construction: the
    // verifier accepts the yes-instance, two indistinguishable windows are
    // found, and the spliced all-selected cycle is (wrongly) accepted.
    const std::size_t length = GetParam();
    const PointerChainVerifier verifier;
    const SpliceExperiment result = run_prop23_splice(
        verifier,
        [](const LabeledGraph& g, const IdentifierAssignment& id) {
            return pointer_certificates(g, id);
        },
        length, /*id_period=*/9, /*window_radius=*/2);
    EXPECT_TRUE(result.original_accepted);
    EXPECT_TRUE(result.window_pair_found);
    EXPECT_TRUE(result.spliced_all_selected);
    EXPECT_GE(result.spliced_length, 9u);
    EXPECT_TRUE(result.spliced_accepted)
        << "the bounded-certificate verifier should be fooled by the splice";
}

INSTANTIATE_TEST_SUITE_P(Lengths, Prop23Splice, ::testing::Values(45u, 63u, 90u));

TEST(OneUnselectedCycle, Shape) {
    const LabeledGraph g = one_unselected_cycle(6);
    EXPECT_EQ(g.label(0), "0");
    for (NodeId u = 1; u < 6; ++u) {
        EXPECT_EQ(g.label(u), "1");
    }
}

TEST(DistanceCertificates, MultiSourceBfs) {
    LabeledGraph g = path_graph(5, "1");
    g.set_label(2, "0");
    const auto certs = distance_certificates(g, 3);
    ASSERT_TRUE(certs.has_value());
    EXPECT_EQ(decode_unsigned((*certs)(2)), 0u);
    EXPECT_EQ(decode_unsigned((*certs)(0)), 2u);
    EXPECT_EQ(decode_unsigned((*certs)(4)), 2u);
}

} // namespace
} // namespace lph
