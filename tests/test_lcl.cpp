#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "machines/lcl.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

bool run_lcl(const LclProblem& problem, const LabeledGraph& g) {
    const LclDecider decider(problem);
    return run_local(decider, g, make_global_ids(g)).accepted;
}

TEST(LclColoring, AcceptsProperColorings) {
    // Color a 6-cycle alternately with 2-bit labels.
    LabeledGraph g = cycle_graph(6, "00");
    for (NodeId u = 0; u < 6; ++u) {
        g.set_label(u, u % 2 == 0 ? "00" : "01");
    }
    EXPECT_TRUE(run_lcl(lcl_proper_three_coloring(), g));
    EXPECT_TRUE(is_proper_three_coloring_labeling(g));
}

TEST(LclColoring, RejectsMonochromeEdge) {
    LabeledGraph g = path_graph(3, "00");
    g.set_label(1, "01");
    g.set_label(2, "01"); // nodes 1 and 2 collide
    EXPECT_FALSE(run_lcl(lcl_proper_three_coloring(), g));
}

TEST(LclColoring, RejectsOutOfRangeColor) {
    LabeledGraph g = path_graph(2, "00");
    g.set_label(1, "11"); // color 3 does not exist
    EXPECT_FALSE(run_lcl(lcl_proper_three_coloring(), g));
}

class LclColoringSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(LclColoringSweep, MachineMatchesOracle) {
    Rng rng(GetParam() + 7);
    LabeledGraph g = random_connected_graph(4 + rng.index(5), rng.index(4), rng);
    // Random (possibly improper) 2-bit labelings.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        g.set_label(u, encode_unsigned_width(rng.index(3), 2));
    }
    if (g.max_structural_degree() > 6 + 2) {
        return; // outside GRAPH(Delta) for this LCL
    }
    EXPECT_EQ(run_lcl(lcl_proper_three_coloring(), g),
              is_proper_three_coloring_labeling(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LclColoringSweep, ::testing::Range(0u, 20u));

TEST(LclMis, AcceptsValidMis) {
    // On a path 0-1-2-3: {0, 2}? Node 3 unselected with selected neighbor 2.
    LabeledGraph g = path_graph(4, "0");
    g.set_label(0, "1");
    g.set_label(2, "1");
    EXPECT_TRUE(run_lcl(lcl_maximal_independent_set(), g));
    EXPECT_TRUE(is_maximal_independent_set_labeling(g));
}

TEST(LclMis, RejectsNonIndependent) {
    LabeledGraph g = path_graph(3, "1"); // everything selected
    EXPECT_FALSE(run_lcl(lcl_maximal_independent_set(), g));
}

TEST(LclMis, RejectsNonMaximal) {
    const LabeledGraph g = path_graph(3, "0"); // nothing selected
    EXPECT_FALSE(run_lcl(lcl_maximal_independent_set(), g));
}

class LclMisSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(LclMisSweep, MachineMatchesOracle) {
    Rng rng(GetParam() + 70);
    LabeledGraph g = random_connected_graph(4 + rng.index(5), rng.index(4), rng);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        g.set_label(u, rng.chance(0.4) ? "1" : "0");
    }
    if (g.max_structural_degree() > 6 + 1) {
        return;
    }
    EXPECT_EQ(run_lcl(lcl_maximal_independent_set(), g),
              is_maximal_independent_set_labeling(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LclMisSweep, ::testing::Range(0u, 20u));

TEST(LclWeakColoring, EvenCycleAlternation) {
    LabeledGraph g = cycle_graph(6, "0");
    for (NodeId u = 0; u < 6; ++u) {
        g.set_label(u, u % 2 == 0 ? "0" : "1");
    }
    EXPECT_TRUE(run_lcl(lcl_weak_two_coloring(), g));
    set_all_labels(g, "1");
    EXPECT_FALSE(run_lcl(lcl_weak_two_coloring(), g));
}

TEST(LclDomain, DegreeBoundEnforced) {
    // A star exceeding the problem's max degree is rejected regardless of
    // labels — the machine recognizes it is outside GRAPH(Delta).
    LabeledGraph g = star_graph(9, "0");
    g.set_label(0, "1");
    EXPECT_FALSE(run_lcl(lcl_maximal_independent_set(), g));
}

TEST(LclDomain, LabelBoundEnforced) {
    LabeledGraph g = path_graph(2, "0");
    g.set_label(0, "0101"); // 4 bits > 1-bit bound for MIS
    EXPECT_FALSE(run_lcl(lcl_maximal_independent_set(), g));
}

TEST(LclAsLp, ConstantWorkPerNode) {
    // The LP-ness of LCL deciders: metered per-node work stays flat as the
    // cycle grows (degree and labels are constant).
    const LclDecider decider(lcl_weak_two_coloring());
    std::uint64_t small_max = 0;
    std::uint64_t large_max = 0;
    for (const std::size_t n : {16u, 256u}) {
        LabeledGraph g = cycle_graph(n, "0");
        for (NodeId u = 0; u < n; ++u) {
            g.set_label(u, u % 2 == 0 ? "0" : "1");
        }
        const auto result = run_local(decider, g, make_global_ids(g));
        std::uint64_t max_steps = 0;
        for (const auto& stats : result.node_stats) {
            max_steps = std::max(max_steps, stats.max_round_steps);
        }
        (n == 16u ? small_max : large_max) = max_steps;
    }
    // Identifier lengths grow logarithmically; allow a generous constant.
    EXPECT_LE(large_max, 4 * small_max);
}

} // namespace
} // namespace lph
