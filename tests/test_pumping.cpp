#include "automata/mso_words.hpp"
#include "automata/pumping.hpp"
#include "core/check.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

Dfa parity_dfa() {
    Dfa dfa(2, 2, 0);
    dfa.set_accepting(0, true);
    dfa.set_transition(0, 0, 0);
    dfa.set_transition(0, 1, 1);
    dfa.set_transition(1, 0, 1);
    dfa.set_transition(1, 1, 0);
    return dfa;
}

/// A DFA accepting words with at least two 1s — a wrong "majority" guesser.
Dfa at_least_two_ones_dfa() {
    Dfa dfa(3, 2, 0);
    dfa.set_accepting(2, true);
    for (std::size_t q = 0; q < 3; ++q) {
        dfa.set_transition(q, 0, q);
        dfa.set_transition(q, 1, std::min<std::size_t>(q + 1, 2));
    }
    return dfa;
}

bool majority(const std::vector<std::size_t>& w) {
    std::size_t ones = 0;
    for (std::size_t s : w) {
        ones += s == 1;
    }
    return 2 * ones >= w.size();
}

TEST(PumpDecomposition, SplitsAndPumps) {
    const Dfa parity = parity_dfa();
    const std::vector<std::size_t> word{1, 0, 1, 0};
    const auto d = pump_decomposition(parity, word);
    EXPECT_FALSE(d.y.empty());
    EXPECT_LE(d.x.size() + d.y.size(), parity.num_states());
    // The lemma: every pump stays accepted.
    for (std::size_t i : {0u, 1u, 2u, 5u}) {
        EXPECT_TRUE(parity.accepts(d.pumped(i))) << "i=" << i;
    }
    EXPECT_EQ(d.pumped(1), word);
}

TEST(PumpDecomposition, RequiresAcceptedLongWord) {
    const Dfa parity = parity_dfa();
    EXPECT_THROW(pump_decomposition(parity, {1}), precondition_error);   // rejected
    EXPECT_THROW(pump_decomposition(parity, {}), precondition_error);    // too short
}

TEST(RefuteDfa, FindsDirectDisagreement) {
    // Parity DFA vs the "all zeros" language: disagree on "11".
    const auto refutation = refute_dfa_for_language(
        parity_dfa(),
        [](const std::vector<std::size_t>& w) {
            for (std::size_t s : w) {
                if (s != 0) return false;
            }
            return true;
        },
        4);
    ASSERT_TRUE(refutation.has_value());
    EXPECT_NE(refutation->dfa_verdict, refutation->lang_verdict);
}

TEST(RefuteDfa, NoRefutationForTheRightLanguage) {
    const auto refutation = refute_dfa_for_language(
        parity_dfa(),
        [](const std::vector<std::size_t>& w) {
            std::size_t ones = 0;
            for (std::size_t s : w) {
                ones += s == 1;
            }
            return ones % 2 == 0;
        },
        8);
    EXPECT_FALSE(refutation.has_value());
}

TEST(RefuteDfa, CatchesWrongMajorityGuess) {
    const auto refutation =
        refute_dfa_for_language(at_least_two_ones_dfa(), majority, 6);
    ASSERT_TRUE(refutation.has_value());
    EXPECT_NE(refutation->dfa_verdict, refutation->lang_verdict);
}

TEST(MajorityNerode, RefutesEveryCandidate) {
    // Any DFA is wrong about MAJORITY; the Nerode construction exhibits a
    // witness for several shapes.
    std::vector<Dfa> candidates;
    candidates.push_back(parity_dfa());
    candidates.push_back(at_least_two_ones_dfa());
    {
        Dfa accept_all(1, 2, 0);
        accept_all.set_accepting(0, true);
        accept_all.set_transition(0, 0, 0);
        accept_all.set_transition(0, 1, 0);
        candidates.push_back(accept_all);
    }
    {
        // The MSO-compiled "some 1" automaton.
        candidates.push_back(
            compile_mso_to_dfa(fl::exists("x", fl::unary(1, "x"))));
    }
    for (const Dfa& dfa : candidates) {
        const DfaRefutation refutation = majority_nerode_refutation(dfa);
        EXPECT_NE(refutation.dfa_verdict, refutation.lang_verdict);
        EXPECT_EQ(dfa.accepts(refutation.witness), refutation.dfa_verdict);
        EXPECT_EQ(majority(refutation.witness), refutation.lang_verdict);
    }
}

} // namespace
} // namespace lph
