#include "core/check.hpp"
#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "hierarchy/game.hpp"
#include "machines/verifiers.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

/// The color domain matching a ColoringVerifier.
class ColorDomain : public CertificateDomain {
public:
    explicit ColorDomain(const ColoringVerifier& verifier) {
        for (int c = 0; c < verifier.k(); ++c) {
            options_.push_back(verifier.encode_color(c));
        }
    }
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

class NlpColorGame : public ::testing::TestWithParam<unsigned> {};

TEST_P(NlpColorGame, GameValueMatchesColorability) {
    // The Sigma_1 game with the k-coloring verifier decides k-COLORABLE.
    Rng rng(GetParam() + 3);
    const LabeledGraph g =
        random_connected_graph(3 + rng.index(4), rng.index(4), rng, "1");
    const auto id = make_global_ids(g);
    for (int k = 2; k <= 3; ++k) {
        const ColoringVerifier verifier(k);
        const ColorDomain domain(verifier);
        GameSpec spec;
        spec.machine = &verifier;
        spec.layers = {&domain};
        spec.starts_existential = true;
        const GameResult result = play_game(spec, g, id);
        EXPECT_EQ(result.accepted, is_k_colorable(g, k))
            << "k=" << k << " n=" << g.num_nodes();
        if (result.accepted) {
            // The recorded witness re-verifies.
            ASSERT_TRUE(result.witness.has_value());
            const auto list = CertificateListAssignment::concatenate(
                {*result.witness}, g.num_nodes());
            EXPECT_TRUE(run_local(verifier, g, id, list).accepted);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NlpColorGame, ::testing::Range(0u, 10u));

TEST(NlpGameFacts, OddCycleNotTwoColorable) {
    const ColoringVerifier verifier(2);
    const ColorDomain domain(verifier);
    const LabeledGraph odd = cycle_graph(5, "1");
    const LabeledGraph even = cycle_graph(6, "1");
    EXPECT_FALSE(find_accepting_certificate(verifier, domain, odd,
                                            make_global_ids(odd))
                     .has_value());
    EXPECT_TRUE(find_accepting_certificate(verifier, domain, even,
                                           make_global_ids(even))
                    .has_value());
}

TEST(GameEngine, UniversalLayerSemantics) {
    // A Pi_1 game: Adam picks the certificate; the machine accepts iff the
    // certificate is "1" at every node.  Adam can always pick "0", so the
    // game value is false whenever his domain contains "0".
    class CertIsOneMachine : public NeighborhoodGatherMachine {
    public:
        CertIsOneMachine() : NeighborhoodGatherMachine(0) {}
        std::string decide(const NeighborhoodView& view, StepMeter&) const override {
            const auto parts = split_hash(view.certs[view.self]);
            return !parts.empty() && parts[0] == "1" ? "1" : "0";
        }
    };
    const LabeledGraph g = path_graph(2, "1");
    const auto id = make_global_ids(g);
    const CertIsOneMachine machine;
    const FixedOptionsDomain both({"0", "1"});
    const FixedOptionsDomain only_one({"1"});
    GameSpec spec;
    spec.machine = &machine;
    spec.starts_existential = false; // Pi side: Adam first
    spec.layers = {&both};
    EXPECT_FALSE(play_game(spec, g, id).accepted);
    spec.layers = {&only_one};
    EXPECT_TRUE(play_game(spec, g, id).accepted);
}

TEST(GameEngine, TwoLayerAlternation) {
    // Sigma_2 game: Eve then Adam, each assigning one bit per node; the
    // machine accepts iff at this node eve_bit == adam_bit... then Eve cannot
    // win (Adam flips afterwards), but with the acceptance "eve_bit == 1 or
    // adam_bit == 0" she can.
    class XorMachine : public NeighborhoodGatherMachine {
    public:
        explicit XorMachine(bool winnable) : NeighborhoodGatherMachine(0),
                                             winnable_(winnable) {}
        std::string decide(const NeighborhoodView& view, StepMeter&) const override {
            const auto parts = split_hash(view.certs[view.self]);
            const std::string eve = parts.size() > 0 ? parts[0] : "";
            const std::string adam = parts.size() > 1 ? parts[1] : "";
            if (winnable_) {
                return (eve == "1" || adam == "0") ? "1" : "0";
            }
            return eve == adam ? "1" : "0";
        }

    private:
        bool winnable_;
    };
    const LabeledGraph g = path_graph(2, "1");
    const auto id = make_global_ids(g);
    const FixedOptionsDomain bits({"0", "1"});
    {
        const XorMachine machine(false);
        GameSpec spec;
        spec.machine = &machine;
        spec.starts_existential = true;
        spec.layers = {&bits, &bits};
        EXPECT_FALSE(play_game(spec, g, id).accepted);
    }
    {
        const XorMachine machine(true);
        GameSpec spec;
        spec.machine = &machine;
        spec.starts_existential = true;
        spec.layers = {&bits, &bits};
        EXPECT_TRUE(play_game(spec, g, id).accepted);
    }
}

TEST(GameEngine, TreeSizeAndGuard) {
    const LabeledGraph g = path_graph(3, "1");
    const auto id = make_global_ids(g);
    const FixedOptionsDomain bits({"0", "1"});
    class AcceptAll : public NeighborhoodGatherMachine {
    public:
        AcceptAll() : NeighborhoodGatherMachine(0) {}
        std::string decide(const NeighborhoodView&, StepMeter&) const override {
            return "1";
        }
    };
    const AcceptAll machine;
    GameSpec spec;
    spec.machine = &machine;
    spec.layers = {&bits, &bits};
    EXPECT_EQ(game_tree_size(spec, g, id), 64u); // (2^3)^2
    GameOptions tight;
    tight.max_assignments_per_layer = 4;
    EXPECT_THROW(play_game(spec, g, id, tight), precondition_error);
}

TEST(RawBitStringDomainTest, EnumeratesAllShortStrings) {
    const RawBitStringDomain domain(2);
    const LabeledGraph g = single_node_graph("1");
    const auto options = domain.options(g, make_global_ids(g), 0);
    // "", 0, 1, 00, 01, 10, 11.
    EXPECT_EQ(options.size(), 7u);
}

TEST(RawBitStringDomainTest, SubsumesColorCertificates) {
    // Raw enumeration with length 2 finds the same 2-coloring witnesses the
    // structured domain finds (the paper's unrestricted certificates).
    const ColoringVerifier verifier(2);
    const RawBitStringDomain raw(1);
    const LabeledGraph even = cycle_graph(4, "1");
    const LabeledGraph odd = cycle_graph(5, "1");
    EXPECT_TRUE(find_accepting_certificate(verifier, raw, even,
                                           make_global_ids(even))
                    .has_value());
    EXPECT_FALSE(find_accepting_certificate(verifier, raw, odd,
                                            make_global_ids(odd))
                     .has_value());
}

} // namespace
} // namespace lph
