#include "graph/generators.hpp"
#include "core/check.hpp"
#include "graph/identifiers.hpp"

#include <gtest/gtest.h>

namespace lph {
namespace {

TEST(Identifiers, GlobalIdsAreGloballyUnique) {
    const LabeledGraph g = cycle_graph(8);
    const auto id = make_global_ids(g);
    EXPECT_TRUE(id.is_globally_unique());
    EXPECT_TRUE(id.is_locally_unique(g, 4)); // 2*4 >= diameter
}

TEST(Identifiers, LexicographicOrderMatchesPaper) {
    // id(u) < id(v) if u's id is a proper prefix of v's, or the first
    // differing bit is smaller — std::string order on '0'/'1' strings.
    EXPECT_LT(BitString("0"), BitString("00")); // proper prefix
    EXPECT_LT(BitString("01"), BitString("1"));
    EXPECT_LT(BitString(""), BitString("0"));
}

struct SmallIdCase {
    std::string name;
    std::size_t n;
    int r_id;
};

class SmallIds : public ::testing::TestWithParam<SmallIdCase> {};

LabeledGraph build(const std::string& name, std::size_t n) {
    if (name == "cycle") return cycle_graph(n);
    if (name == "path") return path_graph(n);
    if (name == "star") return star_graph(n);
    if (name == "complete") return complete_graph(n);
    return grid_graph(n / 3 + 1, 3);
}

TEST_P(SmallIds, LocallyUniqueAndSmall) {
    const auto& param = GetParam();
    const LabeledGraph g = build(param.name, param.n);
    const auto id = make_small_local_ids(g, param.r_id);
    // Remark 1: a small r_id-locally unique assignment always exists, and the
    // greedy construction produces one.
    EXPECT_TRUE(id.is_locally_unique(g, param.r_id));
    EXPECT_TRUE(id.is_small(g, param.r_id));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SmallIds,
    ::testing::Values(SmallIdCase{"cycle", 9, 1}, SmallIdCase{"cycle", 12, 2},
                      SmallIdCase{"cycle", 20, 3}, SmallIdCase{"path", 10, 2},
                      SmallIdCase{"star", 7, 1}, SmallIdCase{"star", 7, 3},
                      SmallIdCase{"complete", 5, 1},
                      SmallIdCase{"grid", 9, 2}),
    [](const auto& info) {
        return info.param.name + std::to_string(info.param.n) + "_r" +
               std::to_string(info.param.r_id);
    });

TEST(SmallIdsDetail, ReusesValuesFarApart) {
    // On a long cycle with r_id = 1, identifiers must be unique within
    // distance 2 but can repeat beyond; small ids are then O(1) bits.
    const LabeledGraph g = cycle_graph(30);
    const auto id = make_small_local_ids(g, 1);
    std::size_t max_len = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        max_len = std::max(max_len, id(u).size());
    }
    EXPECT_LE(max_len, 3u); // ceil(log2(5)) = 3
}

TEST(CyclicIds, PeriodicOnCycle) {
    const LabeledGraph g = cycle_graph(12);
    const auto id = make_cyclic_ids(g, 4);
    EXPECT_TRUE(id.is_locally_unique(g, 1)); // period 4 >= 2*1+1
    // Exactly `period` distinct identifiers.
    std::set<BitString> distinct;
    for (NodeId u = 0; u < 12; ++u) {
        distinct.insert(id(u));
    }
    EXPECT_EQ(distinct.size(), 4u);
}

TEST(CyclicIds, RejectsIndivisibleLength) {
    const LabeledGraph g = cycle_graph(10);
    EXPECT_THROW(make_cyclic_ids(g, 4), precondition_error);
}

TEST(CyclicIds, LocalUniquenessFailsAtLargeRadius) {
    const LabeledGraph g = cycle_graph(12);
    const auto id = make_cyclic_ids(g, 4);
    // Nodes at distance 4 share an identifier, so radius 2 fails.
    EXPECT_FALSE(id.is_locally_unique(g, 2));
}

TEST(Identifiers, DuplicatesWithinTwiceRadiusRejected) {
    const LabeledGraph g = path_graph(4);
    // Nodes 0 and 2 share an id at distance 2 = 2*r_id: not 1-locally unique.
    IdentifierAssignment close_dup({"0", "1", "0", "1"});
    EXPECT_FALSE(close_dup.is_locally_unique(g, 1));
    // Duplicates at distance 3 > 2 are fine for r_id = 1 but not r_id = 2.
    IdentifierAssignment far_dup({"0", "1", "10", "0"});
    EXPECT_TRUE(far_dup.is_locally_unique(g, 1));
    EXPECT_FALSE(far_dup.is_locally_unique(g, 2));
}

TEST(Identifiers, SingleNodeEmptyIdIsSmall) {
    const LabeledGraph g = single_node_graph("1");
    const auto id = make_small_local_ids(g, 3);
    EXPECT_EQ(id(0), "");
    EXPECT_TRUE(id.is_small(g, 3));
}

} // namespace
} // namespace lph
