file(REMOVE_RECURSE
  "CMakeFiles/test_restrictive.dir/test_restrictive.cpp.o"
  "CMakeFiles/test_restrictive.dir/test_restrictive.cpp.o.d"
  "test_restrictive"
  "test_restrictive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_restrictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
