# Empty dependencies file for test_restrictive.
# This may be replaced when dependencies are built.
