# Empty dependencies file for test_lcl.
# This may be replaced when dependencies are built.
