file(REMOVE_RECURSE
  "CMakeFiles/test_lcl.dir/test_lcl.cpp.o"
  "CMakeFiles/test_lcl.dir/test_lcl.cpp.o.d"
  "test_lcl"
  "test_lcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
