# Empty dependencies file for test_identifiers.
# This may be replaced when dependencies are built.
