file(REMOVE_RECURSE
  "CMakeFiles/test_identifiers.dir/test_identifiers.cpp.o"
  "CMakeFiles/test_identifiers.dir/test_identifiers.cpp.o.d"
  "test_identifiers"
  "test_identifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_identifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
