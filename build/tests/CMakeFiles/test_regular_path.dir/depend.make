# Empty dependencies file for test_regular_path.
# This may be replaced when dependencies are built.
