file(REMOVE_RECURSE
  "CMakeFiles/test_regular_path.dir/test_regular_path.cpp.o"
  "CMakeFiles/test_regular_path.dir/test_regular_path.cpp.o.d"
  "test_regular_path"
  "test_regular_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regular_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
