# Empty compiler generated dependencies file for test_pointsto_game.
# This may be replaced when dependencies are built.
