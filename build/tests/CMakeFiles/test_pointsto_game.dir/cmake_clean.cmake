file(REMOVE_RECURSE
  "CMakeFiles/test_pointsto_game.dir/test_pointsto_game.cpp.o"
  "CMakeFiles/test_pointsto_game.dir/test_pointsto_game.cpp.o.d"
  "test_pointsto_game"
  "test_pointsto_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointsto_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
