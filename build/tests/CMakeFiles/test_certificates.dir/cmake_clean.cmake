file(REMOVE_RECURSE
  "CMakeFiles/test_certificates.dir/test_certificates.cpp.o"
  "CMakeFiles/test_certificates.dir/test_certificates.cpp.o.d"
  "test_certificates"
  "test_certificates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_certificates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
