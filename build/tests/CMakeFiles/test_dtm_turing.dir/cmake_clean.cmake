file(REMOVE_RECURSE
  "CMakeFiles/test_dtm_turing.dir/test_dtm_turing.cpp.o"
  "CMakeFiles/test_dtm_turing.dir/test_dtm_turing.cpp.o.d"
  "test_dtm_turing"
  "test_dtm_turing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtm_turing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
