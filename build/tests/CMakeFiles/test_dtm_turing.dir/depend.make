# Empty dependencies file for test_dtm_turing.
# This may be replaced when dependencies are built.
