# Empty compiler generated dependencies file for test_pumping.
# This may be replaced when dependencies are built.
