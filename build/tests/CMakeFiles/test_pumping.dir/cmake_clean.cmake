file(REMOVE_RECURSE
  "CMakeFiles/test_pumping.dir/test_pumping.cpp.o"
  "CMakeFiles/test_pumping.dir/test_pumping.cpp.o.d"
  "test_pumping"
  "test_pumping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pumping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
