# Empty compiler generated dependencies file for test_cook_levin.
# This may be replaced when dependencies are built.
