file(REMOVE_RECURSE
  "CMakeFiles/test_cook_levin.dir/test_cook_levin.cpp.o"
  "CMakeFiles/test_cook_levin.dir/test_cook_levin.cpp.o.d"
  "test_cook_levin"
  "test_cook_levin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cook_levin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
