# Empty dependencies file for test_fagin.
# This may be replaced when dependencies are built.
