file(REMOVE_RECURSE
  "CMakeFiles/test_fagin.dir/test_fagin.cpp.o"
  "CMakeFiles/test_fagin.dir/test_fagin.cpp.o.d"
  "test_fagin"
  "test_fagin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fagin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
