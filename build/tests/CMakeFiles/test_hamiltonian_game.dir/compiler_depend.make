# Empty compiler generated dependencies file for test_hamiltonian_game.
# This may be replaced when dependencies are built.
