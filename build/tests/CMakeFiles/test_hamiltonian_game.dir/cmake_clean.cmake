file(REMOVE_RECURSE
  "CMakeFiles/test_hamiltonian_game.dir/test_hamiltonian_game.cpp.o"
  "CMakeFiles/test_hamiltonian_game.dir/test_hamiltonian_game.cpp.o.d"
  "test_hamiltonian_game"
  "test_hamiltonian_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hamiltonian_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
