file(REMOVE_RECURSE
  "CMakeFiles/test_pictures.dir/test_pictures.cpp.o"
  "CMakeFiles/test_pictures.dir/test_pictures.cpp.o.d"
  "test_pictures"
  "test_pictures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pictures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
