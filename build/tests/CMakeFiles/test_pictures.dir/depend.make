# Empty dependencies file for test_pictures.
# This may be replaced when dependencies are built.
