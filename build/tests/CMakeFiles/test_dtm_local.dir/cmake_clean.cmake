file(REMOVE_RECURSE
  "CMakeFiles/test_dtm_local.dir/test_dtm_local.cpp.o"
  "CMakeFiles/test_dtm_local.dir/test_dtm_local.cpp.o.d"
  "test_dtm_local"
  "test_dtm_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtm_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
