# Empty dependencies file for test_dtm_local.
# This may be replaced when dependencies are built.
