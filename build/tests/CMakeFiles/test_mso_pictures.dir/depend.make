# Empty dependencies file for test_mso_pictures.
# This may be replaced when dependencies are built.
