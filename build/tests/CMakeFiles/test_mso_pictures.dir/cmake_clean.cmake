file(REMOVE_RECURSE
  "CMakeFiles/test_mso_pictures.dir/test_mso_pictures.cpp.o"
  "CMakeFiles/test_mso_pictures.dir/test_mso_pictures.cpp.o.d"
  "test_mso_pictures"
  "test_mso_pictures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mso_pictures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
