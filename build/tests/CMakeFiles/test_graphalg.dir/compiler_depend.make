# Empty compiler generated dependencies file for test_graphalg.
# This may be replaced when dependencies are built.
