file(REMOVE_RECURSE
  "CMakeFiles/test_graphalg.dir/test_graphalg.cpp.o"
  "CMakeFiles/test_graphalg.dir/test_graphalg.cpp.o.d"
  "test_graphalg"
  "test_graphalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
