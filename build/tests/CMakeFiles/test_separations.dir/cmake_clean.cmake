file(REMOVE_RECURSE
  "CMakeFiles/test_separations.dir/test_separations.cpp.o"
  "CMakeFiles/test_separations.dir/test_separations.cpp.o.d"
  "test_separations"
  "test_separations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_separations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
