# Empty dependencies file for test_separations.
# This may be replaced when dependencies are built.
