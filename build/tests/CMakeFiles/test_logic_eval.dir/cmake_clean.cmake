file(REMOVE_RECURSE
  "CMakeFiles/test_logic_eval.dir/test_logic_eval.cpp.o"
  "CMakeFiles/test_logic_eval.dir/test_logic_eval.cpp.o.d"
  "test_logic_eval"
  "test_logic_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logic_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
