# Empty dependencies file for test_logic_eval.
# This may be replaced when dependencies are built.
