file(REMOVE_RECURSE
  "CMakeFiles/lph_machines.dir/deciders.cpp.o"
  "CMakeFiles/lph_machines.dir/deciders.cpp.o.d"
  "CMakeFiles/lph_machines.dir/formula_arbiter.cpp.o"
  "CMakeFiles/lph_machines.dir/formula_arbiter.cpp.o.d"
  "CMakeFiles/lph_machines.dir/lcl.cpp.o"
  "CMakeFiles/lph_machines.dir/lcl.cpp.o.d"
  "CMakeFiles/lph_machines.dir/regular_path.cpp.o"
  "CMakeFiles/lph_machines.dir/regular_path.cpp.o.d"
  "CMakeFiles/lph_machines.dir/turing_examples.cpp.o"
  "CMakeFiles/lph_machines.dir/turing_examples.cpp.o.d"
  "CMakeFiles/lph_machines.dir/verifiers.cpp.o"
  "CMakeFiles/lph_machines.dir/verifiers.cpp.o.d"
  "liblph_machines.a"
  "liblph_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
