# Empty compiler generated dependencies file for lph_machines.
# This may be replaced when dependencies are built.
