
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machines/deciders.cpp" "src/machines/CMakeFiles/lph_machines.dir/deciders.cpp.o" "gcc" "src/machines/CMakeFiles/lph_machines.dir/deciders.cpp.o.d"
  "/root/repo/src/machines/formula_arbiter.cpp" "src/machines/CMakeFiles/lph_machines.dir/formula_arbiter.cpp.o" "gcc" "src/machines/CMakeFiles/lph_machines.dir/formula_arbiter.cpp.o.d"
  "/root/repo/src/machines/lcl.cpp" "src/machines/CMakeFiles/lph_machines.dir/lcl.cpp.o" "gcc" "src/machines/CMakeFiles/lph_machines.dir/lcl.cpp.o.d"
  "/root/repo/src/machines/regular_path.cpp" "src/machines/CMakeFiles/lph_machines.dir/regular_path.cpp.o" "gcc" "src/machines/CMakeFiles/lph_machines.dir/regular_path.cpp.o.d"
  "/root/repo/src/machines/turing_examples.cpp" "src/machines/CMakeFiles/lph_machines.dir/turing_examples.cpp.o" "gcc" "src/machines/CMakeFiles/lph_machines.dir/turing_examples.cpp.o.d"
  "/root/repo/src/machines/verifiers.cpp" "src/machines/CMakeFiles/lph_machines.dir/verifiers.cpp.o" "gcc" "src/machines/CMakeFiles/lph_machines.dir/verifiers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dtm/CMakeFiles/lph_dtm.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/lph_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/lph_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/graphalg/CMakeFiles/lph_graphalg.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/lph_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/structure/CMakeFiles/lph_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lph_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
