file(REMOVE_RECURSE
  "liblph_machines.a"
)
