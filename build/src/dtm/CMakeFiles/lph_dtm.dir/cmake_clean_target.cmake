file(REMOVE_RECURSE
  "liblph_dtm.a"
)
