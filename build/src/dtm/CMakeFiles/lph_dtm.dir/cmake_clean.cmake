file(REMOVE_RECURSE
  "CMakeFiles/lph_dtm.dir/execution.cpp.o"
  "CMakeFiles/lph_dtm.dir/execution.cpp.o.d"
  "CMakeFiles/lph_dtm.dir/gather.cpp.o"
  "CMakeFiles/lph_dtm.dir/gather.cpp.o.d"
  "CMakeFiles/lph_dtm.dir/local.cpp.o"
  "CMakeFiles/lph_dtm.dir/local.cpp.o.d"
  "CMakeFiles/lph_dtm.dir/turing.cpp.o"
  "CMakeFiles/lph_dtm.dir/turing.cpp.o.d"
  "liblph_dtm.a"
  "liblph_dtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_dtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
