
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtm/execution.cpp" "src/dtm/CMakeFiles/lph_dtm.dir/execution.cpp.o" "gcc" "src/dtm/CMakeFiles/lph_dtm.dir/execution.cpp.o.d"
  "/root/repo/src/dtm/gather.cpp" "src/dtm/CMakeFiles/lph_dtm.dir/gather.cpp.o" "gcc" "src/dtm/CMakeFiles/lph_dtm.dir/gather.cpp.o.d"
  "/root/repo/src/dtm/local.cpp" "src/dtm/CMakeFiles/lph_dtm.dir/local.cpp.o" "gcc" "src/dtm/CMakeFiles/lph_dtm.dir/local.cpp.o.d"
  "/root/repo/src/dtm/turing.cpp" "src/dtm/CMakeFiles/lph_dtm.dir/turing.cpp.o" "gcc" "src/dtm/CMakeFiles/lph_dtm.dir/turing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lph_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
