# Empty compiler generated dependencies file for lph_dtm.
# This may be replaced when dependencies are built.
