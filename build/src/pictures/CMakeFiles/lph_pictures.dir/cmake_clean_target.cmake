file(REMOVE_RECURSE
  "liblph_pictures.a"
)
