# Empty dependencies file for lph_pictures.
# This may be replaced when dependencies are built.
