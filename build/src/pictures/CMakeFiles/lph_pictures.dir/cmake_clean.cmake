file(REMOVE_RECURSE
  "CMakeFiles/lph_pictures.dir/matz.cpp.o"
  "CMakeFiles/lph_pictures.dir/matz.cpp.o.d"
  "CMakeFiles/lph_pictures.dir/mso_pictures.cpp.o"
  "CMakeFiles/lph_pictures.dir/mso_pictures.cpp.o.d"
  "CMakeFiles/lph_pictures.dir/picture.cpp.o"
  "CMakeFiles/lph_pictures.dir/picture.cpp.o.d"
  "CMakeFiles/lph_pictures.dir/tiling.cpp.o"
  "CMakeFiles/lph_pictures.dir/tiling.cpp.o.d"
  "liblph_pictures.a"
  "liblph_pictures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_pictures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
