
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pictures/matz.cpp" "src/pictures/CMakeFiles/lph_pictures.dir/matz.cpp.o" "gcc" "src/pictures/CMakeFiles/lph_pictures.dir/matz.cpp.o.d"
  "/root/repo/src/pictures/mso_pictures.cpp" "src/pictures/CMakeFiles/lph_pictures.dir/mso_pictures.cpp.o" "gcc" "src/pictures/CMakeFiles/lph_pictures.dir/mso_pictures.cpp.o.d"
  "/root/repo/src/pictures/picture.cpp" "src/pictures/CMakeFiles/lph_pictures.dir/picture.cpp.o" "gcc" "src/pictures/CMakeFiles/lph_pictures.dir/picture.cpp.o.d"
  "/root/repo/src/pictures/tiling.cpp" "src/pictures/CMakeFiles/lph_pictures.dir/tiling.cpp.o" "gcc" "src/pictures/CMakeFiles/lph_pictures.dir/tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/structure/CMakeFiles/lph_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/lph_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lph_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
