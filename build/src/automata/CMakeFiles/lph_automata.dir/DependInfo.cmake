
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/dfa.cpp" "src/automata/CMakeFiles/lph_automata.dir/dfa.cpp.o" "gcc" "src/automata/CMakeFiles/lph_automata.dir/dfa.cpp.o.d"
  "/root/repo/src/automata/mso_words.cpp" "src/automata/CMakeFiles/lph_automata.dir/mso_words.cpp.o" "gcc" "src/automata/CMakeFiles/lph_automata.dir/mso_words.cpp.o.d"
  "/root/repo/src/automata/pumping.cpp" "src/automata/CMakeFiles/lph_automata.dir/pumping.cpp.o" "gcc" "src/automata/CMakeFiles/lph_automata.dir/pumping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/lph_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/structure/CMakeFiles/lph_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lph_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
