# Empty dependencies file for lph_automata.
# This may be replaced when dependencies are built.
