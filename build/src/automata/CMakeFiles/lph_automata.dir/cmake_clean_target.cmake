file(REMOVE_RECURSE
  "liblph_automata.a"
)
