file(REMOVE_RECURSE
  "CMakeFiles/lph_automata.dir/dfa.cpp.o"
  "CMakeFiles/lph_automata.dir/dfa.cpp.o.d"
  "CMakeFiles/lph_automata.dir/mso_words.cpp.o"
  "CMakeFiles/lph_automata.dir/mso_words.cpp.o.d"
  "CMakeFiles/lph_automata.dir/pumping.cpp.o"
  "CMakeFiles/lph_automata.dir/pumping.cpp.o.d"
  "liblph_automata.a"
  "liblph_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
