# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("graph")
subdirs("structure")
subdirs("logic")
subdirs("dtm")
subdirs("sat")
subdirs("graphalg")
subdirs("machines")
subdirs("hierarchy")
subdirs("reductions")
subdirs("pictures")
subdirs("automata")
