# Empty dependencies file for lph_structure.
# This may be replaced when dependencies are built.
