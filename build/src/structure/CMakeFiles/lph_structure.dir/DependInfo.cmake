
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/structure/graph_structure.cpp" "src/structure/CMakeFiles/lph_structure.dir/graph_structure.cpp.o" "gcc" "src/structure/CMakeFiles/lph_structure.dir/graph_structure.cpp.o.d"
  "/root/repo/src/structure/structure.cpp" "src/structure/CMakeFiles/lph_structure.dir/structure.cpp.o" "gcc" "src/structure/CMakeFiles/lph_structure.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lph_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
