file(REMOVE_RECURSE
  "liblph_structure.a"
)
