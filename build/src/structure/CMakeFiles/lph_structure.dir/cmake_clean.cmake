file(REMOVE_RECURSE
  "CMakeFiles/lph_structure.dir/graph_structure.cpp.o"
  "CMakeFiles/lph_structure.dir/graph_structure.cpp.o.d"
  "CMakeFiles/lph_structure.dir/structure.cpp.o"
  "CMakeFiles/lph_structure.dir/structure.cpp.o.d"
  "liblph_structure.a"
  "liblph_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
