
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sat/bool_formula.cpp" "src/sat/CMakeFiles/lph_sat.dir/bool_formula.cpp.o" "gcc" "src/sat/CMakeFiles/lph_sat.dir/bool_formula.cpp.o.d"
  "/root/repo/src/sat/boolean_graph.cpp" "src/sat/CMakeFiles/lph_sat.dir/boolean_graph.cpp.o" "gcc" "src/sat/CMakeFiles/lph_sat.dir/boolean_graph.cpp.o.d"
  "/root/repo/src/sat/cnf.cpp" "src/sat/CMakeFiles/lph_sat.dir/cnf.cpp.o" "gcc" "src/sat/CMakeFiles/lph_sat.dir/cnf.cpp.o.d"
  "/root/repo/src/sat/coloring_sat.cpp" "src/sat/CMakeFiles/lph_sat.dir/coloring_sat.cpp.o" "gcc" "src/sat/CMakeFiles/lph_sat.dir/coloring_sat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/graphalg/CMakeFiles/lph_graphalg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lph_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
