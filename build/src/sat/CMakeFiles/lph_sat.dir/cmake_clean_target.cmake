file(REMOVE_RECURSE
  "liblph_sat.a"
)
