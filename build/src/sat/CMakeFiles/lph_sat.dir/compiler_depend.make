# Empty compiler generated dependencies file for lph_sat.
# This may be replaced when dependencies are built.
