file(REMOVE_RECURSE
  "CMakeFiles/lph_sat.dir/bool_formula.cpp.o"
  "CMakeFiles/lph_sat.dir/bool_formula.cpp.o.d"
  "CMakeFiles/lph_sat.dir/boolean_graph.cpp.o"
  "CMakeFiles/lph_sat.dir/boolean_graph.cpp.o.d"
  "CMakeFiles/lph_sat.dir/cnf.cpp.o"
  "CMakeFiles/lph_sat.dir/cnf.cpp.o.d"
  "CMakeFiles/lph_sat.dir/coloring_sat.cpp.o"
  "CMakeFiles/lph_sat.dir/coloring_sat.cpp.o.d"
  "liblph_sat.a"
  "liblph_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
