file(REMOVE_RECURSE
  "liblph_logic.a"
)
