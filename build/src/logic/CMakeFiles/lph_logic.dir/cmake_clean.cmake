file(REMOVE_RECURSE
  "CMakeFiles/lph_logic.dir/classify.cpp.o"
  "CMakeFiles/lph_logic.dir/classify.cpp.o.d"
  "CMakeFiles/lph_logic.dir/eval.cpp.o"
  "CMakeFiles/lph_logic.dir/eval.cpp.o.d"
  "CMakeFiles/lph_logic.dir/examples.cpp.o"
  "CMakeFiles/lph_logic.dir/examples.cpp.o.d"
  "CMakeFiles/lph_logic.dir/formula.cpp.o"
  "CMakeFiles/lph_logic.dir/formula.cpp.o.d"
  "liblph_logic.a"
  "liblph_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
