# Empty compiler generated dependencies file for lph_logic.
# This may be replaced when dependencies are built.
