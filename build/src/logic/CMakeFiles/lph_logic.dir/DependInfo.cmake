
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/classify.cpp" "src/logic/CMakeFiles/lph_logic.dir/classify.cpp.o" "gcc" "src/logic/CMakeFiles/lph_logic.dir/classify.cpp.o.d"
  "/root/repo/src/logic/eval.cpp" "src/logic/CMakeFiles/lph_logic.dir/eval.cpp.o" "gcc" "src/logic/CMakeFiles/lph_logic.dir/eval.cpp.o.d"
  "/root/repo/src/logic/examples.cpp" "src/logic/CMakeFiles/lph_logic.dir/examples.cpp.o" "gcc" "src/logic/CMakeFiles/lph_logic.dir/examples.cpp.o.d"
  "/root/repo/src/logic/formula.cpp" "src/logic/CMakeFiles/lph_logic.dir/formula.cpp.o" "gcc" "src/logic/CMakeFiles/lph_logic.dir/formula.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/structure/CMakeFiles/lph_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lph_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
