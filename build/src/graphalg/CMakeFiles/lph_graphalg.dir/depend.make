# Empty dependencies file for lph_graphalg.
# This may be replaced when dependencies are built.
