
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graphalg/coloring.cpp" "src/graphalg/CMakeFiles/lph_graphalg.dir/coloring.cpp.o" "gcc" "src/graphalg/CMakeFiles/lph_graphalg.dir/coloring.cpp.o.d"
  "/root/repo/src/graphalg/eulerian.cpp" "src/graphalg/CMakeFiles/lph_graphalg.dir/eulerian.cpp.o" "gcc" "src/graphalg/CMakeFiles/lph_graphalg.dir/eulerian.cpp.o.d"
  "/root/repo/src/graphalg/hamiltonian.cpp" "src/graphalg/CMakeFiles/lph_graphalg.dir/hamiltonian.cpp.o" "gcc" "src/graphalg/CMakeFiles/lph_graphalg.dir/hamiltonian.cpp.o.d"
  "/root/repo/src/graphalg/spanning.cpp" "src/graphalg/CMakeFiles/lph_graphalg.dir/spanning.cpp.o" "gcc" "src/graphalg/CMakeFiles/lph_graphalg.dir/spanning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lph_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
