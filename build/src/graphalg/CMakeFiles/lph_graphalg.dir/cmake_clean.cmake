file(REMOVE_RECURSE
  "CMakeFiles/lph_graphalg.dir/coloring.cpp.o"
  "CMakeFiles/lph_graphalg.dir/coloring.cpp.o.d"
  "CMakeFiles/lph_graphalg.dir/eulerian.cpp.o"
  "CMakeFiles/lph_graphalg.dir/eulerian.cpp.o.d"
  "CMakeFiles/lph_graphalg.dir/hamiltonian.cpp.o"
  "CMakeFiles/lph_graphalg.dir/hamiltonian.cpp.o.d"
  "CMakeFiles/lph_graphalg.dir/spanning.cpp.o"
  "CMakeFiles/lph_graphalg.dir/spanning.cpp.o.d"
  "liblph_graphalg.a"
  "liblph_graphalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_graphalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
