file(REMOVE_RECURSE
  "liblph_graphalg.a"
)
