file(REMOVE_RECURSE
  "CMakeFiles/lph_hierarchy.dir/fagin.cpp.o"
  "CMakeFiles/lph_hierarchy.dir/fagin.cpp.o.d"
  "CMakeFiles/lph_hierarchy.dir/game.cpp.o"
  "CMakeFiles/lph_hierarchy.dir/game.cpp.o.d"
  "CMakeFiles/lph_hierarchy.dir/hamiltonian_game.cpp.o"
  "CMakeFiles/lph_hierarchy.dir/hamiltonian_game.cpp.o.d"
  "CMakeFiles/lph_hierarchy.dir/pointsto_game.cpp.o"
  "CMakeFiles/lph_hierarchy.dir/pointsto_game.cpp.o.d"
  "CMakeFiles/lph_hierarchy.dir/restrictive.cpp.o"
  "CMakeFiles/lph_hierarchy.dir/restrictive.cpp.o.d"
  "CMakeFiles/lph_hierarchy.dir/separations.cpp.o"
  "CMakeFiles/lph_hierarchy.dir/separations.cpp.o.d"
  "liblph_hierarchy.a"
  "liblph_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
