# Empty dependencies file for lph_hierarchy.
# This may be replaced when dependencies are built.
