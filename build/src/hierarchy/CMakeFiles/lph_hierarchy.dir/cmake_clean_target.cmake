file(REMOVE_RECURSE
  "liblph_hierarchy.a"
)
