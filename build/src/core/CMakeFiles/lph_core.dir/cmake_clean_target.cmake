file(REMOVE_RECURSE
  "liblph_core.a"
)
