file(REMOVE_RECURSE
  "CMakeFiles/lph_core.dir/bitstring.cpp.o"
  "CMakeFiles/lph_core.dir/bitstring.cpp.o.d"
  "liblph_core.a"
  "liblph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
