# Empty compiler generated dependencies file for lph_core.
# This may be replaced when dependencies are built.
