file(REMOVE_RECURSE
  "liblph_reductions.a"
)
