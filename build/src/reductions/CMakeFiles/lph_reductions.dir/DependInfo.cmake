
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reductions/classic_reductions.cpp" "src/reductions/CMakeFiles/lph_reductions.dir/classic_reductions.cpp.o" "gcc" "src/reductions/CMakeFiles/lph_reductions.dir/classic_reductions.cpp.o.d"
  "/root/repo/src/reductions/cluster.cpp" "src/reductions/CMakeFiles/lph_reductions.dir/cluster.cpp.o" "gcc" "src/reductions/CMakeFiles/lph_reductions.dir/cluster.cpp.o.d"
  "/root/repo/src/reductions/cook_levin.cpp" "src/reductions/CMakeFiles/lph_reductions.dir/cook_levin.cpp.o" "gcc" "src/reductions/CMakeFiles/lph_reductions.dir/cook_levin.cpp.o.d"
  "/root/repo/src/reductions/three_coloring.cpp" "src/reductions/CMakeFiles/lph_reductions.dir/three_coloring.cpp.o" "gcc" "src/reductions/CMakeFiles/lph_reductions.dir/three_coloring.cpp.o.d"
  "/root/repo/src/reductions/verify.cpp" "src/reductions/CMakeFiles/lph_reductions.dir/verify.cpp.o" "gcc" "src/reductions/CMakeFiles/lph_reductions.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machines/CMakeFiles/lph_machines.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/lph_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/dtm/CMakeFiles/lph_dtm.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/lph_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/graphalg/CMakeFiles/lph_graphalg.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/lph_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/lph_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/structure/CMakeFiles/lph_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lph_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
