file(REMOVE_RECURSE
  "CMakeFiles/lph_reductions.dir/classic_reductions.cpp.o"
  "CMakeFiles/lph_reductions.dir/classic_reductions.cpp.o.d"
  "CMakeFiles/lph_reductions.dir/cluster.cpp.o"
  "CMakeFiles/lph_reductions.dir/cluster.cpp.o.d"
  "CMakeFiles/lph_reductions.dir/cook_levin.cpp.o"
  "CMakeFiles/lph_reductions.dir/cook_levin.cpp.o.d"
  "CMakeFiles/lph_reductions.dir/three_coloring.cpp.o"
  "CMakeFiles/lph_reductions.dir/three_coloring.cpp.o.d"
  "CMakeFiles/lph_reductions.dir/verify.cpp.o"
  "CMakeFiles/lph_reductions.dir/verify.cpp.o.d"
  "liblph_reductions.a"
  "liblph_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
