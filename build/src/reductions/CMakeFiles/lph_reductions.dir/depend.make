# Empty dependencies file for lph_reductions.
# This may be replaced when dependencies are built.
