# Empty compiler generated dependencies file for lph_graph.
# This may be replaced when dependencies are built.
