file(REMOVE_RECURSE
  "CMakeFiles/lph_graph.dir/certificates.cpp.o"
  "CMakeFiles/lph_graph.dir/certificates.cpp.o.d"
  "CMakeFiles/lph_graph.dir/generators.cpp.o"
  "CMakeFiles/lph_graph.dir/generators.cpp.o.d"
  "CMakeFiles/lph_graph.dir/graph.cpp.o"
  "CMakeFiles/lph_graph.dir/graph.cpp.o.d"
  "CMakeFiles/lph_graph.dir/identifiers.cpp.o"
  "CMakeFiles/lph_graph.dir/identifiers.cpp.o.d"
  "CMakeFiles/lph_graph.dir/isomorphism.cpp.o"
  "CMakeFiles/lph_graph.dir/isomorphism.cpp.o.d"
  "CMakeFiles/lph_graph.dir/polynomial.cpp.o"
  "CMakeFiles/lph_graph.dir/polynomial.cpp.o.d"
  "CMakeFiles/lph_graph.dir/serialize.cpp.o"
  "CMakeFiles/lph_graph.dir/serialize.cpp.o.d"
  "liblph_graph.a"
  "liblph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
