file(REMOVE_RECURSE
  "liblph_graph.a"
)
