
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/certificates.cpp" "src/graph/CMakeFiles/lph_graph.dir/certificates.cpp.o" "gcc" "src/graph/CMakeFiles/lph_graph.dir/certificates.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/lph_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/lph_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/lph_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/lph_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/identifiers.cpp" "src/graph/CMakeFiles/lph_graph.dir/identifiers.cpp.o" "gcc" "src/graph/CMakeFiles/lph_graph.dir/identifiers.cpp.o.d"
  "/root/repo/src/graph/isomorphism.cpp" "src/graph/CMakeFiles/lph_graph.dir/isomorphism.cpp.o" "gcc" "src/graph/CMakeFiles/lph_graph.dir/isomorphism.cpp.o.d"
  "/root/repo/src/graph/polynomial.cpp" "src/graph/CMakeFiles/lph_graph.dir/polynomial.cpp.o" "gcc" "src/graph/CMakeFiles/lph_graph.dir/polynomial.cpp.o.d"
  "/root/repo/src/graph/serialize.cpp" "src/graph/CMakeFiles/lph_graph.dir/serialize.cpp.o" "gcc" "src/graph/CMakeFiles/lph_graph.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lph_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
