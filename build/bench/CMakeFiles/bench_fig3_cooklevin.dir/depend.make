# Empty dependencies file for bench_fig3_cooklevin.
# This may be replaced when dependencies are built.
