file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cooklevin.dir/bench_fig3_cooklevin.cpp.o"
  "CMakeFiles/bench_fig3_cooklevin.dir/bench_fig3_cooklevin.cpp.o.d"
  "bench_fig3_cooklevin"
  "bench_fig3_cooklevin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cooklevin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
