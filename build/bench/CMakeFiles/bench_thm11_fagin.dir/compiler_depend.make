# Empty compiler generated dependencies file for bench_thm11_fagin.
# This may be replaced when dependencies are built.
