file(REMOVE_RECURSE
  "CMakeFiles/bench_thm11_fagin.dir/bench_thm11_fagin.cpp.o"
  "CMakeFiles/bench_thm11_fagin.dir/bench_thm11_fagin.cpp.o.d"
  "bench_thm11_fagin"
  "bench_thm11_fagin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm11_fagin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
