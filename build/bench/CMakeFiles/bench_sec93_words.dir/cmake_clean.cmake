file(REMOVE_RECURSE
  "CMakeFiles/bench_sec93_words.dir/bench_sec93_words.cpp.o"
  "CMakeFiles/bench_sec93_words.dir/bench_sec93_words.cpp.o.d"
  "bench_sec93_words"
  "bench_sec93_words.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec93_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
