# Empty dependencies file for bench_sec93_words.
# This may be replaced when dependencies are built.
