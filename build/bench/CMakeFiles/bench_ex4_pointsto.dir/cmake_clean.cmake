file(REMOVE_RECURSE
  "CMakeFiles/bench_ex4_pointsto.dir/bench_ex4_pointsto.cpp.o"
  "CMakeFiles/bench_ex4_pointsto.dir/bench_ex4_pointsto.cpp.o.d"
  "bench_ex4_pointsto"
  "bench_ex4_pointsto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex4_pointsto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
