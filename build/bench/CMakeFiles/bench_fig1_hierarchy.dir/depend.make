# Empty dependencies file for bench_fig1_hierarchy.
# This may be replaced when dependencies are built.
