# Empty dependencies file for bench_fig9_cohamiltonian.
# This may be replaced when dependencies are built.
