file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cohamiltonian.dir/bench_fig9_cohamiltonian.cpp.o"
  "CMakeFiles/bench_fig9_cohamiltonian.dir/bench_fig9_cohamiltonian.cpp.o.d"
  "bench_fig9_cohamiltonian"
  "bench_fig9_cohamiltonian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cohamiltonian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
