# Empty dependencies file for bench_prop21_separation.
# This may be replaced when dependencies are built.
