file(REMOVE_RECURSE
  "CMakeFiles/bench_prop21_separation.dir/bench_prop21_separation.cpp.o"
  "CMakeFiles/bench_prop21_separation.dir/bench_prop21_separation.cpp.o.d"
  "bench_prop21_separation"
  "bench_prop21_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop21_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
