
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ex5_games.cpp" "bench/CMakeFiles/bench_ex5_games.dir/bench_ex5_games.cpp.o" "gcc" "bench/CMakeFiles/bench_ex5_games.dir/bench_ex5_games.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/structure/CMakeFiles/lph_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/lph_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/dtm/CMakeFiles/lph_dtm.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/lph_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/graphalg/CMakeFiles/lph_graphalg.dir/DependInfo.cmake"
  "/root/repo/build/src/machines/CMakeFiles/lph_machines.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/lph_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/reductions/CMakeFiles/lph_reductions.dir/DependInfo.cmake"
  "/root/repo/build/src/pictures/CMakeFiles/lph_pictures.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/lph_automata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
