file(REMOVE_RECURSE
  "CMakeFiles/bench_ex5_games.dir/bench_ex5_games.cpp.o"
  "CMakeFiles/bench_ex5_games.dir/bench_ex5_games.cpp.o.d"
  "bench_ex5_games"
  "bench_ex5_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex5_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
