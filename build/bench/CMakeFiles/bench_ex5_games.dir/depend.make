# Empty dependencies file for bench_ex5_games.
# This may be replaced when dependencies are built.
