file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_eulerian.dir/bench_fig7_eulerian.cpp.o"
  "CMakeFiles/bench_fig7_eulerian.dir/bench_fig7_eulerian.cpp.o.d"
  "bench_fig7_eulerian"
  "bench_fig7_eulerian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_eulerian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
