file(REMOVE_RECURSE
  "CMakeFiles/bench_prop23_pigeonhole.dir/bench_prop23_pigeonhole.cpp.o"
  "CMakeFiles/bench_prop23_pigeonhole.dir/bench_prop23_pigeonhole.cpp.o.d"
  "bench_prop23_pigeonhole"
  "bench_prop23_pigeonhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop23_pigeonhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
