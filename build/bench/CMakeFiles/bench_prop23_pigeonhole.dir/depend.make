# Empty dependencies file for bench_prop23_pigeonhole.
# This may be replaced when dependencies are built.
