file(REMOVE_RECURSE
  "CMakeFiles/bench_dtm_model.dir/bench_dtm_model.cpp.o"
  "CMakeFiles/bench_dtm_model.dir/bench_dtm_model.cpp.o.d"
  "bench_dtm_model"
  "bench_dtm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dtm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
