# Empty dependencies file for bench_dtm_model.
# This may be replaced when dependencies are built.
