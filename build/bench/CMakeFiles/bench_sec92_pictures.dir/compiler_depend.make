# Empty compiler generated dependencies file for bench_sec92_pictures.
# This may be replaced when dependencies are built.
