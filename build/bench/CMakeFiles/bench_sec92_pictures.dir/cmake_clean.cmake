file(REMOVE_RECURSE
  "CMakeFiles/bench_sec92_pictures.dir/bench_sec92_pictures.cpp.o"
  "CMakeFiles/bench_sec92_pictures.dir/bench_sec92_pictures.cpp.o.d"
  "bench_sec92_pictures"
  "bench_sec92_pictures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec92_pictures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
