file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hamiltonian.dir/bench_fig2_hamiltonian.cpp.o"
  "CMakeFiles/bench_fig2_hamiltonian.dir/bench_fig2_hamiltonian.cpp.o.d"
  "bench_fig2_hamiltonian"
  "bench_fig2_hamiltonian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hamiltonian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
