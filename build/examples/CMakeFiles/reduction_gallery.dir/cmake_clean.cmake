file(REMOVE_RECURSE
  "CMakeFiles/reduction_gallery.dir/reduction_gallery.cpp.o"
  "CMakeFiles/reduction_gallery.dir/reduction_gallery.cpp.o.d"
  "reduction_gallery"
  "reduction_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
