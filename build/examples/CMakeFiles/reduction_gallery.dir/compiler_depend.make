# Empty compiler generated dependencies file for reduction_gallery.
# This may be replaced when dependencies are built.
