file(REMOVE_RECURSE
  "CMakeFiles/lph_decide.dir/lph_decide.cpp.o"
  "CMakeFiles/lph_decide.dir/lph_decide.cpp.o.d"
  "lph_decide"
  "lph_decide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lph_decide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
