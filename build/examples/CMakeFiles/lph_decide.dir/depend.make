# Empty dependencies file for lph_decide.
# This may be replaced when dependencies are built.
