file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_separations.dir/hierarchy_separations.cpp.o"
  "CMakeFiles/hierarchy_separations.dir/hierarchy_separations.cpp.o.d"
  "hierarchy_separations"
  "hierarchy_separations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_separations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
