# Empty compiler generated dependencies file for hierarchy_separations.
# This may be replaced when dependencies are built.
