file(REMOVE_RECURSE
  "CMakeFiles/alternation_games.dir/alternation_games.cpp.o"
  "CMakeFiles/alternation_games.dir/alternation_games.cpp.o.d"
  "alternation_games"
  "alternation_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alternation_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
