# Empty dependencies file for alternation_games.
# This may be replaced when dependencies are built.
