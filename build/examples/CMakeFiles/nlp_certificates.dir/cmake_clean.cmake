file(REMOVE_RECURSE
  "CMakeFiles/nlp_certificates.dir/nlp_certificates.cpp.o"
  "CMakeFiles/nlp_certificates.dir/nlp_certificates.cpp.o.d"
  "nlp_certificates"
  "nlp_certificates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_certificates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
