# Empty compiler generated dependencies file for nlp_certificates.
# This may be replaced when dependencies are built.
