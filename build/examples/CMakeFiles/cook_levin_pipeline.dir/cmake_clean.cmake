file(REMOVE_RECURSE
  "CMakeFiles/cook_levin_pipeline.dir/cook_levin_pipeline.cpp.o"
  "CMakeFiles/cook_levin_pipeline.dir/cook_levin_pipeline.cpp.o.d"
  "cook_levin_pipeline"
  "cook_levin_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cook_levin_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
