# Empty dependencies file for cook_levin_pipeline.
# This may be replaced when dependencies are built.
