# Empty dependencies file for pictures_and_tilings.
# This may be replaced when dependencies are built.
