file(REMOVE_RECURSE
  "CMakeFiles/pictures_and_tilings.dir/pictures_and_tilings.cpp.o"
  "CMakeFiles/pictures_and_tilings.dir/pictures_and_tilings.cpp.o.d"
  "pictures_and_tilings"
  "pictures_and_tilings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pictures_and_tilings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
