// The separation experiments of Section 9.1, run live:
//   * Proposition 21 (LP < NLP): a candidate LP decider for 2-COLORABLE
//     produces bit-identical transcripts on an odd cycle and its doubled
//     (2-colorable) twin under replicated identifiers.
//   * Proposition 23 (coLP vs NLP): bounded-certificate verifiers for
//     NOT-ALL-SELECTED fail on cycles — either they reject a long
//     yes-instance (incompleteness) or the pigeonhole splice makes them
//     accept an all-selected cycle (unsoundness).

#include "hierarchy/separations.hpp"

#include <iostream>

using namespace lph;

int main() {
    std::cout << "--- Proposition 21: symmetry breaking ---\n";
    for (std::size_t n : {9u, 15u, 21u}) {
        const LocalBipartiteDecider decider(1);
        const SymmetryExperiment e = run_prop21_experiment(decider, n);
        std::cout << "odd cycle C" << n << ": bipartite=" << e.g_bipartite
                  << "  doubled C" << 2 * n << ": bipartite=" << e.g2_bipartite
                  << "  | decider verdicts identical: " << e.transcripts_match
                  << "  (accepted " << e.g_accepted << "/" << e.g2_accepted
                  << ")\n";
    }

    std::cout << "\n--- Proposition 23, horn 1: bounded distance counters are "
                 "incomplete ---\n";
    for (int bits : {2, 3}) {
        for (std::size_t len : {12u, 24u, 48u}) {
            const SpliceExperiment e = run_prop23_splice(
                BoundedDistanceVerifier(bits),
                [bits](const LabeledGraph& g, const IdentifierAssignment&) {
                    return distance_certificates(g, bits);
                },
                len, /*id_period=*/12, /*window_radius=*/1);
            std::cout << "bits=" << bits << " len=" << len
                      << ": yes-instance accepted: " << e.original_accepted
                      << (e.original_accepted ? "" : "   <- incompleteness")
                      << "\n";
        }
    }

    std::cout << "\n--- Proposition 23, horn 2: the pigeonhole splice defeats "
                 "pointer chains ---\n";
    for (std::size_t len : {45u, 90u, 180u}) {
        const SpliceExperiment e = run_prop23_splice(
            PointerChainVerifier{},
            [](const LabeledGraph& g, const IdentifierAssignment& id) {
                return pointer_certificates(g, id);
            },
            len, /*id_period=*/9, /*window_radius=*/2);
        std::cout << "len=" << len << ": yes accepted=" << e.original_accepted
                  << "  window pair found=" << e.window_pair_found
                  << "  spliced length=" << e.spliced_length
                  << "  spliced all-selected=" << e.spliced_all_selected
                  << "  spliced accepted=" << e.spliced_accepted
                  << (e.spliced_accepted ? "   <- unsoundness" : "") << "\n";
    }
    return 0;
}
