// NLP in action (Example 3 / Theorem 20): Eve proves 3-colorability by
// certificate.  The certificate game engine searches Eve's moves, the
// distributed verifier arbitrates, and the Sigma_1^LFO formula provides the
// logic-side reference (Theorem 11).

#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "hierarchy/fagin.hpp"
#include "hierarchy/game.hpp"
#include "logic/examples.hpp"
#include "machines/verifiers.hpp"

#include <iostream>

using namespace lph;

namespace {

class ColorDomain : public CertificateDomain {
public:
    explicit ColorDomain(const ColoringVerifier& verifier) {
        for (int c = 0; c < verifier.k(); ++c) {
            options_.push_back(verifier.encode_color(c));
        }
    }
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

void demo(const LabeledGraph& g, const std::string& name) {
    const auto id = make_global_ids(g);
    const ColoringVerifier verifier(3);
    const ColorDomain domain(verifier);

    GameSpec spec;
    spec.machine = &verifier;
    spec.layers = {&domain};
    spec.starts_existential = true;

    // One table build shared by the tree-size preview and the solve.
    const GameTables tables(spec, g, id);

    std::cout << "=== " << name << " (" << g.num_nodes() << " nodes, "
              << g.num_edges() << " edges) ===\n";
    std::cout << "certificate game tree size: " << game_tree_size(tables)
              << "\n";

    const GameResult result = play_game(spec, tables, g, id);
    std::cout << "Eve wins (graph is 3-colorable): " << result.accepted
              << "  [verifier runs: " << result.machine_runs << "]\n";
    if (result.witness.has_value()) {
        std::cout << "Eve's winning certificates (colors):";
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
            std::cout << " " << u << ":" << verifier.decode_color((*result.witness)(u));
        }
        std::cout << "\n";
    }

    // Cross-checks: backtracking search and the Sigma_1^LFO formula.
    std::cout << "backtracking search:  " << is_k_colorable(g, 3) << "\n";
    if (g.num_nodes() <= 6) {
        FaginOptions options;
        std::cout << "Sigma_1^LFO formula:  "
                  << eval_sentence_on_graph(paper_formulas::three_colorable(), g,
                                            options)
                  << "\n";
    }
    std::cout << "\n";
}

} // namespace

int main() {
    demo(cycle_graph(5, ""), "C5 (odd cycle)");
    demo(complete_graph(4, ""), "K4 (needs 4 colors)");
    Rng rng(7);
    demo(random_connected_graph(6, 3, rng, ""), "random connected graph");
    return 0;
}
