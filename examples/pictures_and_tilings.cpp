// Section 9.2 machinery, live: tiling systems recognizing the square and the
// binary-counter (Matz level 1) picture languages, and the picture -> graph
// encoding that transports the infiniteness argument from pictures to the
// local-polynomial hierarchy.

#include "pictures/matz.hpp"
#include "pictures/picture.hpp"
#include "pictures/tiling.hpp"

#include <iostream>
#include <limits>

using namespace lph;

int main() {
    std::cout << "--- the diagonal tiling system (squares) ---\n";
    const TilingSystem squares = square_tiling_system();
    std::cout << "tiles: " << squares.num_tiles() << "\n";
    for (std::size_t m = 1; m <= 5; ++m) {
        for (std::size_t n = 1; n <= 5; ++n) {
            std::cout << (squares.recognizes(blank_picture(m, n)) ? "X" : ".");
        }
        std::cout << "\n";
    }

    std::cout << "\n--- the binary counter system (width = 2^height, Matz "
                 "level 1) ---\n";
    const TilingSystem counter = binary_counter_tiling_system();
    for (std::size_t m = 1; m <= 4; ++m) {
        std::cout << "height " << m << ": accepted widths:";
        for (std::size_t n = 1; n <= 20; ++n) {
            if (counter.recognizes(blank_picture(m, n))) {
                std::cout << " " << n;
            }
        }
        std::cout << "   (expected: " << iterated_exp(1, m) << ")\n";
    }

    // Show the hidden counter of a recognized picture.
    const Picture p = blank_picture(3, 8);
    const auto preimage = counter.find_preimage(p);
    std::cout << "\npreimage of the blank 3x8 picture (bit of each cell):\n";
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
            std::cout << (*preimage)[i * 8 + j] / 2;
        }
        std::cout << "\n";
    }
    std::cout << "(columns count 0..7 in binary, LSB at the bottom)\n";

    std::cout << "\n--- picture -> graph encoding (Section 9.2.2) ---\n";
    Picture q(2, 3, 1);
    q.set(0, 1, "1");
    q.set(1, 2, "1");
    const LabeledGraph g = picture_to_graph(q);
    std::cout << "picture:\n" << q.to_string();
    std::cout << "encoded graph: " << g.num_nodes() << " nodes, " << g.num_edges()
              << " edges; labels carry mod-3 coordinates + content\n";
    const auto back = graph_to_picture(g, 1);
    std::cout << "decodes back identically: " << (back.has_value() && *back == q)
              << "\n";

    std::cout << "\n--- the Matz scale ---\n";
    for (int level = 1; level <= 3; ++level) {
        std::cout << "level " << level << ": widths for heights 1..4:";
        for (std::uint64_t m = 1; m <= 4; ++m) {
            const auto w = iterated_exp(level, m);
            if (w == std::numeric_limits<std::uint64_t>::max()) {
                std::cout << " overflow";
            } else {
                std::cout << " " << w;
            }
        }
        std::cout << "\n";
    }
    return 0;
}
