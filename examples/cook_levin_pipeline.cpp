// The distributed Cook-Levin pipeline (Theorems 19 and 20, Figure 3):
//   Sigma_1^LFO sentence  ->  SAT-GRAPH  ->  3-SAT-GRAPH  ->  3-COLORABLE.
// Every arrow is a local-polynomial reduction executed as a distributed
// machine; satisfiability is cross-checked with the DPLL solver and
// colorability with a DPLL encoding of proper coloring.

#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "logic/examples.hpp"
#include "reductions/cook_levin.hpp"
#include "reductions/three_coloring.hpp"
#include "sat/coloring_sat.hpp"

#include <iostream>

using namespace lph;

namespace {

void run_pipeline(const Formula& sentence, const LabeledGraph& g,
                  const std::string& title, bool expected, bool run_coloring) {
    std::cout << "=== " << title << " ===\n";
    const CookLevinReduction cook(sentence);
    const auto id = make_global_ids(g);

    // Step 1: Theorem 19 — to a Boolean graph.
    const ReducedGraph step1 = apply_reduction(cook, g, id);
    const BooleanGraph bg = BooleanGraph::decode(step1.graph);
    std::size_t total_size = 0;
    for (NodeId u = 0; u < bg.num_nodes(); ++u) {
        total_size += bool_size(bg.formula(u));
    }
    std::cout << "SAT-GRAPH: " << bg.num_nodes() << " nodes, total formula size "
              << total_size << ", satisfiable: " << is_sat_graph(bg) << "\n";

    // Step 2: Tseytin per node — to a 3-CNF Boolean graph.
    const SatGraphTo3Sat to3sat;
    const ReducedGraph step2 =
        apply_reduction(to3sat, step1.graph, make_global_ids(step1.graph));
    const BooleanGraph bg3 = BooleanGraph::decode(step2.graph);
    std::cout << "3-SAT-GRAPH: is 3-CNF: " << bg3.is_3cnf_graph()
              << ", satisfiable: " << is_sat_graph(bg3) << "\n";

    if (run_coloring) {
        // Step 3: Theorem 20 — to a coloring instance.  Satisfiable inputs
        // are certified with the constructive coloring of the completeness
        // proof; unsatisfiable ones are refuted by search when small.
        const ThreeSatTo3Colorable to3col;
        const ReducedGraph step3 =
            apply_reduction(to3col, step2.graph, make_global_ids(step2.graph));
        std::cout << "3-COLORABLE instance: " << step3.graph.num_nodes()
                  << " nodes, " << step3.graph.num_edges() << " edges\n";
        const auto vals = find_graph_valuation(bg3);
        bool colorable = false;
        if (vals.has_value()) {
            const auto coloring = construct_gadget_coloring(step3, bg3, *vals);
            colorable = coloring.has_value() &&
                        verify_coloring(step3.graph, *coloring, 3);
            std::cout << "  constructive 3-coloring verified: " << colorable
                      << "\n";
        } else if (step3.graph.num_nodes() <= 64) {
            colorable = is_k_colorable_dsatur(step3.graph, 3);
            std::cout << "  exhaustive search says 3-colorable: " << colorable
                      << "\n";
        } else {
            std::cout << "  (non-colorability too large to refute by search)\n";
            colorable = false;
        }
        std::cout << "  pipeline faithful: "
                  << (colorable == expected ? "yes" : "NO - BUG") << "\n";
    } else {
        std::cout << "  (coloring step skipped at this size)\n";
    }
    std::cout << "\n";
}

} // namespace

int main() {
    // The classical special case (Remark 13): single-node graphs are strings,
    // and the pipeline is exactly Cook-Levin + the textbook 3-coloring
    // reduction.
    const Formula selected_sentence = fl::exists_so(
        "X", 1, paper_formulas::forall_node("x", paper_formulas::is_selected("x")));
    run_pipeline(selected_sentence, single_node_graph("1"),
                 "single node, label 1 (yes-instance)", true, true);
    run_pipeline(selected_sentence, single_node_graph("0"),
                 "single node, label 0 (no-instance)", false, true);

    // Genuinely distributed instances: 2-COLORABLE on a path versus a
    // triangle.
    run_pipeline(paper_formulas::k_colorable(2), path_graph(2, ""),
                 "P2 with 2-COLORABLE sentence (yes-instance)", true, true);
    run_pipeline(paper_formulas::k_colorable(2), complete_graph(3, ""),
                 "K3 with 2-COLORABLE sentence (no-instance)", false, true);
    return 0;
}
