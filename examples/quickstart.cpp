// Quickstart: build a labeled graph, assign locally unique identifiers, and
// decide ALL-SELECTED three ways — with a tape-level distributed Turing
// machine, with a local-algorithm machine, and by evaluating the paper's
// LFO formula on the graph's structural representation.
//
// This exercises the core pipeline of the library: LabeledGraph ->
// IdentifierAssignment -> run_turing / run_local -> logic evaluation.

#include "dtm/local.hpp"
#include "dtm/turing.hpp"
#include "graph/generators.hpp"
#include "logic/examples.hpp"
#include "logic/eval.hpp"
#include "machines/deciders.hpp"
#include "machines/turing_examples.hpp"
#include "structure/graph_structure.hpp"

#include <iostream>

using namespace lph;

int main() {
    // A 6-cycle where every node is "selected" (label "1") except one.
    LabeledGraph g = cycle_graph(6, "1");
    g.set_label(3, "0");

    std::cout << "Input graph (DOT):\n" << g.to_dot("quickstart") << "\n";

    // Small 1-locally-unique identifiers (Remark 1 of the paper).
    const IdentifierAssignment id = make_small_local_ids(g, 3);
    std::cout << "Identifiers:";
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        std::cout << " " << u << ":" << id(u);
    }
    std::cout << "\n\n";

    // 1. The tape-level distributed Turing machine (Section 4).
    const ExecutionResult turing = run_turing(make_all_selected_turing(), g, id);
    std::cout << "Tape-level machine:   accepted=" << turing.accepted
              << "  rounds=" << turing.rounds << "  steps=" << turing.total_steps
              << "\n";

    // 2. The local-algorithm machine with metered step time.
    const ExecutionResult local = run_local(AllSelectedDecider{}, g, id);
    std::cout << "Local machine:        accepted=" << local.accepted
              << "  rounds=" << local.rounds << "  steps=" << local.total_steps
              << "\n";
    std::cout << "Per-node verdicts:   ";
    for (const auto& out : local.outputs) {
        std::cout << " " << (out == "1" ? "accept" : "reject");
    }
    std::cout << "\n";

    // 3. The LFO formula of Example 2, evaluated on $G.
    const bool formula = satisfies(GraphStructure(g).structure(),
                                   paper_formulas::all_selected());
    std::cout << "Formula (Example 2):  satisfied=" << formula << "\n\n";

    // Flip the label back and watch all three flip to acceptance.
    g.set_label(3, "1");
    std::cout << "After selecting node 3:\n";
    std::cout << "  tape-level: " << run_turing(make_all_selected_turing(), g, id).accepted
              << "\n  local:      " << run_local(AllSelectedDecider{}, g, id).accepted
              << "\n  formula:    "
              << satisfies(GraphStructure(g).structure(),
                           paper_formulas::all_selected())
              << "\n";
    return 0;
}
