// The fault model in action: a deterministic, seed-replayable adversary
// crashes nodes and mangles messages while the runner degrades gracefully and
// reports every incident as a structured RunFault instead of aborting.  The
// same taxonomy covers out-of-model inputs (clashing identifiers, malformed
// certificates) and resource-guard violations.

#include "dtm/faults.hpp"
#include "dtm/local.hpp"
#include "graph/generators.hpp"
#include "graphalg/eulerian.hpp"
#include "machines/deciders.hpp"

#include <iostream>

using namespace lph;

namespace {

void print_result(const char* title, const ExecutionResult& result) {
    std::cout << title << ": accepted = " << result.accepted
              << ", completed = " << result.completed
              << ", error = " << to_string(result.error)
              << ", faults recorded = " << result.faults.size() << "\n";
    for (std::size_t i = 0; i < result.faults.size() && i < 4; ++i) {
        std::cout << "    " << result.faults[i].to_string() << "\n";
    }
    if (result.faults.size() > 4) {
        std::cout << "    ... and " << result.faults.size() - 4 << " more\n";
    }
}

} // namespace

int main() {
    const LabeledGraph g = cycle_graph(12, "1");
    const auto id = make_global_ids(g);
    const EulerianDecider decider;

    std::cout << "--- A clean run first ---\n";
    print_result("no adversary", run_local(decider, g, id));

    std::cout << "\n--- Crash-stops and message faults, seed-replayable ---\n";
    FaultPlan plan;
    plan.seed = 2024;
    plan.crash_prob = 0.1;
    plan.drop_prob = 0.2;
    plan.corrupt_prob = 0.1;

    ExecutionOptions tolerant;
    tolerant.on_violation = FaultPolicy::Record;
    tolerant.faults = &plan;

    const auto faulted = run_local(decider, g, id, tolerant);
    print_result("seed 2024", faulted);
    const auto replay = run_local(decider, g, id, tolerant);
    std::cout << "replay of seed 2024 is identical: "
              << (faulted.outputs == replay.outputs &&
                  faulted.faults.size() == replay.faults.size())
              << "\n";

    std::cout << "\n--- In-model adversary: any valid identifier assignment ---\n";
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto ids = adversarial_local_ids(g, decider.id_radius(), seed);
        std::cout << "adversarial ids (seed " << seed
                  << "): accepted = " << run_local(decider, g, ids).accepted
                  << " (oracle says " << is_eulerian(g) << ")\n";
    }

    std::cout << "\n--- Out-of-model adversary: clashing identifiers ---\n";
    const auto clashed = clash_identifiers(g, id, 1, /*seed=*/7, /*clash_prob=*/0.5);
    print_result("clashed ids", run_local(decider, g, clashed, tolerant));

    std::cout << "\n--- Resource guards with partial results ---\n";
    ExecutionOptions capped = tolerant;
    capped.faults = nullptr;
    capped.max_total_message_bytes = 64;
    print_result("byte cap 64", run_local(decider, g, id, capped));

    return 0;
}
