// Example 4 and Example 5, played for real: the PointsTo game with Eve's
// constructive strategies (spanning forests toward witnesses, forced
// charges), plus the LCL layer showing LCL subseteq LP on maximal
// independent sets.

#include "graph/generators.hpp"
#include "graphalg/coloring.hpp"
#include "graphalg/hamiltonian.hpp"
#include "hierarchy/hamiltonian_game.hpp"
#include "hierarchy/pointsto_game.hpp"
#include "machines/lcl.hpp"

#include <iostream>

using namespace lph;

int main() {
    std::cout << "--- Example 4: NOT-ALL-SELECTED as the Sigma_3 PointsTo game ---\n";
    const NodePredicate unselected = [](const LabeledGraph& h, NodeId u) {
        return h.label(u) != "1";
    };

    // The full Exists-P Forall-X game on a tiny instance, with the built-in
    // cross-check between the analytic forest criterion and the literal
    // Forall-X replay.
    LabeledGraph tiny = cycle_graph(4, "1");
    tiny.set_label(2, "0");
    const auto game = play_points_to_game(tiny, unselected);
    std::cout << "C4 with one unselected node: Eve wins = " << game.eve_wins
              << "  (P assignments tried: " << game.parent_assignments_tried
              << ", Adam moves replayed: " << game.adam_moves_tried << ")\n";
    if (game.winning_parents.has_value()) {
        std::cout << "  her winning pointers:";
        for (NodeId u = 0; u < tiny.num_nodes(); ++u) {
            std::cout << " " << u << "->" << (*game.winning_parents)[u];
        }
        std::cout << "\n";
    }

    // Her constructive strategy scales to hundreds of nodes.
    for (std::size_t n : {50u, 200u, 1000u}) {
        LabeledGraph big = cycle_graph(n, "1");
        std::cout << "C" << n << " all selected:    Eve wins = "
                  << exists_unselected_by_game(big) << "\n";
        big.set_label(n / 3, "0");
        std::cout << "C" << n << " one unselected:  Eve wins = "
                  << exists_unselected_by_game(big) << "\n";
    }

    std::cout << "\n--- Example 5: NON-3-COLORABLE as the Pi-side game ---\n";
    for (const auto& [name, g] :
         {std::make_pair(std::string("C5"), cycle_graph(5, "")),
          std::make_pair(std::string("K4"), complete_graph(4, ""))}) {
        const auto result = non_three_colorable_by_game(g);
        std::cout << name << ": Eve proves non-3-colorability = "
                  << result.non_colorable << "  (Adam proposals checked: "
                  << result.adam_colorings_tried
                  << ", search says 3-colorable: " << is_k_colorable(g, 3)
                  << ")\n";
    }

    std::cout << "\n--- Examples 6/7: HAMILTONIAN as the Sigma_5 game ---\n";
    for (const auto& [name, g] :
         {std::make_pair(std::string("C6"), cycle_graph(6, "")),
          std::make_pair(std::string("K4"), complete_graph(4, "")),
          std::make_pair(std::string("P4"), path_graph(4, "")),
          std::make_pair(std::string("3x3 grid"), grid_graph(3, 3, ""))}) {
        const auto result = hamiltonian_game(g);
        std::cout << name << ": Eve wins = " << result.eve_wins
                  << "  (2-factors examined: " << result.two_factors_tried
                  << ", search says Hamiltonian: " << is_hamiltonian(g) << ")\n";
    }
    {
        const auto result = non_hamiltonian_game(star_graph(5, ""));
        std::cout << "star5, Pi_4 NON-HAMILTONIAN game: Eve wins = "
                  << result.eve_wins << "  (Adam subgraphs: "
                  << result.adam_subgraphs_tried << ")\n";
    }

    std::cout << "\n--- LCL subseteq LP: maximal independent set, decided "
                 "distributedly ---\n";
    const LclDecider mis(lcl_maximal_independent_set());
    LabeledGraph path = path_graph(7, "0");
    path.set_label(1, "1");
    path.set_label(4, "1");
    std::cout << "path with selection {1,4}: accepted = "
              << run_local(mis, path, make_global_ids(path)).accepted
              << " (node 6 has no selected neighbor)\n";
    path.set_label(6, "1");
    std::cout << "path with selection {1,4,6}: accepted = "
              << run_local(mis, path, make_global_ids(path)).accepted << "\n";
    return 0;
}
