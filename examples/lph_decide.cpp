// lph_decide: a small command-line front end.  Reads a graph in the
// src/graph/serialize.hpp text format from a file (or stdin with "-") and
// runs one of the library's deciders/verifiers/games on it.
//
// Usage:
//   lph_decide <property> <graph-file>
//
// Properties:
//   all-selected       LP decider (Remark 14)
//   eulerian           LP decider (Prop. 15)
//   2-colorable        Sigma_1 certificate game (Example 3)
//   3-colorable        Sigma_1 certificate game (Example 3)
//   not-all-selected   Sigma_3 PointsTo game, constructive (Example 4)
//   hamiltonian        Sigma_5 two-factor game (Example 6, small graphs)
//
// Exit status: 0 = property holds, 1 = it does not, 2 = usage/parse error.

#include "graph/serialize.hpp"
#include "hierarchy/game.hpp"
#include "hierarchy/hamiltonian_game.hpp"
#include "hierarchy/pointsto_game.hpp"
#include "machines/deciders.hpp"
#include "machines/verifiers.hpp"

#include <fstream>
#include <iostream>

using namespace lph;

namespace {

class ColorDomain : public CertificateDomain {
public:
    explicit ColorDomain(const ColoringVerifier& verifier) {
        for (int c = 0; c < verifier.k(); ++c) {
            options_.push_back(verifier.encode_color(c));
        }
    }
    std::vector<BitString> options(const LabeledGraph&, const IdentifierAssignment&,
                                   NodeId) const override {
        return options_;
    }

private:
    std::vector<BitString> options_;
};

int decide(const std::string& property, const LabeledGraph& g) {
    const auto id = make_global_ids(g);
    if (property == "all-selected") {
        return run_local(AllSelectedDecider{}, g, id).accepted ? 0 : 1;
    }
    if (property == "eulerian") {
        return run_local(EulerianDecider{}, g, id).accepted ? 0 : 1;
    }
    if (property == "2-colorable" || property == "3-colorable") {
        const ColoringVerifier verifier(property[0] == '2' ? 2 : 3);
        const ColorDomain domain(verifier);
        return find_accepting_certificate(verifier, domain, g, id).has_value() ? 0
                                                                               : 1;
    }
    if (property == "not-all-selected") {
        return exists_unselected_by_game(g) ? 0 : 1;
    }
    if (property == "hamiltonian") {
        return hamiltonian_game(g).eve_wins ? 0 : 1;
    }
    std::cerr << "unknown property '" << property << "'\n";
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    if (argc != 3) {
        std::cerr << "usage: lph_decide <property> <graph-file|->\n"
                  << "properties: all-selected eulerian 2-colorable "
                     "3-colorable not-all-selected hamiltonian\n";
        return 2;
    }
    try {
        LabeledGraph g;
        if (std::string(argv[2]) == "-") {
            g = read_graph(std::cin);
        } else {
            std::ifstream file(argv[2]);
            if (!file) {
                std::cerr << "cannot open " << argv[2] << "\n";
                return 2;
            }
            g = read_graph(file);
        }
        g.validate();
        const int verdict = decide(argv[1], g);
        if (verdict <= 1) {
            std::cout << argv[1] << ": " << (verdict == 0 ? "yes" : "no") << "\n";
        }
        return verdict;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}
