// The reduction gallery: the three classic local-polynomial reductions of
// Section 8 applied to a small labeled graph, reproducing Figures 2, 7,
// and 9.  Each reduction is executed as a genuine distributed machine whose
// per-node outputs (cluster encodings) are then assembled into G'.

#include "graph/generators.hpp"
#include "graphalg/eulerian.hpp"
#include "graphalg/hamiltonian.hpp"
#include "reductions/classic_reductions.hpp"
#include "reductions/verify.hpp"

#include <iostream>

using namespace lph;

namespace {

bool all_selected(const LabeledGraph& g) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.label(u) != "1") {
            return false;
        }
    }
    return true;
}

void show(const std::string& title, const ReductionMachine& reduction,
          const LabeledGraph& g, const PropertyOracle& source,
          const PropertyOracle& target) {
    const auto id = make_global_ids(g);
    const ReductionCheck check = check_reduction(reduction, g, id, source, target);
    std::cout << "=== " << title << " ===\n"
              << "  input:  " << check.input_nodes << " nodes\n"
              << "  output: " << check.output_nodes << " nodes, "
              << check.output_edges << " edges\n"
              << "  cluster map valid:      " << check.cluster_map_ok << "\n"
              << "  output connected:       " << check.output_connected << "\n"
              << "  G in L:                 " << check.source_member << "\n"
              << "  G' in L':               " << check.target_member << "\n"
              << "  equivalence holds:      " << check.equivalence_holds << "\n"
              << "  distributed step count: " << check.reduction_steps << "\n\n";
}

} // namespace

int main() {
    // The Figure 2/7/9 style instance: a 4-node graph with one unselected
    // node.
    LabeledGraph g;
    g.add_node("1");
    g.add_node("1");
    g.add_node("0"); // the u2 of Figure 2
    g.add_node("1");
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 0);
    g.add_edge(0, 2);

    std::cout << "Input graph G:\n" << g.to_dot("G") << "\n";

    const auto eulerian_oracle = [](const LabeledGraph& h) { return is_eulerian(h); };
    const auto hamiltonian_oracle = [](const LabeledGraph& h) {
        return is_hamiltonian(h);
    };

    show("ALL-SELECTED -> EULERIAN  (Prop. 15, Fig. 7)", AllSelectedToEulerian{}, g,
         all_selected, eulerian_oracle);
    show("ALL-SELECTED -> HAMILTONIAN  (Prop. 16, Fig. 2)",
         AllSelectedToHamiltonian{}, g, all_selected, hamiltonian_oracle);
    show("NOT-ALL-SELECTED -> HAMILTONIAN  (Prop. 17, Fig. 9)",
         NotAllSelectedToHamiltonian{}, g,
         [](const LabeledGraph& h) { return !all_selected(h); }, hamiltonian_oracle);

    // Flip the unselected node and watch all three equivalences flip sides.
    g.set_label(2, "1");
    std::cout << "--- after selecting node 2 (all labels now \"1\") ---\n\n";
    show("ALL-SELECTED -> EULERIAN", AllSelectedToEulerian{}, g, all_selected,
         eulerian_oracle);
    show("ALL-SELECTED -> HAMILTONIAN", AllSelectedToHamiltonian{}, g, all_selected,
         hamiltonian_oracle);
    show("NOT-ALL-SELECTED -> HAMILTONIAN", NotAllSelectedToHamiltonian{}, g,
         [](const LabeledGraph& h) { return !all_selected(h); }, hamiltonian_oracle);

    // Render the Hamiltonian reduction output of Figure 2 for inspection.
    g.set_label(2, "0");
    const ReducedGraph reduced =
        apply_reduction(AllSelectedToHamiltonian{}, g, make_global_ids(g));
    std::cout << "Reduced graph G' of Figure 2 (DOT):\n"
              << reduced.graph.to_dot("Gprime");
    return 0;
}
