// lph_top — cluster-wide serving observability.
//
// Scrapes every worker behind an lphd listener (standalone or supervised:
// repeated loopback connections land on different workers of a pre-forked
// pool and are deduplicated by pid) with `{"type":"stats","detail":"full"}`,
// merges the bucket-level latency histograms bit-exactly, and renders
// cluster p50/p99/p999 plus per-worker memo/view-cache hit rates, queue
// depths, and restart generations.
//
//   lph_top --connect 127.0.0.1:4000 --workers 2            # live table
//   lph_top --connect 127.0.0.1:4000 --workers 2 --once --json   # CI / scripts
//
// The scraper's own stats probes are data-plane requests on whichever worker
// answers them; lph_top tracks how many probes each pid served and subtracts
// them, so the cluster "submitted"/"completed" totals it reports equal the
// client workload's totals exactly.

#include "obs/log_histogram.hpp"
#include "service/scrape.hpp"
#include "service/server.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace {

using lph::obs::LogHistogram;
using lph::service::ClusterView;
using lph::service::TcpClient;
using lph::service::WorkerSnapshot;

struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::size_t workers = 1;    // distinct pids a round must find
    std::size_t max_probes = 0; // 0 = derived from workers
    bool once = false;
    bool json = false;
    int interval_ms = 1000;
};

[[noreturn]] void usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s --connect HOST:PORT [--workers N] [--probes K] [--once]\n"
        "          [--json] [--interval-ms M]\n"
        "  --workers N      distinct worker pids to find per round (default 1)\n"
        "  --probes K       max stats probes per round (default 16*N)\n"
        "  --once           one scrape round, then exit\n"
        "  --json           machine-readable output (one JSON object per round)\n"
        "  --interval-ms M  delay between rounds (default 1000)\n",
        argv0);
    std::exit(2);
}

Options parse_args(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                return arg.substr(eq + 1);
            }
            if (i + 1 >= argc) {
                usage(argv[0]);
            }
            return argv[++i];
        };
        const auto is = [&](const char* name) {
            return arg == name || arg.rfind(std::string(name) + "=", 0) == 0;
        };
        if (is("--connect")) {
            const std::string target = value();
            const std::size_t colon = target.rfind(':');
            if (colon == std::string::npos) {
                usage(argv[0]);
            }
            opt.host = target.substr(0, colon);
            opt.port = static_cast<std::uint16_t>(
                std::strtoul(target.c_str() + colon + 1, nullptr, 10));
        } else if (is("--workers")) {
            opt.workers = std::strtoul(value().c_str(), nullptr, 10);
        } else if (is("--probes")) {
            opt.max_probes = std::strtoul(value().c_str(), nullptr, 10);
        } else if (arg == "--once") {
            opt.once = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (is("--interval-ms")) {
            opt.interval_ms = std::atoi(value().c_str());
        } else {
            usage(argv[0]);
        }
    }
    if (opt.port == 0 || opt.workers == 0) {
        usage(argv[0]);
    }
    if (opt.max_probes == 0) {
        opt.max_probes = 16 * opt.workers;
    }
    return opt;
}

/// One probe: connect, ask for a full-stats snapshot, parse it.
std::optional<WorkerSnapshot> probe(const Options& opt) {
    try {
        TcpClient client(opt.host, opt.port);
        client.send_line("{\"type\":\"stats\",\"detail\":\"full\"}");
        std::string line;
        if (!client.recv_line(line)) {
            return std::nullopt;
        }
        return lph::service::parse_worker_snapshot(line);
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

/// Probes until `opt.workers` distinct pids answered (or the probe budget is
/// spent), keeping the latest snapshot per pid.  `probes_by_pid` accumulates
/// across rounds — worker counters are cumulative, so the correction must be
/// too.
std::vector<WorkerSnapshot> scrape_round(
    const Options& opt, std::map<std::int64_t, std::uint64_t>& probes_by_pid) {
    std::map<std::int64_t, WorkerSnapshot> latest;
    for (std::size_t attempt = 0;
         attempt < opt.max_probes && latest.size() < opt.workers; ++attempt) {
        std::optional<WorkerSnapshot> snap = probe(opt);
        if (!snap) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            continue;
        }
        ++probes_by_pid[snap->pid];
        latest[snap->pid] = std::move(*snap);
    }
    std::vector<WorkerSnapshot> out;
    out.reserve(latest.size());
    for (auto& [pid, snap] : latest) {
        out.push_back(std::move(snap));
    }
    return out;
}

double rate(double hits, double misses) {
    const double total = hits + misses;
    return total > 0 ? hits / total : 0.0;
}

std::string render_count(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

void append_histogram_summary(std::string& out, const LogHistogram& h) {
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%llu,\"sum\":%.17g,\"min\":%.17g,\"max\":%.17g,"
                  "\"avg\":%.6g,\"p50\":%.6g,\"p90\":%.6g,\"p99\":%.6g,"
                  "\"p999\":%.6g}",
                  static_cast<unsigned long long>(h.count()), h.sum(), h.min(),
                  h.max(), h.avg(), h.percentile(0.50), h.percentile(0.90),
                  h.percentile(0.99), h.percentile(0.999));
    out += buf;
}

/// The probe-adjusted data-plane totals (see the file comment): the kept
/// snapshot of pid p was rendered while its n-th probe was in flight, so it
/// counts all n probes as submitted but only n-1 as completed.
struct AdjustedTotals {
    double submitted = 0;
    double completed = 0;
    std::uint64_t probes = 0;
};

AdjustedTotals adjust(const ClusterView& view,
                      const std::map<std::int64_t, std::uint64_t>& probes_by_pid) {
    AdjustedTotals totals;
    for (const WorkerSnapshot& w : view.workers) {
        const auto it = probes_by_pid.find(w.pid);
        const std::uint64_t n = it != probes_by_pid.end() ? it->second : 0;
        totals.submitted +=
            w.metric("service.submitted") - static_cast<double>(n);
        totals.completed += w.metric("service.completed") -
                            static_cast<double>(n > 0 ? n - 1 : 0);
        totals.probes += n;
    }
    return totals;
}

void render_json(const ClusterView& view, const AdjustedTotals& totals) {
    std::string out = "{\"workers\":[";
    bool first = true;
    for (const WorkerSnapshot& w : view.workers) {
        char buf[512];
        const auto latency = w.histograms.find("service.latency_us");
        const LogHistogram empty;
        const LogHistogram& h =
            latency != w.histograms.end() ? latency->second : empty;
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"pid\":%lld,\"index\":%d,\"generation\":%llu,"
            "\"restarts\":%llu,\"uptime_ms\":%.3f,\"queue_depth\":%.0f,"
            "\"max_queue_depth\":%.0f,\"submitted\":%.0f,\"completed\":%.0f,"
            "\"errors\":%.0f,\"rejected\":%.0f,\"memo_hit_rate\":%.6g,"
            "\"view_cache_hit_rate\":%.6g,\"latency_count\":%llu,"
            "\"latency_p50_us\":%.6g,\"latency_p99_us\":%.6g}",
            first ? "" : ",", static_cast<long long>(w.pid), w.worker_index,
            static_cast<unsigned long long>(w.generation),
            static_cast<unsigned long long>(
                w.generation > 0 ? w.generation - 1 : 0),
            w.uptime_ms, w.metric("service.queue_depth"),
            w.metric("service.max_queue_depth"), w.metric("service.submitted"),
            w.metric("service.completed"), w.metric("service.errors"),
            w.metric("service.rejected"),
            rate(w.metric("service.memo.hits"), w.metric("service.memo.misses")),
            rate(w.metric("service.cache.hits"),
                 w.metric("service.cache.misses")),
            static_cast<unsigned long long>(h.count()), h.percentile(0.50),
            h.percentile(0.99));
        out += buf;
        first = false;
    }
    out += "],\"cluster\":{\"workers\":" + std::to_string(view.workers.size());
    out += ",\"submitted\":" + render_count(totals.submitted);
    out += ",\"completed\":" + render_count(totals.completed);
    out += ",\"errors\":" +
           render_count(view.summed_metrics.count("service.errors")
                            ? view.summed_metrics.at("service.errors")
                            : 0.0);
    out += ",\"rejected\":" +
           render_count(view.summed_metrics.count("service.rejected")
                            ? view.summed_metrics.at("service.rejected")
                            : 0.0);
    out += ",\"probe_requests\":" + std::to_string(totals.probes);
    {
        char buf[96];
        double memo_hits = 0, memo_misses = 0, cache_hits = 0, cache_misses = 0;
        for (const WorkerSnapshot& w : view.workers) {
            memo_hits += w.metric("service.memo.hits");
            memo_misses += w.metric("service.memo.misses");
            cache_hits += w.metric("service.cache.hits");
            cache_misses += w.metric("service.cache.misses");
        }
        std::snprintf(buf, sizeof(buf),
                      ",\"memo_hit_rate\":%.6g,\"view_cache_hit_rate\":%.6g",
                      rate(memo_hits, memo_misses),
                      rate(cache_hits, cache_misses));
        out += buf;
    }
    out += ",\"histograms\":{";
    first = true;
    for (const auto& [name, histogram] : view.histograms) {
        if (!first) {
            out += ',';
        }
        out += '"' + name + "\":";
        append_histogram_summary(out, histogram);
        first = false;
    }
    out += "}}}";
    std::printf("%s\n", out.c_str());
}

void render_table(const ClusterView& view, const AdjustedTotals& totals,
                  bool clear_screen) {
    if (clear_screen) {
        std::printf("\033[H\033[2J");
    }
    const auto cluster_hist = [&](const char* name) -> const LogHistogram* {
        const auto it = view.histograms.find(name);
        return it != view.histograms.end() ? &it->second : nullptr;
    };
    if (const LogHistogram* h = cluster_hist("service.latency_us")) {
        std::printf("lph_top — %zu worker(s)   latency_us p50 %.0f  p90 %.0f  "
                    "p99 %.0f  p999 %.0f   (%llu samples)\n",
                    view.workers.size(), h->percentile(0.50),
                    h->percentile(0.90), h->percentile(0.99),
                    h->percentile(0.999),
                    static_cast<unsigned long long>(h->count()));
    } else {
        std::printf("lph_top — %zu worker(s)   (no latency samples yet)\n",
                    view.workers.size());
    }
    std::printf("stage p99 (us):");
    for (const char* stage :
         {"service.queue_us", "service.batch_us", "service.exec_us",
          "service.write_us"}) {
        if (const LogHistogram* h = cluster_hist(stage)) {
            std::printf("  %s %.0f", stage + sizeof("service.") - 1,
                        h->percentile(0.99));
        }
    }
    std::printf("\ncluster: submitted %.0f  completed %.0f  (probe-adjusted; "
                "%llu probes)\n\n",
                totals.submitted, totals.completed,
                static_cast<unsigned long long>(totals.probes));
    std::printf("%-8s %-4s %-4s %-10s %-7s %-6s %-6s %-10s %-7s\n", "PID",
                "IDX", "GEN", "UPTIME_S", "QDEPTH", "MEMO%", "VIEW%",
                "COMPLETED", "ERRORS");
    for (const WorkerSnapshot& w : view.workers) {
        std::printf(
            "%-8lld %-4d %-4llu %-10.1f %-7.0f %-6.1f %-6.1f %-10.0f %-7.0f\n",
            static_cast<long long>(w.pid), w.worker_index,
            static_cast<unsigned long long>(w.generation), w.uptime_ms / 1000.0,
            w.metric("service.queue_depth"),
            100.0 * rate(w.metric("service.memo.hits"),
                         w.metric("service.memo.misses")),
            100.0 * rate(w.metric("service.cache.hits"),
                         w.metric("service.cache.misses")),
            w.metric("service.completed"), w.metric("service.errors"));
    }
    std::fflush(stdout);
}

} // namespace

int main(int argc, char** argv) {
    const Options opt = parse_args(argc, argv);
    std::map<std::int64_t, std::uint64_t> probes_by_pid;
    bool complete = false;
    for (;;) {
        std::vector<WorkerSnapshot> snapshots =
            scrape_round(opt, probes_by_pid);
        if (snapshots.size() < opt.workers) {
            std::fprintf(stderr,
                         "lph_top: found %zu of %zu workers after %zu probes\n",
                         snapshots.size(), opt.workers, opt.max_probes);
        }
        complete = snapshots.size() >= opt.workers;
        const ClusterView view = merge_workers(std::move(snapshots));
        const AdjustedTotals totals = adjust(view, probes_by_pid);
        if (opt.json) {
            render_json(view, totals);
        } else {
            render_table(view, totals, /*clear_screen=*/!opt.once);
        }
        if (opt.once) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    }
    return complete ? 0 : 1;
}
