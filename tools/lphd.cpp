// lphd: the batched query-serving daemon (DESIGN.md "Serving layer").
//
// Speaks one strict JSON object per line over stdin/stdout (--pipe) or a
// loopback TCP listener (--port).  Every request line gets exactly one
// response line; malformed lines get a ProtocolError response and the
// connection stays usable.
//
//   lph_client --generate 20 --seed 7 | lphd --pipe | lph_client --verify
//   lphd --port 7411 --threads 4 --queue-cap 512 --default-deadline-ms 250
//
// Serving knobs: --threads N (engine workers), --queue-cap N (admission
// control), --max-batch N (same-graph micro-batching), --default-deadline-ms
// X, and --no-memo / --no-batch / --no-shared-cache to disable the
// cross-request result memo, graph micro-batching, or the per-machine shared
// view cache (the loadgen's ablation switches).
//
// Observability: --trace=OUT.json exports a Chrome/Perfetto trace of every
// queue/batch/dispatch stage; --metrics=OUT.json writes the service.* metrics
// snapshot (same schema as the bench BENCH rows).
//
// Exit status: 0 on a clean run (protocol errors are per-line responses, not
// daemon failures); 2 on usage errors.

#include "obs/session.hpp"
#include "service/core.hpp"
#include "service/server.hpp"

#include <csignal>
#include <iostream>
#include <string>

namespace {

using namespace lph;

struct Options {
    bool pipe = false;
    int port = -1; // -1 = unset; 0 = pick a free port
    unsigned threads = 0;
    std::size_t queue_cap = 256;
    std::size_t max_batch = 32;
    std::size_t memo_entries = 1 << 12;
    double default_deadline_ms = 0;
    bool memo = true;
    bool batch = true;
    bool shared_cache = true;
    std::string trace_path;
    std::string metrics_path;
};

[[noreturn]] void usage_error(const std::string& message) {
    std::cerr << "lphd: " << message << "\n"
              << "usage: lphd (--pipe | --port P) [--threads N]\n"
              << "            [--queue-cap N] [--max-batch N]\n"
              << "            [--memo-entries N] [--default-deadline-ms X]\n"
              << "            [--no-memo] [--no-batch] [--no-shared-cache]\n"
              << "            [--trace OUT.json] [--metrics OUT.json]\n";
    std::exit(2);
}

Options parse_args(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage_error(arg + " needs a value");
            }
            return argv[++i];
        };
        if (arg == "--pipe") {
            opt.pipe = true;
        } else if (arg == "--port") {
            opt.port = std::stoi(value());
        } else if (arg == "--threads") {
            opt.threads = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--queue-cap") {
            opt.queue_cap = std::stoull(value());
        } else if (arg == "--max-batch") {
            opt.max_batch = std::stoull(value());
        } else if (arg == "--memo-entries") {
            opt.memo_entries = std::stoull(value());
        } else if (arg == "--default-deadline-ms") {
            opt.default_deadline_ms = std::stod(value());
        } else if (arg == "--no-memo") {
            opt.memo = false;
        } else if (arg == "--no-batch") {
            opt.batch = false;
        } else if (arg == "--no-shared-cache") {
            opt.shared_cache = false;
        } else if (arg == "--trace") {
            opt.trace_path = value();
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.trace_path = arg.substr(8);
        } else if (arg == "--metrics") {
            opt.metrics_path = value();
        } else if (arg.rfind("--metrics=", 0) == 0) {
            opt.metrics_path = arg.substr(10);
        } else {
            usage_error("unknown argument '" + arg + "'");
        }
    }
    if (opt.pipe == (opt.port >= 0)) {
        usage_error("pass exactly one of --pipe or --port");
    }
    if (opt.port > 65535) {
        usage_error("--port must be in [0, 65535]");
    }
    if (opt.queue_cap == 0 || opt.max_batch == 0) {
        usage_error("--queue-cap and --max-batch must be positive");
    }
    return opt;
}

} // namespace

int main(int argc, char** argv) {
    const Options opt = parse_args(argc, argv);

    obs::Session::Options session_options;
    session_options.tracing = !opt.trace_path.empty();
    obs::Session session(session_options);
    session.activate();

    service::ServiceOptions service_options;
    service_options.threads = opt.threads;
    service_options.queue_capacity = opt.queue_cap;
    service_options.max_batch = opt.max_batch;
    service_options.memo_entries = opt.memo_entries;
    service_options.default_deadline_ms = opt.default_deadline_ms;
    service_options.memoize_results = opt.memo;
    service_options.batch_by_graph = opt.batch;
    service_options.share_view_cache = opt.shared_cache;
    service_options.obs = &session;

    int status = 0;
    {
        service::ServiceCore core(service_options);
        if (opt.pipe) {
            const service::ServeReport report =
                service::serve_stream(core, std::cin, std::cout);
            core.stop();
            std::cerr << "lphd: served " << report.requests << " requests ("
                      << report.protocol_errors << " protocol errors) over "
                      << report.lines << " lines\n";
        } else {
            // Serve until SIGINT/SIGTERM.  The signals are blocked before any
            // thread is spawned so only this sigwait sees them.
            sigset_t signals;
            sigemptyset(&signals);
            sigaddset(&signals, SIGINT);
            sigaddset(&signals, SIGTERM);
            pthread_sigmask(SIG_BLOCK, &signals, nullptr);

            try {
                service::TcpServer server(core, static_cast<std::uint16_t>(opt.port));
                server.start();
                std::cerr << "lphd: listening on 127.0.0.1:" << server.port()
                          << "\n";
                int caught = 0;
                sigwait(&signals, &caught);
                std::cerr << "lphd: caught signal " << caught
                          << ", shutting down\n";
                server.shutdown();
                core.stop();
            } catch (const std::exception& e) {
                std::cerr << "lphd: " << e.what() << "\n";
                status = 1;
            }
        }
        core.publish_metrics();
        const service::ServiceStats stats = core.stats();
        std::cerr << "lphd: completed " << stats.completed << ", errors "
                  << stats.errors << ", rejected " << stats.rejected
                  << ", memo served " << stats.memo_served << ", batches "
                  << stats.batches << " (avg " << stats.avg_batch() << ")\n";
    }

    if (!opt.trace_path.empty() && !session.export_chrome_trace(opt.trace_path)) {
        std::cerr << "lphd: failed to write trace to " << opt.trace_path << "\n";
        status = 1;
    }
    if (!opt.metrics_path.empty() &&
        !session.write_metrics_json(opt.metrics_path)) {
        std::cerr << "lphd: failed to write metrics to " << opt.metrics_path
                  << "\n";
        status = 1;
    }
    return status;
}
