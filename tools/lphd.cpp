// lphd: the batched query-serving daemon (DESIGN.md "Serving layer" and
// "Resilience").
//
// Speaks one strict JSON object per line over stdin/stdout (--pipe) or a
// loopback TCP listener (--port).  Every request line gets exactly one
// response line; malformed lines get a ProtocolError response and the
// connection stays usable.
//
//   lph_client --generate 20 --seed 7 | lphd --pipe | lph_client --verify
//   lphd --port 7411 --threads 4 --queue-cap 512 --default-deadline-ms 250
//   lphd --port 0 --supervise 2 --snapshot-dir /tmp/lph-snap
//
// Serving knobs: --threads N (engine workers), --queue-cap N (admission
// control), --max-batch N (same-graph micro-batching), --default-deadline-ms
// X, and --no-memo / --no-batch / --no-shared-cache to disable the
// cross-request result memo, graph micro-batching, or the per-machine shared
// view cache (the loadgen's ablation switches).
//
// Admission control (off by default): --admission prices every workload
// request through the calibrated cost model before it is queued.  Requests
// whose predicted cost exceeds --admission-max-cost-us are rejected with a
// structured AdmissionRejected response; requests over
// --admission-defer-cost-us are routed to a dedicated big-job queue drained
// by --admission-big-threads workers, so interactive deadlines never wait
// behind a big job.
//
// Resilience knobs:
//   --supervise N          fork N worker processes sharing one listener; a
//                          crashed worker is restarted with exponential
//                          backoff, a crash-looping one is given up on
//   --snapshot FILE        warm-start memo/view-cache persistence (single
//                          process); loaded at startup, saved periodically
//                          and on clean shutdown
//   --snapshot-dir DIR     per-worker snapshot files (supervised mode)
//   --snapshot-period-ms X background save period (0 = only on shutdown)
//   --chaos-* (seed/drop/truncate/garble/delay/kill probabilities)
//                          deterministic wire-level fault injection on the
//                          response path, for resilience testing; a chaos
//                          kill exits the worker mid-request
//
// Observability: --trace=OUT.json exports a Chrome/Perfetto trace of every
// queue/batch/dispatch stage; --metrics=OUT.json writes the service.* metrics
// snapshot (same schema as the bench BENCH rows).  Both paths are probed at
// startup: an unwritable path is a structured startup error, not a silent
// loss at exit.  In supervised mode --trace names a *directory*: each worker
// writes DIR/worker-<slot>.trace with its real pid, the supervisor writes
// DIR/supervisor.trace with worker_start/worker_exit/backoff instants, and
// scripts/trace_merge.py stitches them onto one timeline.  Supervised
// --metrics still writes to PATH.workerI.  --slow-ms X makes every request
// whose server-side stage sum exceeds X ms emit one structured
// {"event":"slow_request",...} line on stderr (0 = off).
//
// Exit status: 0 on a clean run (protocol errors are per-line responses, not
// daemon failures); 1 when every supervised worker crash-looped into the
// circuit breaker; 2 on usage/startup errors.

#include "core/check.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "service/chaos.hpp"
#include "service/core.hpp"
#include "service/server.hpp"
#include "service/supervisor.hpp"
#include "service/transport.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace lph;

struct Options {
    bool pipe = false;
    int port = -1; // -1 = unset; 0 = pick a free port
    unsigned threads = 0;
    std::size_t queue_cap = 256;
    std::size_t max_batch = 32;
    std::size_t memo_entries = 1 << 12;
    double default_deadline_ms = 0;
    bool memo = true;
    bool batch = true;
    bool shared_cache = true;
    double slow_ms = 0;
    std::string trace_path;
    std::string metrics_path;

    // admission control (DESIGN.md "Language frontend & admission control")
    bool admission = false;
    double admission_max_cost_us = 5e6;
    double admission_defer_cost_us = 250e3;
    unsigned admission_big_threads = 1;

    // resilience
    int supervise = 0; // 0 = no supervisor, run in-process
    service::RestartPolicy restart;
    std::string snapshot_path;
    std::string snapshot_dir;
    double snapshot_period_ms = 0;
    std::uint64_t chaos_seed = 0;
    service::ChaosPlan chaos; // seed filled in per worker
};

[[noreturn]] void usage_error(const std::string& message) {
    std::cerr << "lphd: " << message << "\n"
              << "usage: lphd (--pipe | --port P) [--threads N]\n"
              << "            [--queue-cap N] [--max-batch N]\n"
              << "            [--memo-entries N] [--default-deadline-ms X]\n"
              << "            [--no-memo] [--no-batch] [--no-shared-cache]\n"
              << "            [--admission] [--admission-max-cost-us X]\n"
              << "            [--admission-defer-cost-us X]\n"
              << "            [--admission-big-threads N]\n"
              << "            [--supervise N] [--restart-backoff-ms X]\n"
              << "            [--restart-max-backoff-ms X] [--min-healthy-ms X]\n"
              << "            [--max-crashes N]\n"
              << "            [--snapshot FILE | --snapshot-dir DIR]\n"
              << "            [--snapshot-period-ms X]\n"
              << "            [--chaos-seed S] [--chaos-drop P] [--chaos-truncate P]\n"
              << "            [--chaos-garble P] [--chaos-delay P] [--chaos-kill P]\n"
              << "            [--chaos-delay-ms X]\n"
              << "            [--slow-ms X]\n"
              << "            [--trace OUT.json | --trace DIR (supervised)]\n"
              << "            [--metrics OUT.json]\n";
    std::exit(2);
}

Options parse_args(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage_error(arg + " needs a value");
            }
            return argv[++i];
        };
        if (arg == "--pipe") {
            opt.pipe = true;
        } else if (arg == "--port") {
            opt.port = std::stoi(value());
        } else if (arg == "--threads") {
            opt.threads = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--queue-cap") {
            opt.queue_cap = std::stoull(value());
        } else if (arg == "--max-batch") {
            opt.max_batch = std::stoull(value());
        } else if (arg == "--memo-entries") {
            opt.memo_entries = std::stoull(value());
        } else if (arg == "--default-deadline-ms") {
            opt.default_deadline_ms = std::stod(value());
        } else if (arg == "--no-memo") {
            opt.memo = false;
        } else if (arg == "--no-batch") {
            opt.batch = false;
        } else if (arg == "--no-shared-cache") {
            opt.shared_cache = false;
        } else if (arg == "--admission") {
            opt.admission = true;
        } else if (arg == "--admission-max-cost-us") {
            opt.admission_max_cost_us = std::stod(value());
        } else if (arg == "--admission-defer-cost-us") {
            opt.admission_defer_cost_us = std::stod(value());
        } else if (arg == "--admission-big-threads") {
            opt.admission_big_threads =
                static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--supervise") {
            opt.supervise = std::stoi(value());
        } else if (arg == "--restart-backoff-ms") {
            opt.restart.base_backoff_ms = std::stod(value());
        } else if (arg == "--restart-max-backoff-ms") {
            opt.restart.max_backoff_ms = std::stod(value());
        } else if (arg == "--min-healthy-ms") {
            opt.restart.min_healthy_uptime_ms = std::stod(value());
        } else if (arg == "--max-crashes") {
            opt.restart.max_consecutive_crashes = std::stoi(value());
        } else if (arg == "--snapshot") {
            opt.snapshot_path = value();
        } else if (arg == "--snapshot-dir") {
            opt.snapshot_dir = value();
        } else if (arg == "--snapshot-period-ms") {
            opt.snapshot_period_ms = std::stod(value());
        } else if (arg == "--chaos-seed") {
            opt.chaos_seed = std::stoull(value());
        } else if (arg == "--chaos-drop") {
            opt.chaos.drop_prob = std::stod(value());
        } else if (arg == "--chaos-truncate") {
            opt.chaos.truncate_prob = std::stod(value());
        } else if (arg == "--chaos-garble") {
            opt.chaos.garble_prob = std::stod(value());
        } else if (arg == "--chaos-delay") {
            opt.chaos.delay_prob = std::stod(value());
        } else if (arg == "--chaos-kill") {
            opt.chaos.kill_prob = std::stod(value());
        } else if (arg == "--chaos-delay-ms") {
            opt.chaos.delay_ms = std::stod(value());
        } else if (arg == "--slow-ms") {
            opt.slow_ms = std::stod(value());
        } else if (arg == "--trace") {
            opt.trace_path = value();
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.trace_path = arg.substr(8);
        } else if (arg == "--metrics") {
            opt.metrics_path = value();
        } else if (arg.rfind("--metrics=", 0) == 0) {
            opt.metrics_path = arg.substr(10);
        } else {
            usage_error("unknown argument '" + arg + "'");
        }
    }
    if (opt.pipe == (opt.port >= 0)) {
        usage_error("pass exactly one of --pipe or --port");
    }
    if (opt.port > 65535) {
        usage_error("--port must be in [0, 65535]");
    }
    if (opt.queue_cap == 0 || opt.max_batch == 0) {
        usage_error("--queue-cap and --max-batch must be positive");
    }
    if (opt.supervise < 0 || opt.supervise > 64) {
        usage_error("--supervise must be in [0, 64]");
    }
    if (opt.supervise > 0 && opt.pipe) {
        usage_error("--supervise requires --port");
    }
    if (opt.supervise > 0 && !opt.snapshot_path.empty()) {
        usage_error("supervised workers need per-worker files: use "
                    "--snapshot-dir, not --snapshot");
    }
    if (opt.supervise == 0 && !opt.snapshot_dir.empty()) {
        usage_error("--snapshot-dir only applies with --supervise; use "
                    "--snapshot FILE");
    }
    if (!opt.chaos.empty() && opt.pipe) {
        usage_error("--chaos-* applies to the TCP response path; use --port");
    }
    return opt;
}

/// Startup probe for --trace= / --metrics= destinations: failing at exit —
/// after the whole run — is the worst possible time to learn the path was
/// wrong, so an unwritable path is a structured startup error instead.
void require_writable(const char* flag, const std::string& path) {
    if (path.empty()) {
        return;
    }
    const bool existed = std::filesystem::exists(std::filesystem::path(path));
    std::FILE* probe = std::fopen(path.c_str(), "ab");
    if (probe == nullptr) {
        std::cerr << "{\"event\":\"output_path_unwritable\",\"flag\":\"" << flag
                  << "\",\"path\":\"" << path << "\",\"error\":\""
                  << std::strerror(errno) << "\"}\n";
        std::exit(2);
    }
    std::fclose(probe);
    if (!existed) {
        std::remove(path.c_str()); // the probe created it; leave no droppings
    }
}

service::ServiceOptions make_service_options(const Options& opt,
                                             obs::Session* session) {
    service::ServiceOptions service_options;
    service_options.threads = opt.threads;
    service_options.queue_capacity = opt.queue_cap;
    service_options.max_batch = opt.max_batch;
    service_options.memo_entries = opt.memo_entries;
    service_options.default_deadline_ms = opt.default_deadline_ms;
    service_options.memoize_results = opt.memo;
    service_options.batch_by_graph = opt.batch;
    service_options.share_view_cache = opt.shared_cache;
    service_options.snapshot_period_ms = opt.snapshot_period_ms;
    service_options.slow_ms = opt.slow_ms;
    service_options.admission.enabled = opt.admission;
    service_options.admission.max_cost_us = opt.admission_max_cost_us;
    service_options.admission.defer_cost_us = opt.admission_defer_cost_us;
    service_options.admission.big_job_threads = opt.admission_big_threads;
    service_options.obs = session;
    return service_options;
}

/// Per-worker suffix for output files so supervised workers do not clobber
/// each other ("" for the standalone daemon).
std::string worker_suffix(int worker_index) {
    return worker_index >= 0 ? ".worker" + std::to_string(worker_index) : "";
}

/// One serving process over an already-listening fd: standalone daemon
/// (worker_index = -1) or one supervised worker (fd inherited across fork).
/// Blocks until SIGINT/SIGTERM (which the caller has already masked).
int serve_tcp(const Options& opt, int listen_fd, int worker_index,
              std::uint64_t generation) {
    obs::Session::Options session_options;
    session_options.tracing = !opt.trace_path.empty();
    obs::Session session(session_options);
    session.activate();

    service::ServiceOptions service_options = make_service_options(opt, &session);
    service_options.worker_index = worker_index;
    service_options.worker_generation = generation;
    if (worker_index >= 0 && !opt.snapshot_dir.empty()) {
        // Keyed by slot, not generation: a restarted worker warm-starts from
        // its predecessor's snapshot.
        service_options.snapshot_path = opt.snapshot_dir + "/worker-" +
                                        std::to_string(worker_index) + ".snap";
    } else {
        service_options.snapshot_path = opt.snapshot_path;
    }

    service::ChaosPlan plan = opt.chaos;
    // Distinct per-worker streams that are still pure functions of
    // (--chaos-seed, slot): replayable, but workers do not fault in lockstep.
    plan.seed = opt.chaos_seed +
                static_cast<std::uint64_t>(worker_index >= 0 ? worker_index : 0);

    int status = 0;
    {
        service::ServiceCore core(service_options);
        service::ChaosInjector chaos(&plan);
        try {
            service::TcpServer server(core, service::AdoptSocket{listen_fd});
            if (chaos.active()) {
                server.set_chaos(&chaos);
            }
            server.start();
            if (worker_index < 0) {
                std::cerr << "lphd: listening on 127.0.0.1:" << server.port()
                          << "\n";
            }

            sigset_t signals;
            sigemptyset(&signals);
            sigaddset(&signals, SIGINT);
            sigaddset(&signals, SIGTERM);
            int caught = 0;
            sigwait(&signals, &caught);
            std::cerr << "lphd" << worker_suffix(worker_index)
                      << ": caught signal " << caught << ", shutting down\n";
            server.shutdown();
            core.stop();
        } catch (const std::exception& e) {
            std::cerr << "lphd" << worker_suffix(worker_index) << ": "
                      << e.what() << "\n";
            status = 1;
        }
        core.publish_metrics();
        const service::ServiceStats stats = core.stats();
        std::cerr << "lphd" << worker_suffix(worker_index) << ": completed "
                  << stats.completed << ", errors " << stats.errors
                  << ", rejected " << stats.rejected << ", memo served "
                  << stats.memo_served << ", batches " << stats.batches
                  << " (avg " << stats.avg_batch() << ")\n";
    }

    const std::string suffix = worker_suffix(worker_index);
    if (!opt.trace_path.empty()) {
        // Supervised workers write distinct per-slot files into the --trace
        // directory so trace_merge.py can stitch the whole cluster.
        const std::string trace_out =
            worker_index >= 0 ? opt.trace_path + "/worker-" +
                                    std::to_string(worker_index) + ".trace"
                              : opt.trace_path;
        const std::string label =
            worker_index >= 0 ? "lphd worker " + std::to_string(worker_index)
                              : "lphd";
        if (!session.export_chrome_trace(trace_out, label)) {
            std::cerr << "lphd: failed to write trace to " << trace_out << "\n";
            status = 1;
        }
    }
    if (!opt.metrics_path.empty() &&
        !session.write_metrics_json(opt.metrics_path + suffix)) {
        std::cerr << "lphd: failed to write metrics to " << opt.metrics_path
                  << suffix << "\n";
        status = 1;
    }
    return status;
}

/// The supervisor: binds once, forks `--supervise N` workers that accept
/// from the shared listener, and restarts the ones that die (exponential
/// backoff + crash-loop circuit breaker, via SupervisorLedger).  SIGINT/
/// SIGTERM propagate to every worker for a clean cluster shutdown.
int run_supervisor(const Options& opt) {
    std::uint16_t bound = 0;
    const int listen_fd =
        service::listen_loopback(static_cast<std::uint16_t>(opt.port), &bound);
    if (!opt.snapshot_dir.empty()) {
        std::filesystem::create_directories(opt.snapshot_dir);
    }

    // The supervisor traces its own lifecycle decisions (worker_start /
    // worker_exit / backoff instants) into DIR/supervisor.trace so the merged
    // timeline shows restarts next to the workers' serving spans.
    obs::Session::Options session_options;
    session_options.tracing = !opt.trace_path.empty();
    obs::Session session(session_options);
    obs::Tracer& tracer = obs::Tracer::instance();

    // Masked before any fork: workers inherit the mask and sigwait on it;
    // the supervisor consumes SIGCHLD/SIGINT/SIGTERM via sigtimedwait.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    sigaddset(&signals, SIGCHLD);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    const auto start = std::chrono::steady_clock::now();
    const auto now_ms = [start] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    service::SupervisorLedger ledger(static_cast<std::size_t>(opt.supervise),
                                     opt.restart);
    std::vector<pid_t> pids(static_cast<std::size_t>(opt.supervise), -1);

    const auto spawn = [&](std::size_t slot) {
        ledger.on_started(slot, now_ms());
        const std::uint64_t generation = ledger.slot(slot).generation;
        const pid_t pid = ::fork();
        check(pid >= 0, std::string("fork() failed: ") + std::strerror(errno));
        if (pid == 0) {
            // Worker: serve until SIGTERM, then die without re-running the
            // supervisor's atexit/static machinery.
            std::_Exit(serve_tcp(opt, listen_fd, static_cast<int>(slot),
                                 generation));
        }
        pids[slot] = pid;
        tracer.instant("supervisor", "worker_start", "slot",
                       static_cast<std::uint64_t>(slot));
        std::cerr << "{\"event\":\"worker_start\",\"slot\":" << slot
                  << ",\"pid\":" << pid << ",\"generation\":" << generation
                  << "}\n";
    };

    const auto reap = [&]() {
        int status = 0;
        pid_t pid = -1;
        while ((pid = ::waitpid(-1, &status, WNOHANG)) > 0) {
            std::size_t slot = pids.size();
            for (std::size_t i = 0; i < pids.size(); ++i) {
                if (pids[i] == pid) {
                    slot = i;
                    break;
                }
            }
            if (slot == pids.size()) {
                continue;
            }
            pids[slot] = -1;
            const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
            const bool chaos_kill =
                WIFEXITED(status) &&
                WEXITSTATUS(status) == service::kChaosKillExitStatus;
            const bool restart = ledger.on_exit(slot, now_ms(), clean);
            const service::SupervisorLedger::Slot& s = ledger.slot(slot);
            tracer.instant("supervisor", "worker_exit", "slot",
                           static_cast<std::uint64_t>(slot));
            if (restart) {
                tracer.instant("supervisor", "backoff", "slot",
                               static_cast<std::uint64_t>(slot));
            }
            std::cerr << "{\"event\":\"worker_exit\",\"slot\":" << slot
                      << ",\"pid\":" << pid << ",\"clean\":"
                      << (clean ? "true" : "false") << ",\"chaos_kill\":"
                      << (chaos_kill ? "true" : "false")
                      << ",\"restarts\":" << s.restarts << ",";
            if (restart) {
                std::cerr << "\"restart_in_ms\":"
                          << std::max(0.0, s.restart_at_ms - now_ms()) << "}\n";
            } else {
                std::cerr << "\"action\":\""
                          << (clean ? "done" : "given_up") << "\"}\n";
            }
        }
    };

    std::cerr << "lphd: listening on 127.0.0.1:" << bound << " (supervising "
              << opt.supervise << " workers)\n";
    for (std::size_t i = 0; i < pids.size(); ++i) {
        spawn(i);
    }

    bool interrupted = false;
    while (!interrupted) {
        // Sleep until the earliest pending restart, a child exit, or a
        // shutdown signal.
        double wait_ms = 1000;
        if (const double deadline = ledger.next_deadline_ms(); deadline >= 0) {
            wait_ms = std::max(0.0, deadline - now_ms());
        }
        timespec ts;
        ts.tv_sec = static_cast<time_t>(wait_ms / 1000);
        ts.tv_nsec = static_cast<long>(
            std::fmod(wait_ms, 1000.0) * 1e6);
        const int sig = ::sigtimedwait(&signals, nullptr, &ts);
        if (sig == SIGINT || sig == SIGTERM) {
            std::cerr << "lphd: caught signal " << sig
                      << ", stopping workers\n";
            interrupted = true;
        }
        reap();
        for (int due = -1; (due = ledger.due_slot(now_ms())) >= 0;) {
            spawn(static_cast<std::size_t>(due));
        }
        if (!interrupted && ledger.running() == 0 &&
            ledger.next_deadline_ms() < 0) {
            break; // nothing running, nothing pending: all done or given up
        }
    }

    for (const pid_t pid : pids) {
        if (pid > 0) {
            ::kill(pid, SIGTERM);
        }
    }
    for (const pid_t pid : pids) {
        if (pid > 0) {
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
    }
    ::close(listen_fd);
    if (!opt.trace_path.empty() &&
        !session.export_chrome_trace(opt.trace_path + "/supervisor.trace",
                                     "lphd supervisor")) {
        std::cerr << "lphd: failed to write trace to " << opt.trace_path
                  << "/supervisor.trace\n";
    }
    const bool crash_looped = ledger.given_up() > 0 && !interrupted;
    std::cerr << "{\"event\":\"supervisor_exit\",\"restarts\":"
              << ledger.total_restarts() << ",\"given_up\":"
              << ledger.given_up() << ",\"reason\":\""
              << (interrupted ? "signal" : crash_looped ? "crash_loop" : "done")
              << "\"}\n";
    return crash_looped ? 1 : 0;
}

} // namespace

int main(int argc, char** argv) {
    const Options opt = parse_args(argc, argv);

    // A peer that disconnects mid-response must surface as a transport error
    // on the write path, not kill the daemon with SIGPIPE (satellite of the
    // resilience contract; sockets also pass MSG_NOSIGNAL, this covers the
    // --pipe stdout path).
    service::ignore_sigpipe();

    if (opt.supervise > 0 && !opt.trace_path.empty()) {
        // Supervised --trace is a directory of per-process files; create it
        // now and probe a file inside it.
        std::error_code ec;
        std::filesystem::create_directories(opt.trace_path, ec);
        if (ec) {
            std::cerr << "{\"event\":\"output_path_unwritable\",\"flag\":"
                      << "\"--trace\",\"path\":\"" << opt.trace_path
                      << "\",\"error\":\"" << ec.message() << "\"}\n";
            return 2;
        }
        require_writable("--trace", opt.trace_path + "/supervisor.trace");
    } else {
        require_writable("--trace", opt.trace_path);
    }
    require_writable("--metrics", opt.metrics_path);

    if (opt.supervise > 0) {
        try {
            return run_supervisor(opt);
        } catch (const std::exception& e) {
            std::cerr << "lphd: " << e.what() << "\n";
            return 1;
        }
    }

    if (opt.pipe) {
        obs::Session::Options session_options;
        session_options.tracing = !opt.trace_path.empty();
        obs::Session session(session_options);
        session.activate();

        service::ServiceOptions service_options =
            make_service_options(opt, &session);
        service_options.snapshot_path = opt.snapshot_path;

        int status = 0;
        {
            service::ServiceCore core(service_options);
            const service::ServeReport report =
                service::serve_stream(core, std::cin, std::cout);
            core.stop();
            std::cerr << "lphd: served " << report.requests << " requests ("
                      << report.protocol_errors << " protocol errors) over "
                      << report.lines << " lines\n";
            core.publish_metrics();
            const service::ServiceStats stats = core.stats();
            std::cerr << "lphd: completed " << stats.completed << ", errors "
                      << stats.errors << ", rejected " << stats.rejected
                      << ", memo served " << stats.memo_served << ", batches "
                      << stats.batches << " (avg " << stats.avg_batch()
                      << ")\n";
        }
        if (!opt.trace_path.empty() &&
            !session.export_chrome_trace(opt.trace_path)) {
            std::cerr << "lphd: failed to write trace to " << opt.trace_path
                      << "\n";
            status = 1;
        }
        if (!opt.metrics_path.empty() &&
            !session.write_metrics_json(opt.metrics_path)) {
            std::cerr << "lphd: failed to write metrics to " << opt.metrics_path
                      << "\n";
            status = 1;
        }
        return status;
    }

    // Standalone TCP daemon: block the shutdown signals before any thread is
    // spawned so only serve_tcp's sigwait sees them.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);
    try {
        std::uint16_t bound = 0;
        const int listen_fd =
            service::listen_loopback(static_cast<std::uint16_t>(opt.port),
                                     &bound);
        return serve_tcp(opt, listen_fd, -1, 0);
    } catch (const std::exception& e) {
        std::cerr << "lphd: " << e.what() << "\n";
        return 1;
    }
}
