// Differential fuzzing driver: cross-checks every fast decision path in the
// library against its deliberately naive oracle (src/oracle) on seeded random
// instances, shrinks any divergence to a minimal counterexample, and writes
// it as a re-runnable repro file plus a structured JSON report row.
//
//   lph_fuzz --seed 42                   fuzz all checks, 200 instances each
//   lph_fuzz --check eulerian-vs-bruteforce --instances 1000
//   lph_fuzz --smoke                     fixed-seed CI pass incl. selftest
//   lph_fuzz --selftest                  planted-bug detection + shrinking
//   lph_fuzz --repro fuzz-repros/x.repro re-run one counterexample
//   lph_fuzz --list                      list check names
//
// Observability: --trace=<out.json> exports a Chrome trace-event file of the
// run (oracle.check / oracle.shrink spans plus the engine spans underneath);
// --metrics=<out.json> writes the session metrics snapshot.  --smoke prints a
// one-line metrics summary to stderr.
//
// Exit status: 0 when every requested check agreed (and, for --smoke /
// --selftest, the planted bug was caught); 1 on divergence or a missed
// planted bug; 2 on usage errors.

#include "core/check.hpp"
#include "lang/lang_check.hpp"
#include "obs/session.hpp"
#include "oracle/harness.hpp"
#include "oracle/repro.hpp"
#include "oracle/selftest.hpp"
#include "service/chaos.hpp"

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace lph;

struct Options {
    std::uint64_t seed = 1;
    std::size_t instances = 200;
    std::vector<std::string> checks; // empty = all
    std::string repro_path;
    std::string out_dir = "fuzz-repros";
    std::string trace_path;
    std::string metrics_path;
    bool smoke = false;
    bool selftest = false;
    bool list = false;
};

[[noreturn]] void usage_error(const std::string& message) {
    std::cerr << "lph_fuzz: " << message << "\n"
              << "usage: lph_fuzz [--seed S] [--instances N] [--check NAME]...\n"
              << "                [--out DIR] [--smoke] [--selftest] [--list]\n"
              << "                [--repro FILE] [--trace OUT.json]\n"
              << "                [--metrics OUT.json]\n";
    std::exit(2);
}

Options parse_args(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage_error(arg + " needs a value");
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            opt.seed = std::stoull(value());
        } else if (arg == "--instances") {
            opt.instances = std::stoull(value());
        } else if (arg == "--check") {
            const std::string name = value();
            if (!is_check_name(name)) {
                usage_error("unknown check '" + name + "' (see --list)");
            }
            opt.checks.push_back(name);
        } else if (arg == "--out") {
            opt.out_dir = value();
        } else if (arg == "--repro") {
            opt.repro_path = value();
        } else if (arg == "--trace") {
            opt.trace_path = value();
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.trace_path = arg.substr(8);
        } else if (arg == "--metrics") {
            opt.metrics_path = value();
        } else if (arg.rfind("--metrics=", 0) == 0) {
            opt.metrics_path = arg.substr(10);
        } else if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--selftest") {
            opt.selftest = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else {
            usage_error("unknown argument '" + arg + "'");
        }
    }
    return opt;
}

std::string selftest_row(const SelftestResult& result, bool healthy) {
    std::string row = "{\"check\":\"selftest-planted-bug\",\"seed\":";
    row += std::to_string(result.seed);
    row += ",\"instances\":" + std::to_string(result.instances_tried);
    row += ",\"original_nodes\":" + std::to_string(result.original_nodes);
    row += ",\"shrunk_nodes\":" + std::to_string(result.shrunk_nodes);
    row += std::string(",\"status\":\"") + (healthy ? "pass" : "fail") + "\"";
    row += ",\"detail\":\"" + json_escape(result.detail) + "\"}";
    return row;
}

/// The selftest passes when the planted off-by-one is caught AND the
/// counterexample shrinks to a genuinely tiny instance.
bool run_and_report_selftest(std::uint64_t seed) {
    const SelftestResult result = run_selftest(seed);
    const bool healthy = result.divergence_found && result.shrunk_nodes <= 6;
    std::cout << selftest_row(result, healthy) << "\n";
    return healthy;
}

int replay(const std::string& path) {
    const ReproCase repro = read_repro_file(path);
    const auto detail = replay_repro(repro);
    if (detail.has_value()) {
        std::cout << "{\"check\":\"" << json_escape(repro.check)
                  << "\",\"status\":\"diverges\",\"detail\":\""
                  << json_escape(*detail) << "\"}\n";
        return 1;
    }
    std::cout << "{\"check\":\"" << json_escape(repro.check)
              << "\",\"status\":\"agrees\"}\n";
    return 0;
}

int fuzz(const Options& opt, obs::Session& session) {
    const std::vector<std::string> checks =
        opt.checks.empty() ? check_names() : opt.checks;
    bool any_divergence = false;
    std::size_t repro_counter = 0;
    for (const std::string& name : checks) {
        const CheckReport report =
            run_check(name, opt.seed, opt.instances, &session);
        std::cout << report_row_json(report) << "\n";
        for (const Divergence& d : report.divergences) {
            any_divergence = true;
            std::filesystem::create_directories(opt.out_dir);
            const std::string path =
                opt.out_dir + "/" + name + "-" + std::to_string(repro_counter++) +
                ".repro";
            write_repro_file(path, d.repro);
            std::cerr << "lph_fuzz: " << name << " diverged (" << d.detail
                      << "); shrunk " << d.original_nodes << " -> "
                      << d.shrunk_nodes << " nodes; repro written to " << path
                      << "\n";
        }
    }
    return any_divergence ? 1 : 0;
}

/// One-line rollup of the session's `oracle.*` counters, for --smoke.
void print_smoke_summary(const obs::Session& session, bool healthy) {
    const obs::MetricList metrics = session.metrics().snapshot();
    const auto value = [&](const std::string& name) -> double {
        for (const auto& [metric, v] : metrics) {
            if (metric == name) {
                return v;
            }
        }
        return 0.0;
    };
    const double instances = value("oracle.instances");
    const double wall_ms = value("oracle.wall_ms");
    std::cerr << "lph_fuzz: smoke " << (healthy ? "pass" : "fail") << ": "
              << static_cast<std::uint64_t>(value("oracle.checks"))
              << " checks, " << static_cast<std::uint64_t>(instances)
              << " instances, "
              << static_cast<std::uint64_t>(value("oracle.divergences"))
              << " divergences, " << static_cast<std::uint64_t>(wall_ms)
              << " ms, "
              << static_cast<std::uint64_t>(
                     wall_ms > 0 ? 1000.0 * instances / wall_ms : 0.0)
              << " instances/sec\n";
}

} // namespace

int main(int argc, char** argv) {
    // The serving library's cross-library checks (service-chaos-vs-direct)
    // and the language frontend's round-trip checks must be in the registry
    // before --check validation and --list.
    lph::service::register_service_checks();
    lph::lang::register_lang_checks();
    const Options opt = parse_args(argc, argv);
    try {
        if (opt.list) {
            for (const std::string& name : check_names()) {
                std::cout << name << "\n";
            }
            return 0;
        }
        if (!opt.repro_path.empty()) {
            return replay(opt.repro_path);
        }

        obs::Session::Options obs_options;
        obs_options.tracing = !opt.trace_path.empty();
        obs::Session session(obs_options);
        session.activate();

        int status = 0;
        if (opt.selftest) {
            status = run_and_report_selftest(opt.seed) ? 0 : 1;
        } else if (opt.smoke) {
            // Fixed-seed CI pass: a per-check corpus plus the planted-bug
            // selftest, sized for ~30s under the ASan build in check.sh.
            Options smoke = opt;
            smoke.seed = 0xC0FFEE;
            smoke.instances = 350;
            const int fuzz_status = fuzz(smoke, session);
            const bool selftest_ok = run_and_report_selftest(smoke.seed);
            status = fuzz_status == 0 && selftest_ok ? 0 : 1;
            print_smoke_summary(session, status == 0);
        } else {
            status = fuzz(opt, session);
        }

        if (!opt.metrics_path.empty() &&
            !session.write_metrics_json(opt.metrics_path)) {
            std::cerr << "lph_fuzz: warning: could not write " << opt.metrics_path
                      << "\n";
        }
        if (!opt.trace_path.empty() &&
            !session.export_chrome_trace(opt.trace_path)) {
            std::cerr << "lph_fuzz: warning: could not write " << opt.trace_path
                      << "\n";
        }
        return status;
    } catch (const precondition_error& e) {
        std::cerr << "lph_fuzz: " << e.what() << "\n";
        return 2;
    }
}
