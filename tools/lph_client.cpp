// lph_client: wire-protocol companion to lphd.
//
// Modes:
//   --generate N [--seed S]    emit N mixed request lines (games, logic,
//                              decisions, oracle checks, stats/health) drawn
//                              from a small seeded graph pool, to stdout —
//                              the smoke-test workload
//   --patch N [--seed S]       emit an incremental-serving workload: one
//                              graph_register followed by graph_patch lines
//                              (chord toggles, relabels, grow/shrink pairs)
//                              that each carry a machine query, plus
//                              digest-reference game lines — every digest is
//                              mirrored client-side, so the stream is valid
//                              against a single-threaded lphd (--threads 1,
//                              FIFO patch order)
//   --patch-golden N [--seed S]
//                              the same seeded sequence rendered as
//                              self-contained full-recompute game requests
//                              (inline post-patch graphs, same ids): feed it
//                              to a fresh lphd and use the output as the
//                              --against file to differential-check the
//                              incremental stream, verdict by verdict
//   --verify [--expect N] [--against FILE]
//                              read response lines from stdin, check every
//                              one parses as a response and none is a
//                              ProtocolError; with --expect, also require
//                              exactly N responses; with --against, compare
//                              each ok response's verdict to the same id's
//                              verdict in FILE (a chaos-free golden run) and
//                              fail on any mismatch.  Exit 1 on violation
//   --formula TEXT [--count N] [--seed S]
//   --formula-file PATH [--count N] [--seed S]
//                              emit N eval request lines carrying a
//                              user-written surface-syntax formula (see
//                              DESIGN.md "Language frontend"), each against a
//                              graph drawn from the same seeded pool as
//                              --generate; the daemon parses, classifies,
//                              prices, and evaluates it
//   --connect HOST:PORT        send stdin's request lines to a running lphd
//                              and print the responses, one request in
//                              flight at a time, with per-request timeouts,
//                              jittered exponential backoff, reconnects, and
//                              idempotent replay (safe: execution is a pure
//                              function of the request's semantic fields and
//                              the memo key excludes id/deadline).  Tune with
//                              --retries/--timeout-ms/--backoff-ms/
//                              --max-backoff-ms/--retry-seed; a request still
//                              unanswered after the retry budget is printed
//                              as a client-side RetriesExhausted error line
//
//   lph_client --generate 320 --seed 7 | lphd --pipe | lph_client --verify --expect 320
//
// Exit status: 0 ok; 1 verification failure or connection error; 2 usage.

#include "graph/serialize.hpp"
#include "obs/log_histogram.hpp"
#include "obs/metrics.hpp"
#include "service/graph_store.hpp"
#include "service/json.hpp"
#include "service/retry.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "service/wire.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace lph;

struct Options {
    long generate = -1;
    long patch = -1;
    long patch_golden = -1;
    std::string formula_text;
    std::string formula_file;
    long count = 8;
    std::uint64_t seed = 1;
    bool verify = false;
    long expect = -1;
    std::string against_path;
    std::string connect;
    service::RetryPolicy retry;
};

[[noreturn]] void usage_error(const std::string& message) {
    std::cerr << "lph_client: " << message << "\n"
              << "usage: lph_client --generate N [--seed S]\n"
              << "       lph_client --patch N [--seed S]\n"
              << "       lph_client --patch-golden N [--seed S]\n"
              << "       lph_client --formula TEXT [--count N] [--seed S]\n"
              << "       lph_client --formula-file PATH [--count N] [--seed S]\n"
              << "       lph_client --verify [--expect N] [--against FILE]\n"
              << "       lph_client --connect HOST:PORT [--retries N]\n"
              << "                  [--timeout-ms X] [--backoff-ms X]\n"
              << "                  [--max-backoff-ms X] [--retry-seed S]\n";
    std::exit(2);
}

Options parse_args(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage_error(arg + " needs a value");
            }
            return argv[++i];
        };
        if (arg == "--generate") {
            opt.generate = std::stol(value());
        } else if (arg == "--patch") {
            opt.patch = std::stol(value());
        } else if (arg == "--patch-golden") {
            opt.patch_golden = std::stol(value());
        } else if (arg == "--formula") {
            opt.formula_text = value();
        } else if (arg == "--formula-file") {
            opt.formula_file = value();
        } else if (arg == "--count") {
            opt.count = std::stol(value());
        } else if (arg == "--seed") {
            opt.seed = std::stoull(value());
        } else if (arg == "--verify") {
            opt.verify = true;
        } else if (arg == "--expect") {
            opt.expect = std::stol(value());
        } else if (arg == "--against") {
            opt.against_path = value();
        } else if (arg == "--connect") {
            opt.connect = value();
        } else if (arg == "--retries") {
            opt.retry.max_retries = std::stoi(value());
        } else if (arg == "--timeout-ms") {
            opt.retry.timeout_ms = std::stod(value());
        } else if (arg == "--backoff-ms") {
            opt.retry.base_backoff_ms = std::stod(value());
        } else if (arg == "--max-backoff-ms") {
            opt.retry.max_backoff_ms = std::stod(value());
        } else if (arg == "--retry-seed") {
            opt.retry.seed = std::stoull(value());
        } else {
            usage_error("unknown argument '" + arg + "'");
        }
    }
    const int modes = (opt.generate >= 0 ? 1 : 0) + (opt.patch >= 0 ? 1 : 0) +
                      (opt.patch_golden >= 0 ? 1 : 0) + (opt.verify ? 1 : 0) +
                      (opt.formula_text.empty() ? 0 : 1) +
                      (opt.formula_file.empty() ? 0 : 1) +
                      (opt.connect.empty() ? 0 : 1);
    if (modes != 1) {
        usage_error("pass exactly one of --generate, --patch, --patch-golden, "
                    "--formula, --formula-file, --verify, --connect");
    }
    if (opt.count <= 0) {
        usage_error("--count must be positive");
    }
    return opt;
}

/// Deterministic splitmix64 so the workload is identical across platforms.
std::uint64_t mix(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::string cycle_graph(int n, bool label_ones) {
    std::ostringstream g;
    g << "graph " << n << "\n";
    if (label_ones) {
        for (int u = 0; u < n; ++u) {
            g << "label " << u << " 1\n";
        }
    }
    for (int u = 0; u < n; ++u) {
        g << "edge " << u << " " << (u + 1) % n << "\n";
    }
    return g.str();
}

std::string path_graph(int n) {
    std::ostringstream g;
    g << "graph " << n << "\n";
    for (int u = 0; u + 1 < n; ++u) {
        g << "edge " << u << " " << u + 1 << "\n";
    }
    return g.str();
}

std::string complete_graph(int n) {
    std::ostringstream g;
    g << "graph " << n << "\n";
    for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
            g << "edge " << u << " " << v << "\n";
        }
    }
    return g.str();
}

int generate(long count, std::uint64_t seed) {
    // A small pool so graphs repeat: repeats are what exercise micro-batching
    // and the cross-request memo.
    std::vector<std::string> graphs;
    for (int n = 4; n <= 7; ++n) {
        graphs.push_back(cycle_graph(n, false));
        graphs.push_back(path_graph(n));
    }
    graphs.push_back(cycle_graph(6, true));
    graphs.push_back(complete_graph(4));

    const std::vector<std::string> machines = {"allsel", "eulerian",
                                               "coloring2", "coloring3"};
    // Formulas that stay inside the model checker's SO-universe guard at
    // these graph sizes: FO sentences plus the monadic-SO colorability pair.
    // Sentences quantifying a *binary* relation (not_all_selected,
    // hamiltonian) need |domain|^2 <= 24 and would just error out here.
    const std::vector<std::string> formulas = {"all_selected", "two_colorable",
                                               "three_colorable", "random"};
    const std::vector<std::string> problems = {"eulerian", "coloring",
                                               "hamiltonian"};

    std::uint64_t state = seed;
    for (long i = 0; i < count; ++i) {
        const std::string& graph =
            graphs[mix(state) % graphs.size()];
        const std::string payload = obs::json_escape(graph);
        std::ostringstream line;
        switch (mix(state) % 16) {
        case 0:
            line << "{\"type\":\"stats\",\"id\":" << i << "}";
            break;
        case 1:
            line << "{\"type\":\"health\",\"id\":" << i << "}";
            break;
        case 2:
            line << "{\"type\":\"oracle_check\",\"id\":" << i
                 << ",\"check\":\"eulerian-vs-bruteforce\",\"seed\":"
                 << (1 + mix(state) % 3) << ",\"instances\":5}";
            break;
        case 3:
        case 4:
        case 5:
        {
            const std::string& formula = formulas[mix(state) % formulas.size()];
            line << "{\"type\":\"logic\",\"id\":" << i << ",\"formula\":\""
                 << formula << "\"";
            if (formula == "random") {
                line << ",\"fseed\":" << mix(state) % 64;
            }
            line << ",\"graph\":\"" << payload << "\"}";
            break;
        }
        case 6:
        case 7:
        case 8:
            line << "{\"type\":\"decide\",\"id\":" << i << ",\"problem\":\""
                 << problems[mix(state) % problems.size()]
                 << "\",\"k\":" << (2 + mix(state) % 3) << ",\"graph\":\""
                 << payload << "\"}";
            break;
        default: {
            const std::string& machine = machines[mix(state) % machines.size()];
            const bool decider = machine == "allsel" || machine == "eulerian";
            line << "{\"type\":\"game\",\"id\":" << i << ",\"machine\":\""
                 << machine << "\",\"layers\":" << (decider ? 0 : 1)
                 << ",\"sigma\":true,\"ids\":\""
                 << (mix(state) % 2 ? "global" : "local") << "\",\"graph\":\""
                 << payload << "\"}";
            break;
        }
        }
        std::cout << line.str() << "\n";
    }
    return 0;
}

/// Emit `count` eval lines carrying one user-written formula, each against a
/// graph from the --generate pool.  The daemon does the real work — parse,
/// classify, price, evaluate — so a syntax error comes back as one
/// ProtocolError line with the frontend's line/column, not a client crash.
int generate_eval(const std::string& formula, long count, std::uint64_t seed) {
    std::vector<std::string> graphs;
    for (int n = 4; n <= 7; ++n) {
        graphs.push_back(cycle_graph(n, false));
        graphs.push_back(path_graph(n));
    }
    graphs.push_back(cycle_graph(6, true));
    graphs.push_back(complete_graph(4));

    const std::string escaped = obs::json_escape(formula);
    std::uint64_t state = seed;
    for (long i = 0; i < count; ++i) {
        const std::string& graph = graphs[mix(state) % graphs.size()];
        std::cout << "{\"type\":\"eval\",\"id\":" << i << ",\"formula\":\""
                  << escaped << "\",\"graph\":\"" << obs::json_escape(graph)
                  << "\"}\n";
    }
    return 0;
}

/// Whole-file read for --formula-file, with the trailing newline(s) trimmed:
/// the wire carries the formula as one JSON string and the surface syntax is
/// newline-insensitive anyway.
std::string read_formula_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "lph_client: cannot read --formula-file " << path << "\n";
        std::exit(2);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
        text.pop_back();
    }
    return text;
}

std::string render_ops(const std::vector<service::PatchOp>& ops) {
    std::ostringstream out;
    out << '[';
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const service::PatchOp& op = ops[i];
        out << (i ? "," : "") << "{\"op\":\"" << service::to_string(op.kind)
            << '"';
        switch (op.kind) {
        case service::PatchOp::Kind::AddEdge:
        case service::PatchOp::Kind::RemoveEdge:
            out << ",\"u\":" << op.u << ",\"v\":" << op.v;
            break;
        case service::PatchOp::Kind::Relabel:
            out << ",\"u\":" << op.u << ",\"label\":\"" << op.label << '"';
            break;
        case service::PatchOp::Kind::AddNode:
            out << ",\"label\":\"" << op.label << '"';
            break;
        case service::PatchOp::Kind::RemoveNode:
            out << ",\"u\":" << op.u;
            break;
        }
        out << '}';
    }
    out << ']';
    return out.str();
}

/// The seeded incremental-serving workload (and its full-recompute golden
/// twin).  Both modes walk the identical op sequence over a client-side
/// mirror of the resident graph; the digests the server will echo are
/// recomputed locally (fnv1a64 over graph_to_text, the wire's own scheme),
/// so the patch stream can reference them without ever reading a response.
/// The base cycle stays intact — chords toggle, labels flip, and grown nodes
/// hang off it by one edge (removed last-in-first-out) — so every queried
/// graph is connected and every line earns a verdict to compare.
int generate_patch(long count, std::uint64_t seed, bool golden) {
    // A one-layer game enumerates 2^n certificate leaves, so the workload
    // keeps n small: a 10-cycle plus at most 2 grown nodes.  The layers-0
    // deciders are linear and dominate the mix.
    constexpr NodeId kBase = 10; // cycle nodes; chords stay inside the cycle
    constexpr std::size_t kMaxGrown = 2;
    LabeledGraph mirror;
    for (NodeId u = 0; u < kBase; ++u) {
        mirror.add_node("1");
    }
    for (NodeId u = 0; u < kBase; ++u) {
        mirror.add_edge(u, (u + 1) % kBase);
    }
    std::string canonical = graph_to_text(mirror);
    std::uint64_t digest = service::fnv1a64(canonical);

    if (!golden) {
        std::cout << "{\"type\":\"graph_register\",\"id\":0,\"graph\":\""
                  << obs::json_escape(canonical) << "\"}\n";
    }

    std::vector<NodeId> grown_anchor; // anchor of each grown node, LIFO
    std::uint64_t state = seed;
    for (long i = 1; i < count; ++i) {
        // One query flavor per line, drawn before the ops so both modes
        // consume the stream identically.
        const std::uint64_t qpick = mix(state) % 100;
        const char* machine = "eulerian";
        int layers = 0;
        if (qpick < 20) {
            machine = "allsel";
        } else if (qpick < 30) {
            machine = "coloring2";
            layers = 1;
        }

        const bool plain_query = i % 8 == 0; // digest-reference game line
        std::vector<service::PatchOp> ops;
        if (!plain_query) {
            const std::uint64_t pick = mix(state) % 100;
            if (pick < 55) {
                // Chord toggle: endpoints at cyclic distance >= 2, so the
                // base cycle is never cut.
                const NodeId u = static_cast<NodeId>(mix(state) % kBase);
                const NodeId v = static_cast<NodeId>(
                    (u + 2 + mix(state) % (kBase - 3)) % kBase);
                service::PatchOp op;
                op.kind = mirror.has_edge(u, v)
                              ? service::PatchOp::Kind::RemoveEdge
                              : service::PatchOp::Kind::AddEdge;
                op.u = std::min(u, v);
                op.v = std::max(u, v);
                ops.push_back(op);
            } else if (pick < 75) {
                service::PatchOp op;
                op.kind = service::PatchOp::Kind::Relabel;
                op.u = static_cast<NodeId>(mix(state) % mirror.num_nodes());
                op.label = mix(state) % 2 ? "1" : "0";
                ops.push_back(op);
            } else if (grown_anchor.empty() ||
                       (pick < 90 && grown_anchor.size() < kMaxGrown)) {
                // Grow: add a node and wire it to the cycle in one patch, so
                // the graph never serves a query disconnected.
                const NodeId anchor = static_cast<NodeId>(mix(state) % kBase);
                service::PatchOp add;
                add.kind = service::PatchOp::Kind::AddNode;
                add.label = "1";
                service::PatchOp wire_up;
                wire_up.kind = service::PatchOp::Kind::AddEdge;
                wire_up.u = static_cast<NodeId>(mirror.num_nodes());
                wire_up.v = anchor;
                ops.push_back(add);
                ops.push_back(wire_up);
                grown_anchor.push_back(anchor);
            } else {
                // Shrink the most recent growth: detach, then remove.  LIFO
                // keeps the victim at the highest id, so no renumbering.
                const NodeId victim =
                    static_cast<NodeId>(mirror.num_nodes() - 1);
                service::PatchOp cut;
                cut.kind = service::PatchOp::Kind::RemoveEdge;
                cut.u = victim;
                cut.v = grown_anchor.back();
                service::PatchOp drop;
                drop.kind = service::PatchOp::Kind::RemoveNode;
                drop.u = victim;
                ops.push_back(cut);
                ops.push_back(drop);
                grown_anchor.pop_back();
            }
        }

        const std::uint64_t ref = digest; // pre-patch: what the request names
        for (const service::PatchOp& op : ops) {
            service::apply_patch_op(mirror, op);
        }
        if (!ops.empty()) {
            canonical = graph_to_text(mirror);
            digest = service::fnv1a64(canonical);
        }

        std::ostringstream line;
        if (golden) {
            line << "{\"type\":\"game\",\"id\":" << i << ",\"machine\":\""
                 << machine << "\",\"layers\":" << layers
                 << ",\"sigma\":true,\"ids\":\"global\",\"graph\":\""
                 << obs::json_escape(canonical) << "\"}";
        } else if (plain_query) {
            line << "{\"type\":\"game\",\"id\":" << i << ",\"machine\":\""
                 << machine << "\",\"layers\":" << layers
                 << ",\"sigma\":true,\"ids\":\"global\",\"digest\":\"" << ref
                 << "\"}";
        } else {
            line << "{\"type\":\"graph_patch\",\"id\":" << i
                 << ",\"digest\":\"" << ref << "\",\"ops\":" << render_ops(ops)
                 << ",\"machine\":\"" << machine << "\",\"layers\":" << layers
                 << ",\"sigma\":true,\"ids\":\"global\"}";
        }
        std::cout << line.str() << "\n";
    }
    return 0;
}

/// The verdict map of a golden (chaos-free) run: id token -> verdict view of
/// every ok response that carries both an id and a verdict.
std::map<std::string, service::VerdictView> load_golden(
    const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "lph_client: cannot read --against file " << path << "\n";
        std::exit(2);
    }
    std::map<std::string, service::VerdictView> golden;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        const auto view = service::parse_verdict(line);
        if (view.has_value() && view->status == "ok" && !view->id.empty() &&
            view->has_verdict) {
            golden[view->id] = *view;
        }
    }
    return golden;
}

int verify(long expect, const std::string& against_path) {
    std::map<std::string, service::VerdictView> golden;
    if (!against_path.empty()) {
        golden = load_golden(against_path);
    }
    long total = 0, ok = 0, errors = 0, rejected = 0, protocol = 0;
    long compared = 0, mismatched = 0;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(std::cin, line)) {
        ++line_number;
        if (line.empty()) {
            continue;
        }
        ++total;
        try {
            const service::JsonValue doc = service::parse_json(line);
            const service::JsonValue* status = doc.find("status");
            if (status == nullptr || !status->is_string()) {
                std::cerr << "lph_client: line " << line_number
                          << ": response has no status\n";
                ++protocol;
                continue;
            }
            if (status->string == "ok") {
                ++ok;
            } else if (status->string == "rejected") {
                ++rejected;
            } else {
                ++errors;
                const service::JsonValue* error = doc.find("error");
                if (error != nullptr && error->is_string() &&
                    error->string == "ProtocolError") {
                    ++protocol;
                }
            }
        } catch (const std::exception& e) {
            std::cerr << "lph_client: line " << line_number
                      << ": unparseable response: " << e.what() << "\n";
            ++protocol;
        }
        if (!golden.empty()) {
            // The resilience contract under test: an ok response under chaos
            // must carry the exact verdict of the chaos-free run.  Errors and
            // rejections are acceptable outcomes; wrong verdicts never are.
            const auto view = service::parse_verdict(line);
            if (view.has_value() && view->status == "ok" &&
                view->has_verdict) {
                const auto it = golden.find(view->id);
                if (it != golden.end()) {
                    ++compared;
                    if (it->second.verdict != view->verdict) {
                        ++mismatched;
                        std::cerr << "lph_client: line " << line_number
                                  << ": id " << view->id << " verdict "
                                  << (view->verdict ? "true" : "false")
                                  << " but golden run says "
                                  << (it->second.verdict ? "true" : "false")
                                  << "\n";
                    }
                }
            }
        }
    }
    std::cerr << "lph_client: " << total << " responses, " << ok << " ok, "
              << errors << " error, " << rejected << " rejected, " << protocol
              << " protocol";
    if (!against_path.empty()) {
        std::cerr << "; " << compared << " verdicts compared, " << mismatched
                  << " mismatched";
    }
    std::cerr << "\n";
    if (protocol > 0 || mismatched > 0) {
        return 1;
    }
    if (expect >= 0 && total != expect) {
        std::cerr << "lph_client: expected " << expect << " responses, got "
                  << total << "\n";
        return 1;
    }
    return 0;
}

/// The id token a response to this request line will echo ("" when the
/// request carries none) — same rendering as the server's parse.
std::string request_id_token(const std::string& line) {
    try {
        const service::JsonValue doc = service::parse_json(line);
        const service::JsonValue* id = doc.find("id");
        if (id == nullptr) {
            return "";
        }
        if (id->is_number()) {
            return id->raw_number;
        }
        if (id->is_string()) {
            return "\"" + obs::json_escape(id->string) + "\"";
        }
    } catch (const std::exception&) {
    }
    return "";
}

int connect_and_relay(const std::string& target,
                      const service::RetryPolicy& policy) {
    const std::size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
        usage_error("--connect expects HOST:PORT");
    }
    const std::string host = target.substr(0, colon);
    const std::uint16_t port =
        static_cast<std::uint16_t>(std::stoul(target.substr(colon + 1)));

    std::vector<std::string> requests;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (!line.empty()) {
            requests.push_back(line);
        }
    }

    service::RetryStats stats;
    // Client-vs-server latency breakdown: the wall clock around the winning
    // attempt, and the server's own stage timings parsed back out of each
    // response.  Both go through the same bucketing, so the percentiles in
    // the summary line are directly comparable; the gap between them is time
    // spent on the socket.
    obs::LogHistogram client_wall_us;
    obs::LogHistogram server_stage_us;
    obs::LogHistogram queue_us, batch_us, exec_us, write_us;
    long timing_violations = 0; // server stage sum > client wall: impossible
    std::unique_ptr<service::TcpClient> client;
    bool ever_connected = false;
    const auto connect = [&]() -> bool {
        if (client != nullptr) {
            return true;
        }
        try {
            client = std::make_unique<service::TcpClient>(host, port);
            if (ever_connected) {
                ++stats.reconnects;
            }
            ever_connected = true;
            return true;
        } catch (const std::exception&) {
            return false;
        }
    };

    const int timeout_ms =
        policy.timeout_ms > 0 ? static_cast<int>(policy.timeout_ms) : 0;
    long abandoned_requests = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const std::string expected_id = request_id_token(requests[i]);
        ++stats.sent;
        bool answered = false;
        for (int attempt = 1; attempt <= policy.max_retries + 1 && !answered;
             ++attempt) {
            if (attempt > 1) {
                ++stats.retries;
                const double delay =
                    service::backoff_delay_ms(policy, i, attempt - 1);
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(delay));
            }
            if (!connect()) {
                continue;
            }
            const auto attempt_start = std::chrono::steady_clock::now();
            if (client->send_line_status(requests[i]) !=
                service::TransportStatus::Ok) {
                client.reset(); // daemon went away mid-send; reconnect
                continue;
            }
            // Read until our response, the timeout, or the peer vanishing.
            // A duplicate answer to an earlier replayed request may arrive
            // first: discard it (first response per id wins — idempotent
            // replay makes the duplicate identical anyway).
            for (;;) {
                std::string response;
                const service::TransportStatus status =
                    client->recv_line_status(response, timeout_ms);
                if (status == service::TransportStatus::TimedOut) {
                    break; // retry
                }
                if (status != service::TransportStatus::Ok) {
                    client.reset(); // connection torn down; reconnect + retry
                    break;
                }
                const auto view = service::parse_verdict(response);
                if (!view.has_value()) {
                    break; // garbled line; resend (chaos on the wire)
                }
                if (!expected_id.empty() && view->id != expected_id) {
                    ++stats.redelivered;
                    continue;
                }
                std::cout << response << "\n";
                const double wall_us =
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - attempt_start)
                        .count();
                client_wall_us.record(wall_us);
                if (const auto timing = service::parse_timing(response)) {
                    server_stage_us.record(
                        static_cast<double>(timing->stage_sum_us()));
                    queue_us.record(static_cast<double>(timing->queue_us));
                    batch_us.record(static_cast<double>(timing->batch_us));
                    exec_us.record(static_cast<double>(timing->exec_us));
                    write_us.record(static_cast<double>(timing->write_us));
                    if (static_cast<double>(timing->stage_sum_us()) >
                        wall_us) {
                        ++timing_violations;
                    }
                }
                answered = true;
                break;
            }
        }
        if (!answered) {
            ++stats.abandoned;
            ++abandoned_requests;
            std::cout << "{"
                      << (expected_id.empty() ? ""
                                              : "\"id\":" + expected_id + ",")
                      << "\"status\":\"error\",\"error\":\"RetriesExhausted\","
                      << "\"detail\":\"client abandoned the request after "
                      << policy.max_retries + 1 << " attempts\"}\n";
        }
    }
    std::cerr << "{\"event\":\"client_retry_stats\",\"sent\":" << stats.sent
              << ",\"retries\":" << stats.retries << ",\"redelivered\":"
              << stats.redelivered << ",\"abandoned\":" << stats.abandoned
              << ",\"reconnects\":" << stats.reconnects << "}\n";
    if (client_wall_us.count() > 0) {
        const auto quartet = [](const obs::LogHistogram& h) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "{\"p50\":%.6g,\"p90\":%.6g,\"p99\":%.6g,"
                          "\"p999\":%.6g}",
                          h.percentile(0.50), h.percentile(0.90),
                          h.percentile(0.99), h.percentile(0.999));
            return std::string(buf);
        };
        std::cerr << "{\"event\":\"client_timing\",\"count\":"
                  << client_wall_us.count() << ",\"client_wall_us\":"
                  << quartet(client_wall_us) << ",\"server_stage_us\":"
                  << quartet(server_stage_us) << ",\"stage_p99_us\":{"
                  << "\"queue\":" << queue_us.percentile(0.99)
                  << ",\"batch\":" << batch_us.percentile(0.99)
                  << ",\"exec\":" << exec_us.percentile(0.99)
                  << ",\"write\":" << write_us.percentile(0.99)
                  << "},\"timing_violations\":" << timing_violations << "}\n";
    }
    // Abandonment is an availability failure the caller may tolerate;
    // failing to reach the daemon at all is not.
    return stats.sent > 0 && abandoned_requests == static_cast<long>(stats.sent)
               ? 1
               : 0;
}

} // namespace

int main(int argc, char** argv) {
    const Options opt = parse_args(argc, argv);
    service::ignore_sigpipe(); // a dead daemon must not kill the client
    if (opt.generate >= 0) {
        return generate(opt.generate, opt.seed);
    }
    if (opt.patch >= 0) {
        return generate_patch(opt.patch, opt.seed, /*golden=*/false);
    }
    if (opt.patch_golden >= 0) {
        return generate_patch(opt.patch_golden, opt.seed, /*golden=*/true);
    }
    if (!opt.formula_text.empty()) {
        return generate_eval(opt.formula_text, opt.count, opt.seed);
    }
    if (!opt.formula_file.empty()) {
        return generate_eval(read_formula_file(opt.formula_file), opt.count,
                             opt.seed);
    }
    if (opt.verify) {
        return verify(opt.expect, opt.against_path);
    }
    return connect_and_relay(opt.connect, opt.retry);
}
