// lph_client: wire-protocol companion to lphd.
//
// Three modes:
//   --generate N [--seed S]    emit N mixed request lines (games, logic,
//                              decisions, oracle checks, stats/health) drawn
//                              from a small seeded graph pool, to stdout —
//                              the smoke-test workload
//   --verify [--expect N]      read response lines from stdin, check every
//                              one parses as a response and none is a
//                              ProtocolError; with --expect, also require
//                              exactly N responses.  Exit 1 on violation
//   --connect HOST:PORT        send stdin's request lines to a running lphd
//                              and print the responses
//
//   lph_client --generate 320 --seed 7 | lphd --pipe | lph_client --verify --expect 320
//
// Exit status: 0 ok; 1 verification failure or connection error; 2 usage.

#include "obs/metrics.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace lph;

struct Options {
    long generate = -1;
    std::uint64_t seed = 1;
    bool verify = false;
    long expect = -1;
    std::string connect;
};

[[noreturn]] void usage_error(const std::string& message) {
    std::cerr << "lph_client: " << message << "\n"
              << "usage: lph_client --generate N [--seed S]\n"
              << "       lph_client --verify [--expect N]\n"
              << "       lph_client --connect HOST:PORT\n";
    std::exit(2);
}

Options parse_args(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage_error(arg + " needs a value");
            }
            return argv[++i];
        };
        if (arg == "--generate") {
            opt.generate = std::stol(value());
        } else if (arg == "--seed") {
            opt.seed = std::stoull(value());
        } else if (arg == "--verify") {
            opt.verify = true;
        } else if (arg == "--expect") {
            opt.expect = std::stol(value());
        } else if (arg == "--connect") {
            opt.connect = value();
        } else {
            usage_error("unknown argument '" + arg + "'");
        }
    }
    const int modes = (opt.generate >= 0 ? 1 : 0) + (opt.verify ? 1 : 0) +
                      (opt.connect.empty() ? 0 : 1);
    if (modes != 1) {
        usage_error("pass exactly one of --generate, --verify, --connect");
    }
    return opt;
}

/// Deterministic splitmix64 so the workload is identical across platforms.
std::uint64_t mix(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::string cycle_graph(int n, bool label_ones) {
    std::ostringstream g;
    g << "graph " << n << "\n";
    if (label_ones) {
        for (int u = 0; u < n; ++u) {
            g << "label " << u << " 1\n";
        }
    }
    for (int u = 0; u < n; ++u) {
        g << "edge " << u << " " << (u + 1) % n << "\n";
    }
    return g.str();
}

std::string path_graph(int n) {
    std::ostringstream g;
    g << "graph " << n << "\n";
    for (int u = 0; u + 1 < n; ++u) {
        g << "edge " << u << " " << u + 1 << "\n";
    }
    return g.str();
}

std::string complete_graph(int n) {
    std::ostringstream g;
    g << "graph " << n << "\n";
    for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
            g << "edge " << u << " " << v << "\n";
        }
    }
    return g.str();
}

int generate(long count, std::uint64_t seed) {
    // A small pool so graphs repeat: repeats are what exercise micro-batching
    // and the cross-request memo.
    std::vector<std::string> graphs;
    for (int n = 4; n <= 7; ++n) {
        graphs.push_back(cycle_graph(n, false));
        graphs.push_back(path_graph(n));
    }
    graphs.push_back(cycle_graph(6, true));
    graphs.push_back(complete_graph(4));

    const std::vector<std::string> machines = {"allsel", "eulerian",
                                               "coloring2", "coloring3"};
    // Formulas that stay inside the model checker's SO-universe guard at
    // these graph sizes: FO sentences plus the monadic-SO colorability pair.
    // Sentences quantifying a *binary* relation (not_all_selected,
    // hamiltonian) need |domain|^2 <= 24 and would just error out here.
    const std::vector<std::string> formulas = {"all_selected", "two_colorable",
                                               "three_colorable", "random"};
    const std::vector<std::string> problems = {"eulerian", "coloring",
                                               "hamiltonian"};

    std::uint64_t state = seed;
    for (long i = 0; i < count; ++i) {
        const std::string& graph =
            graphs[mix(state) % graphs.size()];
        const std::string payload = obs::json_escape(graph);
        std::ostringstream line;
        switch (mix(state) % 16) {
        case 0:
            line << "{\"type\":\"stats\",\"id\":" << i << "}";
            break;
        case 1:
            line << "{\"type\":\"health\",\"id\":" << i << "}";
            break;
        case 2:
            line << "{\"type\":\"oracle_check\",\"id\":" << i
                 << ",\"check\":\"eulerian-vs-bruteforce\",\"seed\":"
                 << (1 + mix(state) % 3) << ",\"instances\":5}";
            break;
        case 3:
        case 4:
        case 5:
        {
            const std::string& formula = formulas[mix(state) % formulas.size()];
            line << "{\"type\":\"logic\",\"id\":" << i << ",\"formula\":\""
                 << formula << "\"";
            if (formula == "random") {
                line << ",\"fseed\":" << mix(state) % 64;
            }
            line << ",\"graph\":\"" << payload << "\"}";
            break;
        }
        case 6:
        case 7:
        case 8:
            line << "{\"type\":\"decide\",\"id\":" << i << ",\"problem\":\""
                 << problems[mix(state) % problems.size()]
                 << "\",\"k\":" << (2 + mix(state) % 3) << ",\"graph\":\""
                 << payload << "\"}";
            break;
        default: {
            const std::string& machine = machines[mix(state) % machines.size()];
            const bool decider = machine == "allsel" || machine == "eulerian";
            line << "{\"type\":\"game\",\"id\":" << i << ",\"machine\":\""
                 << machine << "\",\"layers\":" << (decider ? 0 : 1)
                 << ",\"sigma\":true,\"ids\":\""
                 << (mix(state) % 2 ? "global" : "local") << "\",\"graph\":\""
                 << payload << "\"}";
            break;
        }
        }
        std::cout << line.str() << "\n";
    }
    return 0;
}

int verify(long expect) {
    long total = 0, ok = 0, errors = 0, rejected = 0, protocol = 0;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(std::cin, line)) {
        ++line_number;
        if (line.empty()) {
            continue;
        }
        ++total;
        try {
            const service::JsonValue doc = service::parse_json(line);
            const service::JsonValue* status = doc.find("status");
            if (status == nullptr || !status->is_string()) {
                std::cerr << "lph_client: line " << line_number
                          << ": response has no status\n";
                ++protocol;
                continue;
            }
            if (status->string == "ok") {
                ++ok;
            } else if (status->string == "rejected") {
                ++rejected;
            } else {
                ++errors;
                const service::JsonValue* error = doc.find("error");
                if (error != nullptr && error->is_string() &&
                    error->string == "ProtocolError") {
                    ++protocol;
                }
            }
        } catch (const std::exception& e) {
            std::cerr << "lph_client: line " << line_number
                      << ": unparseable response: " << e.what() << "\n";
            ++protocol;
        }
    }
    std::cerr << "lph_client: " << total << " responses, " << ok << " ok, "
              << errors << " error, " << rejected << " rejected, " << protocol
              << " protocol\n";
    if (protocol > 0) {
        return 1;
    }
    if (expect >= 0 && total != expect) {
        std::cerr << "lph_client: expected " << expect << " responses, got "
                  << total << "\n";
        return 1;
    }
    return 0;
}

int connect_and_relay(const std::string& target) {
    const std::size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
        usage_error("--connect expects HOST:PORT");
    }
    try {
        service::TcpClient client(target.substr(0, colon),
                                  static_cast<std::uint16_t>(
                                      std::stoul(target.substr(colon + 1))));
        long sent = 0;
        std::string line;
        while (std::getline(std::cin, line)) {
            if (line.empty()) {
                continue;
            }
            client.send_line(line);
            ++sent;
        }
        for (long i = 0; i < sent; ++i) {
            std::string response;
            if (!client.recv_line(response)) {
                std::cerr << "lph_client: connection closed after " << i
                          << " of " << sent << " responses\n";
                return 1;
            }
            std::cout << response << "\n";
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "lph_client: " << e.what() << "\n";
        return 1;
    }
}

} // namespace

int main(int argc, char** argv) {
    const Options opt = parse_args(argc, argv);
    if (opt.generate >= 0) {
        return generate(opt.generate, opt.seed);
    }
    if (opt.verify) {
        return verify(opt.expect);
    }
    return connect_and_relay(opt.connect);
}
