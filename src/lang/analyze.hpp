#pragma once

#include "logic/classify.hpp"
#include "logic/formula.hpp"

#include <cstddef>
#include <string>

namespace lph {
namespace lang {

/// Everything the admission controller (and the tools' human output) wants
/// to know about a parsed formula: the Σℓ/Πℓ position from the classifier
/// plus the size features the cost model consumes.
struct FormulaAnalysis {
    FormulaClass cls;

    /// sigma_lfo_level / pi_lfo_level of the formula (-1 when not on that
    /// side of the local hierarchy; both 0 for an LFO formula).
    int sigma_level = -1;
    int pi_level = -1;

    /// Locality radius: the nesting depth of bounded quantifiers (bf_depth).
    int radius = 0;

    std::size_t size = 0;              ///< AST node count
    std::size_t fo_quantifiers = 0;    ///< unbounded exists/forall
    std::size_t conn_quantifiers = 0;  ///< bounded exists~/forall~
    std::size_t so_quantifiers = 0;    ///< EXISTS/FORALL (count, not blocks)
    std::size_t max_so_arity = 0;
    std::size_t total_so_arity = 0;    ///< sum of SO arities (universe bits)

    /// Human-readable hierarchy position: "Sigma_3^LFO", "Pi_4^LFO", "LFO",
    /// "FO", or "SO" when outside the classified fragments.
    std::string class_name() const;
};

FormulaAnalysis analyze(const Formula& phi);

} // namespace lang
} // namespace lph
