#include "lang/analyze.hpp"

#include <algorithm>

namespace lph {
namespace lang {

namespace {

void count_quantifiers(const Formula& phi, FormulaAnalysis& out) {
    out.size += 1;
    switch (phi->kind) {
    case FormulaKind::ExistsFO:
    case FormulaKind::ForallFO:
        out.fo_quantifiers += 1;
        break;
    case FormulaKind::ExistsConn:
    case FormulaKind::ForallConn:
        out.conn_quantifiers += 1;
        break;
    case FormulaKind::ExistsSO:
    case FormulaKind::ForallSO:
        out.so_quantifiers += 1;
        out.max_so_arity = std::max(out.max_so_arity, phi->arity);
        out.total_so_arity += phi->arity;
        break;
    default:
        break;
    }
    for (const auto& child : phi->children) {
        count_quantifiers(child, out);
    }
}

} // namespace

std::string FormulaAnalysis::class_name() const {
    if (sigma_level == 0) {
        return cls.local_fo ? "LFO" : "FO";
    }
    if (sigma_level > 0) {
        return "Sigma_" + std::to_string(sigma_level) + "^LFO";
    }
    if (pi_level > 0) {
        return "Pi_" + std::to_string(pi_level) + "^LFO";
    }
    if (cls.first_order) {
        return "FO";
    }
    if (cls.matrix_is_fo) {
        return (cls.starts_existential ? "Sigma_" : "Pi_") +
               std::to_string(cls.so_blocks) + "^FO";
    }
    return "SO";
}

FormulaAnalysis analyze(const Formula& phi) {
    FormulaAnalysis out;
    out.cls = classify(phi);
    out.sigma_level = sigma_lfo_level(phi);
    out.pi_level = pi_lfo_level(phi);
    out.radius = out.cls.bf_depth;
    count_quantifiers(phi, out);
    return out;
}

} // namespace lang
} // namespace lph
