#include "lang/lexer.hpp"

namespace lph {
namespace lang {

namespace {

bool is_ident_start(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == '$';
}

bool is_ident_char(char c) {
    return is_ident_start(c) || (c >= '0' && c <= '9') || c == '\'';
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

} // namespace

const char* to_string(TokenKind kind) {
    switch (kind) {
    case TokenKind::Ident: return "identifier";
    case TokenKind::Number: return "number";
    case TokenKind::ExistsFO: return "'exists'";
    case TokenKind::ForallFO: return "'forall'";
    case TokenKind::ExistsSO: return "'EXISTS'";
    case TokenKind::ForallSO: return "'FORALL'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::Comma: return "','";
    case TokenKind::Dot: return "'.'";
    case TokenKind::Tilde: return "'~'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Bang: return "'!'";
    case TokenKind::Equals: return "'='";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::Amp: return "'&'";
    case TokenKind::Implies: return "'->'";
    case TokenKind::Iff: return "'<->'";
    case TokenKind::ArrowIdx: return "'->K'";
    case TokenKind::End: return "end of input";
    }
    return "token";
}

std::vector<Token> lex(const std::string& text, const LexLimits& limits) {
    if (text.size() > limits.max_text_bytes) {
        throw parse_error(1, 1,
                          "formula text of " + std::to_string(text.size()) +
                              " bytes exceeds the limit of " +
                              std::to_string(limits.max_text_bytes));
    }
    std::vector<Token> tokens;
    std::size_t line = 1;
    std::size_t column = 1;
    std::size_t pos = 0;
    const auto peek = [&](std::size_t ahead) -> char {
        return pos + ahead < text.size() ? text[pos + ahead] : '\0';
    };
    const auto advance = [&](std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
            if (text[pos] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
            ++pos;
        }
    };
    while (pos < text.size()) {
        const char c = text[pos];
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance(1);
            continue;
        }
        Token token;
        token.line = line;
        token.column = column;
        if (is_ident_start(c)) {
            std::size_t end = pos;
            while (end < text.size() && is_ident_char(text[end])) {
                ++end;
            }
            token.text = text.substr(pos, end - pos);
            if (token.text == "exists") {
                token.kind = TokenKind::ExistsFO;
            } else if (token.text == "forall") {
                token.kind = TokenKind::ForallFO;
            } else if (token.text == "EXISTS") {
                token.kind = TokenKind::ExistsSO;
            } else if (token.text == "FORALL") {
                token.kind = TokenKind::ForallSO;
            } else {
                token.kind = TokenKind::Ident;
            }
            advance(end - pos);
            tokens.push_back(std::move(token));
            continue;
        }
        if (is_digit(c)) {
            std::size_t end = pos;
            while (end < text.size() && is_digit(text[end])) {
                ++end;
            }
            token.kind = TokenKind::Number;
            token.text = text.substr(pos, end - pos);
            // Arities and relation indices are tiny; 6 digits is already
            // absurd, and the cap keeps stoul overflow off the table.
            if (token.text.size() > 6) {
                throw parse_error(line, column,
                                  "number '" + token.text + "' is too large");
            }
            token.number = std::stoul(token.text);
            advance(end - pos);
            tokens.push_back(std::move(token));
            continue;
        }
        switch (c) {
        case '(': token.kind = TokenKind::LParen; advance(1); break;
        case ')': token.kind = TokenKind::RParen; advance(1); break;
        case ',': token.kind = TokenKind::Comma; advance(1); break;
        case '.': token.kind = TokenKind::Dot; advance(1); break;
        case '~': token.kind = TokenKind::Tilde; advance(1); break;
        case '/': token.kind = TokenKind::Slash; advance(1); break;
        case '!': token.kind = TokenKind::Bang; advance(1); break;
        case '=': token.kind = TokenKind::Equals; advance(1); break;
        case '|': token.kind = TokenKind::Pipe; advance(1); break;
        case '&': token.kind = TokenKind::Amp; advance(1); break;
        case '<':
            if (peek(1) != '-' || peek(2) != '>') {
                throw parse_error(line, column, "expected '<->' after '<'");
            }
            token.kind = TokenKind::Iff;
            advance(3);
            break;
        case '-': {
            if (peek(1) != '>') {
                throw parse_error(line, column, "expected '->' after '-'");
            }
            if (is_digit(peek(2))) {
                // "->K" with no intervening space is the binary-relation
                // atom arrow (x ->1 y), exactly as the printer emits it; a
                // spaced "-> 1" stays an implication followed by a number.
                std::size_t end = pos + 2;
                while (end < text.size() && is_digit(text[end])) {
                    ++end;
                }
                token.kind = TokenKind::ArrowIdx;
                token.text = text.substr(pos + 2, end - pos - 2);
                if (token.text.size() > 6) {
                    throw parse_error(line, column,
                                      "relation index '" + token.text +
                                          "' is too large");
                }
                token.number = std::stoul(token.text);
                advance(end - pos);
            } else {
                token.kind = TokenKind::Implies;
                advance(2);
            }
            break;
        }
        default:
            throw parse_error(line, column,
                              std::string("unexpected character '") + c + "'");
        }
        tokens.push_back(std::move(token));
    }
    Token end;
    end.kind = TokenKind::End;
    end.line = line;
    end.column = column;
    tokens.push_back(std::move(end));
    return tokens;
}

} // namespace lang
} // namespace lph
