#pragma once

#include "lang/lexer.hpp"
#include "logic/formula.hpp"

namespace lph {
namespace lang {

/// Hard caps enforced while parsing untrusted formula text.  Defaults are
/// generous enough for every corpus formula (including the exists_within
/// expansions, which mint many $fresh variables) while keeping hostile
/// inputs from exhausting the stack or the evaluator's environment.
struct ParseLimits {
    LexLimits lex;
    std::size_t max_depth = 256;      ///< recursive-descent nesting depth
    std::size_t max_variables = 512;  ///< distinct FO + SO variable names
};

/// Parses the textual LFO/MSO surface syntax into the logic AST.
///
/// Grammar (lowest precedence first; the printer's output is fully
/// parenthesised, so any precedence choice round-trips — these rules only
/// matter for hand-written input):
///
///   formula  :=  iff
///   iff      :=  implies ( "<->" implies )*          left-associative
///   implies  :=  or ( "->" implies )?                right-associative
///   or       :=  and ( "|" and )*                    left-associative
///   and      :=  unary ( "&" unary )*                left-associative
///   unary    :=  "!" unary | quantifier | primary
///   quantifier :=
///       "exists" x "." unary     | "forall" x "." unary
///     | "exists" x "~" y "." unary   | "forall" x "~" y "." unary
///     | "EXISTS" R "/" k "." unary   | "FORALL" R "/" k "." unary
///   primary  :=  "T" | "F" | "(" formula ")"
///     | "O" digits "(" x ")"                         unary atom O_i(x)
///     | x "->" digits y                              binary atom x ->_i y
///       (the digits must touch the arrow: "x ->1 y"; "a -> 1 = 1" is an
///        implication)
///     | x "=" y
///     | R "(" x ("," x)* ")"                         second-order atom
///
/// A quantifier body is ONE unary-level unit — an atom, a negation, a
/// parenthesised formula, or another quantifier.  This matches the printer,
/// which never parenthesises quantifier bodies: "(forall x. A <-> B)" is
/// "(forall x. A) <-> B"; write "forall x. (A <-> B)" for the wide scope.
/// "T" and "F" are
/// reserved constants; identifiers of the shape O<digits> are reserved for
/// unary atoms.  Throws parse_error (with 1-based line/column) on syntax
/// errors or any ParseLimits violation.
Formula parse_formula(const std::string& text, const ParseLimits& limits = {});

/// Structural (bit-exact) AST equality — the parse∘print == id predicate.
bool ast_identical(const Formula& a, const Formula& b);

} // namespace lang
} // namespace lph
