#pragma once

#include "core/check.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace lph {
namespace lang {

/// A parse failure with its source position.  `what()` carries the rendered
/// "line L, col C: message" text; the structured fields let tools (and the
/// error-position tests) point at the offending character without re-parsing
/// the message.
class parse_error : public precondition_error {
public:
    parse_error(std::size_t line, std::size_t column, const std::string& message)
        : precondition_error("line " + std::to_string(line) + ", col " +
                             std::to_string(column) + ": " + message),
          line_(line),
          column_(column) {}

    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }

private:
    std::size_t line_;
    std::size_t column_;
};

/// Token kinds of the textual LFO/MSO surface syntax.  The alphabet matches
/// the logic printer (lph::to_string) exactly, so every printed formula
/// lexes back; see parser.hpp for the grammar.
enum class TokenKind {
    Ident,     ///< variable / relation-variable name
    Number,    ///< arity digits after '/' in an SO quantifier
    ExistsFO,  ///< "exists"
    ForallFO,  ///< "forall"
    ExistsSO,  ///< "EXISTS"
    ForallSO,  ///< "FORALL"
    LParen,
    RParen,
    Comma,
    Dot,
    Tilde,
    Slash,
    Bang,
    Equals,    ///< '='
    Pipe,      ///< '|'
    Amp,       ///< '&'
    Implies,   ///< "->" (not followed by a digit)
    Iff,       ///< "<->"
    ArrowIdx,  ///< "->K": the binary-relation atom arrow, K in `number`
    End,
};

const char* to_string(TokenKind kind);

struct Token {
    TokenKind kind = TokenKind::End;
    std::string text;          ///< identifier name / digit run
    std::size_t number = 0;    ///< Number and ArrowIdx: the parsed digits
    std::size_t line = 1;      ///< 1-based source position of the first char
    std::size_t column = 1;
};

/// Size guards applied before and during lexing; the parser adds its own
/// depth/variable limits on top (parser.hpp).
struct LexLimits {
    std::size_t max_text_bytes = 1 << 16;
};

/// Tokenizes `text` (whitespace including newlines separates tokens; there
/// are no comments).  Throws parse_error on oversized input or any character
/// outside the surface alphabet.
std::vector<Token> lex(const std::string& text, const LexLimits& limits = {});

} // namespace lang
} // namespace lph
