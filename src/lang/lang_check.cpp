// Differential checks for the language frontend.
//
// lang-roundtrip: the printed form of a random sentence must parse back to a
// bit-identical AST, and re-printing the parse must reproduce the text — the
// parse∘print == id guarantee the frontend advertises.
//
// lang-eval-vs-corpus: the paper's corpus formulas (plus random sentences)
// are pretty-printed, re-parsed, and evaluated on a random graph structure;
// the re-parsed formula must produce exactly the original's outcome —
// including throwing the identical SO-universe guard where the original
// throws (binary-SO corpus formulas trip SOPolicy::max_universe_size on all
// but the tiniest graphs, and identical refusals are agreement).

#include "lang/lang_check.hpp"

#include "lang/parser.hpp"
#include "logic/eval.hpp"
#include "logic/examples.hpp"
#include "oracle/generators.hpp"
#include "oracle/harness.hpp"
#include "structure/graph_structure.hpp"

#include <mutex>
#include <utility>

namespace lph {
namespace lang {

namespace {

std::string param(const ReproCase& r, const std::string& key,
                  const std::string& fallback) {
    const auto it = r.params.find(key);
    return it != r.params.end() ? it->second : fallback;
}

FormulaGenOptions roundtrip_gen_options(const ReproCase& r) {
    FormulaGenOptions opt;
    opt.max_quantifiers = std::stoi(param(r, "max_quantifiers", "4"));
    opt.max_depth = std::stoi(param(r, "max_depth", "4"));
    opt.allow_so = param(r, "allow_so", "0") == "1";
    return opt;
}

Formula rebuild_formula(const ReproCase& r) {
    namespace pf = paper_formulas;
    const std::string name = param(r, "formula", "random");
    if (name == "all_selected") return pf::all_selected();
    if (name == "two_colorable") return pf::two_colorable();
    if (name == "three_colorable") return pf::three_colorable();
    if (name == "not_all_selected") return pf::exists_unselected_node();
    if (name == "non_three_colorable") return pf::non_three_colorable();
    if (name == "hamiltonian") return pf::hamiltonian();
    if (name == "non_hamiltonian") return pf::non_hamiltonian();
    Rng rng(std::stoull(param(r, "fseed", "1")));
    return random_sentence(rng, roundtrip_gen_options(r));
}

ReproCase generate_roundtrip_case(Rng& rng) {
    ReproCase r;
    // The check is purely syntactic; a 1-node placeholder keeps the repro
    // format happy without suggesting the graph matters.
    GraphGenOptions gopt;
    gopt.min_nodes = 1;
    gopt.max_nodes = 1;
    gopt.max_extra_edges = 0;
    r.graph = random_graph_instance(rng, gopt);
    r.params["formula"] = "random";
    r.params["fseed"] = std::to_string(rng.uniform(0, 1u << 30));
    r.params["max_quantifiers"] = std::to_string(rng.uniform(1, 6));
    r.params["max_depth"] = std::to_string(rng.uniform(1, 5));
    r.params["allow_so"] = rng.chance(0.4) ? "1" : "0";
    return r;
}

std::optional<std::string> compare_roundtrip(const ReproCase& r) {
    const Formula original = rebuild_formula(r);
    const std::string text = to_string(original);
    Formula reparsed;
    try {
        reparsed = parse_formula(text);
    } catch (const parse_error& e) {
        return "printed formula failed to parse: " + std::string(e.what()) +
               "; text: " + text;
    }
    if (!ast_identical(original, reparsed)) {
        return "parse(print(phi)) is not bit-identical to phi; text: " + text +
               "; reparsed: " + to_string(reparsed);
    }
    if (to_string(reparsed) != text) {
        return "print(parse(text)) != text; text: " + text +
               "; reprint: " + to_string(reparsed);
    }
    return std::nullopt;
}

ReproCase generate_eval_case(Rng& rng) {
    // Per-formula node caps: SO enumeration is 2^|universe| per quantifier
    // block, so the deep-alternation corpus formulas only finish (instead of
    // tripping the universe guard, which the check also accepts as agreement)
    // on the tiniest structures.
    struct CorpusEntry {
        const char* name;
        std::size_t max_nodes;
    };
    static const CorpusEntry kCorpus[] = {
        {"all_selected", 4},        {"two_colorable", 3},
        {"three_colorable", 2},     {"not_all_selected", 1},
        {"hamiltonian", 1},         {"non_hamiltonian", 1},
        {"non_three_colorable", 1},
    };
    ReproCase r;
    GraphGenOptions gopt;
    gopt.min_nodes = 1;
    gopt.max_extra_edges = 2;
    gopt.labels = GraphGenOptions::Labels::ZeroOrOne;
    if (rng.chance(0.5)) {
        const CorpusEntry& entry = kCorpus[rng.index(7)];
        r.params["formula"] = entry.name;
        gopt.max_nodes = entry.max_nodes;
    } else {
        r.params["formula"] = "random";
        r.params["fseed"] = std::to_string(rng.uniform(0, 1u << 30));
        r.params["max_quantifiers"] = "3";
        r.params["max_depth"] = "3";
        r.params["allow_so"] = rng.chance(0.5) ? "1" : "0";
        gopt.max_nodes = 4;
    }
    r.graph = random_graph_instance(rng, gopt);
    return r;
}

/// Evaluation outcome including the guard-refusal case: verdicts agree when
/// both sides answer the same boolean or throw the same precondition text.
std::pair<int, std::string> eval_outcome(const Structure& s,
                                         const Formula& phi) {
    try {
        return {satisfies(s, phi) ? 1 : 0, ""};
    } catch (const precondition_error& e) {
        return {2, e.what()};
    }
}

std::optional<std::string> compare_eval_vs_corpus(const ReproCase& r) {
    const Formula original = rebuild_formula(r);
    const std::string text = to_string(original);
    Formula reparsed;
    try {
        reparsed = parse_formula(text);
    } catch (const parse_error& e) {
        return "corpus formula '" + param(r, "formula", "random") +
               "' failed to parse: " + std::string(e.what());
    }
    const GraphStructure gs(r.graph);
    const auto expected = eval_outcome(gs.structure(), original);
    const auto actual = eval_outcome(gs.structure(), reparsed);
    if (expected != actual) {
        auto render = [](const std::pair<int, std::string>& o) {
            return o.first == 2 ? "throw(" + o.second + ")"
                                : std::string(o.first == 1 ? "true" : "false");
        };
        return "formula '" + param(r, "formula", "random") + "': original " +
               render(expected) + " but re-parsed " + render(actual);
    }
    return std::nullopt;
}

} // namespace

void register_lang_checks() {
    static std::once_flag once;
    std::call_once(once, [] {
        RegisteredCheck roundtrip;
        roundtrip.name = "lang-roundtrip";
        roundtrip.generate = generate_roundtrip_case;
        roundtrip.compare = compare_roundtrip;
        register_check(roundtrip);
        RegisteredCheck eval_check;
        eval_check.name = "lang-eval-vs-corpus";
        eval_check.generate = generate_eval_case;
        eval_check.compare = compare_eval_vs_corpus;
        register_check(eval_check);
    });
}

} // namespace lang
} // namespace lph
