#include "lang/parser.hpp"

namespace lph {
namespace lang {

namespace {

/// Identifiers of the shape O<digits> are the unary-atom spelling and can
/// never name a variable or relation variable.
bool is_unary_atom_name(const std::string& name) {
    if (name.size() < 2 || name[0] != 'O') {
        return false;
    }
    for (std::size_t i = 1; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') {
            return false;
        }
    }
    return true;
}

bool is_reserved_name(const std::string& name) {
    return name == "T" || name == "F" || is_unary_atom_name(name);
}

class Parser {
public:
    Parser(std::vector<Token> tokens, const ParseLimits& limits)
        : tokens_(std::move(tokens)), limits_(limits) {}

    Formula parse() {
        Formula phi = formula();
        expect(TokenKind::End, "after the formula");
        return phi;
    }

private:
    const Token& peek(std::size_t ahead = 0) const {
        const std::size_t i = pos_ + ahead;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    const Token& take() {
        const Token& token = peek();
        if (pos_ + 1 < tokens_.size()) {
            ++pos_;
        }
        return token;
    }

    bool accept(TokenKind kind) {
        if (peek().kind != kind) {
            return false;
        }
        take();
        return true;
    }

    const Token& expect(TokenKind kind, const char* context) {
        const Token& token = peek();
        if (token.kind != kind) {
            fail(token, std::string("expected ") + lang::to_string(kind) + " " +
                            context + ", found " + describe(token));
        }
        return take();
    }

    [[noreturn]] static void fail(const Token& at, const std::string& message) {
        throw parse_error(at.line, at.column, message);
    }

    static std::string describe(const Token& token) {
        if (token.kind == TokenKind::Ident) {
            return "'" + token.text + "'";
        }
        return lang::to_string(token.kind);
    }

    /// RAII nesting guard: every self-recursive production passes through
    /// formula() or unary(), so guarding those two bounds the parse stack.
    struct DepthGuard {
        DepthGuard(Parser& parser, const Token& at) : parser_(parser) {
            if (++parser_.depth_ > parser_.limits_.max_depth) {
                fail(at, "formula nesting deeper than " +
                             std::to_string(parser_.limits_.max_depth) +
                             " levels");
            }
        }
        ~DepthGuard() { --parser_.depth_; }
        Parser& parser_;
    };

    std::string variable(const char* role) {
        const Token& token = expect(TokenKind::Ident, role);
        if (is_reserved_name(token.text)) {
            fail(token, "'" + token.text + "' is reserved and cannot name " +
                            std::string(role + 3));  // strip "as "
        }
        if (names_.insert(token.text).second &&
            names_.size() > limits_.max_variables) {
            fail(token, "more than " +
                            std::to_string(limits_.max_variables) +
                            " distinct variable names");
        }
        return token.text;
    }

    Formula formula() {
        DepthGuard guard(*this, peek());
        // iff: left-associative fold, lowest precedence.
        Formula left = implies_chain();
        while (accept(TokenKind::Iff)) {
            left = fl::iff(left, implies_chain());
        }
        return left;
    }

    Formula implies_chain() {
        Formula left = or_chain();
        if (accept(TokenKind::Implies)) {
            // Right-associative: a -> b -> c is a -> (b -> c).
            return fl::implies(left, implies_chain());
        }
        return left;
    }

    Formula or_chain() {
        Formula left = and_chain();
        while (accept(TokenKind::Pipe)) {
            left = fl::disj(left, and_chain());
        }
        return left;
    }

    Formula and_chain() {
        Formula left = unary();
        while (accept(TokenKind::Amp)) {
            left = fl::conj(left, unary());
        }
        return left;
    }

    Formula unary() {
        DepthGuard guard(*this, peek());
        const Token& token = peek();
        switch (token.kind) {
        case TokenKind::Bang:
            take();
            return fl::negate(unary());
        case TokenKind::ExistsFO:
        case TokenKind::ForallFO:
            return fo_quantifier(take().kind);
        case TokenKind::ExistsSO:
        case TokenKind::ForallSO:
            return so_quantifier(take().kind);
        default:
            return primary();
        }
    }

    Formula fo_quantifier(TokenKind kind) {
        const std::string x = variable("as the bound variable");
        if (accept(TokenKind::Tilde)) {
            const Token& anchor_at = peek();
            const std::string y = variable("as the anchor variable");
            if (x == y) {
                fail(anchor_at,
                     "bound and anchor variables must differ, both are '" + x +
                         "'");
            }
            expect(TokenKind::Dot, "after the quantified variables");
            Formula body = unary();
            return kind == TokenKind::ExistsFO ? fl::exists_conn(x, y, body)
                                               : fl::forall_conn(x, y, body);
        }
        expect(TokenKind::Dot, "after the quantified variable");
        Formula body = unary();
        return kind == TokenKind::ExistsFO ? fl::exists(x, body)
                                           : fl::forall(x, body);
    }

    Formula so_quantifier(TokenKind kind) {
        const std::string rel = variable("as the relation variable");
        expect(TokenKind::Slash, "after the relation variable");
        const Token& arity_token = expect(TokenKind::Number, "as the arity");
        if (arity_token.number < 1) {
            fail(arity_token, "relation arity must be at least 1");
        }
        expect(TokenKind::Dot, "after the arity");
        Formula body = unary();
        return kind == TokenKind::ExistsSO
                   ? fl::exists_so(rel, arity_token.number, body)
                   : fl::forall_so(rel, arity_token.number, body);
    }

    Formula primary() {
        const Token& token = peek();
        switch (token.kind) {
        case TokenKind::LParen: {
            take();
            Formula inner = formula();
            expect(TokenKind::RParen, "to close the parenthesis");
            return inner;
        }
        case TokenKind::Ident:
            return atom();
        default:
            fail(token, "expected a formula, found " + describe(token));
        }
    }

    Formula atom() {
        const Token& name = take();
        if (name.text == "T") {
            return fl::top();
        }
        if (name.text == "F") {
            return fl::bottom();
        }
        if (is_unary_atom_name(name.text)) {
            const std::size_t index = std::stoul(name.text.substr(1));
            if (index < 1) {
                fail(name, "unary relation indices are 1-based, got '" +
                               name.text + "'");
            }
            expect(TokenKind::LParen, "after the unary relation");
            const std::string x = variable("as the atom argument");
            expect(TokenKind::RParen, "to close the unary atom");
            return fl::unary(index, x);
        }
        if (is_reserved_name(name.text)) {
            fail(name, "'" + name.text + "' is reserved");
        }
        switch (peek().kind) {
        case TokenKind::ArrowIdx: {
            record_variable(name);
            const Token& arrow = take();
            if (arrow.number < 1) {
                fail(arrow, "binary relation indices are 1-based, got '->" +
                                arrow.text + "'");
            }
            const std::string y = variable("as the atom argument");
            return fl::binary(arrow.number, name.text, y);
        }
        case TokenKind::Equals: {
            record_variable(name);
            take();
            const std::string y = variable("as the atom argument");
            return fl::equals(name.text, y);
        }
        case TokenKind::LParen: {
            record_variable(name);
            take();
            std::vector<std::string> args;
            args.push_back(variable("as the atom argument"));
            while (accept(TokenKind::Comma)) {
                args.push_back(variable("as the atom argument"));
            }
            expect(TokenKind::RParen, "to close the argument list");
            return fl::apply(name.text, std::move(args));
        }
        default:
            fail(peek(), "expected '=', '->K', or '(' after '" + name.text +
                             "', found " + describe(peek()));
        }
    }

    void record_variable(const Token& name) {
        if (names_.insert(name.text).second &&
            names_.size() > limits_.max_variables) {
            fail(name, "more than " + std::to_string(limits_.max_variables) +
                           " distinct variable names");
        }
    }

    std::vector<Token> tokens_;
    const ParseLimits& limits_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
    std::set<std::string> names_;
};

} // namespace

Formula parse_formula(const std::string& text, const ParseLimits& limits) {
    Parser parser(lex(text, limits.lex), limits);
    return parser.parse();
}

bool ast_identical(const Formula& a, const Formula& b) {
    if (a == b) {
        return true;
    }
    if (!a || !b) {
        return false;
    }
    if (a->kind != b->kind || a->rel_index != b->rel_index ||
        a->var != b->var || a->var2 != b->var2 || a->rel_var != b->rel_var ||
        a->arity != b->arity || a->args != b->args ||
        a->children.size() != b->children.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a->children.size(); ++i) {
        if (!ast_identical(a->children[i], b->children[i])) {
            return false;
        }
    }
    return true;
}

} // namespace lang
} // namespace lph
