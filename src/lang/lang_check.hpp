#pragma once

namespace lph {
namespace lang {

/// Registers the language-frontend differential checks with the oracle
/// harness (idempotent):
///   lang-roundtrip        random AST -> print -> parse -> bit-identical AST
///   lang-eval-vs-corpus   pretty-printed corpus/random sentence re-parsed,
///                         verdicts must match the original AST's
void register_lang_checks();

} // namespace lang
} // namespace lph
