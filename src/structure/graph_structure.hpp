#pragma once

#include "graph/graph.hpp"
#include "structure/structure.hpp"

#include <optional>
#include <utility>

namespace lph {

/// The structural representation $G of a labeled graph (Figure 4):
///   * one element per node, one element per labeling bit,
///   * unary O_1 marks labeling bits of value 1,
///   * binary ->_1 holds the (symmetric) edge relation between node elements
///     and the successor relation between consecutive labeling bits,
///   * binary ->_2 points from each node to each of its labeling bits.
///
/// Keeps the mappings between graph nodes/bits and structure elements so
/// deciders and reductions can move between the two views.
class GraphStructure {
public:
    explicit GraphStructure(const LabeledGraph& g);

    const Structure& structure() const { return structure_; }
    const LabeledGraph& graph() const { return graph_; }

    /// Element representing node u.
    Element node_element(NodeId u) const;

    /// Element representing the i-th labeling bit of node u (1-based i, as in
    /// the paper's lambda(u)(i)).
    Element bit_element(NodeId u, std::size_t i) const;

    /// True when element a represents a node (rather than a labeling bit).
    bool is_node_element(Element a) const;

    /// The node that element a represents or whose labeling bit it is.
    NodeId owner(Element a) const;

    /// For a bit element, its 1-based position within the owner's label.
    std::size_t bit_position(Element a) const;

    /// card($G) = number of nodes plus number of labeling bits.
    std::size_t cardinality() const { return structure_.domain_size(); }

    /// The substructure induced by u's r-neighborhood, $N_r(u), returned as
    /// the set of elements belonging to it (nodes within distance r and all
    /// their labeling bits).  card of this set is the bound of Lemma 10.
    std::vector<Element> neighborhood_elements(NodeId u, int r) const;

private:
    // Note: the mapping vectors are declared (and thus initialized) before
    // structure_, whose initializer fills them in.
    LabeledGraph graph_;
    std::vector<Element> node_elements_;               // node -> element
    std::vector<std::vector<Element>> bit_elements_;   // node -> bit elements
    std::vector<std::pair<NodeId, std::size_t>> info_; // element -> (owner, bitpos or 0)
    Structure structure_;
};

} // namespace lph
