#include "structure/structure.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <deque>

namespace lph {
namespace {

void insert_sorted_unique(std::vector<Element>& list, Element x) {
    const auto it = std::lower_bound(list.begin(), list.end(), x);
    if (it == list.end() || *it != x) {
        list.insert(it, x);
    }
}

} // namespace

Structure::Structure(std::size_t domain_size, std::size_t num_unary,
                     std::size_t num_binary)
    : domain_size_(domain_size),
      unary_(num_unary, std::vector<bool>(domain_size, false)),
      binary_out_(num_binary, std::vector<std::vector<Element>>(domain_size)),
      binary_in_(num_binary, std::vector<std::vector<Element>>(domain_size)),
      connected_(domain_size) {
    check(domain_size > 0, "Structure: domain must be nonempty");
}

void Structure::check_element(Element a) const {
    check(a < domain_size_, "Structure: element out of range");
}

void Structure::set_unary(std::size_t i, Element a) {
    check(i < unary_.size(), "Structure::set_unary: relation index out of range");
    check_element(a);
    unary_[i][a] = true;
}

void Structure::add_binary(std::size_t i, Element a, Element b) {
    check(i < binary_out_.size(), "Structure::add_binary: relation index out of range");
    check_element(a);
    check_element(b);
    insert_sorted_unique(binary_out_[i][a], b);
    insert_sorted_unique(binary_in_[i][b], a);
    insert_sorted_unique(connected_[a], b);
    insert_sorted_unique(connected_[b], a);
}

bool Structure::unary_holds(std::size_t i, Element a) const {
    check(i < unary_.size(), "Structure::unary_holds: relation index out of range");
    check_element(a);
    return unary_[i][a];
}

bool Structure::binary_holds(std::size_t i, Element a, Element b) const {
    check(i < binary_out_.size(),
          "Structure::binary_holds: relation index out of range");
    check_element(a);
    check_element(b);
    const auto& list = binary_out_[i][a];
    return std::binary_search(list.begin(), list.end(), b);
}

bool Structure::connected(Element a, Element b) const {
    check_element(a);
    check_element(b);
    const auto& list = connected_[a];
    return std::binary_search(list.begin(), list.end(), b);
}

const std::vector<Element>& Structure::connected_to(Element a) const {
    check_element(a);
    return connected_[a];
}

std::vector<Element> Structure::ball(Element a, int r) const {
    check_element(a);
    check(r >= 0, "Structure::ball: negative radius");
    std::vector<int> dist(domain_size_, -1);
    std::deque<Element> queue{a};
    dist[a] = 0;
    std::vector<Element> result;
    while (!queue.empty()) {
        const Element b = queue.front();
        queue.pop_front();
        result.push_back(b);
        if (dist[b] == r) {
            continue;
        }
        for (Element c : connected_[b]) {
            if (dist[c] < 0) {
                dist[c] = dist[b] + 1;
                queue.push_back(c);
            }
        }
    }
    std::sort(result.begin(), result.end());
    return result;
}

const std::vector<Element>& Structure::successors(std::size_t i, Element a) const {
    check(i < binary_out_.size(), "Structure::successors: relation index out of range");
    check_element(a);
    return binary_out_[i][a];
}

const std::vector<Element>& Structure::predecessors(std::size_t i, Element a) const {
    check(i < binary_in_.size(), "Structure::predecessors: relation index out of range");
    check_element(a);
    return binary_in_[i][a];
}

} // namespace lph
