#pragma once

#include <cstddef>
#include <vector>

namespace lph {

/// Index of an element in a Structure's domain.
using Element = std::size_t;

/// A finite relational structure S = (D, O_1..O_m, ->_1..->_n) of signature
/// (m, n): m unary relations and n binary relations over a finite domain
/// (Section 3, "Structural representations").
///
/// Logical formulas (src/logic) are evaluated on these.  Domains are small
/// (model checking is exponential in the worst case), so relations are kept
/// as dense bit tables plus adjacency lists for the bounded quantifiers.
class Structure {
public:
    /// Creates a structure with `domain_size` elements and the given signature.
    Structure(std::size_t domain_size, std::size_t num_unary, std::size_t num_binary);

    std::size_t domain_size() const { return domain_size_; }
    std::size_t num_unary() const { return unary_.size(); }
    std::size_t num_binary() const { return binary_out_.size(); }

    /// Puts element a into unary relation i (0-based relation index).
    void set_unary(std::size_t i, Element a);

    /// Adds the pair (a, b) to binary relation i (0-based); idempotent.
    void add_binary(std::size_t i, Element a, Element b);

    /// a in O_i ?
    bool unary_holds(std::size_t i, Element a) const;

    /// a ->_i b ?
    bool binary_holds(std::size_t i, Element a, Element b) const;

    /// a <-> b: a ->_i b or b ->_i a for some i (the connectivity relation
    /// that bounded first-order quantifiers range over).
    bool connected(Element a, Element b) const;

    /// All elements b with a <-> b, ascending, without duplicates.
    const std::vector<Element>& connected_to(Element a) const;

    /// Elements at undirected distance at most r from a (including a).
    std::vector<Element> ball(Element a, int r) const;

    /// Out-neighbors of a under binary relation i, ascending.
    const std::vector<Element>& successors(std::size_t i, Element a) const;

    /// In-neighbors of a under binary relation i, ascending.
    const std::vector<Element>& predecessors(std::size_t i, Element a) const;

private:
    void check_element(Element a) const;

    std::size_t domain_size_;
    std::vector<std::vector<bool>> unary_;             // [rel][element]
    std::vector<std::vector<std::vector<Element>>> binary_out_; // [rel][a] -> bs
    std::vector<std::vector<std::vector<Element>>> binary_in_;  // [rel][b] -> as
    std::vector<std::vector<Element>> connected_;      // undirected closure
};

} // namespace lph
