#include "structure/graph_structure.hpp"

#include "core/check.hpp"

#include <algorithm>

namespace lph {
namespace {

Structure build_structure(const LabeledGraph& g,
                          std::vector<Element>& node_elements,
                          std::vector<std::vector<Element>>& bit_elements,
                          std::vector<std::pair<NodeId, std::size_t>>& info) {
    std::size_t domain = g.num_nodes();
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        domain += g.label(u).size();
    }
    Structure s(domain, /*num_unary=*/1, /*num_binary=*/2);

    Element next = 0;
    node_elements.resize(g.num_nodes());
    bit_elements.resize(g.num_nodes());
    info.clear();
    info.reserve(domain);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        node_elements[u] = next++;
        info.emplace_back(u, 0);
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const BitString& label = g.label(u);
        bit_elements[u].resize(label.size());
        for (std::size_t i = 0; i < label.size(); ++i) {
            const Element e = next++;
            bit_elements[u][i] = e;
            info.emplace_back(u, i + 1);
            if (label[i] == '1') {
                s.set_unary(0, e);
            }
            // ->_2: the node owns the bit.
            s.add_binary(1, node_elements[u], e);
            // ->_1: bit successor chain.
            if (i > 0) {
                s.add_binary(0, bit_elements[u][i - 1], e);
            }
        }
    }
    // ->_1: symmetric edge relation between node elements.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (NodeId v : g.neighbors(u)) {
            s.add_binary(0, node_elements[u], node_elements[v]);
        }
    }
    return s;
}

} // namespace

GraphStructure::GraphStructure(const LabeledGraph& g)
    : graph_(g), structure_(build_structure(g, node_elements_, bit_elements_, info_)) {}

Element GraphStructure::node_element(NodeId u) const {
    check(u < node_elements_.size(), "GraphStructure: node out of range");
    return node_elements_[u];
}

Element GraphStructure::bit_element(NodeId u, std::size_t i) const {
    check(u < bit_elements_.size(), "GraphStructure: node out of range");
    check(i >= 1 && i <= bit_elements_[u].size(),
          "GraphStructure: bit position out of range");
    return bit_elements_[u][i - 1];
}

bool GraphStructure::is_node_element(Element a) const {
    check(a < info_.size(), "GraphStructure: element out of range");
    return info_[a].second == 0;
}

NodeId GraphStructure::owner(Element a) const {
    check(a < info_.size(), "GraphStructure: element out of range");
    return info_[a].first;
}

std::size_t GraphStructure::bit_position(Element a) const {
    check(a < info_.size(), "GraphStructure: element out of range");
    check(info_[a].second > 0, "GraphStructure: element is a node, not a bit");
    return info_[a].second;
}

std::vector<Element> GraphStructure::neighborhood_elements(NodeId u, int r) const {
    std::vector<Element> elements;
    for (NodeId v : graph_.ball(u, r)) {
        elements.push_back(node_elements_[v]);
        for (Element e : bit_elements_[v]) {
            elements.push_back(e);
        }
    }
    std::sort(elements.begin(), elements.end());
    return elements;
}

} // namespace lph
