#include "core/bitstring.hpp"

#include "core/check.hpp"

#include <algorithm>

namespace lph {

bool is_bit_string(std::string_view s) {
    return std::all_of(s.begin(), s.end(), [](char c) { return c == '0' || c == '1'; });
}

bool is_certificate_list_string(std::string_view s) {
    return std::all_of(s.begin(), s.end(),
                       [](char c) { return c == '0' || c == '1' || c == '#'; });
}

BitString encode_unsigned(std::uint64_t value) {
    if (value == 0) {
        return "0";
    }
    BitString bits;
    while (value > 0) {
        bits.push_back((value & 1) != 0 ? '1' : '0');
        value >>= 1;
    }
    std::reverse(bits.begin(), bits.end());
    return bits;
}

std::uint64_t decode_unsigned(std::string_view bits) {
    std::uint64_t value = 0;
    for (char c : bits) {
        check(c == '0' || c == '1', "decode_unsigned: not a bit string");
        value = (value << 1) | static_cast<std::uint64_t>(c == '1');
    }
    return value;
}

BitString encode_unsigned_width(std::uint64_t value, int width) {
    check(width >= 0, "encode_unsigned_width: negative width");
    BitString bits(static_cast<std::size_t>(width), '0');
    for (int i = width - 1; i >= 0; --i) {
        bits[static_cast<std::size_t>(i)] = (value & 1) != 0 ? '1' : '0';
        value >>= 1;
    }
    check(value == 0, "encode_unsigned_width: value does not fit in width");
    return bits;
}

std::string join_hash(const std::vector<std::string>& parts) {
    std::string joined;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) {
            joined.push_back('#');
        }
        joined += parts[i];
    }
    return joined;
}

std::vector<std::string> split_hash(std::string_view s) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find('#', start);
        if (pos == std::string_view::npos) {
            parts.emplace_back(s.substr(start));
            return parts;
        }
        parts.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

int bits_for(std::uint64_t n) {
    if (n <= 2) {
        return 1;
    }
    int bits = 0;
    std::uint64_t capacity = 1;
    while (capacity < n) {
        capacity <<= 1;
        ++bits;
    }
    return bits;
}

} // namespace lph
