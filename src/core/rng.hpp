#pragma once

#include "core/check.hpp"

#include <cstdint>
#include <random>

namespace lph {

/// Deterministic pseudo-random source used by generators and benchmarks.
///
/// Everything in this library that is randomized takes an explicit Rng so
/// experiments are reproducible run to run.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
    std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
        check(lo <= hi, "Rng::uniform: empty range (lo > hi)");
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
    }

    /// Uniform index in [0, n); requires n > 0.  An empty range used to
    /// underflow to uniform(0, 2^64-1) and return garbage indices; it now
    /// fails the precondition check instead.
    std::size_t index(std::size_t n) {
        check(n > 0, "Rng::index: empty range (n == 0)");
        return static_cast<std::size_t>(uniform(0, static_cast<std::uint64_t>(n) - 1));
    }

    /// Bernoulli draw with probability p of true.
    bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

} // namespace lph
