#pragma once

#include <stdexcept>
#include <string>

namespace lph {

/// Error thrown when a library precondition is violated.
class precondition_error : public std::logic_error {
public:
    explicit precondition_error(const std::string& what) : std::logic_error(what) {}
};

/// Verifies a precondition; throws precondition_error when it fails.
///
/// Used at public API boundaries (see C++ Core Guidelines I.6): internal
/// invariants use assert, caller-facing contracts use check.
inline void check(bool condition, const std::string& message) {
    if (!condition) {
        throw precondition_error(message);
    }
}

} // namespace lph
