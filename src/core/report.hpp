#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lph {
namespace report {

/// One recorded experiment/benchmark instance outcome.
///
/// `outcome` is "ok" for a clean run, a RunError identifier string (e.g.
/// "StepBoundViolated") for a run that failed detectably, or "error" for an
/// unclassified exception.  This is the machine-readable failure channel the
/// bench harness writes to BENCH_<name>.json.
struct Instance {
    std::string bench;    ///< benchmark/experiment name
    std::string instance; ///< instance id within the bench
    std::string outcome;  ///< "ok" | RunError code | "error"
    std::string detail;   ///< optional human-readable message
    double wall_ms = 0;   ///< wall time of the recorded run
    std::uint64_t fault_count = 0; ///< non-fatal faults recorded on the run
    /// Optional named perf metrics (speedup, leaves/sec, cache hit rate...),
    /// rendered as a "metrics" object on the instance's JSON row.
    std::vector<std::pair<std::string, double>> metrics;
};

/// Process-wide instance recorder.  Re-recording the same (bench, instance)
/// key overwrites in place, so benchmark loops can record every iteration
/// and the report keeps one row per instance.
class Recorder {
public:
    static Recorder& global();

    void record(Instance instance);
    std::vector<Instance> instances() const;
    void clear();

private:
    mutable std::mutex mutex_;
    std::vector<Instance> instances_;
};

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

/// Renders the report document: name, totals, and one entry per instance.
std::string render_report_json(const std::string& name,
                               const std::vector<Instance>& instances,
                               double total_wall_ms);

/// Writes BENCH_<name>.json into `directory` from the global recorder.
/// Returns the path written, or "" on I/O failure (never throws).
std::string write_report(const std::string& name, double total_wall_ms,
                         const std::string& directory = ".");

} // namespace report
} // namespace lph
