#pragma once

#include "obs/metrics.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace lph {

/// Monotone work counters of one ThreadPool (all jobs since construction).
struct ThreadPoolStats {
    std::uint64_t jobs = 0;   ///< run_all calls
    std::uint64_t tasks = 0;  ///< indexed tasks executed
    std::uint64_t steals = 0; ///< tasks taken from another participant's queue

    /// Metric list under the `pool.` naming scheme (DESIGN.md Observability).
    obs::MetricList to_metrics() const;
};

/// A small work-stealing thread pool for fanning indexed task sets out
/// across hardware threads.
///
/// The pool runs one *job* at a time (concurrent run_all calls serialize on
/// an internal mutex).  A job is a set of `count` indexed tasks; indices are
/// block-distributed over per-participant deques up front, each participant
/// pops from the front of its own deque and steals from the back of a
/// victim's deque when it runs dry.  The calling thread participates, so a
/// pool constructed with 0 background workers degrades to a plain loop.
///
/// Tasks should not throw; as a safety net the first escaping exception is
/// captured and rethrown from run_all after every task has finished.
class ThreadPool {
public:
    /// Spawns `background_workers` threads (they sleep until a job arrives).
    explicit ThreadPool(unsigned background_workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Background workers + the calling thread.
    unsigned participants() const { return background_ + 1; }

    /// Runs task(index, participant) for every index in [0, count), blocking
    /// until all complete.  `participant` is in [0, participants()) and is
    /// stable within one task, so callers can keep per-participant state.
    /// Must not be called from inside a task of the same pool.
    void run_all(std::size_t count,
                 const std::function<void(std::size_t, unsigned)>& task);

    /// Work counters (thread-safe; monotone).
    ThreadPoolStats stats() const;

    /// One participant per hardware thread (at least 1).
    static unsigned default_participants();

    /// Process-wide pool with at least `participants` participants, grown on
    /// demand and shared between callers.  Never destroyed before exit.
    static ThreadPool& shared_for(unsigned participants);

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    unsigned background_ = 0;
};

} // namespace lph
