#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lph {

/// A finite string over the alphabet {0,1}, stored as '0'/'1' characters.
///
/// Labels, identifiers, and certificates in the paper are all bit strings
/// (Section 3).  The lexicographic order used for identifiers ("id(u) < id(v)
/// if either id(u) is a proper prefix of id(v), or id(u)(i) < id(v)(i) at the
/// first position i where the two strings differ") coincides with
/// std::string's operator< on this representation.
using BitString = std::string;

/// Returns true when every character of s is '0' or '1'.
bool is_bit_string(std::string_view s);

/// Returns true when every character of s is '0', '1', or '#'.
/// This is the alphabet of certificate lists (Section 3).
bool is_certificate_list_string(std::string_view s);

/// Encodes a nonnegative integer as its binary representation (MSB first).
/// encode_unsigned(0) == "0".
BitString encode_unsigned(std::uint64_t value);

/// Inverse of encode_unsigned; empty strings decode to 0.
std::uint64_t decode_unsigned(std::string_view bits);

/// Encodes value as exactly `width` bits (MSB first); value must fit.
BitString encode_unsigned_width(std::uint64_t value, int width);

/// Joins parts with the separator '#' (no trailing separator).
std::string join_hash(const std::vector<std::string>& parts);

/// Splits s at every '#' (a trailing '#' yields a trailing empty part only
/// if the string ends with "#" and keep_trailing_empty is true).
std::vector<std::string> split_hash(std::string_view s);

/// Number of bits needed to distinguish n values: ceil(log2(n)), at least 1.
int bits_for(std::uint64_t n);

} // namespace lph
