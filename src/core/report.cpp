#include "core/report.hpp"

#include <cstdio>
#include <fstream>

namespace lph {
namespace report {

Recorder& Recorder::global() {
    static Recorder recorder;
    return recorder;
}

void Recorder::record(Instance instance) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Instance& existing : instances_) {
        if (existing.bench == instance.bench &&
            existing.instance == instance.instance) {
            existing = std::move(instance);
            return;
        }
    }
    instances_.push_back(std::move(instance));
}

std::vector<Instance> Recorder::instances() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return instances_;
}

void Recorder::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    instances_.clear();
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

namespace {

std::string number(double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    return buf;
}

} // namespace

std::string render_report_json(const std::string& name,
                               const std::vector<Instance>& instances,
                               double total_wall_ms) {
    std::size_t ok = 0;
    std::size_t failed = 0;
    for (const Instance& inst : instances) {
        if (inst.outcome == "ok") {
            ++ok;
        } else {
            ++failed;
        }
    }
    std::string out;
    out += "{\n";
    out += "  \"bench\": \"" + json_escape(name) + "\",\n";
    out += "  \"total_wall_ms\": " + number(total_wall_ms) + ",\n";
    out += "  \"instance_count\": " + std::to_string(instances.size()) + ",\n";
    out += "  \"ok_count\": " + std::to_string(ok) + ",\n";
    out += "  \"failed_count\": " + std::to_string(failed) + ",\n";
    out += "  \"instances\": [\n";
    for (std::size_t i = 0; i < instances.size(); ++i) {
        const Instance& inst = instances[i];
        out += "    {\"bench\": \"" + json_escape(inst.bench) + "\", ";
        out += "\"instance\": \"" + json_escape(inst.instance) + "\", ";
        out += "\"outcome\": \"" + json_escape(inst.outcome) + "\", ";
        out += "\"fault_count\": " + std::to_string(inst.fault_count) + ", ";
        out += "\"wall_ms\": " + number(inst.wall_ms);
        if (!inst.detail.empty()) {
            out += ", \"detail\": \"" + json_escape(inst.detail) + "\"";
        }
        if (!inst.metrics.empty()) {
            out += ", \"metrics\": {";
            for (std::size_t m = 0; m < inst.metrics.size(); ++m) {
                out += "\"" + json_escape(inst.metrics[m].first) +
                       "\": " + number(inst.metrics[m].second);
                if (m + 1 < inst.metrics.size()) {
                    out += ", ";
                }
            }
            out += "}";
        }
        out += i + 1 < instances.size() ? "},\n" : "}\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

std::string write_report(const std::string& name, double total_wall_ms,
                         const std::string& directory) {
    const std::string path = directory + "/BENCH_" + name + ".json";
    std::ofstream out(path);
    if (!out) {
        return "";
    }
    out << render_report_json(name, Recorder::global().instances(), total_wall_ms);
    return out ? path : "";
}

} // namespace report
} // namespace lph
