#include "core/thread_pool.hpp"

#include "obs/trace.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace lph {

namespace {

/// One indexed task set mid-flight.  Queues are block-distributed so that a
/// participant's own work is contiguous (good for the game engine's
/// incremental odometer) and thieves take from the far end of a victim's
/// block, minimizing contention on the owner's end.
struct Job {
    const std::function<void(std::size_t, unsigned)>* task = nullptr;
    std::vector<std::deque<std::size_t>> queues;
    std::vector<std::unique_ptr<std::mutex>> queue_mutexes;
    std::atomic<std::size_t> remaining{0};
    unsigned active = 0; ///< background workers inside the job (pool mutex)
    std::mutex error_mutex;
    std::exception_ptr first_error;
};

} // namespace

struct ThreadPool::Impl {
    std::vector<std::thread> threads;

    std::mutex mutex;
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    Job* job = nullptr;          ///< the active job, guarded by mutex
    std::uint64_t epoch = 0;     ///< bumped per job so sleepers wake exactly once
    bool stop = false;

    std::mutex submit_mutex;     ///< serializes run_all callers

    std::atomic<std::uint64_t> jobs_run{0};
    std::atomic<std::uint64_t> tasks_run{0};
    std::atomic<std::uint64_t> steals{0};

    /// Pops one index for `self`: own front first, then steal from the back
    /// of the first non-empty victim.  Returns false when no work is left.
    bool pop_index(Job& job, unsigned self, std::size_t& out) {
        {
            const std::lock_guard<std::mutex> lock(*job.queue_mutexes[self]);
            if (!job.queues[self].empty()) {
                out = job.queues[self].front();
                job.queues[self].pop_front();
                return true;
            }
        }
        const std::size_t n = job.queues.size();
        for (std::size_t i = 1; i < n; ++i) {
            const std::size_t victim = (self + i) % n;
            const std::lock_guard<std::mutex> lock(*job.queue_mutexes[victim]);
            if (!job.queues[victim].empty()) {
                out = job.queues[victim].back();
                job.queues[victim].pop_back();
                steals.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
        }
        return false;
    }

    void participate(Job& job, unsigned self) {
        LPH_SPAN_NAMED(span, "pool", "pool.participate");
        span.arg("participant", self);
        std::size_t index = 0;
        while (pop_index(job, self, index)) {
            tasks_run.fetch_add(1, std::memory_order_relaxed);
            try {
                (*job.task)(index, self);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(job.error_mutex);
                if (!job.first_error) {
                    job.first_error = std::current_exception();
                }
            }
            if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                const std::lock_guard<std::mutex> lock(mutex);
                done_cv.notify_all();
            }
        }
    }

    void worker_loop(unsigned self) {
        std::uint64_t seen_epoch = 0;
        while (true) {
            Job* job = nullptr;
            {
                std::unique_lock<std::mutex> lock(mutex);
                work_cv.wait(lock, [&] { return stop || epoch != seen_epoch; });
                if (stop) {
                    return;
                }
                seen_epoch = epoch;
                job = this->job;
                if (job != nullptr) {
                    ++job->active;
                }
            }
            if (job != nullptr) {
                participate(*job, self);
                {
                    const std::lock_guard<std::mutex> lock(mutex);
                    --job->active;
                }
                done_cv.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(unsigned background_workers)
    : impl_(std::make_unique<Impl>()), background_(background_workers) {
    impl_->threads.reserve(background_workers);
    for (unsigned w = 0; w < background_workers; ++w) {
        // Participant 0 is the caller; workers are 1-based.
        impl_->threads.emplace_back([impl = impl_.get(), w] {
            impl->worker_loop(w + 1);
        });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stop = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread& t : impl_->threads) {
        t.join();
    }
}

void ThreadPool::run_all(std::size_t count,
                         const std::function<void(std::size_t, unsigned)>& task) {
    if (count == 0) {
        return;
    }
    const std::lock_guard<std::mutex> submit(impl_->submit_mutex);
    impl_->jobs_run.fetch_add(1, std::memory_order_relaxed);
    const unsigned n = participants();

    Job job;
    job.task = &task;
    job.queues.resize(n);
    job.queue_mutexes.resize(n);
    for (unsigned p = 0; p < n; ++p) {
        job.queue_mutexes[p] = std::make_unique<std::mutex>();
    }
    // Block distribution: participant p owns [p*count/n, (p+1)*count/n).
    for (unsigned p = 0; p < n; ++p) {
        const std::size_t begin = count * p / n;
        const std::size_t end = count * (p + 1) / n;
        for (std::size_t i = begin; i < end; ++i) {
            job.queues[p].push_back(i);
        }
    }
    job.remaining.store(count, std::memory_order_relaxed);

    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->job = &job;
        ++impl_->epoch;
    }
    impl_->work_cv.notify_all();

    impl_->participate(job, 0);

    {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        impl_->done_cv.wait(lock, [&] {
            return job.remaining.load(std::memory_order_acquire) == 0 &&
                   job.active == 0;
        });
        impl_->job = nullptr;
    }
    if (job.first_error) {
        std::rethrow_exception(job.first_error);
    }
}

ThreadPoolStats ThreadPool::stats() const {
    ThreadPoolStats stats;
    stats.jobs = impl_->jobs_run.load(std::memory_order_relaxed);
    stats.tasks = impl_->tasks_run.load(std::memory_order_relaxed);
    stats.steals = impl_->steals.load(std::memory_order_relaxed);
    return stats;
}

obs::MetricList ThreadPoolStats::to_metrics() const {
    return {
        {"pool.jobs", static_cast<double>(jobs)},
        {"pool.tasks", static_cast<double>(tasks)},
        {"pool.steals", static_cast<double>(steals)},
    };
}

unsigned ThreadPool::default_participants() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::shared_for(unsigned participants) {
    if (participants < 1) {
        participants = 1;
    }
    static std::mutex registry_mutex;
    static std::map<unsigned, std::unique_ptr<ThreadPool>>* registry =
        new std::map<unsigned, std::unique_ptr<ThreadPool>>();
    const std::lock_guard<std::mutex> lock(registry_mutex);
    auto& slot = (*registry)[participants];
    if (!slot) {
        slot = std::make_unique<ThreadPool>(participants - 1);
    }
    return *slot;
}

} // namespace lph
