#include "graphalg/spanning.hpp"

#include "core/check.hpp"

#include <deque>

namespace lph {

SpanningTree bfs_spanning_tree(const LabeledGraph& g, NodeId root) {
    check(g.is_connected(), "bfs_spanning_tree: graph must be connected");
    SpanningTree tree;
    tree.root = root;
    tree.parent.assign(g.num_nodes(), g.num_nodes());
    tree.parent[root] = root;
    std::deque<NodeId> queue{root};
    while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop_front();
        for (NodeId v : g.neighbors(u)) {
            if (tree.parent[v] == g.num_nodes()) {
                tree.parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    return tree;
}

namespace {

void tour_visit(const LabeledGraph& g, const SpanningTree& tree, NodeId u,
                std::vector<NodeId>& walk) {
    walk.push_back(u);
    for (NodeId v : g.neighbors(u)) {
        if (tree.parent[v] == u && v != tree.root) {
            tour_visit(g, tree, v, walk);
            walk.push_back(u);
        }
    }
}

} // namespace

std::vector<NodeId> euler_tour(const LabeledGraph& g, const SpanningTree& tree) {
    std::vector<NodeId> walk;
    tour_visit(g, tree, tree.root, walk);
    return walk;
}

bool verify_spanning_tree(const LabeledGraph& g, const SpanningTree& tree) {
    if (tree.parent.size() != g.num_nodes() || tree.root >= g.num_nodes() ||
        tree.parent[tree.root] != tree.root) {
        return false;
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (u == tree.root) {
            continue;
        }
        if (tree.parent[u] >= g.num_nodes() || !g.has_edge(u, tree.parent[u])) {
            return false;
        }
        // Walk to the root, guarding against cycles.
        NodeId v = u;
        for (std::size_t hops = 0; hops <= g.num_nodes(); ++hops) {
            if (v == tree.root) {
                break;
            }
            v = tree.parent[v];
            if (hops == g.num_nodes()) {
                return false;
            }
        }
        if (v != tree.root) {
            return false;
        }
    }
    return true;
}

} // namespace lph
