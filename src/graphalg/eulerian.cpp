#include "graphalg/eulerian.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace lph {

namespace {

/// First node with positive degree; num_nodes() when the graph is edgeless.
NodeId first_positive_degree(const LabeledGraph& g) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.degree(u) > 0) {
            return u;
        }
    }
    return g.num_nodes();
}

} // namespace

bool is_eulerian(const LabeledGraph& g) {
    if (g.num_nodes() == 0) {
        return false;
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.degree(u) % 2 != 0) {
            return false;
        }
    }
    const NodeId start = first_positive_degree(g);
    if (start == g.num_nodes()) {
        return true; // no edges: the empty closed walk covers them all
    }
    // Every edge must be reachable from `start`: the positive-degree nodes
    // form one component.  Isolated vertices are allowed to dangle.
    const std::vector<int> dist = g.distances_from(start);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (g.degree(u) > 0 && dist[u] < 0) {
            return false;
        }
    }
    return true;
}

std::optional<std::vector<NodeId>> find_eulerian_cycle(const LabeledGraph& g) {
    if (!is_eulerian(g)) {
        return std::nullopt;
    }
    if (g.num_edges() == 0) {
        return std::vector<NodeId>{0};
    }
    // Hierholzer with per-node cursors over mutable adjacency copies.
    std::vector<std::vector<NodeId>> adj(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        adj[u] = g.neighbors(u);
    }
    auto remove_edge = [&adj](NodeId u, NodeId v) {
        adj[u].erase(std::find(adj[u].begin(), adj[u].end(), v));
        adj[v].erase(std::find(adj[v].begin(), adj[v].end(), u));
    };
    // Start from a positive-degree node: starting at a hardcoded node 0 made
    // Hierholzer emit a bogus single-node "cycle" when node 0 was isolated.
    std::vector<NodeId> stack{first_positive_degree(g)};
    std::vector<NodeId> cycle;
    while (!stack.empty()) {
        const NodeId u = stack.back();
        if (adj[u].empty()) {
            cycle.push_back(u);
            stack.pop_back();
        } else {
            const NodeId v = adj[u].back();
            remove_edge(u, v);
            stack.push_back(v);
        }
    }
    std::reverse(cycle.begin(), cycle.end());
    return cycle;
}

bool verify_eulerian_cycle(const LabeledGraph& g, const std::vector<NodeId>& cycle) {
    if (g.num_edges() == 0) {
        return cycle.size() == 1;
    }
    if (cycle.size() != g.num_edges() + 1 || cycle.front() != cycle.back()) {
        return false;
    }
    std::set<std::pair<NodeId, NodeId>> used;
    for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
        const NodeId u = std::min(cycle[i], cycle[i + 1]);
        const NodeId v = std::max(cycle[i], cycle[i + 1]);
        if (!g.has_edge(u, v) || !used.emplace(u, v).second) {
            return false;
        }
    }
    return used.size() == g.num_edges();
}

} // namespace lph
