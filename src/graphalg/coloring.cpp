#include "graphalg/coloring.hpp"

#include "core/check.hpp"

#include <deque>

namespace lph {
namespace {

bool extend_coloring(const LabeledGraph& g, int k, Coloring& colors, NodeId u) {
    if (u == g.num_nodes()) {
        return true;
    }
    for (int c = 0; c < k; ++c) {
        bool ok = true;
        for (NodeId v : g.neighbors(u)) {
            if (v < u && colors[v] == c) {
                ok = false;
                break;
            }
        }
        if (!ok) {
            continue;
        }
        colors[u] = c;
        if (extend_coloring(g, k, colors, u + 1)) {
            return true;
        }
    }
    colors[u] = -1;
    return false;
}

} // namespace

std::optional<Coloring> find_k_coloring(const LabeledGraph& g, int k) {
    check(k >= 1, "find_k_coloring: k must be positive");
    Coloring colors(g.num_nodes(), -1);
    if (extend_coloring(g, k, colors, 0)) {
        return colors;
    }
    return std::nullopt;
}

bool is_k_colorable(const LabeledGraph& g, int k) {
    return find_k_coloring(g, k).has_value();
}

namespace {

/// DSATUR backtracking state: pick the uncolored node with the most
/// distinctly-colored neighbors (ties: higher degree), try its feasible
/// colors, never introducing color c+1 before color c has been used.
class DsaturSearch {
public:
    DsaturSearch(const LabeledGraph& g, int k) : g_(g), k_(k) {}

    std::optional<Coloring> run() {
        colors_.assign(g_.num_nodes(), -1);
        if (extend(0, 0)) {
            return colors_;
        }
        return std::nullopt;
    }

private:
    int saturation(NodeId u) const {
        bool seen[64] = {};
        int count = 0;
        for (NodeId v : g_.neighbors(u)) {
            const int c = colors_[v];
            if (c >= 0 && !seen[c]) {
                seen[c] = true;
                ++count;
            }
        }
        return count;
    }

    bool extend(std::size_t assigned, int max_used) {
        if (assigned == g_.num_nodes()) {
            return true;
        }
        // Most saturated uncolored node.
        NodeId pick = g_.num_nodes();
        int best_sat = -1;
        std::size_t best_deg = 0;
        for (NodeId u = 0; u < g_.num_nodes(); ++u) {
            if (colors_[u] >= 0) {
                continue;
            }
            const int sat = saturation(u);
            if (sat > best_sat ||
                (sat == best_sat && g_.degree(u) > best_deg)) {
                best_sat = sat;
                best_deg = g_.degree(u);
                pick = u;
            }
        }
        const int limit = std::min(k_ - 1, max_used + 1);
        for (int c = 0; c <= limit; ++c) {
            bool feasible = true;
            for (NodeId v : g_.neighbors(pick)) {
                if (colors_[v] == c) {
                    feasible = false;
                    break;
                }
            }
            if (!feasible) {
                continue;
            }
            colors_[pick] = c;
            if (extend(assigned + 1, std::max(max_used, c))) {
                return true;
            }
            colors_[pick] = -1;
        }
        return false;
    }

    const LabeledGraph& g_;
    int k_;
    Coloring colors_;
};

} // namespace

std::optional<Coloring> find_k_coloring_dsatur(const LabeledGraph& g, int k) {
    check(k >= 1 && k <= 64, "find_k_coloring_dsatur: k out of range");
    auto result = DsaturSearch(g, k).run();
    if (result.has_value()) {
        check(verify_coloring(g, *result, k),
              "find_k_coloring_dsatur: internal error");
    }
    return result;
}

bool is_bipartite(const LabeledGraph& g) {
    std::vector<int> side(g.num_nodes(), -1);
    for (NodeId start = 0; start < g.num_nodes(); ++start) {
        if (side[start] >= 0) {
            continue;
        }
        side[start] = 0;
        std::deque<NodeId> queue{start};
        while (!queue.empty()) {
            const NodeId u = queue.front();
            queue.pop_front();
            for (NodeId v : g.neighbors(u)) {
                if (side[v] < 0) {
                    side[v] = 1 - side[u];
                    queue.push_back(v);
                } else if (side[v] == side[u]) {
                    return false;
                }
            }
        }
    }
    return true;
}

bool verify_coloring(const LabeledGraph& g, const Coloring& colors, int k) {
    if (colors.size() != g.num_nodes()) {
        return false;
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (colors[u] < 0 || colors[u] >= k) {
            return false;
        }
        for (NodeId v : g.neighbors(u)) {
            if (colors[u] == colors[v]) {
                return false;
            }
        }
    }
    return true;
}

} // namespace lph
