#pragma once

#include "graph/graph.hpp"

#include <optional>
#include <vector>

namespace lph {

/// Searches for a Hamiltonian cycle by backtracking with degree pruning.
/// Returns the cycle as a node sequence of length n (each node once; the
/// closing edge back to the first node is implicit), or nullopt.
std::optional<std::vector<NodeId>> find_hamiltonian_cycle(const LabeledGraph& g);

bool is_hamiltonian(const LabeledGraph& g);

/// Verifies a proposed Hamiltonian cycle (n distinct nodes, consecutive ones
/// adjacent, last adjacent to first).
bool verify_hamiltonian_cycle(const LabeledGraph& g, const std::vector<NodeId>& cycle);

} // namespace lph
