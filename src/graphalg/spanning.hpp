#pragma once

#include "graph/graph.hpp"

#include <vector>

namespace lph {

/// A rooted spanning tree as a parent array (parent[root] == root).
struct SpanningTree {
    NodeId root = 0;
    std::vector<NodeId> parent;

    bool is_tree_edge(NodeId u, NodeId v) const {
        return parent[u] == v || parent[v] == u;
    }
};

/// BFS spanning tree rooted at `root`.
SpanningTree bfs_spanning_tree(const LabeledGraph& g, NodeId root);

/// The Euler tour of a spanning tree (used by Proposition 16's reduction):
/// a closed walk traversing every tree edge exactly twice, given as the node
/// sequence of a depth-first traversal (first == last); a single node yields
/// {root}.
std::vector<NodeId> euler_tour(const LabeledGraph& g, const SpanningTree& tree);

/// Verifies that `tree` spans g (every parent edge exists, all nodes reach
/// the root).
bool verify_spanning_tree(const LabeledGraph& g, const SpanningTree& tree);

} // namespace lph
