#pragma once

#include "graph/graph.hpp"

#include <optional>
#include <vector>

namespace lph {

/// A proper k-coloring: colors[u] in [0, k) and adjacent nodes differ.
using Coloring = std::vector<int>;

/// Backtracking search for a proper k-coloring (k >= 1).
std::optional<Coloring> find_k_coloring(const LabeledGraph& g, int k);

bool is_k_colorable(const LabeledGraph& g, int k);

/// DSATUR-ordered backtracking with canonical-color pruning (a fresh color
/// may only be introduced in increasing order).  Much faster than the
/// index-ordered search on structured instances such as the Theorem 20
/// gadget graphs; same answer.
std::optional<Coloring> find_k_coloring_dsatur(const LabeledGraph& g, int k);

inline bool is_k_colorable_dsatur(const LabeledGraph& g, int k) {
    return find_k_coloring_dsatur(g, k).has_value();
}

/// BFS bipartiteness test — the polynomial special case k = 2.
bool is_bipartite(const LabeledGraph& g);

/// Verifies a proposed coloring against the graph and color count.
bool verify_coloring(const LabeledGraph& g, const Coloring& colors, int k);

} // namespace lph
