#pragma once

#include "graph/graph.hpp"

#include <optional>
#include <vector>

namespace lph {

/// Euler's theorem (used in Proposition 15): a graph has a closed walk using
/// every edge exactly once iff every degree is even and the positive-degree
/// nodes form a single connected component.  Isolated vertices are irrelevant
/// (an earlier version wrongly required the *whole* graph to be connected,
/// rejecting Eulerian graphs with isolated vertices); an edgeless graph is
/// trivially Eulerian.
bool is_eulerian(const LabeledGraph& g);

/// Extracts an Eulerian cycle with Hierholzer's algorithm, as the sequence of
/// visited nodes (first == last), starting from a positive-degree node;
/// nullopt when the graph is not Eulerian.  Cross-checks the degree
/// characterization in tests.
std::optional<std::vector<NodeId>> find_eulerian_cycle(const LabeledGraph& g);

/// Verifies that `cycle` is a closed walk using every edge exactly once.
bool verify_eulerian_cycle(const LabeledGraph& g, const std::vector<NodeId>& cycle);

} // namespace lph
