#include "graphalg/hamiltonian.hpp"

#include <algorithm>

namespace lph {
namespace {

class CycleSearch {
public:
    explicit CycleSearch(const LabeledGraph& g) : g_(g) {}

    std::optional<std::vector<NodeId>> run() {
        const std::size_t n = g_.num_nodes();
        if (n == 1) {
            // A single node trivially fails: a cycle needs at least 3 nodes
            // in a simple graph.
            return std::nullopt;
        }
        if (n == 2) {
            return std::nullopt;
        }
        // Quick necessary condition: minimum degree 2.
        for (NodeId u = 0; u < n; ++u) {
            if (g_.degree(u) < 2) {
                return std::nullopt;
            }
        }
        path_.push_back(0);
        used_.assign(n, false);
        used_[0] = true;
        if (extend()) {
            return path_;
        }
        return std::nullopt;
    }

private:
    bool extend() {
        if (path_.size() == g_.num_nodes()) {
            return g_.has_edge(path_.back(), path_.front());
        }
        const NodeId u = path_.back();
        for (NodeId v : g_.neighbors(u)) {
            if (used_[v]) {
                continue;
            }
            used_[v] = true;
            path_.push_back(v);
            if (extend()) {
                return true;
            }
            path_.pop_back();
            used_[v] = false;
        }
        return false;
    }

    const LabeledGraph& g_;
    std::vector<NodeId> path_;
    std::vector<bool> used_;
};

} // namespace

std::optional<std::vector<NodeId>> find_hamiltonian_cycle(const LabeledGraph& g) {
    return CycleSearch(g).run();
}

bool is_hamiltonian(const LabeledGraph& g) {
    return find_hamiltonian_cycle(g).has_value();
}

bool verify_hamiltonian_cycle(const LabeledGraph& g,
                              const std::vector<NodeId>& cycle) {
    const std::size_t n = g.num_nodes();
    if (n < 3 || cycle.size() != n) {
        return false;
    }
    std::vector<bool> seen(n, false);
    for (NodeId u : cycle) {
        if (u >= n || seen[u]) {
            return false;
        }
        seen[u] = true;
    }
    for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
        if (!g.has_edge(cycle[i], cycle[i + 1])) {
            return false;
        }
    }
    return g.has_edge(cycle.back(), cycle.front());
}

} // namespace lph
