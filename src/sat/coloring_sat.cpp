#include "sat/coloring_sat.hpp"

#include "core/check.hpp"

namespace lph {
namespace {

std::string color_var(NodeId u, int c) {
    return "c" + std::to_string(u) + "_" + std::to_string(c);
}

} // namespace

Cnf coloring_cnf(const LabeledGraph& g, int k) {
    check(k >= 1, "coloring_cnf: k must be positive");
    Cnf cnf;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        Clause at_least_one;
        for (int c = 0; c < k; ++c) {
            at_least_one.push_back({color_var(u, c), true});
        }
        cnf.push_back(std::move(at_least_one));
        for (int c1 = 0; c1 < k; ++c1) {
            for (int c2 = c1 + 1; c2 < k; ++c2) {
                cnf.push_back(
                    {{color_var(u, c1), false}, {color_var(u, c2), false}});
            }
        }
        for (NodeId v : g.neighbors(u)) {
            if (v > u) {
                for (int c = 0; c < k; ++c) {
                    cnf.push_back(
                        {{color_var(u, c), false}, {color_var(v, c), false}});
                }
            }
        }
    }
    return cnf;
}

std::optional<Coloring> find_k_coloring_dpll(const LabeledGraph& g, int k) {
    const auto model = dpll(coloring_cnf(g, k));
    if (!model.has_value()) {
        return std::nullopt;
    }
    Coloring colors(g.num_nodes(), -1);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (int c = 0; c < k; ++c) {
            if (model->at(color_var(u, c))) {
                colors[u] = c;
                break;
            }
        }
    }
    check(verify_coloring(g, colors, k),
          "find_k_coloring_dpll: internal error, model does not verify");
    return colors;
}

} // namespace lph
