#include "sat/cnf.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <map>

namespace lph {

bool is_3cnf(const Cnf& cnf) {
    return std::all_of(cnf.begin(), cnf.end(),
                       [](const Clause& c) { return c.size() <= 3; });
}

std::set<std::string> cnf_variables(const Cnf& cnf) {
    std::set<std::string> vars;
    for (const Clause& clause : cnf) {
        for (const Literal& lit : clause) {
            vars.insert(lit.var);
        }
    }
    return vars;
}

bool eval_cnf(const Cnf& cnf, const Valuation& valuation) {
    for (const Clause& clause : cnf) {
        bool satisfied = false;
        for (const Literal& lit : clause) {
            const auto it = valuation.find(lit.var);
            check(it != valuation.end(), "eval_cnf: unassigned variable " + lit.var);
            if (it->second == lit.positive) {
                satisfied = true;
                break;
            }
        }
        if (!satisfied) {
            return false;
        }
    }
    return true;
}

BoolFormula cnf_to_formula(const Cnf& cnf) {
    std::vector<BoolFormula> clauses;
    for (const Clause& clause : cnf) {
        std::vector<BoolFormula> lits;
        for (const Literal& lit : clause) {
            BoolFormula v = bf::var(lit.var);
            lits.push_back(lit.positive ? v : bf::bnot(v));
        }
        clauses.push_back(bf::bor_all(std::move(lits)));
    }
    return bf::band_all(std::move(clauses));
}

namespace {

/// Recursive Tseytin encoding: returns the literal representing f and
/// appends defining clauses.
Literal tseytin_visit(const BoolFormula& f, const std::string& prefix,
                      std::size_t& counter, Cnf& out) {
    switch (f->kind) {
    case BoolKind::Var:
        return {f->var, true};
    case BoolKind::True: {
        const std::string aux = prefix + std::to_string(counter++);
        out.push_back({{aux, true}});
        return {aux, true};
    }
    case BoolKind::False: {
        const std::string aux = prefix + std::to_string(counter++);
        out.push_back({{aux, false}});
        return {aux, true};
    }
    case BoolKind::Not: {
        const Literal a = tseytin_visit(f->children[0], prefix, counter, out);
        return {a.var, !a.positive};
    }
    case BoolKind::And:
    case BoolKind::Or:
    case BoolKind::Implies:
    case BoolKind::Iff: {
        const Literal a = tseytin_visit(f->children[0], prefix, counter, out);
        const Literal b = tseytin_visit(f->children[1], prefix, counter, out);
        const std::string aux = prefix + std::to_string(counter++);
        const Literal g{aux, true};
        const Literal ng{aux, false};
        const Literal na{a.var, !a.positive};
        const Literal nb{b.var, !b.positive};
        switch (f->kind) {
        case BoolKind::And:
            // g <-> a & b
            out.push_back({ng, a});
            out.push_back({ng, b});
            out.push_back({g, na, nb});
            break;
        case BoolKind::Or:
            // g <-> a | b
            out.push_back({ng, a, b});
            out.push_back({g, na});
            out.push_back({g, nb});
            break;
        case BoolKind::Implies:
            // g <-> (!a | b)
            out.push_back({ng, na, b});
            out.push_back({g, a});
            out.push_back({g, nb});
            break;
        default:
            // g <-> (a <-> b)
            out.push_back({ng, na, b});
            out.push_back({ng, a, nb});
            out.push_back({g, a, b});
            out.push_back({g, na, nb});
            break;
        }
        return g;
    }
    }
    check(false, "tseytin_visit: unreachable");
    return {"", true};
}

} // namespace

Cnf tseytin_3cnf(const BoolFormula& f, const std::string& aux_prefix) {
    Cnf out;
    std::size_t counter = 0;
    const Literal root = tseytin_visit(f, aux_prefix, counter, out);
    out.push_back({root});
    return out;
}

namespace {

bool collect_clause(const BoolFormula& f, Clause& clause) {
    if (f->kind == BoolKind::Or) {
        return collect_clause(f->children[0], clause) &&
               collect_clause(f->children[1], clause);
    }
    if (f->kind == BoolKind::Not && f->children[0]->kind == BoolKind::Var) {
        clause.push_back({f->children[0]->var, false});
        return true;
    }
    if (f->kind == BoolKind::Var) {
        clause.push_back({f->var, true});
        return true;
    }
    return false;
}

bool collect_cnf(const BoolFormula& f, Cnf& cnf) {
    if (f->kind == BoolKind::And) {
        return collect_cnf(f->children[0], cnf) && collect_cnf(f->children[1], cnf);
    }
    if (f->kind == BoolKind::True) {
        return true;
    }
    Clause clause;
    if (!collect_clause(f, clause)) {
        return false;
    }
    cnf.push_back(std::move(clause));
    return true;
}

} // namespace

std::optional<Cnf> formula_to_cnf(const BoolFormula& f) {
    Cnf cnf;
    if (!collect_cnf(f, cnf)) {
        return std::nullopt;
    }
    return cnf;
}

namespace {

/// Trail-based DPLL: integer literals, in-place assignment, no clause
/// copying.  Unit propagation scans all clauses to a fixpoint; branching
/// picks the first unassigned variable of the first unsatisfied clause.
class DpllSolver {
public:
    explicit DpllSolver(const Cnf& cnf) {
        for (const Clause& clause : cnf) {
            std::vector<int> encoded;
            encoded.reserve(clause.size());
            for (const Literal& lit : clause) {
                encoded.push_back(2 * var_index(lit.var) + (lit.positive ? 1 : 0));
            }
            clauses_.push_back(std::move(encoded));
        }
        assign_.assign(names_.size(), -1);
    }

    std::optional<Valuation> solve() {
        if (!search()) {
            return std::nullopt;
        }
        Valuation valuation;
        for (std::size_t v = 0; v < names_.size(); ++v) {
            valuation[names_[v]] = assign_[v] == 1;
        }
        return valuation;
    }

private:
    int var_index(const std::string& name) {
        const auto [it, inserted] = index_.emplace(name, names_.size());
        if (inserted) {
            names_.push_back(name);
        }
        return static_cast<int>(it->second);
    }

    /// True when the literal is satisfied under the current assignment.
    int lit_value(int lit) const {
        const int8_t v = assign_[static_cast<std::size_t>(lit / 2)];
        if (v < 0) {
            return -1;
        }
        return v == (lit & 1) ? 1 : 0;
    }

    /// Unit propagation to fixpoint; assigned variables are appended to
    /// `trail`.  Returns false on conflict (an all-false clause).
    bool propagate(std::vector<int>& trail) {
        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto& clause : clauses_) {
                bool satisfied = false;
                int unassigned = 0;
                int last = -1;
                for (int lit : clause) {
                    const int value = lit_value(lit);
                    if (value == 1) {
                        satisfied = true;
                        break;
                    }
                    if (value == -1) {
                        ++unassigned;
                        last = lit;
                    }
                }
                if (satisfied) {
                    continue;
                }
                if (unassigned == 0) {
                    return false;
                }
                if (unassigned == 1) {
                    assign_[static_cast<std::size_t>(last / 2)] =
                        static_cast<int8_t>(last & 1);
                    trail.push_back(last / 2);
                    changed = true;
                }
            }
        }
        return true;
    }

    void undo(const std::vector<int>& trail) {
        for (int v : trail) {
            assign_[static_cast<std::size_t>(v)] = -1;
        }
    }

    /// First unassigned variable of the first unsatisfied clause, or -1 when
    /// every clause is satisfied.
    int pick_branch() const {
        for (const auto& clause : clauses_) {
            bool satisfied = false;
            int candidate = -1;
            for (int lit : clause) {
                const int value = lit_value(lit);
                if (value == 1) {
                    satisfied = true;
                    break;
                }
                if (value == -1 && candidate < 0) {
                    candidate = lit / 2;
                }
            }
            if (!satisfied) {
                return candidate;
            }
        }
        return -1;
    }

    bool search() {
        std::vector<int> trail;
        if (!propagate(trail)) {
            undo(trail);
            return false;
        }
        const int branch = pick_branch();
        if (branch < 0) {
            return true; // all clauses satisfied; trail assignments kept
        }
        for (int8_t value : {static_cast<int8_t>(1), static_cast<int8_t>(0)}) {
            assign_[static_cast<std::size_t>(branch)] = value;
            if (search()) {
                return true;
            }
            assign_[static_cast<std::size_t>(branch)] = -1;
        }
        undo(trail);
        return false;
    }

    std::map<std::string, std::size_t> index_;
    std::vector<std::string> names_;
    std::vector<std::vector<int>> clauses_;
    std::vector<int8_t> assign_;
};

} // namespace

std::optional<Valuation> dpll(const Cnf& cnf) {
    DpllSolver solver(cnf);
    auto valuation = solver.solve();
    if (valuation.has_value()) {
        check(eval_cnf(cnf, *valuation),
              "dpll: internal error, model does not verify");
    }
    return valuation;
}

bool is_satisfiable(const Cnf& cnf) { return dpll(cnf).has_value(); }

} // namespace lph
