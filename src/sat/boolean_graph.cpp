#include "sat/boolean_graph.hpp"

#include "core/check.hpp"

namespace lph {
namespace {

bool formula_is_cnf3(const BoolFormula& f);

/// Checks the &-spine of a CNF: conjunctions of clauses.
bool is_clause(const BoolFormula& f, int& literals) {
    if (f->kind == BoolKind::Or) {
        return is_clause(f->children[0], literals) &&
               is_clause(f->children[1], literals);
    }
    if (f->kind == BoolKind::Not) {
        return f->children[0]->kind == BoolKind::Var && ++literals <= 3;
    }
    if (f->kind == BoolKind::Var) {
        return ++literals <= 3;
    }
    return false;
}

bool formula_is_cnf3(const BoolFormula& f) {
    if (f->kind == BoolKind::And) {
        return formula_is_cnf3(f->children[0]) && formula_is_cnf3(f->children[1]);
    }
    if (f->kind == BoolKind::True) {
        return true;
    }
    int literals = 0;
    return is_clause(f, literals);
}

} // namespace

BooleanGraph::BooleanGraph(LabeledGraph topology, std::vector<BoolFormula> formulas)
    : graph_(std::move(topology)), formulas_(std::move(formulas)) {
    check(formulas_.size() == graph_.num_nodes(),
          "BooleanGraph: one formula per node required");
    for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
        graph_.set_label(u, encode_bool_label(formulas_[u]));
    }
}

BooleanGraph BooleanGraph::decode(const LabeledGraph& g) {
    std::vector<BoolFormula> formulas;
    formulas.reserve(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        formulas.push_back(decode_bool_label(g.label(u)));
    }
    return BooleanGraph(g, std::move(formulas));
}

bool BooleanGraph::is_3cnf_graph() const {
    for (const auto& f : formulas_) {
        if (!formula_is_cnf3(f)) {
            return false;
        }
    }
    return true;
}

namespace {

std::string qualified(NodeId u, const std::string& var) {
    return "n" + std::to_string(u) + "." + var;
}

} // namespace

std::optional<GraphValuation> find_graph_valuation(const BooleanGraph& bg) {
    const LabeledGraph& g = bg.graph();
    // Build one CNF over node-qualified variables.
    Cnf combined;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        // Qualify the node's own variables, then Tseytin-encode; qualified
        // names start with "n", auxiliary names with "aux", so they never
        // collide across nodes or with each other.
        const BoolFormula local_formula = rename_bool_vars(
            bg.formula(u), [&](const std::string& name) { return qualified(u, name); });
        const Cnf local =
            tseytin_3cnf(local_formula, "aux" + std::to_string(u) + ".");
        combined.insert(combined.end(), local.begin(), local.end());
    }
    // Consistency on shared variables of adjacent nodes: equality clauses.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const auto vars_u = bool_variables(bg.formula(u));
        for (NodeId v : g.neighbors(u)) {
            if (v <= u) {
                continue;
            }
            const auto vars_v = bool_variables(bg.formula(v));
            for (const auto& var : vars_u) {
                if (vars_v.count(var) == 0) {
                    continue;
                }
                const Literal pu{qualified(u, var), true};
                const Literal nu{qualified(u, var), false};
                const Literal pv{qualified(v, var), true};
                const Literal nv{qualified(v, var), false};
                combined.push_back({nu, pv});
                combined.push_back({nv, pu});
            }
        }
    }
    const auto model = dpll(combined);
    if (!model.has_value()) {
        return std::nullopt;
    }
    GraphValuation vals(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        for (const auto& var : bool_variables(bg.formula(u))) {
            const auto it = model->find(qualified(u, var));
            vals[u][var] = it != model->end() ? it->second : false;
        }
    }
    check(verify_graph_valuation(bg, vals),
          "find_graph_valuation: internal error, model does not verify");
    return vals;
}

bool is_sat_graph(const BooleanGraph& bg) {
    return find_graph_valuation(bg).has_value();
}

bool verify_graph_valuation(const BooleanGraph& bg, const GraphValuation& vals) {
    const LabeledGraph& g = bg.graph();
    if (vals.size() != g.num_nodes()) {
        return false;
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const auto vars_u = bool_variables(bg.formula(u));
        for (const auto& var : vars_u) {
            if (vals[u].find(var) == vals[u].end()) {
                return false;
            }
        }
        if (!eval_bool(bg.formula(u), vals[u])) {
            return false;
        }
        for (NodeId v : g.neighbors(u)) {
            for (const auto& var : vars_u) {
                const auto it = vals[v].find(var);
                if (it != vals[v].end() &&
                    it->second != vals[u].at(var)) {
                    return false;
                }
            }
        }
    }
    return true;
}

} // namespace lph
