#pragma once

#include "graph/graph.hpp"
#include "graphalg/coloring.hpp"
#include "sat/cnf.hpp"

#include <optional>

namespace lph {

/// Encodes proper k-colorability of g as a CNF over variables "c<u>_<color>"
/// (at-least-one, at-most-one, neighbors-differ).
Cnf coloring_cnf(const LabeledGraph& g, int k);

/// k-coloring via the DPLL solver — much better behaved than plain
/// backtracking on the large gadget graphs produced by the Theorem 20
/// reduction, where unit propagation rides the forced chains.
std::optional<Coloring> find_k_coloring_dpll(const LabeledGraph& g, int k);

inline bool is_k_colorable_dpll(const LabeledGraph& g, int k) {
    return find_k_coloring_dpll(g, k).has_value();
}

} // namespace lph
