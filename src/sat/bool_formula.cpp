#include "sat/bool_formula.hpp"

#include "core/check.hpp"

#include <sstream>

namespace lph {

namespace bf {
namespace {
BoolFormula make(BoolNode node) {
    return std::make_shared<const BoolNode>(std::move(node));
}
BoolFormula binary_op(BoolKind kind, BoolFormula a, BoolFormula b) {
    BoolNode node;
    node.kind = kind;
    node.children = {std::move(a), std::move(b)};
    return make(std::move(node));
}
bool valid_name(const std::string& name) {
    if (name.empty()) {
        return false;
    }
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':' || c == '.';
        if (!ok) {
            return false;
        }
    }
    return true;
}
} // namespace

BoolFormula var(const std::string& name) {
    check(valid_name(name), "bf::var: invalid variable name '" + name + "'");
    BoolNode node;
    node.kind = BoolKind::Var;
    node.var = name;
    return make(std::move(node));
}

BoolFormula truth() {
    BoolNode node;
    node.kind = BoolKind::True;
    return make(std::move(node));
}

BoolFormula falsity() {
    BoolNode node;
    node.kind = BoolKind::False;
    return make(std::move(node));
}

BoolFormula bnot(BoolFormula a) {
    BoolNode node;
    node.kind = BoolKind::Not;
    node.children = {std::move(a)};
    return make(std::move(node));
}

BoolFormula band(BoolFormula a, BoolFormula b) {
    return binary_op(BoolKind::And, std::move(a), std::move(b));
}
BoolFormula bor(BoolFormula a, BoolFormula b) {
    return binary_op(BoolKind::Or, std::move(a), std::move(b));
}
BoolFormula bimplies(BoolFormula a, BoolFormula b) {
    return binary_op(BoolKind::Implies, std::move(a), std::move(b));
}
BoolFormula biff(BoolFormula a, BoolFormula b) {
    return binary_op(BoolKind::Iff, std::move(a), std::move(b));
}

BoolFormula band_all(std::vector<BoolFormula> parts) {
    if (parts.empty()) {
        return truth();
    }
    BoolFormula result = parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) {
        result = band(result, parts[i]);
    }
    return result;
}

BoolFormula bor_all(std::vector<BoolFormula> parts) {
    if (parts.empty()) {
        return falsity();
    }
    BoolFormula result = parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) {
        result = bor(result, parts[i]);
    }
    return result;
}

} // namespace bf

namespace {

void collect_vars(const BoolFormula& f, std::set<std::string>& vars) {
    if (f->kind == BoolKind::Var) {
        vars.insert(f->var);
        return;
    }
    for (const auto& c : f->children) {
        collect_vars(c, vars);
    }
}

} // namespace

std::set<std::string> bool_variables(const BoolFormula& f) {
    std::set<std::string> vars;
    collect_vars(f, vars);
    return vars;
}

bool eval_bool(const BoolFormula& f, const Valuation& valuation) {
    switch (f->kind) {
    case BoolKind::Var: {
        const auto it = valuation.find(f->var);
        check(it != valuation.end(), "eval_bool: unassigned variable " + f->var);
        return it->second;
    }
    case BoolKind::True:
        return true;
    case BoolKind::False:
        return false;
    case BoolKind::Not:
        return !eval_bool(f->children[0], valuation);
    case BoolKind::And:
        return eval_bool(f->children[0], valuation) &&
               eval_bool(f->children[1], valuation);
    case BoolKind::Or:
        return eval_bool(f->children[0], valuation) ||
               eval_bool(f->children[1], valuation);
    case BoolKind::Implies:
        return !eval_bool(f->children[0], valuation) ||
               eval_bool(f->children[1], valuation);
    case BoolKind::Iff:
        return eval_bool(f->children[0], valuation) ==
               eval_bool(f->children[1], valuation);
    }
    check(false, "eval_bool: unreachable");
    return false;
}

namespace {

void render(const BoolFormula& f, std::ostringstream& out) {
    switch (f->kind) {
    case BoolKind::Var:
        out << f->var;
        return;
    case BoolKind::True:
        out << "#t";
        return;
    case BoolKind::False:
        out << "#f";
        return;
    case BoolKind::Not:
        out << "!(";
        render(f->children[0], out);
        out << ")";
        return;
    case BoolKind::And:
    case BoolKind::Or:
    case BoolKind::Implies:
    case BoolKind::Iff: {
        const char op = f->kind == BoolKind::And       ? '&'
                        : f->kind == BoolKind::Or      ? '|'
                        : f->kind == BoolKind::Implies ? '>'
                                                       : '=';
        out << op << "(";
        render(f->children[0], out);
        out << ",";
        render(f->children[1], out);
        out << ")";
        return;
    }
    }
}

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    BoolFormula parse() {
        BoolFormula f = formula();
        check(pos_ == text_.size(), "decode_bool_label: trailing characters");
        return f;
    }

private:
    char peek() const {
        check(pos_ < text_.size(), "decode_bool_label: unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        check(peek() == c, std::string("decode_bool_label: expected '") + c + "'");
        ++pos_;
    }

    BoolFormula formula() {
        const char c = peek();
        if (c == '#') {
            ++pos_;
            const char t = peek();
            ++pos_;
            check(t == 't' || t == 'f', "decode_bool_label: bad constant");
            return t == 't' ? bf::truth() : bf::falsity();
        }
        if (c == '!') {
            ++pos_;
            expect('(');
            BoolFormula a = formula();
            expect(')');
            return bf::bnot(std::move(a));
        }
        if (c == '&' || c == '|' || c == '>' || c == '=') {
            ++pos_;
            expect('(');
            BoolFormula a = formula();
            expect(',');
            BoolFormula b = formula();
            expect(')');
            switch (c) {
            case '&':
                return bf::band(std::move(a), std::move(b));
            case '|':
                return bf::bor(std::move(a), std::move(b));
            case '>':
                return bf::bimplies(std::move(a), std::move(b));
            default:
                return bf::biff(std::move(a), std::move(b));
            }
        }
        // Variable name.
        std::string name;
        while (pos_ < text_.size()) {
            const char v = text_[pos_];
            const bool ok = (v >= 'a' && v <= 'z') || (v >= 'A' && v <= 'Z') ||
                            (v >= '0' && v <= '9') || v == '_' || v == ':' || v == '.';
            if (!ok) {
                break;
            }
            name.push_back(v);
            ++pos_;
        }
        check(!name.empty(), "decode_bool_label: expected a formula");
        return bf::var(name);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string bool_to_string(const BoolFormula& f) {
    std::ostringstream out;
    render(f, out);
    return out.str();
}

BitString encode_bool_label(const BoolFormula& f) {
    const std::string text = bool_to_string(f);
    BitString bits;
    bits.reserve(text.size() * 8);
    for (char c : text) {
        bits += encode_unsigned_width(static_cast<unsigned char>(c), 8);
    }
    return bits;
}

BoolFormula decode_bool_label(const BitString& label) {
    check(label.size() % 8 == 0, "decode_bool_label: label length not a byte multiple");
    std::string text;
    text.reserve(label.size() / 8);
    for (std::size_t i = 0; i < label.size(); i += 8) {
        text.push_back(static_cast<char>(decode_unsigned(label.substr(i, 8))));
    }
    return Parser(text).parse();
}

BoolFormula rename_bool_vars(
    const BoolFormula& f,
    const std::function<std::string(const std::string&)>& rename) {
    if (f->kind == BoolKind::Var) {
        return bf::var(rename(f->var));
    }
    if (f->children.empty()) {
        return f;
    }
    BoolNode node;
    node.kind = f->kind;
    for (const auto& c : f->children) {
        node.children.push_back(rename_bool_vars(c, rename));
    }
    return std::make_shared<const BoolNode>(std::move(node));
}

std::size_t bool_size(const BoolFormula& f) {
    std::size_t total = 1;
    for (const auto& c : f->children) {
        total += bool_size(c);
    }
    return total;
}

} // namespace lph
