#pragma once

#include "graph/graph.hpp"
#include "sat/cnf.hpp"

#include <optional>

namespace lph {

/// A Boolean graph: a labeled graph whose labels encode Boolean formulas
/// (Section 8).  The graph is *satisfiable* (belongs to SAT-GRAPH) when each
/// node can be given a valuation of its formula's variables that satisfies
/// the formula and agrees with adjacent nodes on shared variable names.
class BooleanGraph {
public:
    /// Wraps a topology with per-node formulas; labels are the encodings.
    BooleanGraph(LabeledGraph topology, std::vector<BoolFormula> formulas);

    /// Decodes a labeled graph whose labels are formula encodings.
    static BooleanGraph decode(const LabeledGraph& g);

    const LabeledGraph& graph() const { return graph_; }
    const BoolFormula& formula(NodeId u) const { return formulas_.at(u); }
    std::size_t num_nodes() const { return graph_.num_nodes(); }

    /// True when every node's formula is in 3-CNF shape (3-SAT-GRAPH).
    bool is_3cnf_graph() const;

private:
    LabeledGraph graph_;
    std::vector<BoolFormula> formulas_;
};

/// Per-node valuations witnessing satisfiability.
using GraphValuation = std::vector<Valuation>;

/// Searches for a satisfying, locally consistent family of valuations by
/// reducing to a single CNF over node-qualified variables linked by
/// equality constraints on edges, solved with DPLL.
std::optional<GraphValuation> find_graph_valuation(const BooleanGraph& bg);

/// SAT-GRAPH membership.
bool is_sat_graph(const BooleanGraph& bg);

/// Verifies a proposed family of valuations: each satisfies its node's
/// formula and adjacent nodes agree on shared variables.  This is the local
/// check the NLP-verifier for SAT-GRAPH performs (proof of Theorem 19).
bool verify_graph_valuation(const BooleanGraph& bg, const GraphValuation& vals);

} // namespace lph
