#pragma once

#include "sat/bool_formula.hpp"

#include <optional>

namespace lph {

struct Literal {
    std::string var;
    bool positive = true;

    bool operator==(const Literal& other) const {
        return var == other.var && positive == other.positive;
    }
};

using Clause = std::vector<Literal>;
using Cnf = std::vector<Clause>;

/// True when every clause has at most three literals (the 3-CNF form used by
/// 3-SAT-GRAPH, Theorem 20).
bool is_3cnf(const Cnf& cnf);

std::set<std::string> cnf_variables(const Cnf& cnf);

bool eval_cnf(const Cnf& cnf, const Valuation& valuation);

/// Converts a CNF back into a BoolFormula (for storing in node labels).
BoolFormula cnf_to_formula(const Cnf& cnf);

/// The Tseytin transformation (used in the proof of Theorem 20): an
/// equisatisfiable 3-CNF of size linear in the input.  Auxiliary variables
/// are named `aux_prefix` + counter, so reductions can make them
/// node-specific ("we make the new variables' names depend on the identifier
/// id(u)").  Every satisfying valuation of the input extends to one of the
/// output, and every satisfying valuation of the output restricts to one of
/// the input.
Cnf tseytin_3cnf(const BoolFormula& f, const std::string& aux_prefix);

/// Parses a BoolFormula that is syntactically a CNF (an And-spine of
/// Or-clauses of literals; True parses to the empty CNF) back into clause
/// form; nullopt when the formula is not in that shape.
std::optional<Cnf> formula_to_cnf(const BoolFormula& f);

/// DPLL with unit propagation and pure-literal elimination.  Returns a
/// satisfying total valuation over cnf_variables(cnf), or nullopt.
std::optional<Valuation> dpll(const Cnf& cnf);

bool is_satisfiable(const Cnf& cnf);

} // namespace lph
