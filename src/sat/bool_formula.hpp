#pragma once

#include "core/bitstring.hpp"

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace lph {

enum class BoolKind { Var, True, False, Not, And, Or, Implies, Iff };

struct BoolNode;
using BoolFormula = std::shared_ptr<const BoolNode>;

/// A propositional formula over named variables — the labels of Boolean
/// graphs (Section 8, "Boolean graph satisfiability").
struct BoolNode {
    BoolKind kind = BoolKind::True;
    std::string var;                   ///< for Var
    std::vector<BoolFormula> children; ///< operands
};

namespace bf {
BoolFormula var(const std::string& name);
BoolFormula truth();
BoolFormula falsity();
BoolFormula bnot(BoolFormula a);
BoolFormula band(BoolFormula a, BoolFormula b);
BoolFormula bor(BoolFormula a, BoolFormula b);
BoolFormula bimplies(BoolFormula a, BoolFormula b);
BoolFormula biff(BoolFormula a, BoolFormula b);
BoolFormula band_all(std::vector<BoolFormula> parts);
BoolFormula bor_all(std::vector<BoolFormula> parts);
} // namespace bf

/// A (partial) truth assignment.
using Valuation = std::map<std::string, bool>;

std::set<std::string> bool_variables(const BoolFormula& f);

/// Evaluates f; every variable of f must be assigned.
bool eval_bool(const BoolFormula& f, const Valuation& valuation);

/// Printable prefix rendering, e.g. "&(P,!(Q))".
std::string bool_to_string(const BoolFormula& f);

/// Serializes a formula into a node label: the ASCII rendering, 8 bits per
/// character (labels are bit strings, Section 3).
BitString encode_bool_label(const BoolFormula& f);

/// Inverse of encode_bool_label; throws on malformed input.
BoolFormula decode_bool_label(const BitString& label);

std::size_t bool_size(const BoolFormula& f);

/// Returns f with every variable name passed through `rename` (used by
/// reductions to qualify variables per node).
BoolFormula rename_bool_vars(const BoolFormula& f,
                             const std::function<std::string(const std::string&)>& rename);

} // namespace lph
