#include "dtm/gather.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <sstream>

namespace lph {

LocalView LocalView::initial(const BitString& id, const BitString& label,
                             const std::string& certificates) {
    LocalView view;
    view.self_ = id;
    ViewNode self;
    self.id = id;
    self.label = label;
    self.certificates = certificates;
    self.dist = 0;
    view.nodes_.emplace(id, std::move(self));
    return view;
}

void LocalView::set_self_neighbors(std::vector<BitString> ids) {
    nodes_.at(self_).neighbor_ids = std::move(ids);
}

void LocalView::merge_from_neighbor(const LocalView& other) {
    for (const auto& [id, record] : other.nodes_) {
        const int dist_via = record.dist + 1;
        const auto it = nodes_.find(id);
        if (it == nodes_.end()) {
            ViewNode copy = record;
            copy.dist = dist_via;
            nodes_.emplace(id, std::move(copy));
            continue;
        }
        ViewNode& mine = it->second;
        mine.dist = std::min(mine.dist, dist_via);
        // Neighbor lists are unioned; a record may arrive before its owner
        // has learned its own neighbors.
        for (const auto& nid : record.neighbor_ids) {
            if (std::find(mine.neighbor_ids.begin(), mine.neighbor_ids.end(), nid) ==
                mine.neighbor_ids.end()) {
                mine.neighbor_ids.push_back(nid);
            }
        }
    }
}

namespace {

/// Identifiers and labels are over {0,1}; certificates over {0,1,#}; none of
/// them contain the record separators used here.
constexpr char kFieldSep = ',';
constexpr char kRecordSep = '|';
constexpr char kListSep = ' ';

std::vector<std::string> split_on(const std::string& s, char sep) {
    std::vector<std::string> parts;
    std::string current;
    for (char c : s) {
        if (c == sep) {
            parts.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    parts.push_back(current);
    return parts;
}

} // namespace

std::string LocalView::serialize() const {
    // The self record goes first; the remaining records follow in key order.
    std::ostringstream out;
    auto write_record = [&out](const ViewNode& record, bool first) {
        if (!first) {
            out << kRecordSep;
        }
        out << record.id << kFieldSep << record.label << kFieldSep
            << record.certificates << kFieldSep << record.dist << kFieldSep;
        for (std::size_t i = 0; i < record.neighbor_ids.size(); ++i) {
            if (i > 0) {
                out << kListSep;
            }
            out << record.neighbor_ids[i];
        }
    };
    write_record(nodes_.at(self_), true);
    for (const auto& [id, record] : nodes_) {
        if (id != self_) {
            write_record(record, false);
        }
    }
    return out.str();
}

LocalView LocalView::deserialize(const std::string& data) {
    LocalView view;
    bool first = true;
    for (const auto& record_text : split_on(data, kRecordSep)) {
        const auto fields = split_on(record_text, kFieldSep);
        check(fields.size() == 5, "LocalView::deserialize: malformed record");
        ViewNode record;
        record.id = fields[0];
        record.label = fields[1];
        record.certificates = fields[2];
        record.dist = std::stoi(fields[3].empty() ? "0" : fields[3]);
        if (!fields[4].empty()) {
            for (const auto& nid : split_on(fields[4], kListSep)) {
                record.neighbor_ids.push_back(nid);
            }
        }
        if (first) {
            view.self_ = record.id;
            first = false;
        }
        view.nodes_.emplace(record.id, std::move(record));
    }
    return view;
}

NeighborhoodGatherMachine::NeighborhoodGatherMachine(int radius) : radius_(radius) {
    check(radius >= 0, "NeighborhoodGatherMachine: negative radius");
}

LocalMachine::RoundOutput
NeighborhoodGatherMachine::on_round(const RoundInput& input, std::string& state,
                                    StepMeter& meter) const {
    LocalView view = input.round == 1
                         ? LocalView::initial(input.id, input.label,
                                              input.certificates)
                         : LocalView::deserialize(state);

    if (input.round >= 2) {
        // Senders arrive in ascending identifier order; merge their views and
        // learn our direct neighbors' ids from their self records.
        std::vector<BitString> neighbor_ids;
        for (const auto& message : input.messages) {
            const LocalView other = LocalView::deserialize(message);
            neighbor_ids.push_back(other.self());
            view.merge_from_neighbor(other);
            meter.charge(message.size());
        }
        view.set_self_neighbors(std::move(neighbor_ids));
    }

    RoundOutput output;
    if (input.round == round_bound()) {
        // Reconstruct N_r(self) and decide.
        std::vector<const ViewNode*> in_range;
        for (const auto& [id, record] : view.nodes()) {
            if (record.dist <= radius_) {
                in_range.push_back(&record);
            }
        }
        // Deterministic order: ascending identifier (keys of the map).
        NeighborhoodView neighborhood;
        std::map<BitString, NodeId> index;
        for (const ViewNode* record : in_range) {
            const NodeId v = neighborhood.graph.add_node(record->label);
            neighborhood.ids.push_back(record->id);
            neighborhood.certs.push_back(record->certificates);
            index.emplace(record->id, v);
            if (record->id == view.self()) {
                neighborhood.self = v;
            }
        }
        for (const ViewNode* record : in_range) {
            const NodeId u = index.at(record->id);
            for (const auto& nid : record->neighbor_ids) {
                const auto it = index.find(nid);
                if (it != index.end() && it->second != u &&
                    !neighborhood.graph.has_edge(u, it->second)) {
                    neighborhood.graph.add_edge(u, it->second);
                }
            }
        }
        meter.charge(neighborhood.graph.num_nodes() +
                     2 * neighborhood.graph.num_edges());
        output.halt = true;
        output.verdict = decide(neighborhood, meter);
        return output;
    }

    const std::string serialized = view.serialize();
    meter.charge(serialized.size());
    state = serialized;
    // Broadcast the full view to every neighbor.
    output.send.assign(input.messages.size(), serialized);
    return output;
}

} // namespace lph
