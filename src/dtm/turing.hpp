#pragma once

#include "dtm/execution.hpp"
#include "graph/certificates.hpp"
#include "graph/identifiers.hpp"

#include <array>
#include <map>
#include <optional>
#include <string>

namespace lph {

/// Tape alphabet Sigma = {|-, blank, #, 0, 1} (Section 4), with ASCII stand-ins.
namespace tape {
constexpr char kLeftEnd = '>';  ///< left-end marker |-
constexpr char kBlank = '_';    ///< blank
constexpr char kSep = '#';
constexpr char kZero = '0';
constexpr char kOne = '1';

/// True for a character of the tape alphabet.
bool is_symbol(char c);
} // namespace tape

/// Head movement.
enum class Move : int { Left = -1, Stay = 0, Right = 1 };

/// A transition target: delta(q, a1, a2, a3) =
/// (q', write recv, write int, write snd, move recv, move int, move snd).
///
/// The paper's delta writes to all three tapes; machines that treat the
/// receiving tape as read-only simply rewrite the scanned symbol.
struct TuringAction {
    std::string next_state;
    std::array<char, 3> write;
    std::array<Move, 3> move;
};

/// A distributed Turing machine M = (Q, delta) (Section 4).
///
/// States are strings; the designated states are "start", "pause", "stop".
/// Transitions may be registered with wildcards ('*' matches any symbol and
/// '=' in a write slot means "write back what was read"); exact entries take
/// precedence over wildcard entries.
class TuringMachine {
public:
    static constexpr const char* kStart = "start";
    static constexpr const char* kPause = "pause";
    static constexpr const char* kStop = "stop";

    /// Registers delta(state, read) = action.  `read` may contain '*'
    /// wildcards; `action.write` may contain '=' (echo the scanned symbol).
    void add_transition(const std::string& state, std::array<char, 3> read,
                        TuringAction action);

    /// Convenience: register one rule for every combination matching the
    /// pattern, as add_transition but with explicit parameters.
    void add_rule(const std::string& state, char r1, char r2, char r3,
                  const std::string& next, char w1, char w2, char w3, Move m1,
                  Move m2, Move m3);

    /// Looks up the applicable action; nullopt when delta is undefined
    /// (treated as a runtime error by the runner, since the paper's delta is
    /// total and terminating).
    std::optional<TuringAction> transition(const std::string& state,
                                           std::array<char, 3> read) const;

    std::size_t num_rules() const { return exact_.size() + wildcard_.size(); }

private:
    struct Pattern {
        std::string state;
        std::array<char, 3> read;
        TuringAction action;
    };

    std::map<std::pair<std::string, std::array<char, 3>>, TuringAction> exact_;
    std::vector<Pattern> wildcard_;
};

/// Executes M on g under id and certificate lists kappa (Section 4).
/// Requires id to be at least 1-locally unique.  Message order follows the
/// ascending identifier order of each node's neighbors.
ExecutionResult run_turing(const TuringMachine& m, const LabeledGraph& g,
                           const IdentifierAssignment& id,
                           const CertificateListAssignment& certs,
                           const ExecutionOptions& options = {});

/// Executes M with the trivial (all-empty) certificate-list assignment.
ExecutionResult run_turing(const TuringMachine& m, const LabeledGraph& g,
                           const IdentifierAssignment& id,
                           const ExecutionOptions& options = {});

} // namespace lph
