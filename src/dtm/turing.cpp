#include "dtm/turing.hpp"

#include "core/check.hpp"

#include <algorithm>
#include <numeric>

namespace lph {

namespace tape {
bool is_symbol(char c) {
    return c == kLeftEnd || c == kBlank || c == kSep || c == kZero || c == kOne;
}
} // namespace tape

void TuringMachine::add_transition(const std::string& state, std::array<char, 3> read,
                                   TuringAction action) {
    for (char c : read) {
        check(c == '*' || tape::is_symbol(c),
              "TuringMachine: invalid read symbol in transition");
    }
    for (char c : action.write) {
        check(c == '=' || tape::is_symbol(c),
              "TuringMachine: invalid write symbol in transition");
    }
    const bool has_wildcard =
        std::any_of(read.begin(), read.end(), [](char c) { return c == '*'; });
    if (has_wildcard) {
        wildcard_.push_back({state, read, std::move(action)});
    } else {
        exact_.insert_or_assign({state, read}, std::move(action));
    }
}

void TuringMachine::add_rule(const std::string& state, char r1, char r2, char r3,
                             const std::string& next, char w1, char w2, char w3,
                             Move m1, Move m2, Move m3) {
    add_transition(state, {r1, r2, r3}, TuringAction{next, {w1, w2, w3}, {m1, m2, m3}});
}

std::optional<TuringAction> TuringMachine::transition(const std::string& state,
                                                      std::array<char, 3> read) const {
    const auto it = exact_.find({state, read});
    if (it != exact_.end()) {
        return it->second;
    }
    for (const auto& p : wildcard_) {
        if (p.state != state) {
            continue;
        }
        bool matches = true;
        for (int i = 0; i < 3; ++i) {
            if (p.read[static_cast<std::size_t>(i)] != '*' &&
                p.read[static_cast<std::size_t>(i)] != read[static_cast<std::size_t>(i)]) {
                matches = false;
                break;
            }
        }
        if (matches) {
            return p.action;
        }
    }
    return std::nullopt;
}

namespace {

/// One node's three tapes plus head positions and machine state.
struct NodeMachine {
    std::array<std::string, 3> tapes; // each starts with the left-end marker
    std::array<std::size_t, 3> heads{0, 0, 0};
    std::string state = TuringMachine::kStart;
    bool stopped = false;

    char read(int t) const {
        const auto& tp = tapes[static_cast<std::size_t>(t)];
        const std::size_t h = heads[static_cast<std::size_t>(t)];
        return h < tp.size() ? tp[h] : tape::kBlank;
    }

    void write(int t, char c) {
        auto& tp = tapes[static_cast<std::size_t>(t)];
        std::size_t h = heads[static_cast<std::size_t>(t)];
        while (h >= tp.size()) {
            tp.push_back(tape::kBlank);
        }
        tp[h] = c;
    }

    void move(int t, Move m) {
        auto& h = heads[static_cast<std::size_t>(t)];
        if (m == Move::Left) {
            if (h > 0) {
                --h;
            }
        } else if (m == Move::Right) {
            ++h;
        }
    }

    /// Content: symbols ignoring leading left-end marker and trailing blanks.
    std::string content(int t) const {
        std::string s = tapes[static_cast<std::size_t>(t)];
        if (!s.empty() && s.front() == tape::kLeftEnd) {
            s.erase(s.begin());
        }
        while (!s.empty() && s.back() == tape::kBlank) {
            s.pop_back();
        }
        return s;
    }

    std::size_t space() const {
        return tapes[0].size() + tapes[1].size() + tapes[2].size();
    }
};

std::string fresh_tape() { return std::string(1, tape::kLeftEnd); }

/// The first `count` '#'-separated bit strings on the sending tape, blanks
/// ignored (Section 4, phase 3).
std::vector<std::string> outgoing_messages(const std::string& send_content,
                                           std::size_t count) {
    std::string compact;
    for (char c : send_content) {
        if (c != tape::kBlank) {
            compact.push_back(c);
        }
    }
    const auto parts = split_hash(compact);
    std::vector<std::string> messages(count, "");
    for (std::size_t i = 0; i < count && i < parts.size(); ++i) {
        messages[i] = parts[i];
    }
    return messages;
}

} // namespace

ExecutionResult run_turing(const TuringMachine& m, const LabeledGraph& g,
                           const IdentifierAssignment& id,
                           const CertificateListAssignment& certs,
                           const ExecutionOptions& options) {
    g.validate();
    check(id.size() == g.num_nodes(), "run_turing: identifier assignment size");
    check(certs.size() == g.num_nodes(), "run_turing: certificate assignment size");
    check(id.is_locally_unique(g, 1),
          "run_turing: identifiers must be at least 1-locally unique");

    const std::size_t n = g.num_nodes();

    // Neighbor order: ascending identifiers (Section 4, phase 1), with node
    // index as a deterministic tiebreaker for far-apart equal identifiers.
    std::vector<std::vector<NodeId>> ordered_neighbors(n);
    for (NodeId u = 0; u < n; ++u) {
        ordered_neighbors[u] = g.neighbors(u);
        std::sort(ordered_neighbors[u].begin(), ordered_neighbors[u].end(),
                  [&](NodeId a, NodeId b) {
                      return std::make_pair(id(a), a) < std::make_pair(id(b), b);
                  });
    }

    std::vector<NodeMachine> nodes(n);
    for (NodeId u = 0; u < n; ++u) {
        nodes[u].tapes = {fresh_tape(), fresh_tape(), fresh_tape()};
        nodes[u].tapes[1] += g.label(u) + "#" + id(u) + "#" + certs(u);
    }

    // Messages sent in the previous round, indexed by sender.
    std::vector<std::vector<std::string>> in_flight(n);
    for (NodeId u = 0; u < n; ++u) {
        in_flight[u].assign(g.degree(u), "");
    }

    ExecutionResult result;
    result.node_stats.assign(n, NodeStats{});

    int round = 0;
    while (true) {
        ++round;
        check(round <= options.max_rounds,
              "run_turing: exceeded max_rounds; machine may not terminate");

        for (NodeId u = 0; u < n; ++u) {
            NodeMachine& node = nodes[u];

            // Phase 1: deliver messages (ascending sender identifier order).
            std::string recv;
            for (std::size_t i = 0; i < ordered_neighbors[u].size(); ++i) {
                const NodeId v = ordered_neighbors[u][i];
                // Find u's slot in v's ordered neighbor list.
                const auto& v_order = ordered_neighbors[v];
                const std::size_t slot = static_cast<std::size_t>(
                    std::find(v_order.begin(), v_order.end(), u) - v_order.begin());
                recv += in_flight[v][slot];
                recv += tape::kSep;
                result.total_message_bytes += in_flight[v][slot].size();
            }
            node.tapes[0] = fresh_tape() + recv;

            // Phase 2: local computation.
            node.tapes[2] = fresh_tape(); // sending tape starts empty
            if (node.state != TuringMachine::kStop) {
                node.state = TuringMachine::kStart;
                node.heads = {0, 0, 0};
                std::uint64_t steps = 0;
                while (node.state != TuringMachine::kPause &&
                       node.state != TuringMachine::kStop) {
                    const std::array<char, 3> scanned = {node.read(0), node.read(1),
                                                         node.read(2)};
                    const auto action = m.transition(node.state, scanned);
                    check(action.has_value(),
                          "run_turing: undefined transition from state '" +
                              node.state + "' reading {" + scanned[0] + scanned[1] +
                              scanned[2] + "}");
                    for (int t = 0; t < 3; ++t) {
                        const char w = action->write[static_cast<std::size_t>(t)];
                        node.write(t, w == '=' ? scanned[static_cast<std::size_t>(t)] : w);
                        node.move(t, action->move[static_cast<std::size_t>(t)]);
                    }
                    node.state = action->next_state;
                    ++steps;
                    check(steps <= options.max_steps_per_round,
                          "run_turing: exceeded max_steps_per_round");
                }
                NodeStats& stats = result.node_stats[u];
                stats.total_steps += steps;
                stats.max_round_steps = std::max(stats.max_round_steps, steps);
                stats.max_space = std::max<std::uint64_t>(stats.max_space, node.space());
                result.total_steps += steps;
            }
        }

        // Phase 3: collect outgoing messages for the next round.
        bool all_stopped = true;
        for (NodeId u = 0; u < n; ++u) {
            in_flight[u] = outgoing_messages(nodes[u].content(2), g.degree(u));
            for (const auto& msg : in_flight[u]) {
                check(is_bit_string(msg),
                      "run_turing: messages must be bit strings");
            }
            if (nodes[u].state != TuringMachine::kStop) {
                all_stopped = false;
            }
        }
        if (all_stopped) {
            break;
        }
    }

    result.rounds = round;
    result.outputs.reserve(n);
    result.raw_outputs.reserve(n);
    for (NodeId u = 0; u < n; ++u) {
        result.raw_outputs.push_back(nodes[u].content(1));
        result.outputs.push_back(filter_to_bits(result.raw_outputs.back()));
    }
    result.accepted = unanimous_accept(result.outputs);
    return result;
}

ExecutionResult run_turing(const TuringMachine& m, const LabeledGraph& g,
                           const IdentifierAssignment& id,
                           const ExecutionOptions& options) {
    return run_turing(m, g, id, CertificateListAssignment::empty(g.num_nodes()),
                      options);
}

} // namespace lph
