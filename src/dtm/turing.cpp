#include "dtm/turing.hpp"

#include "core/check.hpp"
#include "dtm/faults.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

namespace lph {

namespace tape {
bool is_symbol(char c) {
    return c == kLeftEnd || c == kBlank || c == kSep || c == kZero || c == kOne;
}
} // namespace tape

void TuringMachine::add_transition(const std::string& state, std::array<char, 3> read,
                                   TuringAction action) {
    for (char c : read) {
        check(c == '*' || tape::is_symbol(c),
              "TuringMachine: invalid read symbol in transition");
    }
    for (char c : action.write) {
        check(c == '=' || tape::is_symbol(c),
              "TuringMachine: invalid write symbol in transition");
    }
    const bool has_wildcard =
        std::any_of(read.begin(), read.end(), [](char c) { return c == '*'; });
    if (has_wildcard) {
        wildcard_.push_back({state, read, std::move(action)});
    } else {
        exact_.insert_or_assign({state, read}, std::move(action));
    }
}

void TuringMachine::add_rule(const std::string& state, char r1, char r2, char r3,
                             const std::string& next, char w1, char w2, char w3,
                             Move m1, Move m2, Move m3) {
    add_transition(state, {r1, r2, r3}, TuringAction{next, {w1, w2, w3}, {m1, m2, m3}});
}

std::optional<TuringAction> TuringMachine::transition(const std::string& state,
                                                      std::array<char, 3> read) const {
    const auto it = exact_.find({state, read});
    if (it != exact_.end()) {
        return it->second;
    }
    for (const auto& p : wildcard_) {
        if (p.state != state) {
            continue;
        }
        bool matches = true;
        for (int i = 0; i < 3; ++i) {
            if (p.read[static_cast<std::size_t>(i)] != '*' &&
                p.read[static_cast<std::size_t>(i)] != read[static_cast<std::size_t>(i)]) {
                matches = false;
                break;
            }
        }
        if (matches) {
            return p.action;
        }
    }
    return std::nullopt;
}

namespace {

/// One node's three tapes plus head positions and machine state.
struct NodeMachine {
    std::array<std::string, 3> tapes; // each starts with the left-end marker
    std::array<std::size_t, 3> heads{0, 0, 0};
    std::string state = TuringMachine::kStart;
    bool stopped = false;

    char read(int t) const {
        const auto& tp = tapes[static_cast<std::size_t>(t)];
        const std::size_t h = heads[static_cast<std::size_t>(t)];
        return h < tp.size() ? tp[h] : tape::kBlank;
    }

    void write(int t, char c) {
        auto& tp = tapes[static_cast<std::size_t>(t)];
        std::size_t h = heads[static_cast<std::size_t>(t)];
        while (h >= tp.size()) {
            tp.push_back(tape::kBlank);
        }
        tp[h] = c;
    }

    void move(int t, Move m) {
        auto& h = heads[static_cast<std::size_t>(t)];
        if (m == Move::Left) {
            if (h > 0) {
                --h;
            }
        } else if (m == Move::Right) {
            ++h;
        }
    }

    /// Content: symbols ignoring leading left-end marker and trailing blanks.
    std::string content(int t) const {
        std::string s = tapes[static_cast<std::size_t>(t)];
        if (!s.empty() && s.front() == tape::kLeftEnd) {
            s.erase(s.begin());
        }
        while (!s.empty() && s.back() == tape::kBlank) {
            s.pop_back();
        }
        return s;
    }

    std::size_t space() const {
        return tapes[0].size() + tapes[1].size() + tapes[2].size();
    }
};

std::string fresh_tape() { return std::string(1, tape::kLeftEnd); }

/// The first `count` '#'-separated bit strings on the sending tape, blanks
/// ignored (Section 4, phase 3).
std::vector<std::string> outgoing_messages(const std::string& send_content,
                                           std::size_t count) {
    std::string compact;
    for (char c : send_content) {
        if (c != tape::kBlank) {
            compact.push_back(c);
        }
    }
    const auto parts = split_hash(compact);
    std::vector<std::string> messages(count, "");
    for (std::size_t i = 0; i < count && i < parts.size(); ++i) {
        messages[i] = parts[i];
    }
    return messages;
}

} // namespace

ExecutionResult run_turing(const TuringMachine& m, const LabeledGraph& g,
                           const IdentifierAssignment& id,
                           const CertificateListAssignment& certs,
                           const ExecutionOptions& options) {
    g.validate();
    check(id.size() == g.num_nodes(), "run_turing: identifier assignment size");
    check(certs.size() == g.num_nodes(), "run_turing: certificate assignment size");

    const std::size_t n = g.num_nodes();
    const FaultPolicy policy = options.on_violation;
    const FaultInjector inject(options.faults);
    const auto start = std::chrono::steady_clock::now();
    const auto past_deadline = [&] {
        return options.deadline_ms > 0 &&
               std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                       .count() > options.deadline_ms;
    };

    // Neighbor order: ascending identifiers (Section 4, phase 1), with node
    // index as a deterministic tiebreaker for far-apart equal identifiers.
    std::vector<std::vector<NodeId>> ordered_neighbors(n);
    for (NodeId u = 0; u < n; ++u) {
        ordered_neighbors[u] = g.neighbors(u);
        std::sort(ordered_neighbors[u].begin(), ordered_neighbors[u].end(),
                  [&](NodeId a, NodeId b) {
                      return std::make_pair(id(a), a) < std::make_pair(id(b), b);
                  });
    }

    ExecutionResult result;
    result.node_stats.assign(n, NodeStats{});

    const auto fatal = [&](RunError code, int round, std::string detail) {
        report_violation(result, policy,
                         RunFault{code, kNoNode, round, true, std::move(detail)},
                         /*fatal=*/true);
    };

    std::vector<NodeMachine> nodes(n);
    std::vector<bool> crashed(n, false);

    // Crash-stops a node: it computes no further, sends nothing more, and
    // its output reads as reject.
    const auto crash_node = [&](NodeId u) {
        nodes[u].state = TuringMachine::kStop;
        nodes[u].tapes[2] = fresh_tape();
        crashed[u] = true;
    };

    const auto degrade_node = [&](NodeId u, RunError code, int round,
                                  std::string detail) {
        report_violation(result, policy,
                         RunFault{code, u, round, false, std::move(detail)},
                         /*fatal=*/false);
        crash_node(u);
    };

    if (!id.is_locally_unique(g, 1)) {
        fatal(RunError::IdentifierClash, 0,
              "identifiers must be at least 1-locally unique");
    }
    if (result.ok() && options.validate_certificates) {
        for (NodeId u = 0; u < n; ++u) {
            if (!is_certificate_list_string(certs(u))) {
                report_violation(
                    result, policy,
                    RunFault{RunError::MalformedCertificate, u, 0, false,
                             "certificate list contains a byte outside {0,1,#}"},
                    /*fatal=*/false);
                crashed[u] = true;
            }
        }
    }

    for (NodeId u = 0; u < n; ++u) {
        nodes[u].tapes = {fresh_tape(), fresh_tape(), fresh_tape()};
        nodes[u].tapes[1] += g.label(u) + "#" + id(u) + "#" + certs(u);
        if (crashed[u]) {
            nodes[u].state = TuringMachine::kStop;
            nodes[u].tapes[2] = fresh_tape();
        }
    }

    // Messages sent in the previous round, indexed by sender.
    std::vector<std::vector<std::string>> in_flight(n);
    for (NodeId u = 0; u < n; ++u) {
        in_flight[u].assign(g.degree(u), "");
    }

    bool truncated_bytes_reported = false;
    int round = 0;
    while (result.ok()) {
        ++round;
        if (round > options.max_rounds) {
            fatal(RunError::RoundBudgetExceeded, round,
                  "exceeded max_rounds = " + std::to_string(options.max_rounds) +
                      "; machine may not terminate");
            break;
        }
        if (past_deadline()) {
            fatal(RunError::DeadlineExceeded, round,
                  "wall-clock deadline of " + std::to_string(options.deadline_ms) +
                      " ms exceeded");
            break;
        }

        // Injected crash-stops take effect at the start of the round.
        if (inject.active()) {
            for (NodeId u = 0; u < n; ++u) {
                if (nodes[u].state != TuringMachine::kStop &&
                    inject.crashes(u, round)) {
                    crash_node(u);
                    if (inject.recording()) {
                        result.faults.push_back(
                            RunFault{RunError::NodeCrashed, u, round, false,
                                     "injected crash-stop"});
                    }
                }
            }
        }

        for (NodeId u = 0; u < n && result.ok(); ++u) {
            NodeMachine& node = nodes[u];

            // Phase 1: deliver messages (ascending sender identifier order).
            std::string recv;
            for (std::size_t i = 0; i < ordered_neighbors[u].size(); ++i) {
                const NodeId v = ordered_neighbors[u][i];
                // Find u's slot in v's ordered neighbor list.
                const auto& v_order = ordered_neighbors[v];
                const std::size_t slot = static_cast<std::size_t>(
                    std::find(v_order.begin(), v_order.end(), u) - v_order.begin());
                std::string msg = in_flight[v][slot];
                const RunError injected = inject.mutate_message(msg, round, v, slot);
                if (injected != RunError::None && inject.recording()) {
                    result.faults.push_back(RunFault{injected, u, round, false,
                                                     "injected on the message from node " +
                                                         std::to_string(v)});
                }
                result.total_message_bytes += msg.size();
                if (options.max_total_message_bytes > 0 &&
                    result.total_message_bytes > options.max_total_message_bytes) {
                    if (policy == FaultPolicy::Truncate) {
                        const std::uint64_t over = result.total_message_bytes -
                                                   options.max_total_message_bytes;
                        const std::uint64_t keep =
                            msg.size() >= over ? msg.size() - over : 0;
                        result.total_message_bytes -= msg.size() - keep;
                        msg.resize(static_cast<std::size_t>(keep));
                        if (!truncated_bytes_reported) {
                            truncated_bytes_reported = true;
                            result.faults.push_back(RunFault{
                                RunError::MessageOverflow, u, round, false,
                                "total message bytes capped at " +
                                    std::to_string(options.max_total_message_bytes) +
                                    "; further traffic truncated"});
                        }
                    } else {
                        fatal(RunError::MessageOverflow, round,
                              "total message bytes exceeded the cap of " +
                                  std::to_string(options.max_total_message_bytes));
                        break;
                    }
                }
                recv += msg;
                recv += tape::kSep;
            }
            if (!result.ok()) {
                break;
            }
            node.tapes[0] = fresh_tape() + recv;

            // Phase 2: local computation.
            node.tapes[2] = fresh_tape(); // sending tape starts empty
            if (node.state != TuringMachine::kStop) {
                node.state = TuringMachine::kStart;
                node.heads = {0, 0, 0};
                std::uint64_t steps = 0;
                bool node_failed = false;
                while (node.state != TuringMachine::kPause &&
                       node.state != TuringMachine::kStop) {
                    const std::array<char, 3> scanned = {node.read(0), node.read(1),
                                                         node.read(2)};
                    const auto action = m.transition(node.state, scanned);
                    if (!action.has_value()) {
                        degrade_node(u, RunError::UndefinedTransition, round,
                                     "undefined transition from state '" +
                                         node.state + "' reading {" + scanned[0] +
                                         scanned[1] + scanned[2] + "}");
                        node_failed = true;
                        break;
                    }
                    for (int t = 0; t < 3; ++t) {
                        const char w = action->write[static_cast<std::size_t>(t)];
                        node.write(t, w == '=' ? scanned[static_cast<std::size_t>(t)] : w);
                        node.move(t, action->move[static_cast<std::size_t>(t)]);
                    }
                    node.state = action->next_state;
                    ++steps;
                    if (steps > options.max_steps_per_round) {
                        degrade_node(u, RunError::StepBudgetExceeded, round,
                                     std::to_string(steps) + " steps vs budget " +
                                         std::to_string(options.max_steps_per_round));
                        node_failed = true;
                        break;
                    }
                    if (options.max_space_per_node > 0 &&
                        node.space() > options.max_space_per_node) {
                        degrade_node(u, RunError::SpaceCapExceeded, round,
                                     std::to_string(node.space()) +
                                         " tape symbols vs cap " +
                                         std::to_string(options.max_space_per_node));
                        node_failed = true;
                        break;
                    }
                    if ((steps & 0xfff) == 0 && past_deadline()) {
                        fatal(RunError::DeadlineExceeded, round,
                              "wall-clock deadline of " +
                                  std::to_string(options.deadline_ms) +
                                  " ms exceeded");
                        break;
                    }
                }
                NodeStats& stats = result.node_stats[u];
                stats.total_steps += steps;
                stats.max_round_steps = std::max(stats.max_round_steps, steps);
                stats.max_space = std::max<std::uint64_t>(stats.max_space, node.space());
                result.total_steps += steps;
                if (node_failed) {
                    continue;
                }
            }
        }
        if (!result.ok()) {
            break;
        }

        // Phase 3: collect outgoing messages for the next round.
        bool all_stopped = true;
        for (NodeId u = 0; u < n; ++u) {
            in_flight[u] = outgoing_messages(nodes[u].content(2), g.degree(u));
            for (auto& msg : in_flight[u]) {
                if (!is_bit_string(msg)) {
                    report_violation(
                        result, policy,
                        RunFault{RunError::MalformedMessage, u, round, false,
                                 "outgoing message is not a bit string; dropped"},
                        /*fatal=*/false);
                    msg.clear();
                }
            }
            if (nodes[u].state != TuringMachine::kStop) {
                all_stopped = false;
            }
        }
        if (all_stopped) {
            break;
        }
    }

    result.rounds = round;
    result.outputs.reserve(n);
    result.raw_outputs.reserve(n);
    for (NodeId u = 0; u < n; ++u) {
        result.raw_outputs.push_back(crashed[u] ? "" : nodes[u].content(1));
        result.outputs.push_back(filter_to_bits(result.raw_outputs.back()));
    }
    result.accepted = result.completed && unanimous_accept(result.outputs);
    return result;
}

ExecutionResult run_turing(const TuringMachine& m, const LabeledGraph& g,
                           const IdentifierAssignment& id,
                           const ExecutionOptions& options) {
    return run_turing(m, g, id, CertificateListAssignment::empty(g.num_nodes()),
                      options);
}

} // namespace lph
