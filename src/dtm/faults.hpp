#pragma once

#include "dtm/errors.hpp"
#include "graph/certificates.hpp"
#include "graph/identifiers.hpp"

#include <cstdint>
#include <string>

namespace lph {

/// Deterministic, seed-replayable adversarial fault model for the runners.
///
/// Every decision is a pure function of (seed, kind, round, node, slot) via a
/// splitmix64-style hash — there is no shared random stream — so a plan
/// replays identically regardless of how a runner iterates, and a single
/// seed fully describes an adversary for a bug report.
///
/// The knobs mirror the paper's adversarial quantifiers: crash-stops and
/// message faults model misbehaving machines, while the perturbation helpers
/// below attack the identifier and certificate inputs that Theorems quantify
/// over ("for every locally unique identifier assignment", "for every
/// certificate Adam plays").
struct FaultPlan {
    std::uint64_t seed = 0;

    /// Per node per round: the node crash-stops at the start of the round
    /// (it stops computing and sending; an unset verdict reads as reject).
    double crash_prob = 0.0;

    /// Per delivered message per round: the message is replaced by "".
    double drop_prob = 0.0;

    /// Per delivered message per round: the message loses its second half.
    double truncate_prob = 0.0;

    /// Per delivered message per round: one position is overwritten with a
    /// flipped bit (tape-level runs stay within the alphabet; the corruption
    /// is still adversarial because the *content* changes).
    double corrupt_prob = 0.0;

    /// When false, injected faults are applied silently (pure adversary);
    /// when true (default) each application is recorded on the result.
    bool record_injected = true;

    bool any_message_faults() const {
        return drop_prob > 0 || truncate_prob > 0 || corrupt_prob > 0;
    }
    bool empty() const { return crash_prob <= 0 && !any_message_faults(); }
};

/// Stateless evaluator of a FaultPlan, usable concurrently.
class FaultInjector {
public:
    /// A null plan (or nullptr) injects nothing.
    explicit FaultInjector(const FaultPlan* plan) : plan_(plan) {}

    bool active() const { return plan_ != nullptr && !plan_->empty(); }
    bool recording() const { return active() && plan_->record_injected; }

    /// True when `node` crash-stops at the start of `round`.
    bool crashes(NodeId node, int round) const;

    /// Mutates one in-flight message; returns the fault applied
    /// (RunError::None when the message passes through untouched).
    RunError mutate_message(std::string& message, int round, NodeId sender,
                            std::size_t slot) const;

private:
    const FaultPlan* plan_;
};

/// In-model identifier attack: a *valid* r_id-locally-unique assignment the
/// adversary is free to pick, built greedily in a seeded node order.  A
/// correct machine must produce the same decision under every such
/// assignment (the paper's "for any locally unique identifier assignment").
IdentifierAssignment adversarial_local_ids(const LabeledGraph& g, int r_id,
                                           std::uint64_t seed);

/// Out-of-model identifier attack: with probability `clash_prob` per node,
/// copies a nearby node's identifier, breaking local uniqueness at
/// `radius`.  Runners must detect this as RunError::IdentifierClash.
IdentifierAssignment clash_identifiers(const LabeledGraph& g,
                                       const IdentifierAssignment& id, int radius,
                                       std::uint64_t seed, double clash_prob);

/// Certificate attack: with probability `victim_prob` per node, splices a
/// byte outside the {0,1,#} certificate alphabet into that node's list.
/// Runners must detect this as RunError::MalformedCertificate.
CertificateListAssignment malform_certificates(const CertificateListAssignment& certs,
                                               std::uint64_t seed,
                                               double victim_prob);

} // namespace lph
