#pragma once

#include "dtm/execution.hpp"
#include "dtm/local.hpp"
#include "graph/certificates.hpp"
#include "graph/identifiers.hpp"
#include "obs/metrics.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lph {

/// Counters of a ViewCache; all monotone except `entries`.
struct ViewCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    /// Re-inserts of an existing key with a *different* verdict.  Equal keys
    /// must imply equal verdicts (the cache-soundness invariant), so any
    /// nonzero value here means a key collision between genuinely different
    /// views — a bug in the key builder or a cache shared across machines.
    std::uint64_t verdict_mismatches = 0;

    double hit_rate() const {
        const double total = static_cast<double>(hits + misses);
        return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }

    /// Metric list under the `cache.` naming scheme (DESIGN.md
    /// Observability), for absorption into an obs::MetricsRegistry.
    obs::MetricList to_metrics() const;
};

/// Thread-safe bounded map from canonical r-ball view encodings to the
/// per-node verdicts of *clean* LOCAL runs (no faults, no aborts).
///
/// The locality property of the paper's machines (a node's verdict after R
/// rounds is determined by its radius-R view) makes the encoding produced by
/// ViewKeyBuilder a sound key: two nodes — in the same leaf, across leaves of
/// the certificate game, or even across instances — with identical encodings
/// receive identical verdicts.  DESIGN.md ("Parallel certificate-game
/// engine") has the full soundness argument.
///
/// Entries are evicted LRU per shard; sharding keeps the lock hot path short
/// when game workers probe concurrently.  One cache must only ever be shared
/// across runs of the *same* machine under the same ExecutionOptions — the
/// key deliberately excludes both to keep it small.
class ViewCache {
public:
    explicit ViewCache(std::size_t max_entries = 1 << 20);

    /// Returns the cached verdict for the key, refreshing its LRU position.
    std::optional<std::string> lookup(const std::string& key);

    /// Inserts (or refreshes) a verdict, evicting the shard's LRU tail when
    /// the shard is over budget.  Re-inserting an existing key with a
    /// different verdict is a cache-soundness violation: it asserts in debug
    /// builds and is counted in stats().verdict_mismatches (the first verdict
    /// is kept) instead of being silently overwritten.
    void insert(const std::string& key, const std::string& verdict);

    ViewCacheStats stats() const;
    void clear();

    /// Every live entry, oldest-first per shard — the serving layer's
    /// snapshot support.  Replaying them through restore() reproduces the
    /// LRU recency order.
    std::vector<std::pair<std::string, std::string>> export_entries() const;

    /// Re-inserts snapshot entries without touching the hit/miss counters.
    /// A restored key that already exists keeps its current verdict (and
    /// counts a verdict mismatch if they differ — a corrupted-but-valid-
    /// checksum snapshot must not overwrite live soundness data).  Returns
    /// how many entries were admitted.
    std::size_t restore(
        const std::vector<std::pair<std::string, std::string>>& entries);

private:
    struct Shard {
        mutable std::mutex mutex;
        /// Front = most recently used.
        std::list<std::pair<std::string, std::string>> lru;
        std::unordered_map<std::string,
                           std::list<std::pair<std::string, std::string>>::iterator>
            index;
    };

    static constexpr std::size_t kShards = 16;
    Shard& shard_for(const std::string& key);

    std::array<Shard, kShards> shards_;
    std::size_t max_entries_per_shard_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> verdict_mismatches_{0};
};

/// BFS distances from u, cut off beyond `radius`; -1 = outside the ball.
/// Shared by the key builder below and the serving layer's dirty-ball
/// computation (a graph edit can only change verdicts of nodes whose
/// radius-R ball touches it — the r-locality invariant).
std::vector<int> bounded_distances(const LabeledGraph& g, NodeId u, int radius);

/// Builds the per-node cache keys for one (machine, graph, identifiers,
/// execution options) context.
///
/// The key for node u is a canonical serialization of u's effective ball:
/// with R the number of rounds a clean run can take (the declared round
/// bound when enforced, otherwise the max_rounds guard), it contains
///  - distance, identifier, label, and degree of every node within R-1,
///  - the identifier of every node at distance exactly R (their ids order
///    the message slots of boundary nodes; nothing else about them can
///    reach u in R rounds),
///  - all ball edges with an endpoint within R-1, and
///  - the certificate list of every node within R-1 (the dynamic part,
///    appended per leaf by key_for).
/// Ball nodes are ordered by (distance, id, NodeId); the NodeId tie-break
/// keeps keys deterministic when identifiers repeat inside a ball, at the
/// cost of some cross-instance sharing (never of soundness: equal keys
/// imply equal rooted attributed balls, hence equal verdicts).
class ViewKeyBuilder {
public:
    ViewKeyBuilder(const LocalMachine& machine, const LabeledGraph& g,
                   const IdentifierAssignment& id, const ExecutionOptions& exec);

    /// False when this context cannot be cached at all: a fault plan or a
    /// run-global resource coupling (deadline, total-byte cap) makes node
    /// verdicts depend on more than their views, or the identifiers are not
    /// locally unique so every run fatals anyway.
    bool cacheable() const { return cacheable_; }

    /// The effective information radius used for the keys.
    int radius() const { return radius_; }

    /// Appends node u's full key (static prefix + the ball's certificate
    /// lists from `certs`) into `out` (cleared first).
    void key_for(NodeId u, const CertificateListAssignment& certs,
                 std::string& out) const;

    /// The static (certificate-independent) part of u's key: the canonical
    /// serialization of u's rooted attributed ball.  Two nodes with equal
    /// prefixes have isomorphic balls, so their verdicts are the same
    /// function of the certificates at their (positionally corresponding)
    /// cert members — the property the compiled game core's class sharing
    /// rests on.
    const std::string& static_prefix(NodeId u) const {
        return nodes_.at(u).static_prefix;
    }

    /// The nodes whose certificates u's verdict can depend on (distance
    /// <= radius()-1 from u), in the canonical (distance, id, NodeId) order
    /// key_for serializes them in.
    const std::vector<NodeId>& cert_members(NodeId u) const {
        return nodes_.at(u).cert_members;
    }

private:
    struct NodeKey {
        std::string static_prefix;
        std::vector<NodeId> cert_members; ///< canonical order, distance <= R-1
    };

    std::vector<NodeKey> nodes_;
    bool cacheable_ = false;
    int radius_ = 0;
};

} // namespace lph
