#include "dtm/view_cache.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <queue>
#include <unordered_set>

namespace lph {

ViewCache::ViewCache(std::size_t max_entries) {
    max_entries_per_shard_ = std::max<std::size_t>(1, max_entries / kShards);
}

ViewCache::Shard& ViewCache::shard_for(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % kShards];
}

std::optional<std::string> ViewCache::lookup(const std::string& key) {
    LPH_SPAN_NAMED(span, "cache", "cache.lookup");
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        span.arg("hit", 0);
        return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    span.arg("hit", 1);
    return it->second->second;
}

void ViewCache::insert(const std::string& key, const std::string& verdict) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        if (it->second->second != verdict) {
            // Equal keys must imply equal verdicts; overwriting would mask a
            // soundness violation, so keep the first verdict and surface the
            // mismatch (fatally so in debug builds).
            verdict_mismatches_.fetch_add(1, std::memory_order_relaxed);
            assert(false && "ViewCache::insert: verdict mismatch for equal keys");
        }
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.emplace_front(key, verdict);
    shard.index.emplace(key, shard.lru.begin());
    while (shard.lru.size() > max_entries_per_shard_) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
        obs::Tracer::instance().instant("cache", "cache.evict");
    }
}

ViewCacheStats ViewCache::stats() const {
    ViewCacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.verdict_mismatches = verdict_mismatches_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        stats.entries += shard.lru.size();
    }
    return stats;
}

obs::MetricList ViewCacheStats::to_metrics() const {
    return {
        {"cache.hits", static_cast<double>(hits)},
        {"cache.misses", static_cast<double>(misses)},
        {"cache.evictions", static_cast<double>(evictions)},
        {"cache.entries", static_cast<double>(entries)},
        {"cache.verdict_mismatches", static_cast<double>(verdict_mismatches)},
        {"cache.hit_rate", hit_rate()},
    };
}

void ViewCache::clear() {
    for (Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        shard.lru.clear();
        shard.index.clear();
    }
}

std::vector<std::pair<std::string, std::string>>
ViewCache::export_entries() const {
    std::vector<std::pair<std::string, std::string>> entries;
    for (const Shard& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        // The list runs MRU-to-LRU; walk it backwards for oldest-first.
        for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
            entries.push_back(*it);
        }
    }
    return entries;
}

std::size_t ViewCache::restore(
    const std::vector<std::pair<std::string, std::string>>& entries) {
    std::size_t admitted = 0;
    std::unordered_set<std::string> admitted_keys;
    for (const auto& [key, verdict] : entries) {
        Shard& shard = shard_for(key);
        const std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            if (it->second->second != verdict) {
                verdict_mismatches_.fetch_add(1, std::memory_order_relaxed);
            }
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            continue;
        }
        shard.lru.emplace_front(key, verdict);
        shard.index.emplace(key, shard.lru.begin());
        ++admitted;
        admitted_keys.insert(key);
        while (shard.lru.size() > max_entries_per_shard_) {
            // Only evictions of entries *this call* admitted cancel out of
            // the admitted count; displacing a pre-existing LRU tail does
            // not make the snapshot entry any less admitted.
            const std::string& victim = shard.lru.back().first;
            if (admitted_keys.erase(victim) > 0) {
                --admitted;
            }
            shard.index.erase(victim);
            shard.lru.pop_back();
        }
    }
    return admitted;
}

/// BFS distances from u, cut off beyond `radius`; -1 = outside the ball.
std::vector<int> bounded_distances(const LabeledGraph& g, NodeId u, int radius) {
    std::vector<int> dist(g.num_nodes(), -1);
    dist[u] = 0;
    std::queue<NodeId> frontier;
    frontier.push(u);
    while (!frontier.empty()) {
        const NodeId v = frontier.front();
        frontier.pop();
        if (dist[v] >= radius) {
            continue;
        }
        for (NodeId w : g.neighbors(v)) {
            if (dist[w] < 0) {
                dist[w] = dist[v] + 1;
                frontier.push(w);
            }
        }
    }
    return dist;
}

ViewKeyBuilder::ViewKeyBuilder(const LocalMachine& machine, const LabeledGraph& g,
                               const IdentifierAssignment& id,
                               const ExecutionOptions& exec) {
    // Run-global couplings break the per-node view determinism the cache
    // relies on: injected faults address nodes by index and round, the
    // total-byte cap and the wall-clock deadline tie one node's fate to the
    // whole run's traffic and timing.
    if (exec.faults != nullptr || exec.max_total_message_bytes > 0 ||
        exec.deadline_ms > 0) {
        return;
    }
    // Non-unique identifiers fatal every run before round 1; nothing clean
    // will ever be inserted, so skip the key work entirely.
    if (!id.is_locally_unique(g, std::max(1, machine.id_radius()))) {
        return;
    }
    // A clean run finishes within R rounds; information (including the step
    // charges that decide per-node bound violations) travels one hop per
    // round from round 2 on.
    radius_ = exec.enforce_declared_bounds
                  ? std::min(machine.round_bound(), exec.max_rounds)
                  : exec.max_rounds;
    radius_ = std::max(radius_, 1);
    cacheable_ = true;

    nodes_.resize(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        const std::vector<int> dist = bounded_distances(g, u, radius_);
        std::vector<NodeId> ball;
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
            if (dist[v] >= 0) {
                ball.push_back(v);
            }
        }
        std::sort(ball.begin(), ball.end(), [&](NodeId a, NodeId b) {
            return std::make_tuple(dist[a], std::cref(id(a)), a) <
                   std::make_tuple(dist[b], std::cref(id(b)), b);
        });
        std::vector<std::size_t> canonical(g.num_nodes(),
                                           static_cast<std::size_t>(-1));
        for (std::size_t i = 0; i < ball.size(); ++i) {
            canonical[ball[i]] = i;
        }

        NodeKey& key = nodes_[u];
        std::string& out = key.static_prefix;
        out += "r";
        out += std::to_string(radius_);
        out += ';';
        for (NodeId v : ball) {
            out += std::to_string(dist[v]);
            out += '|';
            out += id(v);
            out += '|';
            if (dist[v] <= radius_ - 1) {
                out += g.label(v);
                out += '|';
                out += std::to_string(g.degree(v));
                key.cert_members.push_back(v);
            }
            out += ';';
        }
        out += 'E';
        // Collect edges in canonical-index terms and sort before emitting:
        // the prefix must not depend on original NodeIds or adjacency-list
        // order, or isomorphic balls (e.g. rotations of a cycle with
        // periodic identifiers) would serialize differently and defeat both
        // cross-instance cache sharing and the compiled core's orbit
        // sharing.  Interior edges are kept once (smaller canonical index
        // first); interior-boundary edges order themselves the same way
        // because boundary nodes sort after all interior nodes.
        std::vector<std::pair<std::size_t, std::size_t>> edges;
        for (NodeId v : ball) {
            if (dist[v] > radius_ - 1) {
                continue; // edges among the boundary ring are irrelevant
            }
            for (NodeId w : g.neighbors(v)) {
                if (canonical[w] == static_cast<std::size_t>(-1)) {
                    continue; // captured by v's degree
                }
                if (dist[w] <= radius_ - 1 && canonical[w] < canonical[v]) {
                    continue; // emit interior edges once
                }
                edges.emplace_back(canonical[v], canonical[w]);
            }
        }
        std::sort(edges.begin(), edges.end());
        for (const auto& [a, b] : edges) {
            out += std::to_string(a);
            out += '-';
            out += std::to_string(b);
            out += ',';
        }
        out += '#';
    }
}

void ViewKeyBuilder::key_for(NodeId u, const CertificateListAssignment& certs,
                             std::string& out) const {
    const NodeKey& key = nodes_[u];
    out.clear();
    out += key.static_prefix;
    for (NodeId v : key.cert_members) {
        out += certs.at(v);
        out += ';';
    }
}

} // namespace lph
