#include "dtm/errors.hpp"

namespace lph {

const char* to_string(RunError code) {
    switch (code) {
    case RunError::None:
        return "None";
    case RunError::RoundBudgetExceeded:
        return "RoundBudgetExceeded";
    case RunError::RoundBoundViolated:
        return "RoundBoundViolated";
    case RunError::StepBudgetExceeded:
        return "StepBudgetExceeded";
    case RunError::StepBoundViolated:
        return "StepBoundViolated";
    case RunError::MessageOverflow:
        return "MessageOverflow";
    case RunError::SpaceCapExceeded:
        return "SpaceCapExceeded";
    case RunError::DeadlineExceeded:
        return "DeadlineExceeded";
    case RunError::MalformedCertificate:
        return "MalformedCertificate";
    case RunError::MalformedMessage:
        return "MalformedMessage";
    case RunError::IdentifierClash:
        return "IdentifierClash";
    case RunError::UndefinedTransition:
        return "UndefinedTransition";
    case RunError::NodeCrashed:
        return "NodeCrashed";
    case RunError::MessageDropped:
        return "MessageDropped";
    case RunError::MessageTruncated:
        return "MessageTruncated";
    case RunError::MessageCorrupted:
        return "MessageCorrupted";
    case RunError::MachineError:
        return "MachineError";
    }
    return "Unknown";
}

bool is_injected_fault(RunError code) {
    switch (code) {
    case RunError::NodeCrashed:
    case RunError::MessageDropped:
    case RunError::MessageTruncated:
    case RunError::MessageCorrupted:
        return true;
    default:
        return false;
    }
}

std::string RunFault::to_string() const {
    std::string s = lph::to_string(code);
    if (node != kNoNode) {
        s += " at node " + std::to_string(node);
    }
    if (round > 0) {
        s += " in round " + std::to_string(round);
    }
    if (!detail.empty()) {
        s += ": " + detail;
    }
    return s;
}

} // namespace lph
