#include "dtm/execution.hpp"

#include "obs/trace.hpp"

#include <algorithm>

namespace lph {

bool unanimous_accept(const std::vector<std::string>& outputs) {
    return std::all_of(outputs.begin(), outputs.end(),
                       [](const std::string& s) { return s == "1"; });
}

std::string filter_to_bits(const std::string& s) {
    std::string bits;
    for (char c : s) {
        if (c == '0' || c == '1') {
            bits.push_back(c);
        }
    }
    return bits;
}

bool ExecutionResult::has_fault(RunError code) const {
    return std::any_of(faults.begin(), faults.end(),
                       [&](const RunFault& f) { return f.code == code; });
}

std::size_t ExecutionResult::fault_count(RunError code) const {
    return static_cast<std::size_t>(
        std::count_if(faults.begin(), faults.end(),
                      [&](const RunFault& f) { return f.code == code; }));
}

void report_violation(ExecutionResult& result, FaultPolicy policy, RunFault fault,
                      bool fatal) {
    // to_string returns a pointer into a static table, as the tracer needs.
    obs::Tracer::instance().instant("fault", to_string(fault.code), "round",
                                    static_cast<std::uint64_t>(
                                        fault.round < 0 ? 0 : fault.round));
    if (policy == FaultPolicy::Throw) {
        fault.fatal = true;
        throw run_error(std::move(fault));
    }
    fault.fatal = fatal;
    if (fatal && result.error == RunError::None) {
        result.error = fault.code;
        result.completed = false;
    }
    result.faults.push_back(std::move(fault));
}

} // namespace lph
