#include "dtm/execution.hpp"

#include <algorithm>

namespace lph {

bool unanimous_accept(const std::vector<std::string>& outputs) {
    return std::all_of(outputs.begin(), outputs.end(),
                       [](const std::string& s) { return s == "1"; });
}

std::string filter_to_bits(const std::string& s) {
    std::string bits;
    for (char c : s) {
        if (c == '0' || c == '1') {
            bits.push_back(c);
        }
    }
    return bits;
}

} // namespace lph
