#pragma once

#include "core/check.hpp"
#include "graph/graph.hpp"

#include <string>
#include <vector>

namespace lph {

/// Structured error taxonomy for the distributed runners.
///
/// Every way a run can go wrong — a resource guard firing, a declared bound
/// being violated, an injected fault, a malformed input — maps to exactly one
/// code, so callers (the certificate-game engine, the bench harness) can
/// react to *what* failed instead of parsing exception text.  The paper's
/// theorems quantify adversarially over identifier assignments and Adam's
/// certificates; these codes are how the simulator reports that an adversary
/// stepped outside the model.
enum class RunError {
    None = 0,
    RoundBudgetExceeded,  ///< ExecutionOptions::max_rounds guard fired
    RoundBoundViolated,   ///< machine exceeded its declared round_bound()
    StepBudgetExceeded,   ///< ExecutionOptions::max_steps_per_round guard fired
    StepBoundViolated,    ///< machine exceeded its declared step_bound()
    MessageOverflow,      ///< more messages than neighbors, or byte cap hit
    SpaceCapExceeded,     ///< per-node space cap hit
    DeadlineExceeded,     ///< wall-clock deadline hit
    MalformedCertificate, ///< certificate list outside the {0,1,#} alphabet
    MalformedMessage,     ///< tape-level message is not a bit string
    IdentifierClash,      ///< ids not locally unique at the machine's radius
    UndefinedTransition,  ///< tape-level delta undefined (delta must be total)
    NodeCrashed,          ///< injected crash-stop fault
    MessageDropped,       ///< injected message loss
    MessageTruncated,     ///< injected message truncation
    MessageCorrupted,     ///< injected message corruption
    MachineError,         ///< the local computation threw an exception
};

/// Stable identifier string for a code (e.g. "StepBoundViolated").
const char* to_string(RunError code);

/// Sentinel for faults not attributable to a single node.
constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// One recorded fault: what happened, where, and when.
struct RunFault {
    RunError code = RunError::None;
    NodeId node = kNoNode; ///< offending node; kNoNode for run-level faults
    int round = 0;         ///< 1-based round; 0 for pre-run validation
    bool fatal = false;    ///< true when the run aborted because of this fault
    std::string detail;

    std::string to_string() const;
};

/// Thrown by the runners under FaultPolicy::Throw.  Derives from
/// precondition_error so pre-existing call sites that catch the generic
/// contract violation keep working, while new code can read the code().
class run_error : public precondition_error {
public:
    explicit run_error(RunFault fault)
        : precondition_error(fault.to_string()), fault_(std::move(fault)) {}

    const RunFault& fault() const { return fault_; }
    RunError code() const { return fault_.code; }

private:
    RunFault fault_;
};

/// What a runner does when a guard or declared bound is violated.
enum class FaultPolicy {
    /// Raise run_error (the pre-robustness behavior; default).
    Throw,
    /// Record the fault on the ExecutionResult and degrade gracefully:
    /// per-node violations crash-stop the offending node, run-level
    /// violations abort the run with partial results.
    Record,
    /// Like Record, but clamp over-budget quantities (messages, state)
    /// instead of crashing the offending node, where that is meaningful.
    Truncate,
};

/// True for the codes produced by fault injection rather than by a guard.
bool is_injected_fault(RunError code);

} // namespace lph
