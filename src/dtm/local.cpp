#include "dtm/local.hpp"

#include "core/check.hpp"
#include "dtm/faults.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace lph {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

} // namespace

ExecutionResult run_local(const LocalMachine& m, const LabeledGraph& g,
                          const IdentifierAssignment& id,
                          const CertificateListAssignment& certs,
                          const ExecutionOptions& options) {
    LPH_SPAN_NAMED(run_span, "dtm", "dtm.run_local");
    run_span.arg("nodes", g.num_nodes());
    g.validate();
    check(id.size() == g.num_nodes(), "run_local: identifier assignment size");
    check(certs.size() == g.num_nodes(), "run_local: certificate assignment size");

    const std::size_t n = g.num_nodes();
    const Polynomial step_poly = m.step_bound();
    const FaultPolicy policy = options.on_violation;
    const FaultInjector inject(options.faults);
    const Clock::time_point start = Clock::now();
    const auto past_deadline = [&] {
        return options.deadline_ms > 0 && elapsed_ms(start) > options.deadline_ms;
    };

    ExecutionResult result;
    result.node_stats.assign(n, NodeStats{});

    std::vector<std::string> states(n);
    std::vector<bool> halted(n, false);
    std::vector<std::string> verdicts(n);

    // Crash-stops a node mid-run: it keeps whatever verdict it already has
    // (none, for a node that never halted regularly — which reads as reject).
    const auto crash_node = [&](NodeId u) { halted[u] = true; };

    // Per-node guard violation: under Record/Truncate the offending node
    // crash-stops and the run continues; under Throw this raises run_error.
    const auto degrade_node = [&](NodeId u, RunError code, int round,
                                  std::string detail) {
        report_violation(result, policy,
                         RunFault{code, u, round, false, std::move(detail)},
                         /*fatal=*/false);
        crash_node(u);
    };

    // Run-level violation: the run aborts with partial results (or throws).
    const auto fatal = [&](RunError code, int round, std::string detail) {
        report_violation(result, policy,
                         RunFault{code, kNoNode, round, true, std::move(detail)},
                         /*fatal=*/true);
    };

    // --- Pre-run validation of the adversarially quantified inputs. ---
    if (!id.is_locally_unique(g, std::max(1, m.id_radius()))) {
        fatal(RunError::IdentifierClash, 0,
              "identifiers are not locally unique at the machine's radius " +
                  std::to_string(m.id_radius()));
    }
    if (result.ok() && options.validate_certificates) {
        for (NodeId u = 0; u < n; ++u) {
            const std::string list = certs(u);
            if (!is_certificate_list_string(list)) {
                degrade_node(u, RunError::MalformedCertificate, 0,
                             "certificate list contains a byte outside {0,1,#}");
            }
        }
    }

    std::vector<std::vector<NodeId>> ordered_neighbors(n);
    for (NodeId u = 0; u < n; ++u) {
        ordered_neighbors[u] = g.neighbors(u);
        std::sort(ordered_neighbors[u].begin(), ordered_neighbors[u].end(),
                  [&](NodeId a, NodeId b) {
                      return std::make_pair(id(a), a) < std::make_pair(id(b), b);
                  });
    }

    std::vector<std::vector<std::string>> in_flight(n);
    for (NodeId u = 0; u < n; ++u) {
        in_flight[u].assign(g.degree(u), "");
    }

    bool truncated_bytes_reported = false;
    int round = 0;
    while (result.ok()) {
        if (std::all_of(halted.begin(), halted.end(), [](bool h) { return h; })) {
            break;
        }
        ++round;
        if (round > options.max_rounds) {
            fatal(RunError::RoundBudgetExceeded, round,
                  "exceeded max_rounds = " + std::to_string(options.max_rounds) +
                      "; machine may not terminate");
            break;
        }
        if (options.enforce_declared_bounds && round > m.round_bound()) {
            fatal(RunError::RoundBoundViolated, round,
                  "machine exceeded its declared round bound " +
                      std::to_string(m.round_bound()));
            break;
        }
        if (past_deadline()) {
            fatal(RunError::DeadlineExceeded, round,
                  "wall-clock deadline of " + std::to_string(options.deadline_ms) +
                      " ms exceeded");
            break;
        }

        // Injected crash-stops take effect at the start of the round.
        if (inject.active()) {
            for (NodeId u = 0; u < n; ++u) {
                if (!halted[u] && inject.crashes(u, round)) {
                    crash_node(u);
                    obs::Tracer::instance().instant("fault", "fault.inject.crash",
                                                    "node", u);
                    if (inject.recording()) {
                        result.faults.push_back(
                            RunFault{RunError::NodeCrashed, u, round, false,
                                     "injected crash-stop"});
                    }
                }
            }
        }

        std::vector<std::vector<std::string>> next_flight(n);
        for (NodeId u = 0; u < n; ++u) {
            next_flight[u].assign(g.degree(u), "");
        }

        for (NodeId u = 0; u < n && result.ok(); ++u) {
            if (halted[u]) {
                continue;
            }
            // Assemble incoming messages in ascending sender-identifier order,
            // running each through the fault injector on delivery.
            std::vector<std::string> messages;
            std::uint64_t receive_bytes = 0;
            messages.reserve(ordered_neighbors[u].size());
            for (NodeId v : ordered_neighbors[u]) {
                const auto& v_order = ordered_neighbors[v];
                const std::size_t slot = static_cast<std::size_t>(
                    std::find(v_order.begin(), v_order.end(), u) - v_order.begin());
                std::string msg = in_flight[v][slot];
                const RunError injected = inject.mutate_message(msg, round, v, slot);
                if (injected != RunError::None) {
                    obs::Tracer::instance().instant("fault", "fault.inject.message",
                                                    "node", u);
                }
                if (injected != RunError::None && inject.recording()) {
                    result.faults.push_back(RunFault{injected, u, round, false,
                                                     "injected on the message from node " +
                                                         std::to_string(v)});
                }
                receive_bytes += msg.size();
                result.total_message_bytes += msg.size();
                if (options.max_total_message_bytes > 0 &&
                    result.total_message_bytes > options.max_total_message_bytes) {
                    if (policy == FaultPolicy::Truncate) {
                        const std::uint64_t over = result.total_message_bytes -
                                                   options.max_total_message_bytes;
                        const std::uint64_t keep =
                            msg.size() >= over ? msg.size() - over : 0;
                        receive_bytes -= msg.size() - keep;
                        result.total_message_bytes -= msg.size() - keep;
                        msg.resize(static_cast<std::size_t>(keep));
                        if (!truncated_bytes_reported) {
                            truncated_bytes_reported = true;
                            result.faults.push_back(RunFault{
                                RunError::MessageOverflow, u, round, false,
                                "total message bytes capped at " +
                                    std::to_string(options.max_total_message_bytes) +
                                    "; further traffic truncated"});
                        }
                    } else {
                        fatal(RunError::MessageOverflow, round,
                              "total message bytes exceeded the cap of " +
                                  std::to_string(options.max_total_message_bytes));
                        break;
                    }
                }
                messages.push_back(std::move(msg));
            }
            if (!result.ok()) {
                break;
            }

            const std::uint64_t input_size =
                receive_bytes + messages.size() + states[u].size();

            StepMeter meter;
            // Reading the inputs costs at least their length, as on a tape.
            meter.charge(input_size);
            if (round == 1) {
                meter.charge(g.label(u).size() + id(u).size() + certs(u).size() + 2);
            }

            LocalMachine::RoundInput input{g.label(u), id(u), certs(u), round,
                                           messages};
            LocalMachine::RoundOutput output;
            if (policy == FaultPolicy::Throw) {
                output = m.on_round(input, states[u], meter);
            } else {
                // Degraded mode: a machine that throws (e.g. on a corrupted
                // message it fails to parse) crashes its node, not the run.
                try {
                    output = m.on_round(input, states[u], meter);
                } catch (const std::exception& e) {
                    degrade_node(u, RunError::MachineError, round, e.what());
                    continue;
                }
            }

            if (output.send.size() > g.degree(u)) {
                if (policy == FaultPolicy::Throw) {
                    report_violation(
                        result, policy,
                        RunFault{RunError::MessageOverflow, u, round, false,
                                 "machine sent more messages than neighbors"},
                        false);
                }
                result.faults.push_back(
                    RunFault{RunError::MessageOverflow, u, round, false,
                             "machine sent " + std::to_string(output.send.size()) +
                                 " messages to " + std::to_string(g.degree(u)) +
                                 " neighbors; extras dropped"});
                output.send.resize(g.degree(u));
            }
            for (std::size_t i = 0; i < output.send.size(); ++i) {
                meter.charge(output.send[i].size());
                next_flight[u][i] = std::move(output.send[i]);
            }

            NodeStats& stats = result.node_stats[u];
            const std::uint64_t steps = meter.steps();
            stats.total_steps += steps;
            stats.max_round_steps = std::max(stats.max_round_steps, steps);
            stats.max_space =
                std::max<std::uint64_t>(stats.max_space, states[u].size());
            result.total_steps += steps;

            if (steps > options.max_steps_per_round) {
                degrade_node(u, RunError::StepBudgetExceeded, round,
                             std::to_string(steps) + " steps vs budget " +
                                 std::to_string(options.max_steps_per_round));
                next_flight[u].assign(g.degree(u), "");
                continue;
            }
            if (options.enforce_declared_bounds) {
                // Step time is measured against the initial tape contents of
                // the round: the received messages plus the internal state
                // (on round 1 the state is the label#id#certificates string).
                const std::uint64_t tape_len =
                    round == 1 ? g.label(u).size() + id(u).size() +
                                     certs(u).size() + 2 + input_size
                               : input_size;
                if (steps > step_poly(std::max<std::uint64_t>(tape_len, 1))) {
                    degrade_node(u, RunError::StepBoundViolated, round,
                                 std::to_string(steps) + " steps vs " +
                                     step_poly.to_string() + " at n=" +
                                     std::to_string(tape_len));
                    next_flight[u].assign(g.degree(u), "");
                    continue;
                }
            }
            if (options.max_space_per_node > 0 &&
                states[u].size() > options.max_space_per_node) {
                if (policy == FaultPolicy::Truncate) {
                    states[u].resize(
                        static_cast<std::size_t>(options.max_space_per_node));
                    result.faults.push_back(RunFault{
                        RunError::SpaceCapExceeded, u, round, false,
                        "state truncated to the cap of " +
                            std::to_string(options.max_space_per_node)});
                } else {
                    degrade_node(u, RunError::SpaceCapExceeded, round,
                                 std::to_string(states[u].size()) +
                                     " symbols vs cap " +
                                     std::to_string(options.max_space_per_node));
                    next_flight[u].assign(g.degree(u), "");
                    continue;
                }
            }

            if (output.halt) {
                halted[u] = true;
                verdicts[u] = std::move(output.verdict);
            }
            if (past_deadline()) {
                fatal(RunError::DeadlineExceeded, round,
                      "wall-clock deadline of " +
                          std::to_string(options.deadline_ms) + " ms exceeded");
            }
        }

        if (!result.ok()) {
            break;
        }
        in_flight = std::move(next_flight);
    }

    result.rounds = round;
    result.outputs.reserve(n);
    result.raw_outputs.reserve(n);
    for (NodeId u = 0; u < n; ++u) {
        result.raw_outputs.push_back(verdicts[u]);
        result.outputs.push_back(filter_to_bits(verdicts[u]));
    }
    result.accepted = result.completed && unanimous_accept(result.outputs);
    return result;
}

ExecutionResult run_local(const LocalMachine& m, const LabeledGraph& g,
                          const IdentifierAssignment& id,
                          const ExecutionOptions& options) {
    return run_local(m, g, id, CertificateListAssignment::empty(g.num_nodes()),
                     options);
}

} // namespace lph
