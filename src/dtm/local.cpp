#include "dtm/local.hpp"

#include "core/check.hpp"

#include <algorithm>

namespace lph {

ExecutionResult run_local(const LocalMachine& m, const LabeledGraph& g,
                          const IdentifierAssignment& id,
                          const CertificateListAssignment& certs,
                          const ExecutionOptions& options) {
    g.validate();
    check(id.size() == g.num_nodes(), "run_local: identifier assignment size");
    check(certs.size() == g.num_nodes(), "run_local: certificate assignment size");
    check(id.is_locally_unique(g, std::max(1, m.id_radius())),
          "run_local: identifiers are not locally unique at the machine's radius");

    const std::size_t n = g.num_nodes();
    const Polynomial step_poly = m.step_bound();

    std::vector<std::vector<NodeId>> ordered_neighbors(n);
    for (NodeId u = 0; u < n; ++u) {
        ordered_neighbors[u] = g.neighbors(u);
        std::sort(ordered_neighbors[u].begin(), ordered_neighbors[u].end(),
                  [&](NodeId a, NodeId b) {
                      return std::make_pair(id(a), a) < std::make_pair(id(b), b);
                  });
    }

    std::vector<std::string> states(n);
    std::vector<bool> halted(n, false);
    std::vector<std::string> verdicts(n);
    std::vector<std::vector<std::string>> in_flight(n);
    for (NodeId u = 0; u < n; ++u) {
        in_flight[u].assign(g.degree(u), "");
    }

    ExecutionResult result;
    result.node_stats.assign(n, NodeStats{});

    int round = 0;
    while (true) {
        ++round;
        check(round <= options.max_rounds, "run_local: exceeded max_rounds");
        if (options.enforce_declared_bounds) {
            check(round <= m.round_bound(),
                  "run_local: machine exceeded its declared round bound");
        }

        std::vector<std::vector<std::string>> next_flight(n);
        for (NodeId u = 0; u < n; ++u) {
            next_flight[u].assign(g.degree(u), "");
        }

        for (NodeId u = 0; u < n; ++u) {
            if (halted[u]) {
                continue;
            }
            // Assemble incoming messages in ascending sender-identifier order.
            std::vector<std::string> messages;
            std::uint64_t receive_bytes = 0;
            messages.reserve(ordered_neighbors[u].size());
            for (NodeId v : ordered_neighbors[u]) {
                const auto& v_order = ordered_neighbors[v];
                const std::size_t slot = static_cast<std::size_t>(
                    std::find(v_order.begin(), v_order.end(), u) - v_order.begin());
                messages.push_back(in_flight[v][slot]);
                receive_bytes += messages.back().size();
                result.total_message_bytes += messages.back().size();
            }

            const std::uint64_t input_size =
                receive_bytes + messages.size() + states[u].size();

            StepMeter meter;
            // Reading the inputs costs at least their length, as on a tape.
            meter.charge(input_size);
            if (round == 1) {
                meter.charge(g.label(u).size() + id(u).size() + certs(u).size() + 2);
            }

            LocalMachine::RoundInput input{g.label(u), id(u), certs(u), round,
                                           messages};
            LocalMachine::RoundOutput output = m.on_round(input, states[u], meter);

            check(output.send.size() <= g.degree(u),
                  "run_local: machine sent more messages than neighbors");
            for (std::size_t i = 0; i < output.send.size(); ++i) {
                meter.charge(output.send[i].size());
                next_flight[u][i] = std::move(output.send[i]);
            }

            NodeStats& stats = result.node_stats[u];
            const std::uint64_t steps = meter.steps();
            stats.total_steps += steps;
            stats.max_round_steps = std::max(stats.max_round_steps, steps);
            stats.max_space =
                std::max<std::uint64_t>(stats.max_space, states[u].size());
            result.total_steps += steps;

            check(steps <= options.max_steps_per_round,
                  "run_local: exceeded max_steps_per_round");
            if (options.enforce_declared_bounds) {
                // Step time is measured against the initial tape contents of
                // the round: the received messages plus the internal state
                // (on round 1 the state is the label#id#certificates string).
                const std::uint64_t tape_len =
                    round == 1 ? g.label(u).size() + id(u).size() +
                                     certs(u).size() + 2 + input_size
                               : input_size;
                check(steps <= step_poly(std::max<std::uint64_t>(tape_len, 1)),
                      "run_local: machine exceeded its declared step bound (" +
                          std::to_string(steps) + " steps vs " +
                          step_poly.to_string() + " at n=" +
                          std::to_string(tape_len) + ", round " +
                          std::to_string(round) + ")");
            }

            if (output.halt) {
                halted[u] = true;
                verdicts[u] = std::move(output.verdict);
            }
        }

        in_flight = std::move(next_flight);
        if (std::all_of(halted.begin(), halted.end(), [](bool h) { return h; })) {
            break;
        }
    }

    result.rounds = round;
    result.outputs.reserve(n);
    result.raw_outputs.reserve(n);
    for (NodeId u = 0; u < n; ++u) {
        result.raw_outputs.push_back(verdicts[u]);
        result.outputs.push_back(filter_to_bits(verdicts[u]));
    }
    result.accepted = unanimous_accept(result.outputs);
    return result;
}

ExecutionResult run_local(const LocalMachine& m, const LabeledGraph& g,
                          const IdentifierAssignment& id,
                          const ExecutionOptions& options) {
    return run_local(m, g, id, CertificateListAssignment::empty(g.num_nodes()),
                     options);
}

} // namespace lph
