#pragma once

#include "core/bitstring.hpp"
#include "dtm/errors.hpp"
#include "graph/graph.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace lph {

struct FaultPlan;

/// Per-node resource usage over one execution.
struct NodeStats {
    std::uint64_t total_steps = 0;     ///< computation steps across all rounds
    std::uint64_t max_round_steps = 0; ///< worst single round (step time)
    std::uint64_t max_space = 0;       ///< peak tape/state usage in symbols
};

/// Outcome of executing a distributed machine on a graph (Section 4,
/// "Result and decision").
struct ExecutionResult {
    /// Output string of each node: the bit string on its internal tape after
    /// termination, non-0/1 symbols removed.
    std::vector<std::string> outputs;

    /// The unfiltered per-node output (the full tape/verdict string).  Graph
    /// transformations read their cluster encodings from here (Section 8).
    std::vector<std::string> raw_outputs;

    /// Acceptance by unanimity: every node's output is exactly "1".  A run
    /// that aborted on a fatal fault never accepts.
    bool accepted = false;

    /// Rounds until all nodes reached the stop state (or the run aborted).
    int rounds = 0;

    std::vector<NodeStats> node_stats;
    std::uint64_t total_steps = 0;
    std::uint64_t total_message_bytes = 0;

    /// The fatal fault that aborted the run, RunError::None when the run
    /// completed.  Per-node degradations (a crashed or bound-violating node
    /// under FaultPolicy::Record) do not abort the run; they appear only in
    /// `faults` below.
    RunError error = RunError::None;

    /// Everything recorded along the way: injected faults and guard
    /// violations, in the order they occurred.
    std::vector<RunFault> faults;

    /// False when the run aborted early on a fatal fault (outputs then hold
    /// partial results: unset verdicts are empty).
    bool completed = true;

    /// True when no fatal fault aborted the run.
    bool ok() const { return error == RunError::None; }

    /// True when some recorded fault carries the given code.
    bool has_fault(RunError code) const;

    /// Number of recorded faults with the given code.
    std::size_t fault_count(RunError code) const;

    /// Individual verdict of node u ("u accepts" iff output is "1").
    bool node_accepts(NodeId u) const { return outputs.at(u) == "1"; }
};

/// Execution controls shared by the tape-level and local-algorithm runners.
struct ExecutionOptions {
    /// Hard guard against non-terminating machines.
    int max_rounds = 1000;

    /// Hard guard against non-halting local computations (per node, per round).
    std::uint64_t max_steps_per_round = 50'000'000;

    /// When true, runners verify the machine's declared round and step bounds
    /// and report violations (this is what makes a machine
    /// "local-polynomial" in the paper's sense).
    bool enforce_declared_bounds = true;

    /// How violations are surfaced: thrown as run_error (Throw, default) or
    /// recorded on the ExecutionResult with graceful degradation.
    FaultPolicy on_violation = FaultPolicy::Throw;

    /// Wall-clock deadline for the whole run in milliseconds; 0 disables.
    double deadline_ms = 0;

    /// Cap on the total message bytes delivered over the run; 0 disables.
    std::uint64_t max_total_message_bytes = 0;

    /// Cap on one node's state/tape size in symbols; 0 disables.
    std::uint64_t max_space_per_node = 0;

    /// When true, certificate lists are validated against the {0,1,#}
    /// alphabet before the run (RunError::MalformedCertificate).
    bool validate_certificates = true;

    /// Deterministic adversarial fault injection; nullptr disables.
    const FaultPlan* faults = nullptr;
};

/// Computes acceptance from per-node outputs.
bool unanimous_accept(const std::vector<std::string>& outputs);

/// Strips every character other than '0'/'1' (Section 4: "any symbols other
/// than 0 and 1 are ignored" when reading a verdict off the internal tape).
std::string filter_to_bits(const std::string& s);

/// Shared violation funnel for the runners: under FaultPolicy::Throw raises
/// run_error(fault); otherwise records the fault on the result (marking the
/// result's fatal error when `fatal` is set) and returns.
void report_violation(ExecutionResult& result, FaultPolicy policy, RunFault fault,
                      bool fatal);

} // namespace lph
