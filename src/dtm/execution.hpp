#pragma once

#include "core/bitstring.hpp"
#include "graph/graph.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace lph {

/// Per-node resource usage over one execution.
struct NodeStats {
    std::uint64_t total_steps = 0;     ///< computation steps across all rounds
    std::uint64_t max_round_steps = 0; ///< worst single round (step time)
    std::uint64_t max_space = 0;       ///< peak tape/state usage in symbols
};

/// Outcome of executing a distributed machine on a graph (Section 4,
/// "Result and decision").
struct ExecutionResult {
    /// Output string of each node: the bit string on its internal tape after
    /// termination, non-0/1 symbols removed.
    std::vector<std::string> outputs;

    /// The unfiltered per-node output (the full tape/verdict string).  Graph
    /// transformations read their cluster encodings from here (Section 8).
    std::vector<std::string> raw_outputs;

    /// Acceptance by unanimity: every node's output is exactly "1".
    bool accepted = false;

    /// Rounds until all nodes reached the stop state.
    int rounds = 0;

    std::vector<NodeStats> node_stats;
    std::uint64_t total_steps = 0;
    std::uint64_t total_message_bytes = 0;

    /// Individual verdict of node u ("u accepts" iff output is "1").
    bool node_accepts(NodeId u) const { return outputs.at(u) == "1"; }
};

/// Execution controls shared by the tape-level and local-algorithm runners.
struct ExecutionOptions {
    /// Hard guard against non-terminating machines.
    int max_rounds = 1000;

    /// Hard guard against non-halting local computations (per node, per round).
    std::uint64_t max_steps_per_round = 50'000'000;

    /// When true, runners verify the machine's declared round and step bounds
    /// and throw on violation (this is what makes a machine
    /// "local-polynomial" in the paper's sense).
    bool enforce_declared_bounds = true;
};

/// Computes acceptance from per-node outputs.
bool unanimous_accept(const std::vector<std::string>& outputs);

/// Strips every character other than '0'/'1' (Section 4: "any symbols other
/// than 0 and 1 are ignored" when reading a verdict off the internal tape).
std::string filter_to_bits(const std::string& s);

} // namespace lph
