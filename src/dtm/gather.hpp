#pragma once

#include "dtm/local.hpp"

#include <map>

namespace lph {

/// What a node knows about one other node while flooding its neighborhood.
struct ViewNode {
    BitString id;
    BitString label;
    std::string certificates; ///< '#'-joined certificate list
    int dist = 0;             ///< current best-known distance from the owner
    std::vector<BitString> neighbor_ids;
};

/// A node's accumulating knowledge of its r-neighborhood.
///
/// Identifiers are used as keys, which is sound as long as the identifier
/// assignment is locally unique at radius >= r (the machine declares this
/// via LocalMachine::id_radius).
class LocalView {
public:
    LocalView() = default;

    static LocalView initial(const BitString& id, const BitString& label,
                             const std::string& certificates);

    const BitString& self() const { return self_; }
    const std::map<BitString, ViewNode>& nodes() const { return nodes_; }

    /// Records the ids of the owner's direct neighbors (learned in round 2).
    void set_self_neighbors(std::vector<BitString> ids);

    /// Merges a neighbor's view: every record's distance grows by one hop.
    void merge_from_neighbor(const LocalView& other);

    std::string serialize() const;
    static LocalView deserialize(const std::string& data);

private:
    BitString self_;
    std::map<BitString, ViewNode> nodes_;
};

/// The reconstructed r-neighborhood a gather machine decides on.
struct NeighborhoodView {
    LabeledGraph graph;              ///< N_r(self), labels included
    NodeId self = 0;                 ///< index of the deciding node
    std::vector<BitString> ids;      ///< identifier of each reconstructed node
    std::vector<std::string> certs;  ///< certificate list of each node
};

/// Base for the common machine shape used throughout the paper's proofs
/// (e.g. Theorem 12, backward direction): flood local views for a constant
/// number of rounds until each node has reconstructed N_r(u) with all labels,
/// identifiers, and certificates, then decide locally.
class NeighborhoodGatherMachine : public LocalMachine {
public:
    explicit NeighborhoodGatherMachine(int radius);

    int radius() const { return radius_; }
    int round_bound() const override { return radius_ == 0 ? 1 : radius_ + 2; }

    /// Views are keyed by identifier and records travel up to radius+2 hops,
    /// so identifiers must be unique within 2*(radius+2); r_id = radius+2
    /// guarantees that.
    int id_radius() const override { return radius_ == 0 ? 1 : radius_ + 2; }

    RoundOutput on_round(const RoundInput& input, std::string& state,
                         StepMeter& meter) const final;

    /// The local decision applied to the gathered neighborhood.
    virtual std::string decide(const NeighborhoodView& view, StepMeter& meter) const = 0;

private:
    int radius_;
};

} // namespace lph
