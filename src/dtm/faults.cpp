#include "dtm/faults.hpp"

#include <algorithm>
#include <numeric>

namespace lph {

namespace {

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Pure decision value for one (seed, kind, a, b, c) tuple.
std::uint64_t decide(std::uint64_t seed, std::uint64_t kind, std::uint64_t a,
                     std::uint64_t b, std::uint64_t c) {
    return mix(mix(mix(mix(seed ^ kind) ^ a) ^ b) ^ c);
}

/// Maps a decision value to [0,1) and compares against the probability.
bool chance(std::uint64_t h, double p) {
    if (p <= 0) {
        return false;
    }
    if (p >= 1) {
        return true;
    }
    return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

// Decision kinds; distinct constants keep the fault channels independent.
constexpr std::uint64_t kCrash = 0x11;
constexpr std::uint64_t kDrop = 0x22;
constexpr std::uint64_t kTruncate = 0x33;
constexpr std::uint64_t kCorrupt = 0x44;
constexpr std::uint64_t kCorruptPos = 0x55;
constexpr std::uint64_t kOrder = 0x66;
constexpr std::uint64_t kClash = 0x77;
constexpr std::uint64_t kClashPick = 0x88;
constexpr std::uint64_t kMalform = 0x99;
constexpr std::uint64_t kMalformPos = 0xaa;

} // namespace

bool FaultInjector::crashes(NodeId node, int round) const {
    if (!active()) {
        return false;
    }
    return chance(decide(plan_->seed, kCrash, node, static_cast<std::uint64_t>(round), 0),
                  plan_->crash_prob);
}

RunError FaultInjector::mutate_message(std::string& message, int round, NodeId sender,
                                       std::size_t slot) const {
    if (!active() || !plan_->any_message_faults() || message.empty()) {
        return RunError::None;
    }
    const std::uint64_t r = static_cast<std::uint64_t>(round);
    if (chance(decide(plan_->seed, kDrop, r, sender, slot), plan_->drop_prob)) {
        message.clear();
        return RunError::MessageDropped;
    }
    if (chance(decide(plan_->seed, kTruncate, r, sender, slot),
               plan_->truncate_prob)) {
        message.erase(message.size() / 2);
        return RunError::MessageTruncated;
    }
    if (chance(decide(plan_->seed, kCorrupt, r, sender, slot), plan_->corrupt_prob)) {
        const std::size_t pos =
            decide(plan_->seed, kCorruptPos, r, sender, slot) % message.size();
        message[pos] = message[pos] == '0' ? '1' : '0';
        return RunError::MessageCorrupted;
    }
    return RunError::None;
}

IdentifierAssignment adversarial_local_ids(const LabeledGraph& g, int r_id,
                                           std::uint64_t seed) {
    g.validate();
    check(r_id >= 1, "adversarial_local_ids: r_id must be at least 1");
    const std::size_t n = g.num_nodes();

    // Seeded Fisher-Yates over the node order (own hash, not std::shuffle,
    // so replays are identical across standard libraries).
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), NodeId{0});
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = decide(seed, kOrder, i, 0, 0) % i;
        std::swap(order[i - 1], order[j]);
    }

    // Greedy least-unused-within-2*r_id assignment (Remark 1), in the seeded
    // order: a different but equally valid adversary every seed.
    constexpr std::uint64_t kUnassigned = static_cast<std::uint64_t>(-1);
    std::vector<std::uint64_t> value(n, kUnassigned);
    for (NodeId u : order) {
        std::vector<std::uint64_t> taken;
        for (NodeId v : g.ball(u, 2 * r_id)) {
            if (v != u && value[v] != kUnassigned) {
                taken.push_back(value[v]);
            }
        }
        std::sort(taken.begin(), taken.end());
        std::uint64_t candidate = 0;
        for (std::uint64_t t : taken) {
            if (t == candidate) {
                ++candidate;
            } else if (t > candidate) {
                break;
            }
        }
        value[u] = candidate;
    }

    std::vector<BitString> ids(n);
    for (NodeId u = 0; u < n; ++u) {
        ids[u] = encode_unsigned(value[u]);
    }
    return IdentifierAssignment(std::move(ids));
}

IdentifierAssignment clash_identifiers(const LabeledGraph& g,
                                       const IdentifierAssignment& id, int radius,
                                       std::uint64_t seed, double clash_prob) {
    check(id.size() == g.num_nodes(), "clash_identifiers: assignment size");
    check(radius >= 1, "clash_identifiers: radius must be at least 1");
    IdentifierAssignment out = id;
    // Once a node joins a clash pair it is pinned: neither endpoint may be
    // re-assigned by a later iteration, or a chain of copies could collapse
    // into a clash-free permutation and defeat the injection.
    std::vector<char> pinned(g.num_nodes(), 0);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (pinned[u] || !chance(decide(seed, kClash, u, 0, 0), clash_prob)) {
            continue;
        }
        std::vector<NodeId> nearby;
        for (NodeId v : g.ball(u, 2 * radius)) {
            if (v != u) {
                nearby.push_back(v);
            }
        }
        if (nearby.empty()) {
            continue;
        }
        const NodeId victim =
            nearby[decide(seed, kClashPick, u, 0, 0) % nearby.size()];
        out.set(u, out(victim));
        pinned[u] = 1;
        pinned[victim] = 1;
    }
    return out;
}

CertificateListAssignment malform_certificates(const CertificateListAssignment& certs,
                                               std::uint64_t seed,
                                               double victim_prob) {
    std::vector<std::string> lists(certs.size());
    for (NodeId u = 0; u < certs.size(); ++u) {
        std::string s = certs(u);
        if (chance(decide(seed, kMalform, u, 0, 0), victim_prob)) {
            const std::size_t pos =
                s.empty() ? 0 : decide(seed, kMalformPos, u, 0, 0) % (s.size() + 1);
            s.insert(s.begin() + static_cast<std::ptrdiff_t>(pos), 'x');
        }
        lists[u] = std::move(s);
    }
    return CertificateListAssignment::from_raw(std::move(lists), certs.layers());
}

} // namespace lph
