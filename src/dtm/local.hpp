#pragma once

#include "dtm/execution.hpp"
#include "graph/certificates.hpp"
#include "graph/identifiers.hpp"
#include "graph/polynomial.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace lph {

/// Explicit work accounting for the local-algorithm layer.
///
/// The paper's machines are Turing machines whose step time is polynomial in
/// the length of the receiving + internal tapes.  Writing every arbiter as a
/// raw transition table is impractical, so the library also provides this
/// metered layer: the runner automatically charges for every byte of input
/// read and output written, and algorithms charge their own processing work
/// via charge().  DESIGN.md (substitution 3) records this modeling choice;
/// the tape-level model in dtm/turing.hpp is cross-validated against it.
class StepMeter {
public:
    void charge(std::uint64_t steps) { steps_ += steps; }
    std::uint64_t steps() const { return steps_; }

private:
    std::uint64_t steps_ = 0;
};

/// A synchronous message-passing machine in convenient form: one callback per
/// round per node, with persistent per-node state standing in for the
/// internal tape.
class LocalMachine {
public:
    virtual ~LocalMachine() = default;

    struct RoundInput {
        const BitString& label;
        const BitString& id;
        const std::string& certificates; ///< '#'-joined certificate list
        int round;                       ///< 1-based
        /// Messages from neighbors, in ascending identifier order of the
        /// senders; on round 1 all are empty.
        const std::vector<std::string>& messages;
    };

    struct RoundOutput {
        /// Message to the i-th neighbor (ascending identifier order); missing
        /// entries default to the empty string.
        std::vector<std::string> send;
        /// When true, this node enters the stop state with the given verdict
        /// written to its output ("1" = accept).
        bool halt = false;
        std::string verdict;
    };

    /// Constant bound on the number of rounds (constant round time).
    virtual int round_bound() const = 0;

    /// Declared step polynomial: per round, a node's metered work must not
    /// exceed step_bound()(len(messages) + len(state)).  The default is a
    /// generous cubic, which concrete machines tighten.
    virtual Polynomial step_bound() const { return Polynomial{1024, 1024, 0, 1}; }

    /// Radius of identifier uniqueness this machine assumes (r_id).
    virtual int id_radius() const { return 1; }

    /// Processes one round at one node.  `state` persists across rounds.
    virtual RoundOutput on_round(const RoundInput& input, std::string& state,
                                 StepMeter& meter) const = 0;
};

/// Executes a LocalMachine on g under id and certificates; verifies the
/// declared round/step bounds when options.enforce_declared_bounds is set.
ExecutionResult run_local(const LocalMachine& m, const LabeledGraph& g,
                          const IdentifierAssignment& id,
                          const CertificateListAssignment& certs,
                          const ExecutionOptions& options = {});

ExecutionResult run_local(const LocalMachine& m, const LabeledGraph& g,
                          const IdentifierAssignment& id,
                          const ExecutionOptions& options = {});

} // namespace lph
