#include "obs/log_histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace lph {
namespace obs {

namespace {

// Largest double that still floors into uint64 range.
constexpr double kMaxRepresentable = 1.8446744073709550e19;

std::uint64_t floor_to_u64(double value) {
    if (!(value > 0.0)) {
        return 0; // negatives and NaN clamp to the zero bucket
    }
    if (value >= kMaxRepresentable) {
        return std::numeric_limits<std::uint64_t>::max();
    }
    return static_cast<std::uint64_t>(value);
}

} // namespace

std::size_t LogHistogram::bucket_index(double value) {
    const std::uint64_t u = floor_to_u64(value);
    if (u < kSubBuckets) {
        return static_cast<std::size_t>(u);
    }
    // Position of the leading bit (>= 2 here), then the next two bits pick
    // the sub-bucket inside the power-of-two group.
    const unsigned msb = 63u - static_cast<unsigned>(__builtin_clzll(u));
    const std::size_t sub = static_cast<std::size_t>((u >> (msb - 2)) & 3u);
    return kSubBuckets + (msb - 2) * kSubBuckets + sub;
}

double LogHistogram::bucket_lower(std::size_t index) {
    if (index < kSubBuckets) {
        return static_cast<double>(index);
    }
    const std::size_t group = (index - kSubBuckets) / kSubBuckets;
    const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
    return std::ldexp(static_cast<double>(kSubBuckets + sub),
                      static_cast<int>(group));
}

double LogHistogram::bucket_upper(std::size_t index) {
    if (index + 1 >= kBucketCount) {
        return std::numeric_limits<double>::infinity();
    }
    return bucket_lower(index + 1);
}

void LogHistogram::record(double value) {
    if (std::isnan(value)) {
        value = 0.0;
    }
    ++buckets_[bucket_index(value)];
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
}

void LogHistogram::merge(const LogHistogram& other) {
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        buckets_[i] += other.buckets_[i];
    }
}

double LogHistogram::percentile(double q) const {
    if (count_ == 0) {
        return 0.0;
    }
    q = std::min(1.0, std::max(0.0, q));
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    target = std::min(count_, std::max<std::uint64_t>(1, target));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        cumulative += buckets_[i];
        if (cumulative >= target) {
            const double lo = bucket_lower(i);
            double hi = bucket_upper(i);
            if (!(hi < std::numeric_limits<double>::infinity())) {
                hi = std::max(lo, max_);
            }
            const double mid = lo + (hi - lo) * 0.5;
            return std::min(max_, std::max(min_, mid));
        }
    }
    return max_; // unreachable: cumulative counts always reach count_
}

std::vector<std::pair<std::size_t, std::uint64_t>>
LogHistogram::nonzero_buckets() const {
    std::vector<std::pair<std::size_t, std::uint64_t>> out;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        if (buckets_[i] != 0) {
            out.emplace_back(i, buckets_[i]);
        }
    }
    return out;
}

void LogHistogram::append_json(std::string& out) const {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "{\"count\":%llu",
                  static_cast<unsigned long long>(count_));
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"sum\":%.17g,\"min\":%.17g,\"max\":%.17g",
                  sum_, min(), max());
    out += buf;
    out += ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        if (buckets_[i] == 0) {
            continue;
        }
        std::snprintf(buf, sizeof(buf), "%s[%zu,%llu]", first ? "" : ",", i,
                      static_cast<unsigned long long>(buckets_[i]));
        out += buf;
        first = false;
    }
    out += "]}";
}

void LogHistogram::inject(std::size_t index, std::uint64_t n) {
    if (index >= kBucketCount || n == 0) {
        return;
    }
    buckets_[index] += n;
    count_ += n;
}

void LogHistogram::set_summary(double sum, double min, double max) {
    sum_ = sum;
    min_ = min;
    max_ = max;
}

} // namespace obs
} // namespace lph
