#include "obs/trace.hpp"

#include <chrono>

namespace lph {
namespace obs {

namespace {

std::uint64_t steady_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

/// Fixed-capacity span ring owned by one thread.  All fields of a slot are
/// atomics so a concurrent snapshot is race-free (see trace.hpp).
struct Tracer::Ring {
    struct Slot {
        std::atomic<const char*> cat{nullptr};
        std::atomic<const char*> name{nullptr};
        std::atomic<const char*> arg_name{nullptr};
        std::atomic<std::uint64_t> start_us{0};
        std::atomic<std::uint64_t> dur_us{0};
        std::atomic<std::uint64_t> arg{0};
    };

    Ring(unsigned tid, std::size_t capacity) : tid(tid), slots(capacity) {}

    const unsigned tid;
    std::vector<Slot> slots;
    /// Spans ever emitted; slot (count % capacity) is the next write target.
    std::atomic<std::uint64_t> count{0};
};

Tracer::Tracer() : epoch_ns_(steady_ns()) {}

Tracer& Tracer::instance() {
    static Tracer* tracer = new Tracer(); // never destroyed: spans may be
                                          // emitted from static teardown
    return *tracer;
}

void Tracer::enable(std::size_t capacity_per_thread) {
    capacity_.store(std::max<std::size_t>(capacity_per_thread, 16),
                    std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::reset() {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& ring : rings_) {
        ring->count.store(0, std::memory_order_release);
    }
}

std::uint64_t Tracer::now_us() const {
    return (steady_ns() - epoch_ns_) / 1000;
}

std::uint64_t Tracer::epoch_realtime_us() const {
    const std::uint64_t realtime_now_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    const std::uint64_t elapsed_us = now_us();
    return realtime_now_us > elapsed_us ? realtime_now_us - elapsed_us : 0;
}

Tracer::Ring* Tracer::local_ring() {
    thread_local Ring* cached = nullptr;
    if (cached == nullptr) {
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        rings_.push_back(std::make_unique<Ring>(
            static_cast<unsigned>(rings_.size()),
            capacity_.load(std::memory_order_relaxed)));
        cached = rings_.back().get();
    }
    return cached;
}

void Tracer::record(const char* cat, const char* name, std::uint64_t start_us,
                    std::uint64_t dur_us, const char* arg_name,
                    std::uint64_t arg) {
    Ring& ring = *local_ring();
    const std::uint64_t index = ring.count.load(std::memory_order_relaxed);
    Ring::Slot& slot = ring.slots[index % ring.slots.size()];
    slot.cat.store(cat, std::memory_order_relaxed);
    slot.name.store(name, std::memory_order_relaxed);
    slot.arg_name.store(arg_name, std::memory_order_relaxed);
    slot.start_us.store(start_us, std::memory_order_relaxed);
    slot.dur_us.store(dur_us, std::memory_order_relaxed);
    slot.arg.store(arg, std::memory_order_relaxed);
    ring.count.store(index + 1, std::memory_order_release);
}

void Tracer::instant(const char* cat, const char* name, const char* arg_name,
                     std::uint64_t arg) {
    if (!enabled()) {
        return;
    }
    record(cat, name, now_us(), kInstantDur, arg_name, arg);
}

std::vector<Tracer::ThreadTrack> Tracer::snapshot() const {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    std::vector<ThreadTrack> tracks;
    tracks.reserve(rings_.size());
    for (const auto& ring : rings_) {
        ThreadTrack track;
        track.tid = ring->tid;
        const std::uint64_t count = ring->count.load(std::memory_order_acquire);
        const std::uint64_t capacity = ring->slots.size();
        const std::uint64_t kept = std::min(count, capacity);
        track.emitted = count;
        track.dropped = count - kept;
        track.spans.reserve(static_cast<std::size_t>(kept));
        for (std::uint64_t i = count - kept; i < count; ++i) {
            const Ring::Slot& slot = ring->slots[i % capacity];
            SpanRecord span;
            span.cat = slot.cat.load(std::memory_order_relaxed);
            span.name = slot.name.load(std::memory_order_relaxed);
            span.arg_name = slot.arg_name.load(std::memory_order_relaxed);
            span.start_us = slot.start_us.load(std::memory_order_relaxed);
            span.dur_us = slot.dur_us.load(std::memory_order_relaxed);
            span.arg = slot.arg.load(std::memory_order_relaxed);
            if (span.name != nullptr) { // skip slots torn by a racing writer
                track.spans.push_back(span);
            }
        }
        tracks.push_back(std::move(track));
    }
    return tracks;
}

} // namespace obs
} // namespace lph
