#pragma once

#include "obs/metrics.hpp"

#include <string>

namespace lph {
namespace obs {

/// One observability session: a MetricsRegistry plus ownership of the global
/// tracer's on/off switch.
///
/// Instrumented subsystems take an optional `Session*` (GameOptions::obs,
/// HarnessOptions::obs); when set they accumulate their stats into the
/// session's registry.  Code with no natural options channel (ViewCache,
/// run_local, the thread pool) emits spans through the ambient global tracer
/// instead, which this session switches on and off.
///
/// At most one session should have tracing enabled at a time; `activate()`
/// additionally installs the session as the process-wide default so deep
/// call sites (the bench report recorder) can find a registry without
/// plumbing.
class Session {
public:
    struct Options {
        bool tracing = false;
        std::size_t trace_capacity_per_thread = 1 << 14;
    };

    Session(); ///< defaults: no tracing
    explicit Session(Options options);
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    MetricsRegistry& metrics() { return metrics_; }
    const MetricsRegistry& metrics() const { return metrics_; }

    bool tracing() const { return tracing_; }

    /// Installs this session as Session::active() (deactivated on
    /// destruction, restoring the previous active session).
    void activate();

    /// The currently active session, or nullptr.
    static Session* active();

    /// Exports the global tracer's spans as Chrome trace JSON to `path`.
    /// `process_name` labels this process's track in the viewer (supervised
    /// workers pass "lphd worker <slot>" so a merged timeline reads well).
    /// Returns false on I/O failure (never throws).
    bool export_chrome_trace(const std::string& path,
                             const std::string& process_name = "lph") const;

    /// Writes the metrics snapshot as a JSON object to `path`.
    bool write_metrics_json(const std::string& path) const;

private:
    MetricsRegistry metrics_;
    bool tracing_ = false;
    bool activated_ = false;
    Session* previous_active_ = nullptr;
};

} // namespace obs
} // namespace lph
