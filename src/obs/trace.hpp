#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace lph {
namespace obs {

/// One completed span (or instant event) as copied out of a ring buffer.
///
/// `cat`/`name`/`arg_name` must point at storage that outlives the tracer —
/// in practice string literals or static tables; the LPH_SPAN macro only
/// accepts literals and to_string(RunError) returns pointers into a static
/// table, so this holds everywhere spans are emitted.
struct SpanRecord {
    const char* cat = nullptr;
    const char* name = nullptr;
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0; ///< kInstantDur marks an instant event
    const char* arg_name = nullptr;
    std::uint64_t arg = 0;
};

constexpr std::uint64_t kInstantDur = ~std::uint64_t{0};

/// Process-global low-overhead span tracer.
///
/// Each thread owns a fixed-capacity ring of slots with atomic fields: the
/// owner publishes a record with relaxed stores followed by a release store
/// of the ring's count, so emission is lock-free, allocation-free past the
/// first span per thread, and race-free under TSan even against a concurrent
/// snapshot (a racing reader can observe a torn *record* — fields from two
/// generations — but never undefined behavior; exports are normally taken
/// after the traced workload quiesces).  When the ring wraps, the oldest
/// records are overwritten and counted as dropped.
///
/// When tracing is disabled (the default), the whole instrumentation hot
/// path — the LPH_SPAN macro below — costs one relaxed atomic load and a
/// branch; nothing is timestamped or written.
class Tracer {
public:
    static Tracer& instance();

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /// Turns tracing on.  `capacity_per_thread` applies to rings created
    /// from now on; existing rings keep their capacity.
    void enable(std::size_t capacity_per_thread = 1 << 14);
    void disable();

    /// Forgets all recorded spans (rings stay registered; counts reset).
    void reset();

    /// Microseconds since the tracer's epoch (process start of use).
    std::uint64_t now_us() const;

    /// The tracer's epoch as a CLOCK_REALTIME timestamp (microseconds since
    /// the Unix epoch), measured at call time as `realtime_now - now_us()`.
    /// Exported into the trace's otherData so scripts/trace_merge.py can
    /// shift per-process steady-clock timelines onto one wall-clock axis.
    std::uint64_t epoch_realtime_us() const;

    /// Records a completed span on the calling thread's ring.
    void record(const char* cat, const char* name, std::uint64_t start_us,
                std::uint64_t dur_us, const char* arg_name = nullptr,
                std::uint64_t arg = 0);

    /// Records an instant event (a point in time, e.g. a fault activation or
    /// a cache eviction).  No-op when disabled.
    void instant(const char* cat, const char* name, const char* arg_name = nullptr,
                 std::uint64_t arg = 0);

    /// Everything one thread's ring currently holds, oldest first.
    struct ThreadTrack {
        unsigned tid = 0;             ///< registration order, stable per thread
        std::uint64_t emitted = 0;    ///< spans ever recorded by this thread
        std::uint64_t dropped = 0;    ///< overwritten by ring wraparound
        std::vector<SpanRecord> spans;
    };

    /// Copies every ring out (see the class comment on torn records when
    /// writers are still active).
    std::vector<ThreadTrack> snapshot() const;

private:
    Tracer();

    struct Ring;
    Ring* local_ring();

    std::atomic<bool> enabled_{false};
    std::atomic<std::size_t> capacity_{1 << 14};
    std::uint64_t epoch_ns_ = 0;

    mutable std::mutex registry_mutex_;
    /// Rings are never destroyed (a handful per thread ever created), so the
    /// owning thread's cached pointer can never dangle.
    std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span: timestamps on construction when tracing is enabled, records on
/// destruction.  An optional single numeric argument can be attached and is
/// exported into the Chrome trace event's `args`.
class SpanGuard {
public:
    SpanGuard(const char* cat, const char* name) : cat_(cat), name_(name) {
        Tracer& tracer = Tracer::instance();
        if (tracer.enabled()) {
            tracer_ = &tracer;
            start_us_ = tracer.now_us();
        }
    }
    ~SpanGuard() {
        if (tracer_ != nullptr) {
            tracer_->record(cat_, name_, start_us_, tracer_->now_us() - start_us_,
                            arg_name_, arg_);
        }
    }
    SpanGuard(const SpanGuard&) = delete;
    SpanGuard& operator=(const SpanGuard&) = delete;

    /// Attaches a numeric argument (last call wins).  `name` must be a
    /// literal, as for the span names.
    void arg(const char* name, std::uint64_t value) {
        arg_name_ = name;
        arg_ = value;
    }

    bool active() const { return tracer_ != nullptr; }

private:
    const char* cat_;
    const char* name_;
    const char* arg_name_ = nullptr;
    std::uint64_t arg_ = 0;
    std::uint64_t start_us_ = 0;
    Tracer* tracer_ = nullptr;
};

#define LPH_OBS_CONCAT2(a, b) a##b
#define LPH_OBS_CONCAT(a, b) LPH_OBS_CONCAT2(a, b)

/// Scoped span over the rest of the enclosing block.  `cat` and `name` must
/// be string literals.  Compiles to a relaxed load + branch when tracing is
/// off.
#define LPH_SPAN(cat, name)                                                    \
    ::lph::obs::SpanGuard LPH_OBS_CONCAT(lph_obs_span_, __LINE__)(cat, name)

/// Same, but binds the guard to a caller-chosen variable so arguments can be
/// attached: LPH_SPAN_NAMED(span, "game", "game.chunk"); span.arg(...);
#define LPH_SPAN_NAMED(var, cat, name) ::lph::obs::SpanGuard var(cat, name)

} // namespace obs
} // namespace lph
