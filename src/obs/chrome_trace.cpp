#include "obs/chrome_trace.hpp"

#include "obs/metrics.hpp"

#include <unistd.h>

#include <algorithm>
#include <fstream>

namespace lph {
namespace obs {

namespace {

std::string event_prefix(const char* ph, std::int64_t pid, unsigned tid,
                         std::uint64_t ts) {
    std::string out = "{\"ph\":\"";
    out += ph;
    out += "\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    out += std::to_string(ts);
    return out;
}

void append_name_cat(std::string& out, const SpanRecord& span) {
    out += ",\"name\":\"";
    out += json_escape(span.name != nullptr ? span.name : "?");
    out += "\",\"cat\":\"";
    out += json_escape(span.cat != nullptr ? span.cat : "lph");
    out += "\"";
}

void append_args(std::string& out, const SpanRecord& span) {
    if (span.arg_name != nullptr) {
        out += ",\"args\":{\"";
        out += json_escape(span.arg_name);
        out += "\":";
        out += std::to_string(span.arg);
        out += "}";
    }
}

struct OpenSpan {
    SpanRecord span;
    std::uint64_t end = 0;
};

} // namespace

std::string chrome_trace_json(const std::vector<Tracer::ThreadTrack>& tracks,
                              std::int64_t pid,
                              std::uint64_t epoch_realtime_us,
                              const std::string& process_name) {
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    std::vector<std::string> events;
    events.push_back("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                     ",\"name\":\"process_name\",\"args\":{\"name\":\"" +
                     json_escape(process_name) + "\"}}");

    std::uint64_t dropped_total = 0;
    for (const Tracer::ThreadTrack& track : tracks) {
        dropped_total += track.dropped;
        if (track.spans.empty()) {
            continue;
        }
        events.push_back("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                         ",\"tid\":" + std::to_string(track.tid) +
                         ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker-" +
                         std::to_string(track.tid) + "\"}}");

        // Parent-before-child order: by start ascending, then longer first.
        // Instants sort as zero-length spans at their timestamp.
        std::vector<SpanRecord> spans = track.spans;
        const auto end_of = [](const SpanRecord& s) {
            return s.dur_us == kInstantDur ? s.start_us : s.start_us + s.dur_us;
        };
        std::stable_sort(spans.begin(), spans.end(),
                         [&](const SpanRecord& a, const SpanRecord& b) {
                             if (a.start_us != b.start_us) {
                                 return a.start_us < b.start_us;
                             }
                             return end_of(a) > end_of(b);
                         });

        // Emit balanced B/E pairs with a nesting stack.  RAII spans on one
        // thread are properly nested already; ends are still clamped to the
        // enclosing span so the output stays balanced even for torn records.
        std::vector<OpenSpan> stack;
        const auto pop_one = [&] {
            const OpenSpan& top = stack.back();
            std::string ev = event_prefix("E", pid, track.tid, top.end);
            append_name_cat(ev, top.span);
            ev += "}";
            events.push_back(std::move(ev));
            stack.pop_back();
        };
        for (const SpanRecord& span : spans) {
            while (!stack.empty() && stack.back().end <= span.start_us) {
                pop_one();
            }
            if (span.dur_us == kInstantDur) {
                std::string ev = event_prefix("i", pid, track.tid, span.start_us);
                append_name_cat(ev, span);
                append_args(ev, span);
                ev += ",\"s\":\"t\"}";
                events.push_back(std::move(ev));
                continue;
            }
            std::uint64_t end = span.start_us + span.dur_us;
            if (!stack.empty()) {
                end = std::min(end, stack.back().end);
            }
            end = std::max(end, span.start_us);
            std::string ev = event_prefix("B", pid, track.tid, span.start_us);
            append_name_cat(ev, span);
            append_args(ev, span);
            ev += "}";
            events.push_back(std::move(ev));
            stack.push_back(OpenSpan{span, end});
        }
        while (!stack.empty()) {
            pop_one();
        }
    }

    for (std::size_t i = 0; i < events.size(); ++i) {
        out += "  " + events[i];
        out += i + 1 < events.size() ? ",\n" : "\n";
    }
    out += "],\"otherData\":{\"dropped_spans\":" + std::to_string(dropped_total) +
           ",\"pid\":" + std::to_string(pid) +
           ",\"epoch_realtime_us\":" + std::to_string(epoch_realtime_us) +
           "}}\n";
    return out;
}

std::string chrome_trace_json() {
    const Tracer& tracer = Tracer::instance();
    return chrome_trace_json(tracer.snapshot(),
                             static_cast<std::int64_t>(::getpid()),
                             tracer.epoch_realtime_us());
}

bool write_chrome_trace(const std::string& path,
                        const std::string& process_name) {
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    const Tracer& tracer = Tracer::instance();
    out << chrome_trace_json(tracer.snapshot(),
                             static_cast<std::int64_t>(::getpid()),
                             tracer.epoch_realtime_us(), process_name);
    return static_cast<bool>(out);
}

} // namespace obs
} // namespace lph
