#include "obs/session.hpp"

#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"

#include <atomic>
#include <fstream>

namespace lph {
namespace obs {

namespace {

std::atomic<Session*> g_active{nullptr};

} // namespace

Session::Session() : Session(Options{}) {}

Session::Session(Options options) : tracing_(options.tracing) {
    if (tracing_) {
        Tracer::instance().reset();
        Tracer::instance().enable(options.trace_capacity_per_thread);
    }
}

Session::~Session() {
    if (activated_) {
        g_active.store(previous_active_, std::memory_order_release);
    }
    if (tracing_) {
        Tracer::instance().disable();
    }
}

void Session::activate() {
    if (!activated_) {
        activated_ = true;
        previous_active_ = g_active.exchange(this, std::memory_order_acq_rel);
    }
}

Session* Session::active() { return g_active.load(std::memory_order_acquire); }

bool Session::export_chrome_trace(const std::string& path,
                                  const std::string& process_name) const {
    return write_chrome_trace(path, process_name);
}

bool Session::write_metrics_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    out << metrics_.snapshot_json();
    return static_cast<bool>(out);
}

} // namespace obs
} // namespace lph
