#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lph {
namespace obs {

void MetricsRegistry::add(const std::string& name, double delta) {
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    histograms_[name].record(value);
}

void MetricsRegistry::merge_histogram(const std::string& name,
                                      const LogHistogram& h) {
    const std::lock_guard<std::mutex> lock(mutex_);
    histograms_[name].merge(h);
}

void MetricsRegistry::set_histogram(const std::string& name,
                                    const LogHistogram& h) {
    const std::lock_guard<std::mutex> lock(mutex_);
    histograms_[name] = h;
}

void MetricsRegistry::absorb(const std::string& prefix, const MetricList& values) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : values) {
        gauges_[prefix + name] = value;
    }
}

void MetricsRegistry::accumulate(const std::string& prefix,
                                 const MetricList& values) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : values) {
        counters_[prefix + name] += value;
    }
}

MetricList MetricsRegistry::snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    MetricList out;
    out.reserve(counters_.size() + gauges_.size() + 9 * histograms_.size());
    for (const auto& [name, value] : counters_) {
        out.emplace_back(name, value);
    }
    for (const auto& [name, value] : gauges_) {
        out.emplace_back(name, value);
    }
    for (const auto& [name, h] : histograms_) {
        out.emplace_back(name + ".count", static_cast<double>(h.count()));
        out.emplace_back(name + ".sum", h.sum());
        out.emplace_back(name + ".min", h.min());
        out.emplace_back(name + ".max", h.max());
        out.emplace_back(name + ".avg", h.avg());
        out.emplace_back(name + ".p50", h.percentile(0.50));
        out.emplace_back(name + ".p90", h.percentile(0.90));
        out.emplace_back(name + ".p99", h.percentile(0.99));
        out.emplace_back(name + ".p999", h.percentile(0.999));
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string MetricsRegistry::snapshot_json() const {
    return render_metrics_json(snapshot(), /*pretty=*/true);
}

std::string render_metrics_json(const MetricList& metrics, bool pretty) {
    std::string out = pretty ? "{\n" : "{";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        char buf[64];
        const double value = metrics[i].second;
        // Counters must survive a parse-and-merge round trip exactly, so
        // integral values within double's exact-integer range print as
        // integers; %.6g would turn 1234567 into 1.23457e+06.
        if (value >= -9.007199254740992e15 && value <= 9.007199254740992e15 &&
            value == std::floor(value)) {
            std::snprintf(buf, sizeof(buf), "%.0f", value);
        } else {
            std::snprintf(buf, sizeof(buf), "%.6g", value);
        }
        out += pretty ? "  \"" : "\"";
        out += json_escape(metrics[i].first) + (pretty ? "\": " : "\":") + buf;
        if (i + 1 < metrics.size()) {
            out += pretty ? ",\n" : ",";
        } else if (pretty) {
            out += "\n";
        }
    }
    out += pretty ? "}\n" : "}";
    return out;
}

std::vector<std::pair<std::string, LogHistogram>>
MetricsRegistry::histograms() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, LogHistogram>> out;
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        out.emplace_back(name, h);
    }
    return out;
}

void MetricsRegistry::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace obs
} // namespace lph
